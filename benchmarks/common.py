"""Shared helpers for the benchmark suite's JSON artifacts.

Every benchmark that persists measurements writes through
:func:`write_bench_json`, so all ``benchmarks/out/*.json`` payloads share
one shape::

    {
      "experiment": "<name>",
      "provenance": {...},   # repro.obs.provenance stamp (git SHA, host,
                             # python/numpy versions, UTC timestamp)
      "rows": [...]          # the experiment's measurements, verbatim
    }

The provenance block is what makes two artifacts with different numbers
comparable after the fact; ``benchmarks/check_provenance.py`` (run in CI)
fails any artifact that lacks it.
"""

import os

from repro.obs.provenance import provenance_stamp
from repro.utils.atomic import atomic_write_json


def bench_json_path(env_var, default_name):
    """Artifact path: ``$env_var`` override or ``benchmarks/out/<name>``."""
    return os.environ.get(
        env_var, os.path.join(os.path.dirname(__file__), "out", default_name)
    )


def write_bench_json(experiment, rows, *, env_var, default_name):
    """Write one provenance-stamped benchmark payload; returns its path."""
    path = bench_json_path(env_var, default_name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {
        "experiment": experiment,
        "provenance": provenance_stamp(),
        "rows": rows,
    }
    atomic_write_json(path, payload, indent=2)
    return path
