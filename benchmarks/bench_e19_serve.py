"""E19 — the schedule-serving layer measured tier by tier.

Three measurements over :mod:`repro.serve`:

* **Cold vs warm latency** (the memoization claim): one E16-config key
  (TBS N=120 M=6 S=15; ``--smoke`` shrinks to N=40) served through a
  fresh :class:`~repro.serve.frontend.ScheduleService`.  The cold
  request runs the full searcher pipeline and files the result; warm
  requests are in-process cache hits.  The warm mean must be **>= 100x**
  faster than the cold search — the acceptance floor of the serving
  layer, asserted in both modes (in practice it is 4-6 orders).

* **Single flight** (the coalescing claim): N concurrent requests for
  one cold key through ``asyncio.gather`` must run **exactly one**
  search and coalesce the other N−1 (``serve.coalesced``).

* **Hit rate vs cache size under a zipf stream + LRU vs oracle** (the
  dogfooding claim): one synthetic request log (zipf-ranked popularity
  over a key universe) replayed through
  :class:`~repro.serve.cache.ScheduleCache` at a capacity grid, under
  LRU and under the Belady oracle built from the same log.  At every
  capacity both caches are cross-checked **bit-identically** against
  the array replay engines of :mod:`repro.trace.replay` driving the
  log-as-trace (:func:`repro.serve.cache.log_to_trace`) — the serving
  tier literally runs on the engines the paper analyzes.  Asserted
  shape: LRU hit rate is monotone in capacity (inclusion property),
  oracle >= LRU everywhere, equal at capacity >= universe.

Rows land in a provenance-stamped BENCH JSON
(``benchmarks/out/bench_e19_serve.json`` or ``$BENCH_E19_JSON``).
"""

import asyncio
import random
import time

import pytest

from repro.serve import (
    ScheduleCache,
    ScheduleKey,
    ScheduleService,
    ScheduleStore,
    log_to_trace,
)
from repro.trace.replay import belady_replay_trace, lru_replay_trace
from repro.utils.fmt import Table, format_int

WARM_HITS = 200          # warm-latency sample size (memory hits)
SPEEDUP_FLOOR = 100.0    # acceptance: warm hit >= 100x faster than cold search
FANOUT = 8               # concurrent duplicates for the single-flight check
UNIVERSE = 40            # synthetic key universe for the zipf stream
STREAM_LEN = 4000
ZIPF_A = 1.1
CAPACITIES = (2, 4, 8, 16, 32, UNIVERSE)


def e16_key(smoke: bool) -> ScheduleKey:
    n = 40 if smoke else 120
    return ScheduleKey("tbs", n, 6, 15, policy="heuristic")


async def _serve_cold_then_warm(store_root, key):
    service = ScheduleService(ScheduleStore(store_root), ScheduleCache(4))
    t0 = time.perf_counter()
    first = await service.get_schedule(key)
    cold = time.perf_counter() - t0
    warm_times = []
    for _ in range(WARM_HITS):
        t0 = time.perf_counter()
        hit = await service.get_schedule(key)
        warm_times.append(time.perf_counter() - t0)
        assert hit is first  # memory tier returns the hot object itself
    assert service.searches == 1 and service.hits == WARM_HITS
    service.close()
    return cold, sum(warm_times) / len(warm_times)


async def _serve_fanout(store_root, key):
    service = ScheduleService(ScheduleStore(store_root), ScheduleCache(4))
    results = await asyncio.gather(
        *[service.get_schedule(key) for _ in range(FANOUT)]
    )
    assert all(r is results[0] for r in results)
    service.close()
    return service


def test_e19_cold_vs_warm(tmp_path, smoke, once, capsys):
    key = e16_key(smoke)
    cold, warm = once(
        lambda: asyncio.run(_serve_cold_then_warm(str(tmp_path / "store"), key))
    )
    speedup = cold / max(warm, 1e-12)

    # Single flight on a fresh store: FANOUT concurrent cold duplicates.
    service = asyncio.run(_serve_fanout(str(tmp_path / "fanout"), key))
    assert service.searches == 1, "duplicate in-flight requests must coalesce"
    assert service.coalesced == FANOUT - 1

    rows = [{
        "experiment": "cold_vs_warm",
        "key": key.as_dict(),
        "cold_search_s": cold,
        "warm_hit_mean_s": warm,
        "warm_speedup": speedup,
        "fanout": FANOUT,
        "fanout_searches": service.searches,
        "fanout_coalesced": service.coalesced,
    }]

    with capsys.disabled():
        t = Table(["key", "cold search", "warm hit (mean)", "speedup",
                   f"searches @ {FANOUT} dup", "coalesced"])
        t.add_row(
            [key.canonical(), f"{cold * 1e3:.1f} ms", f"{warm * 1e6:.1f} us",
             f"{speedup:,.0f}x", service.searches, service.coalesced]
        )
        print("\n" + t.render())

    assert speedup >= SPEEDUP_FLOOR, (
        f"warm hits only {speedup:.1f}x faster than the cold search"
    )
    from common import write_bench_json

    write_bench_json(
        "e19_serve_latency", rows,
        env_var="BENCH_E19_JSON", default_name="bench_e19_serve.json",
    )


def test_e19_hit_rate_vs_capacity(smoke, once, capsys):
    stream_len = 800 if smoke else STREAM_LEN
    rng = random.Random(0)
    digests = [f"key{i:03d}" for i in range(UNIVERSE)]
    weights = [1.0 / (rank + 1) ** ZIPF_A for rank in range(UNIVERSE)]
    log = rng.choices(digests, weights=weights, k=stream_len)
    trace = log_to_trace(log)

    def sweep():
        rows = []
        for cap in CAPACITIES:
            lru = ScheduleCache.replay(log, cap, "lru")
            oracle = ScheduleCache.replay(log, cap, "oracle")
            # Dogfood cross-check: the serving cache and the paper's
            # replay engines count bit-identical misses on the same log.
            assert lru.misses == lru_replay_trace(trace, cap).loads
            assert oracle.misses == belady_replay_trace(trace, cap).loads
            assert len(lru) <= cap and len(oracle) <= cap
            rows.append({
                "experiment": "hit_rate_vs_capacity",
                "capacity": cap,
                "requests": stream_len,
                "universe": UNIVERSE,
                "zipf_a": ZIPF_A,
                "lru_hits": lru.hits,
                "lru_hit_rate": lru.hit_rate,
                "lru_evictions": lru.evictions,
                "oracle_hits": oracle.hits,
                "oracle_hit_rate": oracle.hit_rate,
            })
        return rows

    rows = once(sweep)
    with capsys.disabled():
        t = Table(["capacity", "LRU hits", "LRU rate", "oracle hits",
                   "oracle rate", "gap"])
        for r in rows:
            t.add_row(
                [r["capacity"], format_int(r["lru_hits"]),
                 f"{r['lru_hit_rate']:.3f}", format_int(r["oracle_hits"]),
                 f"{r['oracle_hit_rate']:.3f}",
                 f"{r['oracle_hit_rate'] - r['lru_hit_rate']:.3f}"]
            )
        print("\n" + t.render())

    for prev, cur in zip(rows, rows[1:]):
        assert cur["lru_hit_rate"] >= prev["lru_hit_rate"], (
            "LRU inclusion property: hit rate must be monotone in capacity"
        )
    for r in rows:
        assert r["oracle_hit_rate"] >= r["lru_hit_rate"], (
            f"oracle below LRU at capacity {r['capacity']}"
        )
    full = rows[-1]
    assert full["capacity"] >= UNIVERSE
    assert full["oracle_hits"] == full["lru_hits"], (
        "at capacity >= universe nothing evicts; the policies must agree"
    )
    from common import write_bench_json

    write_bench_json(
        "e19_serve_hit_rates", rows,
        env_var="BENCH_E19_HITS_JSON", default_name="bench_e19_hit_rates.json",
    )


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "--benchmark-only", "-s"] + sys.argv[1:]))
