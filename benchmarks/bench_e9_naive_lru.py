"""E9 — the Hong-Kung motivation (Section 2.1): naive loop nests under LRU.

Runs Algorithm 1 verbatim on the element-granular LRU pebble machine for
three loop orders and three memory sizes, against the blocked schedules.
Shape claims: with M > S every naive order pays ~2 loads per multiply; the
blocked schedules pay ~2/s; all runs produce identical numbers.
"""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.baselines.naive import naive_cholesky_lru, naive_syrk_lru
from repro.baselines.ooc_chol import ooc_chol
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.tbs import tbs_syrk
from repro.kernels.flops import syrk_mults
from repro.kernels.reference import cholesky_reference, syrk_reference
from repro.utils.fmt import Table, format_int
from repro.utils.rng import random_spd_matrix, random_tall_matrix

# Thrash conditions for every loop order: 2M + 1 > S (ijk: two A-rows never
# fit) and 2(i+1) + 1 > S for most i (ikj/kij: a C-column plus an A-column
# segment never fit).  Tile sides stay >= 2 so blocking has room to win.
N, M_COLS = 28, 40
CAPACITIES = [15, 31]


def run_sweep():
    a = random_tall_matrix(N, M_COLS, seed=0)
    reference = np.tril(syrk_reference(a))
    out = []
    for s in CAPACITIES:
        per = {}
        for order in ("ijk", "ikj", "kij"):
            pm, c = naive_syrk_lru(a, capacity=s, order=order)
            assert np.max(np.abs(np.tril(c) - reference)) < 1e-10
            per[f"naive {order}"] = pm.loads
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((N, N)))
        st = ooc_syrk(m, "A", "C", range(N), range(M_COLS))
        assert np.max(np.abs(np.tril(m.result("C")) - reference)) < 1e-10
        per["blocked OCS"] = st.loads
        m2 = TwoLevelMachine(s)
        m2.add_matrix("A", a)
        m2.add_matrix("C", np.zeros((N, N)))
        st2 = tbs_syrk(m2, "A", "C", range(N), range(M_COLS))
        assert np.max(np.abs(np.tril(m2.result("C")) - reference)) < 1e-10
        per["TBS"] = st2.loads
        out.append((s, per))
    return out


@pytest.mark.benchmark(group="e9")
def test_e9_naive_vs_blocked(once):
    sweep = once(run_sweep)
    mults = syrk_mults(N, M_COLS)

    t = Table(
        ["S", "naive ijk", "naive ikj", "naive kij", "blocked OCS", "TBS", "best naive / OCS"],
        title=f"E9: Q(loads) for Algorithm 1, N={N}, M={M_COLS} (> S: rows don't fit)",
    )
    for s, per in sweep:
        best_naive = min(per[k] for k in per if k.startswith("naive"))
        t.add_row(
            [s, format_int(per["naive ijk"]), format_int(per["naive ikj"]),
             format_int(per["naive kij"]), format_int(per["blocked OCS"]),
             format_int(per["TBS"]), f"{best_naive / per['blocked OCS']:.2f}"]
        )
        # with M > S, naive pays ~2 loads/mult; blocked pays well under 1
        for k in per:
            if k.startswith("naive"):
                assert per[k] / mults > 1.5
        assert per["blocked OCS"] / mults < 1.0
        assert per["TBS"] <= per["blocked OCS"]
    print()
    print(t.render())

    # naive Cholesky for completeness
    a = random_spd_matrix(20, seed=1)
    pm, l = naive_cholesky_lru(a, capacity=15)
    assert np.max(np.abs(l - cholesky_reference(a))) < 1e-9
    m = TwoLevelMachine(15)
    m.add_matrix("A", a)
    st = ooc_chol(m, "A", range(20))
    print(f"\nnaive Cholesky (N=20, S=15): Q = {pm.loads:,} vs blocked OOC_CHOL Q = {st.loads:,}")
    assert pm.loads > st.loads
