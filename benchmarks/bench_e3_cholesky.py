"""E3 — the headline Cholesky result (Corollary 4.8 + Theorem 5.7).

Measures Q(LBC) and Q(OOC_CHOL) on the machine at S = 15 (N up to 144 —
past the LBC/OCC crossover at N ~ 130), checks measured == exact model,
then extends with models to large N/S where the constants land on
1/(3 sqrt 2) = 0.2357 (LBC) and 1/3 (OCC), ratio sqrt(2).

Shape claims: LB <= Q(LBC) <= Q(OCC) past the crossover; the crossover
itself is located and reported; constants converge.
"""

import math

import pytest

from repro.analysis.model import lbc_model, ooc_chol_model
from repro.analysis.sweep import run_cholesky_once
from repro.core.bounds import cholesky_lower_bound
from repro.utils.fmt import Table, format_int

S_MEASURED = 15
NS_MEASURED = [(96, 8), (144, 12)]
MODEL_SWEEP = [(15, 4_096), (66, 9_216), (190, 16_384), (465, 36_864), (1275, 65_536)]


def run_measured():
    rows = []
    for n, b in NS_MEASURED:
        lbc = run_cholesky_once("lbc", n, S_MEASURED, b=b)
        occ = run_cholesky_once("occ", n, S_MEASURED)
        rows.append((n, b, lbc, occ))
    return rows


@pytest.mark.benchmark(group="e3")
def test_e3_cholesky_volumes(once):
    rows = once(run_measured)

    t = Table(
        ["N", "b", "lower bnd", "Q LBC", "Q OCC", "OCC/LBC", "LBC==model", "OCC==model"],
        title=f"E3 measured: Cholesky at S={S_MEASURED}",
    )
    for n, b, lbc, occ in rows:
        lb = cholesky_lower_bound(n, S_MEASURED, form="exact")
        t.add_row(
            [n, b, f"{lb:,.0f}", format_int(lbc.loads), format_int(occ.loads),
             f"{occ.loads / lbc.loads:.3f}",
             str(lbc.loads == lbc.model_loads), str(occ.loads == occ.model_loads)]
        )
        assert lb <= lbc.loads
        assert lbc.loads == lbc.model_loads and occ.loads == occ.model_loads
    print()
    print(t.render())
    # past the crossover LBC wins
    _, _, lbc144, occ144 = rows[-1]
    assert lbc144.loads < occ144.loads

    # ---- locate the crossover with the exact models --------------------
    crossover = None
    for n in range(64, 400, 16):
        b = max(d for d in range(1, n + 1) if n % d == 0 and d * d <= n)
        if lbc_model(n, S_MEASURED, b).loads < ooc_chol_model(n, S_MEASURED).loads:
            crossover = n
            break
    print(f"\nLBC/OCC crossover at S={S_MEASURED}: N ~ {crossover}")
    assert crossover is not None and 80 <= crossover <= 200

    # ---- model-extended convergence -------------------------------------
    # The finite-size constants decompose exactly per Section 5.2.2:
    #   c(LBC) ~ sqrt(S)/(3(k-1))      [TBS downdates, term 3]
    #          + sqrt(S)/(6b)          [trailing-C reloads, term 4]
    #          + b sqrt(S)/(2 s N)     [TRSM panels, term 2]
    #   c(OCC) ~ sqrt(S)/(3s)          [tile rounding of Bereux's 1/3]
    # and every correction term -> 0 as S, N -> infinity, leaving the
    # paper's 1/(3 sqrt 2) and 1/3.
    from repro.config import square_tile_side_for_memory, triangle_side_for_memory

    t2 = Table(
        ["S", "N", "c(LBC)", "finite target", "c(OCC)", "finite target", "ratio",
         "paper: 0.2357 / 0.3333 / 1.4142"],
        title="E3 extended (exact models)",
    )
    rows2 = []
    for s, n in MODEL_SWEEP:
        b = int(math.isqrt(n))
        k = triangle_side_for_memory(s)
        st = square_tile_side_for_memory(s)
        lbc_c = lbc_model(n, s, b).loads * math.sqrt(s) / n**3
        occ_c = ooc_chol_model(n, s).loads * math.sqrt(s) / n**3
        lbc_t = math.sqrt(s) / (3 * (k - 1)) + math.sqrt(s) / (6 * b) + b * math.sqrt(s) / (2 * st * n)
        occ_t = math.sqrt(s) / (3 * st)
        t2.add_row([s, n, f"{lbc_c:.4f}", f"{lbc_t:.4f}", f"{occ_c:.4f}", f"{occ_t:.4f}",
                    f"{occ_c / lbc_c:.4f}", ""])
        rows2.append((s, n, b, k, st, lbc_c, occ_c, lbc_t, occ_t))
    print()
    print(t2.render())

    for s, n, b, k, st, lbc_c, occ_c, lbc_t, occ_t in rows2:
        assert lbc_c < occ_c
        assert lbc_c == pytest.approx(lbc_t, rel=0.05), (s, n)
        assert occ_c == pytest.approx(occ_t, rel=0.02), (s, n)
        # the finite targets provably tend to the paper constants:
        assert lbc_t > 1 / (3 * math.sqrt(2)) - 1e-9
        assert occ_t > 1 / 3 - 1e-9
    # ratio comfortably past 1.27 on the sweep and -> sqrt(2) analytically
    assert all(occ_c / lbc_c > 1.27 for (_s, _n, _b, _k, _st, lbc_c, occ_c, _lt, _ot) in rows2)
