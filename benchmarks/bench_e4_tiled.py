"""E4 — tiled TBS (Section 5.1.4): practicality vs the sqrt(k/(k-1)) penalty.

Measures the tiled variant at small scale (== exact model), then sweeps the
tile-triangle side k with the models at S = 1275: larger k approaches the
element version's constant but raises the validity threshold; the paper's
penalty factor sqrt(k/(k-1)) is recovered from the measured constants.

Shape claims: measured == model; constant(k) decreases with k and tracks
0.7071 * sqrt(k/(k-1)) within the b-rounding correction; the tiled variant
applies at N two orders of magnitude below the element version's 2S
threshold.
"""

import math

import pytest

from repro.analysis.model import tbs_model, tbs_tiled_model
from repro.analysis.sweep import run_syrk_once
from repro.config import tiled_tbs_shape_for_memory, triangle_side_for_memory
from repro.core.tbs_tiled import tiled_leading_constant
from repro.utils.fmt import Table, format_int

S_MEASURED = 18  # k=3, b=2 fits: 3*4 + 6 = 18
S_MODEL = 1275
M_COLS = 4


def run_measured():
    rows = []
    for n in (24, 48, 96):
        tiled = run_syrk_once("tiled", n, 3, S_MEASURED, k=3, b=2)
        rows.append((n, tiled))
    return rows


@pytest.mark.benchmark(group="e4")
def test_e4_tiled_tbs(once):
    rows = once(run_measured)

    t = Table(
        ["N", "Q tiled-TBS", "== model"],
        title=f"E4 measured: tiled TBS at S={S_MEASURED} (k=3, b=2)",
    )
    for n, tiled in rows:
        t.add_row([n, format_int(tiled.loads), str(tiled.loads == tiled.model_loads)])
        assert tiled.loads == tiled.model_loads
    print()
    print(t.render())

    # ---- k sweep with models at S = 1275 -------------------------------
    n = 80_000
    c_pass = n * (n + 1) // 2
    t2 = Table(
        ["k", "b", "c_A(tiled)", "finite target sqrt(S)/((k-1)b)", "paper limit 0.7071*sqrt(k/(k-1))", "threshold N0 ~ k(k-1)b"],
        title=f"E4 extended: tile-triangle side k at S={S_MODEL}",
    )
    consts = []
    for k in (3, 4, 6, 8, 12):
        b = tiled_tbs_shape_for_memory(S_MODEL, k)
        pred = tbs_tiled_model(n, M_COLS, S_MODEL, k=k, b=b)
        c_a = (pred.loads - c_pass) * math.sqrt(S_MODEL) / (n * n * M_COLS)
        finite = math.sqrt(S_MODEL) / ((k - 1) * b)
        limit = tiled_leading_constant(k) / math.sqrt(2)
        t2.add_row([k, b, f"{c_a:.4f}", f"{finite:.4f}", f"{limit:.4f}", format_int(k * (k - 1) * b)])
        consts.append((k, c_a, finite, limit))
    print()
    print(t2.render())

    for k, c_a, finite, limit in consts:
        # measured == finite-size target up to lower-order terms ...
        assert c_a == pytest.approx(finite, rel=0.05), (k, c_a, finite)
        # ... and the finite target can only sit above the paper's limit
        # (integer b under-fills memory, never over-fills).
        assert finite >= limit * 0.999, (k, finite, limit)
    assert consts[-1][1] < consts[0][1]

    # ---- validity thresholds: tiled vs element --------------------------
    k_elem = triangle_side_for_memory(S_MODEL)
    elem_threshold = (k_elem - 1) * k_elem          # c >= k-1 rows of k groups
    k4_b = tiled_tbs_shape_for_memory(S_MODEL, 4)
    tiled_threshold = 3 * 4 * k4_b
    print(
        f"\nvalidity thresholds at S={S_MODEL}: element TBS needs N >= ~{elem_threshold:,}"
        f" (~2S), tiled (k=4) needs N >= ~{tiled_threshold:,}"
    )
    assert tiled_threshold < elem_threshold / 4

    # element version at huge N still wins on the constant:
    pred_elem = tbs_model(200_000, M_COLS, S_MODEL)
    c_elem = (pred_elem.loads - 200_000 * 200_001 // 2) * math.sqrt(S_MODEL) / (200_000**2 * M_COLS)
    assert c_elem < consts[0][1]
