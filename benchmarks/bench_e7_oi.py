"""E7 — the operational-intensity roofline (Section 1 + Conclusion claims).

Measures the OI (multiplies per loaded element) of all six schedules on the
machine and compares each against its class ceiling: ``sqrt(S/2)`` for the
symmetric kernels (Theorem 4.1 via Lemma 3.1), ``sqrt(S)`` for GEMM/LU.

Shape claims: nothing exceeds its ceiling; TBS achieves a strictly higher
fraction of its ceiling than OOC_SYRK (whose square tiles are capped a
factor sqrt(2) short); same for LBC vs OOC_CHOL; the ceilings themselves
differ by exactly sqrt(2).
"""

import math

import pytest

from repro.analysis.roofline import roofline_rows
from repro.core.bounds import max_operational_intensity
from repro.utils.fmt import Table

# N must sit past the LBC/OCC crossover (~130 at S=15) so the Cholesky OI
# ordering reflects the asymptotic story.
N, M_COLS, S = 144, 16, 15


def run_roofline():
    return roofline_rows(n=N, mcols=M_COLS, s=S, lbc_b=12)


@pytest.mark.benchmark(group="e7")
def test_e7_roofline(once):
    rows = once(run_roofline)

    t = Table(
        ["schedule", "class", "Q", "mults", "OI", "ceiling", "fraction"],
        title=f"E7: OI roofline at N={N}, S={S} (mults per loaded element)",
    )
    by_name = {}
    for r in rows:
        by_name[r.schedule] = r
        t.add_row(
            [r.schedule, r.kernel_class, f"{r.q:,}", f"{r.mults:,}",
             f"{r.oi:.3f}", f"{r.ceiling:.3f}", f"{r.fraction:.3f}"]
        )
    print()
    print(t.render())

    sym = max_operational_intensity(S, "symmetric", "mults")
    gem = max_operational_intensity(S, "gemm", "mults")
    print(f"\nceilings: symmetric sqrt(S/2) = {sym:.3f}, gemm sqrt(S) = {gem:.3f}, ratio = {gem / sym:.4f}")

    # nothing above its ceiling (finite-size: comfortably below)
    for r in rows:
        assert r.oi <= r.ceiling * 1.0 + 1e-9, r.schedule

    # the paper's ordering claims
    assert by_name["TBS (syrk)"].oi > by_name["OOC_SYRK"].oi
    assert by_name["LBC (cholesky)"].oi > by_name["OOC_CHOL"].oi
    assert gem / sym == pytest.approx(math.sqrt(2.0))

    # TBS exceeds the fraction OOC_SYRK could ever reach of the symmetric
    # ceiling: OCS's OI is capped by ~s/2 mults per streamed element pair.
    assert by_name["TBS (syrk)"].fraction > by_name["OOC_SYRK"].fraction + 0.05
