"""E16 — extension: transfer-aware partition refinement + weighted makespan.

Not a paper experiment: ROADMAP's "transfer-aware partitioning" next step,
measured.  E14 showed the partitioner is the dominant gap of the sharded
executor (level-greedy at 3.3-4.3x the per-node receive floor vs ~2.0x for
owner-computes); E16 measures how much of that gap *local search over the
assignment space* recovers: every one-shot partitioner's owner[] is fed to
``refine_partition`` (single-op + reduction-class moves, incremental
``max(recv + transfer_in)`` ledger) and the refined partition is re-measured
with real per-shard replays.  Every row also reports the mults-weighted
makespan of the latency model (per-op cost = mults, per-cross-edge cost =
alpha + beta * transferred elements).

Volumes are measured under the ``belady`` policy — the per-(order, shard)
load floor and exactly what the refiner's final seed-vs-refined comparison
measures; a ``rewrite`` run per refined row additionally proves the
assignment still dresses into a validated explicit stream with per-node
peak <= S.

Shape claims:

* refinement never returns a partition measured worse than its seed
  (the refiner's hard postcondition), at every (p, partitioner);
* the best refined ``max(recv + transfer_in)`` is <= the best one-shot
  partitioner's, at p in {4, 16};
* refining the transfer-heaviest seed (level-greedy) strictly reduces its
  ``max(recv + transfer_in)``;
* per-node peak occupancy of every refined partition stays <= S under the
  validated rewrite policy, and every report row carries the weighted
  makespan.

BENCH JSON (``benchmarks/out/bench_e16_refine.json`` or ``$BENCH_E16_JSON``)
records seed/refined volumes, refined/bound ratios and makespans per row.
"""

import pytest

from repro.core.bounds import parallel_syrk_lower_bound_per_node
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.parallel import (
    PARTITIONERS,
    execute_graph,
    partition_graph,
    refine_partition,
)
from repro.utils.fmt import Table, format_int

M_COLS, S = 6, 15
PS = [4, 16]


def run_sweep(n: int, max_moves: int):
    case = record_case("tbs", n, M_COLS, S)
    graph = DependencyGraph.from_trace(case.trace)
    rows = []
    for p in PS:
        for part in PARTITIONERS:
            seed = partition_graph(graph, p, part)
            refined = refine_partition(
                graph, seed, p, S, strategy="greedy", max_moves=max_moves
            )
            seed_summ = execute_graph(
                case.schedule, p, S, owner=seed, policy="belady", graph=graph,
                partitioner_label=part,
            )
            ref_summ = execute_graph(
                case.schedule, p, S, owner=refined.owner, policy="belady",
                graph=graph, partitioner_label=f"{part}+refine",
            )
            ref_rewrite = execute_graph(
                case.schedule, p, S, owner=refined.owner, policy="rewrite",
                graph=graph, partitioner_label=f"{part}+refine",
            )
            rows.append((p, part, refined, seed_summ, ref_summ, ref_rewrite))
    return case, graph, rows


def write_bench_json(payload_rows):
    from common import write_bench_json as write_common

    return write_common(
        "e16_partition_refinement", payload_rows,
        env_var="BENCH_E16_JSON", default_name="bench_e16_refine.json",
    )


@pytest.mark.benchmark(group="e16")
def test_e16_refine(once, smoke):
    n = 60 if smoke else 120
    max_moves = 96 if smoke else 256
    case, graph, rows = once(run_sweep, n, max_moves)

    t = Table(
        ["P", "partitioner", "seed r+x", "refined r+x", "gain", "moves",
         "makespan seed", "makespan refined", "(r+x)/bound"],
        title=(
            f"E16: transfer-aware partition refinement, TBS N={n}, "
            f"M={M_COLS}, node memory S={S} (belady volumes)"
        ),
    )
    payload_rows = []
    best_oneshot: dict[int, int] = {}
    best_refined: dict[int, int] = {}
    for p, part, refined, seed_summ, ref_summ, ref_rewrite in rows:
        bound = parallel_syrk_lower_bound_per_node(n, M_COLS, p, S)
        seed_rx = seed_summ.max_recv_incl_transfers
        ref_rx = ref_summ.max_recv_incl_transfers
        ratio = ref_rx / bound if bound > 0 else float("nan")
        t.add_row(
            [p, part, format_int(seed_rx), format_int(ref_rx),
             f"{1 - ref_rx / seed_rx:.1%}", refined.moves,
             format_int(int(seed_summ.makespan)),
             format_int(int(ref_summ.makespan)),
             f"{ratio:.3f}"]
        )
        payload_rows.append({
            "p": p, "partitioner": part,
            "seed_recv_xfer": seed_rx, "refined_recv_xfer": ref_rx,
            "refined_over_bound": ratio, "moves": refined.moves,
            "evaluations": refined.evaluations, "reverted": refined.reverted,
            "seed_makespan": seed_summ.makespan,
            "refined_makespan": ref_summ.makespan,
            "refined_peak_ok": ref_rewrite.peak_ok,
        })
        best_oneshot[p] = min(best_oneshot.get(p, seed_rx), seed_rx)
        best_refined[p] = min(best_refined.get(p, ref_rx), ref_rx)

        # the refiner's measured objective IS the executor's bounding
        # quantity, and the consistency is exact
        assert ref_rx == refined.cost, (p, part, ref_rx, refined.cost)
        assert seed_rx == refined.seed_cost, (p, part)
        # hard postcondition: never worse than the seed
        assert ref_rx <= seed_rx, (p, part, ref_rx, seed_rx)
        # the refined assignment still covers every op exactly once...
        assert sorted(
            v for q in range(p)
            for v in [i for i, o in enumerate(refined.owner) if o == q]
        ) == list(range(len(graph)))
        # ...dresses into a validated explicit stream within node memory,
        # and carries the weighted makespan in every report row
        assert ref_rewrite.peak_ok
        assert ref_summ.makespan > 0 and seed_summ.makespan > 0
        assert ref_summ.critical_path_mults == seed_summ.critical_path_mults

    print()
    print(t.render())
    path = write_bench_json(payload_rows)
    print(f"\nBENCH JSON written to {path}")

    for p in PS:
        # acceptance: refined partitions never trail the best one-shot
        assert best_refined[p] <= best_oneshot[p], (
            p, best_refined[p], best_oneshot[p]
        )
    # the transfer-heaviest seed is where search pays: strict improvement
    lg = {(p): r for p, part, r, *_ in rows if part == "level-greedy"}
    for p in PS:
        assert lg[p].cost < lg[p].seed_cost, (p, lg[p].cost, lg[p].seed_cost)
        print(
            f"level-greedy at P={p}: max(recv+xfer) {lg[p].seed_cost:,} -> "
            f"{lg[p].cost:,} ({1 - lg[p].cost / lg[p].seed_cost:.1%} less), "
            f"{lg[p].moves} moves"
        )
