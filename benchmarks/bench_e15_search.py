"""E15 — extension: order-search engine vs one-shot heuristics vs Belady.

Not a paper experiment: ROADMAP's "smarter order search" item, measured.
The explicit-vs-Belady gap of a recorded schedule is a property of the
compute *order*; PR 1's worklist heuristics recover part of it with one
greedy pass.  E15 measures how much more a real search recovers: beam
search and lookahead greedy driven by the incremental LRU objective, and
simulated annealing over reduction-class interleavings, all on the TBS
SYRK trace (N=120, M=6, S=15) plus SYR2K and OOC_CHOL side cases.

Every searched order is dressed into an explicit, validated load/evict
stream by the same rewriter as the heuristic orders, so the reported Q is
the per-order optimum (furthest-next-use eviction), not the search's
internal LRU score.

Shape claims:

* every searched order is legal for its dependence setting, and the
  ``relax_reductions=False`` rows replay to bit-identical numerics;
* relaxing reductions enlarges the order space: the best relaxed order
  across strategies is no worse than the best bit-exact one;
* at least one search strategy lands strictly below the best one-shot
  heuristic (including the relaxed locality pass) at equal capacity —
  the headline claim, asserted at full and smoke sizes;
* on the side cases with real RAW/WAR/WAW structure (OOC_CHOL), search
  stays within a few percent of the best heuristic even when one greedy
  pass is already near-optimal.
"""

import pytest

from repro.analysis.lru_replay import lru_replay
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.graph.policies import belady_replay
from repro.graph.rewriter import reschedule, rewrite_schedule
from repro.graph.scheduler import HEURISTICS
from repro.graph.search import STRATEGIES, search_order
from repro.utils.fmt import Table, format_int

S = 15
M_COLS = 6


def run_case(kernel: str, n: int, mcols: int, *, iters: int, heuristics):
    """One kernel: heuristic baselines + all strategies, strict and relaxed."""
    case = record_case(kernel, n, mcols, S)
    graph = DependencyGraph.from_trace(case.trace)
    floor = belady_replay(case.trace, S).loads
    lru = lru_replay(case.trace, S).loads

    heur_q = {}
    for heuristic, relax in heuristics:
        rr = reschedule(case.trace, S, heuristic, graph=graph, relax_reductions=relax)
        heur_q[(heuristic, relax)] = rr.loads

    kwargs = {"anneal": {"iters": iters}}
    search_q = {}
    orders = {}
    for strategy in STRATEGIES:
        for relax in (False, True):
            found = search_order(
                graph, S, strategy, relax_reductions=relax,
                **kwargs.get(strategy, {}),
            )
            rw = rewrite_schedule(
                case.trace, S, found.order, graph=graph, relax_reductions=relax
            )
            search_q[(strategy, relax)] = rw.loads
            orders[(strategy, relax)] = (found, rw)
    return case, graph, floor, lru, heur_q, search_q, orders


@pytest.mark.benchmark(group="e15")
def test_e15_search(once, smoke):
    n = 60 if smoke else 120
    iters = 800 if smoke else 1500
    heuristics = [(h, False) for h in HEURISTICS] + [("locality", True)]
    case, graph, floor, lru, heur_q, search_q, orders = once(
        run_case, "tbs", n, M_COLS, iters=iters, heuristics=heuristics
    )

    t = Table(
        ["order / strategy", "relaxed", "Q (loads)", "Q/belady-floor", "Q/bound"],
        title=f"E15: order search, TBS N={n}, M={M_COLS}, S={S}",
    )

    def add(label, relaxed, q):
        t.add_row([label, relaxed, format_int(q), f"{q / floor:.3f}",
                   f"{q / case.lower_bound:.3f}"])

    add("explicit (recorded)", "-", case.explicit_loads)
    add("lru replay", "-", lru)
    add("belady floor", "-", floor)
    for (heuristic, relax), q in heur_q.items():
        add(f"heuristic:{heuristic}", str(relax), q)
    for (strategy, relax), q in search_q.items():
        add(f"search:{strategy}", str(relax), q)
    print()
    print(t.render())

    best_heur = min(heur_q.values())
    best_search = min(search_q.values())

    for (strategy, relax), (found, rw) in orders.items():
        # legality in the right dependence setting + validated rewrite
        assert graph.is_valid_order(found.order, relax_reductions=relax)
        assert rw.summary["peak_occupancy"] <= S
        # the searched orders must replay the recorded numerics exactly
        # when reductions are kept
        if not relax:
            assert case.check_exact(rw.schedule), (strategy, relax)

    # Relaxing reductions enlarges the order space; the searches are
    # heuristic, so per-strategy monotonicity is not a theorem — but the
    # best relaxed order across strategies beating the best strict one is
    # the robust form of the claim (wide margin at both sizes).
    best_relaxed = min(q for (_s, relax), q in search_q.items() if relax)
    best_strict = min(q for (_s, relax), q in search_q.items() if not relax)
    assert best_relaxed <= best_strict, (best_relaxed, best_strict)

    # The headline claim: searching the order space beats every one-shot
    # heuristic (strict AND relaxed-locality baselines) at equal capacity.
    assert best_search < best_heur, (best_search, best_heur)

    print(f"\nbest one-shot heuristic Q = {best_heur:,} "
          f"({best_heur / floor:.3f}x belady floor)")
    print(f"best searched order  Q = {best_search:,} "
          f"({best_search / floor:.3f}x belady floor)")
    print(f"gap to the recorded order's belady floor closed: "
          f"{(best_heur - best_search) / max(1, best_heur - floor):.1%} of what "
          f"the heuristics left on the table")


@pytest.mark.benchmark(group="e15")
def test_e15_search_side_cases(once, smoke):
    """SYR2K and OOC_CHOL: search on traces with richer dependence structure."""
    cases = [("syr2k", 24 if smoke else 36, 4), ("chol", 20 if smoke else 28, 0)]
    rows = []

    def run_all():
        out = []
        for kernel, n, mcols in cases:
            out.append(
                (kernel, n) + run_case(
                    kernel, n, mcols, iters=300,
                    heuristics=[(h, False) for h in HEURISTICS],
                )
            )
        return out

    results = once(run_all)
    t = Table(
        ["kernel", "N", "belady floor", "best heuristic", "best search", "ratio"],
        title=f"E15 side cases (S={S})",
    )
    for kernel, n, case, graph, floor, lru, heur_q, search_q, orders in results:
        best_heur = min(heur_q.values())
        best_search = min(search_q.values())
        for (strategy, relax), (found, rw) in orders.items():
            assert graph.is_valid_order(found.order, relax_reductions=relax)
            if not relax:
                assert case.check_exact(rw.schedule), (kernel, strategy)
        # search never loses more than a few percent to the best one-shot
        # pass, even on DAGs where greedy is already near-optimal
        assert best_search <= 1.05 * best_heur, (kernel, best_search, best_heur)
        t.add_row([kernel, n, format_int(floor), format_int(best_heur),
                   format_int(best_search), f"{best_search / best_heur:.3f}"])
        rows.append((kernel, best_search / best_heur))
    print()
    print(t.render())
