"""E17 — one-pass Belady sweeps + the process-parallel search fabric.

Two measurements, one per half of the PR 7 tentpole:

* **Sweep engines** (the speed claim): record a TBS SYRK schedule per N
  (``S = 8N``), then answer a capacity grid under Belady/MIN twice —
  per-capacity through the adaptive chunked simulation, and in **one
  pass** through the grouped OPT-stack sweep (``sweep_replay_trace`` /
  ``method="distance"``).  Two grids: E13's 9 factors up to 16x S
  (i.e. 128N), and a dense 25-point log-spaced grid over the same range
  — the resource-augmentation-curve use case, where the chunked engine
  pays a full pass per point while the one-pass cost is nearly flat in
  grid size.  Bit-identity of (loads, stores, evict/flush split) is
  asserted at every capacity; at N >= 512 the one-pass sweep must be
  measurably faster on the E13 grid and win big on the dense one (the
  one-pass run goes *first*, so the chunked engine inherits its cached
  next-use artifacts — the comparison is conservative).

* **Fan-out fabric** (the determinism claim): multi-chain annealing
  (E15's config) and multi-seed refinement (E16's) at ``jobs`` in
  {1, 2, 4}.  Results must be bit-identical across job counts and the
  portfolio never worse than the classic single run; wall-clocks are
  *recorded, not asserted* — the CI container may expose a single core,
  where process fan-out is pure overhead.

Rows land in a provenance-stamped BENCH JSON
(``benchmarks/out/bench_e17_speed.json`` or ``$BENCH_E17_JSON``).
Run with ``--smoke`` to shrink sizes for CI (speedup assertions are
skipped; bit-identity and never-worse are still asserted).
"""

import time

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.core.tbs import tbs_syrk
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.graph.search import anneal_search
from repro.parallel.executor import partition_graph
from repro.parallel.refine import refine_partitions
from repro.sched.schedule import record_schedule
from repro.trace.compiled import compile_trace
from repro.trace.replay import belady_replay_trace, sweep_replay_trace
from repro.utils.fmt import Table, format_int

M_COLS = 6
CAP_FACTORS = (1, 1.5, 2, 3, 4, 6, 8, 12, 16)  # E13's grid: up to 128N
DENSE_FACTORS = tuple(np.geomspace(1, 16, 25))  # Q(S) curve resolution
SWEEP_SPEEDUP_FLOOR = 1.2   # E13 grid, asserted at N >= ASSERT_N, full mode
DENSE_SPEEDUP_FLOOR = 1.5   # dense grid, same gate
ASSERT_N = 512
JOBS_GRID = (1, 2, 4)


def record_trace(n: int, s: int):
    m = TwoLevelMachine(s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, M_COLS)))
    m.add_matrix("C", np.zeros((n, n)))
    sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(n), range(M_COLS)))
    return compile_trace(sched)


def sweep_one(n: int, factors=CAP_FACTORS, grid="e13"):
    s = 8 * n
    trace = record_trace(n, s)
    caps = sorted({max(4, int(s * f)) for f in factors})

    # one-pass first: it pays for the shared next-use artifacts, the
    # chunked engine then reuses them from the trace cache.
    t0 = time.perf_counter()
    one = sweep_replay_trace(trace, caps, policy="belady", method="distance")
    t_one = time.perf_counter() - t0

    t0 = time.perf_counter()
    chunked = [belady_replay_trace(trace, c, method="simulate") for c in caps]
    t_chunked = time.perf_counter() - t0

    for c, a, b in zip(caps, one, chunked):
        assert (a.loads, a.stores, a.evict_stores) == (
            b.loads, b.stores, b.evict_stores), (n, c)

    return {
        "n": n,
        "m": M_COLS,
        "s": s,
        "grid": grid,
        "capacities": caps,
        "n_accesses": trace.n_accesses,
        "n_elements": trace.n_elements,
        "one_pass_sec": t_one,
        "chunked_sec": t_chunked,
        "one_pass_speedup": t_chunked / t_one if t_one else float("inf"),
    }


def fanout_one(n: int, iters: int):
    case = record_case("tbs", n, 4, 15)
    graph = DependencyGraph.from_trace(case.trace)
    owners = [
        list(partition_graph(graph, 4, part))
        for part in ("level-greedy", "locality", "owner-computes")
    ]

    anneal_secs, refine_secs = {}, {}
    anneal_results, refine_results = {}, {}
    for jobs in JOBS_GRID:
        t0 = time.perf_counter()
        found = anneal_search(graph, 15, iters=iters, seed=3, chains=4, jobs=jobs)
        anneal_secs[jobs] = time.perf_counter() - t0
        anneal_results[jobs] = (found.cost, tuple(found.order))

        t0 = time.perf_counter()
        refined = refine_partitions(
            graph, owners, 4, 15, jobs=jobs, seed=5,
            strategy="anneal", iters=iters, eval_policy="belady",
        )
        refine_secs[jobs] = time.perf_counter() - t0
        refine_results[jobs] = [(r.cost, tuple(r.owner)) for r in refined]

    # bit-identical across the jobs grid
    assert len(set(anneal_results.values())) == 1, anneal_results
    assert all(refine_results[j] == refine_results[1] for j in JOBS_GRID)
    # portfolio never worse than the classic single-chain run
    single = anneal_search(graph, 15, iters=iters, seed=3)
    assert anneal_results[1][0] <= single.cost
    # each refinement never worse than its seed assignment
    assert all(r.cost <= r.seed_cost for r in refined)

    return {
        "n": n,
        "s": 15,
        "iters": iters,
        "chains": 4,
        "refine_seeds": len(owners),
        "anneal_sec_by_jobs": {str(j): anneal_secs[j] for j in JOBS_GRID},
        "refine_sec_by_jobs": {str(j): refine_secs[j] for j in JOBS_GRID},
        "anneal_cost": anneal_results[1][0],
        "anneal_cost_single_chain": single.cost,
        "refine_costs": [c for c, _ in refine_results[1]],
    }


def write_bench_json(rows):
    from common import write_bench_json as write_common

    return write_common(
        "e17_parallel_speed", rows,
        env_var="BENCH_E17_JSON", default_name="bench_e17_speed.json",
    )


@pytest.mark.benchmark(group="e17")
def test_e17_one_pass_and_fanout(once, smoke):
    sweep_ns = [64, 96] if smoke else [256, 512]
    fan_n, fan_iters = (20, 60) if smoke else (40, 400)

    def run():
        sweeps = [sweep_one(n) for n in sweep_ns]
        sweeps.append(sweep_one(sweep_ns[-1], DENSE_FACTORS, grid="dense"))
        return {
            "sweep": sweeps,
            "fanout": [fanout_one(fan_n, fan_iters)],
        }

    rows = once(run)

    t = Table(
        ["N", "S", "grid", "accesses", "caps", "chunked s", "one-pass s", "speedup"],
        title=(
            f"E17 Belady sweep engines, TBS SYRK m={M_COLS}, S=8N, "
            f"grid up to 128N (bit-identical loads/stores/evict split)"
        ),
    )
    for row in rows["sweep"]:
        t.add_row(
            [row["n"], row["s"], row["grid"], format_int(row["n_accesses"]),
             len(row["capacities"]), f"{row['chunked_sec']:.3f}",
             f"{row['one_pass_sec']:.3f}", f"{row['one_pass_speedup']:.1f}x"]
        )
    print()
    print(t.render())

    f = Table(
        ["n", "iters", "engine", *(f"jobs={j} s" for j in JOBS_GRID)],
        title="E17 fan-out wall-clock (recorded; results bit-identical per row)",
    )
    for row in rows["fanout"]:
        for engine, key in (("anneal x4 chains", "anneal_sec_by_jobs"),
                            ("refine x3 seeds", "refine_sec_by_jobs")):
            f.add_row(
                [row["n"], row["iters"], engine,
                 *(f"{row[key][str(j)]:.2f}" for j in JOBS_GRID)]
            )
    print(f.render())
    path = write_bench_json(rows)
    print(f"\nBENCH JSON written to {path}")

    for row in rows["sweep"]:
        assert row["one_pass_speedup"] > 1.0, row["n"]
    if not smoke:
        big = [row for row in rows["sweep"] if row["n"] >= ASSERT_N]
        assert big, "sweep must include the acceptance size"
        for row in big:
            floor = (
                DENSE_SPEEDUP_FLOOR if row["grid"] == "dense"
                else SWEEP_SPEEDUP_FLOOR
            )
            assert row["one_pass_speedup"] >= floor, row
