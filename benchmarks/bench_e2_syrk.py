"""E2 — the headline SYRK result (Corollary 4.7 + Theorem 5.6).

Measures Q(TBS) and Q(OOC_SYRK) on the simulated machine across N at
S = 15, checks measured == exact model on every shape, then extends the
convergence table with the (machine-verified) models up to S = 5050, where
the A-traffic ratio hits sqrt(2) and the TBS leading constant hits
1/sqrt(2) to within ~2%.

Shape claims asserted: LB <= Q(TBS) <= Q(OCS) everywhere; the ratio
increases monotonically toward (k-1)/s; constants converge to the paper's.
"""

import math

import pytest

from repro.analysis.model import ooc_syrk_model, tbs_model
from repro.analysis.sweep import run_syrk_once
from repro.config import square_tile_side_for_memory, triangle_side_for_memory
from repro.core.bounds import syrk_lower_bound
from repro.utils.fmt import Table, format_int

S_MEASURED = 15
M_COLS = 16
NS_MEASURED = [60, 120, 240, 480]
MODEL_SWEEP = [(15, 20_000), (66, 20_000), (190, 40_000), (465, 60_000), (1275, 100_000), (5050, 200_000)]


def run_measured():
    rows = []
    for n in NS_MEASURED:
        tbs = run_syrk_once("tbs", n, M_COLS, S_MEASURED)
        ocs = run_syrk_once("ocs", n, M_COLS, S_MEASURED)
        rows.append((n, tbs, ocs))
    return rows


@pytest.mark.benchmark(group="e2")
def test_e2_syrk_volumes(once):
    rows = once(run_measured)

    t = Table(
        ["N", "lower bnd", "Q TBS", "Q OCS", "A-ratio OCS/TBS", "TBS==model", "OCS==model"],
        title=f"E2 measured: SYRK at S={S_MEASURED} (k=5, s=3), M={M_COLS}",
    )
    prev_ratio = 0.0
    for n, tbs, ocs in rows:
        lb = syrk_lower_bound(n, M_COLS, S_MEASURED, form="exact")
        ratio = ocs.a_loads / tbs.a_loads
        t.add_row(
            [n, f"{lb:,.0f}", format_int(tbs.loads), format_int(ocs.loads),
             f"{ratio:.3f}", str(tbs.loads == tbs.model_loads), str(ocs.loads == ocs.model_loads)]
        )
        # shape claims
        assert lb <= tbs.loads <= ocs.loads
        assert tbs.loads == tbs.model_loads and ocs.loads == ocs.model_loads
        assert ratio > prev_ratio - 1e-9
        prev_ratio = ratio
    print()
    print(t.render())
    assert prev_ratio > 1.25  # approaching (k-1)/s = 4/3 at S=15

    # ---- model-extended convergence to the paper's constants ----------
    t2 = Table(
        ["S", "k", "s", "c_A(TBS)", "c_A(OCS)", "ratio", "(k-1)/s", "paper: 0.7071 / 1.0 / 1.4142"],
        title="E2 extended (exact models, machine-verified at small N)",
    )
    mcols = 4
    last = None
    for s, n in MODEL_SWEEP:
        k = triangle_side_for_memory(s)
        st = square_tile_side_for_memory(s)
        c_pass = n * (n + 1) // 2
        tbs_c = (tbs_model(n, mcols, s).loads - c_pass) * math.sqrt(s) / (n * n * mcols)
        ocs_c = (ooc_syrk_model(n, mcols, s).loads - c_pass) * math.sqrt(s) / (n * n * mcols)
        ratio = ocs_c / tbs_c
        t2.add_row([s, k, st, f"{tbs_c:.4f}", f"{ocs_c:.4f}", f"{ratio:.4f}", f"{(k - 1) / st:.4f}", ""])
        last = (tbs_c, ocs_c, ratio)
    print()
    print(t2.render())

    tbs_c, ocs_c, ratio = last
    assert tbs_c == pytest.approx(1 / math.sqrt(2), rel=0.03)
    assert ocs_c == pytest.approx(1.0, rel=0.03)
    assert ratio == pytest.approx(math.sqrt(2), rel=0.02)
