"""E1 — Theorem 4.1: the maximal subcomputation chain (Lemmas 4.3-4.6).

Regenerates, for a sweep of data budgets X: the exact integer optimum of
P'(X) (enumeration), the closed-form continuous optimum H''(X) (KKT,
Lemma 4.6), an independent SLSQP maximization, and the Theorem 4.1 cap
``sqrt(2)/(3 sqrt 3) X^{3/2}``.  Asserts the chain ordering at every X and
that the integer optimum approaches the cap (the bound is tight).

Also reports the rounding-slack finding on Lemma 4.3 (integer sigma).
"""

import pytest

from repro.analysis.optimum import verify_theorem41_chain
from repro.core.balanced import rebalancing_slack
from repro.utils.fmt import Table

XS = [3, 10, 30, 100, 300, 1000, 3000, 10000, 30000]


def run_e1():
    return [verify_theorem41_chain(x) for x in XS]


@pytest.mark.benchmark(group="e1")
def test_e1_theorem41_chain(once):
    checks = run_e1()  # warm (validates), then timed below
    checks = once(run_e1)

    t = Table(
        ["X", "P'(X) integer", "H''(X) closed", "SLSQP", "Thm4.1 bound", "tightness"],
        title="E1: largest subcomputation vs data budget X",
    )
    for c in checks:
        t.add_row(
            [c.x, c.enumerated, f"{c.continuous:.1f}", f"{c.numeric:.1f}",
             f"{c.bound:.1f}", f"{c.tightness:.4f}"]
        )
    print()
    print(t.render())

    # chain ordering everywhere (verify_theorem41_chain raises otherwise)
    # and tightness increases toward 1.
    tightness = [c.tightness for c in checks]
    assert all(b >= a - 0.02 for a, b in zip(tightness, tightness[1:]))
    assert tightness[-1] > 0.97

    # Lemma 4.3 integer-sigma rounding slack exists but is tiny (E1 finding).
    t4 = [(1, 0), (2, 0), (2, 1), (3, 0)]
    t3 = [(1, 0), (2, 0), (2, 1)]
    b = {(i, j, 0) for i, j in t4} | {(i, j, 1) for i, j in t3} | {(i, j, 2) for i, j in t3}
    slack = rebalancing_slack(b)
    print(f"\nLemma 4.3 integer-sigma counterexample slack (sizes 4,3,3): {slack}")
    assert slack == 1
