"""E18 — extension: joint order x partition co-search vs decoupled pipelines.

Not a paper experiment: ROADMAP's "joint co-search" next step, measured.
E15 searches the op *order* against a sequential LRU objective; E16
refines the op *ownership* against ``max(recv + transfer_in)``; each
holds the other coordinate fixed.  E18 measures what optimizing the
``(order, owner)`` *pair* under one latency objective buys: on the E16
config, three schedules per P are scored with the measured unified
objective ``J = makespan + beta * max_q(lru_loads_q + transfer_in_q)``
(:func:`repro.parallel.cosearch.cosearch_cost`, real per-shard replays):

* **refine-only** — recorded order, best refined partition (the E16
  pipeline);
* **search-then-refine** — annealed order (E15) dressed over the best
  refined partition (the two silos chained);
* **joint co-search** — :func:`repro.parallel.cosearch.cosearch`, seeded
  with its default portfolio *plus both baselines above*, so the
  never-worse postcondition makes "joint <= best decoupled pipeline" a
  measured guarantee, not a hope.

Shape claims:

* joint co-search's measured J is <= both decoupled baselines at every P
  (the ISSUE acceptance: never worse than order-search-then-refine);
* the returned pair re-measures to exactly the reported cost (ledger
  drift is a hard failure), covers every op exactly once, and its order
  is a legal relaxed topological order;
* every row carries the per-node receive floor
  (:func:`~repro.core.bounds.parallel_syrk_lower_bound_per_node`) for
  the bound column.

BENCH JSON (``benchmarks/out/bench_e18_cosearch.json`` or
``$BENCH_E18_JSON``) records J, makespan, bottleneck I/O and the
joint/baseline ratios per row.
"""

import pytest

from repro.core.bounds import parallel_syrk_lower_bound_per_node
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.graph.search import search_order
from repro.parallel import (
    PARTITIONERS,
    cosearch,
    cosearch_cost,
    partition_graph,
    refine_partition,
)
from repro.utils.fmt import Table, format_int

M_COLS, S = 6, 15
PS = [4, 16]


def run_sweep(n: int, iters: int, search_iters: int, max_moves: int):
    case = record_case("tbs", n, M_COLS, S)
    graph = DependencyGraph.from_trace(case.trace)
    identity = list(range(len(graph)))
    searched = search_order(
        graph, S, "anneal", iters=search_iters, seed=0, relax_reductions=True
    ).order

    rows = []
    for p in PS:
        # best refined partition across one-shot seeds (the E16 pipeline)
        refined_owner, refined_cost = None, None
        for part in PARTITIONERS:
            seed = partition_graph(graph, p, part)
            ref = refine_partition(
                graph, seed, p, S, strategy="greedy", max_moves=max_moves
            )
            c = cosearch_cost(
                graph, ref.owner, p, S, relax_reductions=True
            ).cost
            if refined_cost is None or c < refined_cost:
                refined_owner, refined_cost = list(ref.owner), c

        refine_only = cosearch_cost(
            graph, refined_owner, p, S, relax_reductions=True
        )
        search_refine = cosearch_cost(
            graph, refined_owner, p, S, order=searched, relax_reductions=True
        )
        joint = cosearch(
            graph, p, S, iters=iters, seed=0,
            seeds=(
                cosearch_portfolio_with_baselines(
                    graph, p, identity, searched, refined_owner, search_iters
                )
            ),
        )
        rows.append((p, refine_only, search_refine, joint))
    return case, graph, rows


def cosearch_portfolio_with_baselines(
    graph, p, identity, searched, refined_owner, search_iters
):
    from repro.parallel import cosearch_portfolio

    seeds = cosearch_portfolio(
        graph, p, S,
        search_kwargs={"anneal": {"iters": search_iters, "seed": 0}},
    )
    seeds.append(("refine-only", list(identity), list(refined_owner)))
    seeds.append(("search+refine", list(searched), list(refined_owner)))
    return seeds


def write_bench_json(payload_rows):
    from common import write_bench_json as write_common

    return write_common(
        "e18_joint_cosearch", payload_rows,
        env_var="BENCH_E18_JSON", default_name="bench_e18_cosearch.json",
    )


@pytest.mark.benchmark(group="e18")
def test_e18_cosearch(once, smoke):
    n = 60 if smoke else 120
    iters = 150 if smoke else 600
    search_iters = 60 if smoke else 200
    max_moves = 96 if smoke else 256
    case, graph, rows = once(run_sweep, n, iters, search_iters, max_moves)

    t = Table(
        ["P", "schedule", "makespan", "max io", "J", "vs refine-only",
         "J/bound"],
        title=(
            f"E18: joint order x partition co-search, TBS N={n}, "
            f"M={M_COLS}, node memory S={S} (measured unified objective)"
        ),
    )
    payload_rows = []
    for p, refine_only, search_refine, joint in rows:
        bound = parallel_syrk_lower_bound_per_node(n, M_COLS, p, S)
        for label, c in (
            ("refine-only", refine_only),
            ("search-then-refine", search_refine),
        ):
            t.add_row(
                [p, label, format_int(int(c.makespan)),
                 format_int(c.bottleneck_io), format_int(int(c.cost)),
                 f"{1 - c.cost / refine_only.cost:.1%}",
                 f"{c.cost / bound:.2f}" if bound > 0 else "-"]
            )
        jc = joint.measured
        t.add_row(
            [p, "joint co-search" + (" (reverted)" if joint.reverted else ""),
             format_int(int(jc.makespan)), format_int(jc.bottleneck_io),
             format_int(int(jc.cost)),
             f"{1 - jc.cost / refine_only.cost:.1%}",
             f"{jc.cost / bound:.2f}" if bound > 0 else "-"]
        )
        payload_rows.append({
            "p": p,
            "refine_only_cost": refine_only.cost,
            "search_refine_cost": search_refine.cost,
            "joint_cost": jc.cost,
            "joint_makespan": jc.makespan,
            "joint_bottleneck_io": jc.bottleneck_io,
            "joint_over_refine_only": jc.cost / refine_only.cost,
            "joint_over_search_refine": jc.cost / search_refine.cost,
            "joint_over_bound": jc.cost / bound if bound > 0 else None,
            "seed_label": joint.seed_label,
            "reverted": joint.reverted,
            "evaluations": joint.evaluations,
        })

        # acceptance: joint <= both decoupled pipelines, at every P —
        # enforced in code by cosearch()'s never-worse postcondition over
        # a portfolio containing both baselines, re-asserted here on the
        # independently measured objective.
        assert jc.cost <= refine_only.cost, (p, jc.cost, refine_only.cost)
        assert jc.cost <= search_refine.cost, (p, jc.cost, search_refine.cost)
        # the returned pair re-measures to exactly the reported cost
        remeasured = cosearch_cost(
            graph, joint.owner, p, S, order=joint.order,
            relax_reductions=True,
        )
        assert remeasured.cost == joint.cost, (p, remeasured.cost, joint.cost)
        # legal exact cover + legal relaxed order
        assert sorted(joint.order) == list(range(len(graph)))
        assert all(0 <= q < p for q in joint.owner)
        assert graph.is_valid_order(joint.order, relax_reductions=True)

    print()
    print(t.render())
    path = write_bench_json(payload_rows)
    print(f"\nBENCH JSON written to {path}")

    for p, refine_only, _sr, joint in rows:
        print(
            f"P={p}: J {int(refine_only.cost):,} (refine-only) -> "
            f"{int(joint.cost):,} (joint, seed {joint.seed_label!r}"
            f"{', reverted' if joint.reverted else ''})"
        )
