"""E13 — compiled trace IR: replay throughput, old element loops vs arrays.

Records a TBS SYRK schedule per N (capacity scaled with the problem,
``S = 8N``, the regime the paper's blocking targets), compiles it once to
the trace IR, and replays the op order under LRU and Belady/MIN at a
capacity sweep — once through the seed element-loop paths
(``access_sequence`` tuples + OrderedDict / tuple-heap walkers, re-run per
capacity exactly as the seed shipped them) and once through the array
engines (:mod:`repro.trace.replay`: cached reuse-distance counts for LRU,
the adaptive chunked simulation for Belady).

Claims asserted:

* both engines return bit-identical (loads, stores) at every (N, capacity);
* at N >= 512 the vectorized sweep throughput (element touches / second,
  LRU + Belady combined, including the one-time per-trace artifacts) is
  >= 10x the seed paths' — the ISSUE 2 acceptance bar;
* LRU alone clears 10x as well: after the capacity-independent
  reuse-distance pass, every additional capacity is a few O(n) array ops.

Results (sizes, counts, times, throughputs, speedups) are appended to a
BENCH JSON (``benchmarks/out/bench_e13_trace.json`` or ``$BENCH_E13_JSON``)
so ROADMAP numbers and regressions are greppable across runs.

Run with ``--smoke`` to shrink the sweep for CI (claims about absolute
speedups are skipped; bit-identity is still asserted).
"""

import time

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.lru_replay import lru_replay_reference
from repro.core.tbs import tbs_syrk
from repro.graph.policies import belady_replay_reference
from repro.sched.schedule import record_schedule
from repro.trace.compiled import compile_trace
from repro.trace.replay import belady_replay_trace, lru_replay_trace
from repro.utils.fmt import Table, format_int

M_COLS = 6
CAP_FACTORS = (1, 1.5, 2, 3, 4, 6, 8, 12, 16)
SPEEDUP_FLOOR = 10.0  # asserted at N >= ASSERT_N, full mode only
ASSERT_N = 512


def record_trace(n: int, s: int):
    m = TwoLevelMachine(s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, M_COLS)))
    m.add_matrix("C", np.zeros((n, n)))
    sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(n), range(M_COLS)))
    return sched


def sweep_one(n: int):
    s = 8 * n
    sched = record_trace(n, s)
    caps = [max(4, int(s * f)) for f in CAP_FACTORS]

    t0 = time.perf_counter()
    trace = compile_trace(sched)
    t_compile = time.perf_counter() - t0

    t0 = time.perf_counter()
    seed = [
        (lru_replay_reference(sched, c), belady_replay_reference(sched, c))
        for c in caps
    ]
    t_seed = time.perf_counter() - t0

    t_lru = t_belady = 0.0
    fast = []
    for c in caps:
        t0 = time.perf_counter()
        lru = lru_replay_trace(trace, c)
        t_lru += time.perf_counter() - t0
        t0 = time.perf_counter()
        opt = belady_replay_trace(trace, c)
        t_belady += time.perf_counter() - t0
        fast.append((lru, opt))

    for c, (slru, sopt), (flru, fopt) in zip(caps, seed, fast):
        assert (flru.loads, flru.stores) == (slru.loads, slru.stores), ("lru", n, c)
        assert (fopt.loads, fopt.stores) == (sopt.loads, sopt.stores), ("belady", n, c)
        assert fopt.loads <= flru.loads

    elements = trace.n_accesses * len(caps) * 2  # both policies over the sweep
    t_fast = t_lru + t_belady
    return {
        "n": n,
        "m": M_COLS,
        "s": s,
        "capacities": caps,
        "n_accesses": trace.n_accesses,
        "n_elements": trace.n_elements,
        "n_ops": trace.n_ops,
        "compile_sec": t_compile,
        "seed_sweep_sec": t_seed,
        "fast_sweep_sec": t_fast,
        "fast_lru_sec": t_lru,
        "fast_belady_sec": t_belady,
        "seed_throughput_eps": elements / t_seed,
        "fast_throughput_eps": elements / t_fast,
        "sweep_speedup": t_seed / t_fast,
        "lru_sweep_speedup": (t_seed / 2) / t_lru if t_lru else float("inf"),
    }


def write_bench_json(rows):
    from common import write_bench_json as write_common

    return write_common(
        "e13_trace_replay_throughput", rows,
        env_var="BENCH_E13_JSON", default_name="bench_e13_trace.json",
    )


@pytest.mark.benchmark(group="e13")
def test_e13_trace_replay_throughput(once, smoke):
    ns = [48, 96] if smoke else [128, 256, 512]
    rows = once(lambda: [sweep_one(n) for n in ns])

    t = Table(
        ["N", "S", "accesses", "caps", "seed el/s", "vector el/s", "sweep x", "LRU x"],
        title=(
            f"E13 replay throughput, TBS SYRK m={M_COLS}, S=8N, "
            f"{len(CAP_FACTORS)}-capacity sweep (LRU + Belady, bit-identical counts)"
        ),
    )
    for row in rows:
        t.add_row(
            [row["n"], row["s"], format_int(row["n_accesses"]), len(row["capacities"]),
             format_int(int(row["seed_throughput_eps"])),
             format_int(int(row["fast_throughput_eps"])),
             f"{row['sweep_speedup']:.1f}", f"{row['lru_sweep_speedup']:.1f}"]
        )
    print()
    print(t.render())
    path = write_bench_json(rows)
    print(f"\nBENCH JSON written to {path}")

    # Throughput grows with N for the array engines (amortized numpy work),
    # and the big sizes clear the 10x acceptance bar.
    for row in rows:
        assert row["sweep_speedup"] > 1.0, row["n"]
    if not smoke:
        big = [row for row in rows if row["n"] >= ASSERT_N]
        assert big, "sweep must include the acceptance size"
        for row in big:
            assert row["sweep_speedup"] >= SPEEDUP_FLOOR, row
            assert row["lru_sweep_speedup"] >= SPEEDUP_FLOOR, row
