"""E14 — extension: sharded task-DAG executor vs per-node lower bounds.

Not a paper experiment: ROADMAP's parallel task-DAG item, measured.  A
recorded TBS schedule's dependency DAG is partitioned across P simulated
nodes (level-greedy antichain dealing, greedy locality, owner-computes) and
each shard is replayed on its own two-level engine at node memory S; every
load is a receive under the §2.2 equivalence, and the DAG's cut edges make
the node-to-node slice of the traffic explicit.

Shape claims:

* for P = 1 every policy degenerates to the single-node engines bit for bit
  (rewrite == the order's explicit optimum, LRU == the array LRU replay);
* per-node peak occupancy never exceeds S, at every P and partitioner;
* owner-computes never splits a reduction class: zero cut transfers, and
  the smallest max-recv of the three partitioners on the SYRK DAG;
* the maximum per-node receive volume stays within a small constant of
  ``parallel_syrk_lower_bound_per_node`` (the printed ratio), and the
  fixed-strategy simulator is reproduced bit for bit by the explicit
  sharding mode.
"""

import math

import pytest

from repro.core.bounds import parallel_syrk_lower_bound_per_node
from repro.kernels.opsets import syrk_opset_size
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.graph.rewriter import rewrite_schedule
from repro.parallel import (
    PARTITIONERS,
    execute_graph,
    record_block_schedule,
    simulate_syrk,
    triangle_block_assignment,
)
from repro.trace.replay import lru_replay_trace
from repro.utils.fmt import Table, format_int

M_COLS, S = 6, 15
PS = [1, 4, 16]


def run_sweep(n: int):
    case = record_case("tbs", n, M_COLS, S)
    graph = DependencyGraph.from_trace(case.trace)
    rows = []
    for p in PS:
        for part in PARTITIONERS:
            summ = execute_graph(case.schedule, p, S, partitioner=part,
                                 policy="rewrite", graph=graph)
            rows.append(summ)
    return case, graph, rows


@pytest.mark.benchmark(group="e14")
def test_e14_executor(once, smoke):
    n = 60 if smoke else 120
    case, graph, rows = once(run_sweep, n)

    t = Table(
        ["P", "partitioner", "max recv", "mean recv", "xfer", "imbalance",
         "peak<=S", "recv/bound"],
        title=f"E14: sharded DAG executor, TBS N={n}, M={M_COLS}, node memory S={S}",
    )
    by_key = {}
    for summ in rows:
        bound = parallel_syrk_lower_bound_per_node(n, M_COLS, summ.p, S)
        # The hard floor uses the exact opset |S| = N(N-1)/2*M (the bounds
        # module's convention: measured volumes must exceed the *exact*
        # form; the asymptotic form is only what converges to the paper's
        # constants and may sit slightly above it).
        exact_floor = syrk_opset_size(n, M_COLS) / (summ.p * math.sqrt(S / 2.0)) - S
        ratio = summ.max_recv / bound if bound > 0 else float("nan")
        by_key[(summ.p, summ.partitioner)] = (summ, ratio)
        t.add_row(
            [summ.p, summ.partitioner, format_int(summ.max_recv),
             format_int(int(summ.mean_recv)), format_int(summ.total_transfer),
             f"{summ.compute_imbalance:.3f}", str(summ.peak_ok),
             f"{ratio:.3f}" if bound > 0 else "-"]
        )
        # node memory respected everywhere, work conserved
        assert summ.peak_ok
        assert sum(r.n_ops for r in summ.shards) == len(graph)
        # a valid per-node floor: measured max recv can never undercut it
        if exact_floor > 0:
            assert summ.max_recv >= exact_floor
        # owner-computes keeps every reduction class whole
        if summ.partitioner == "owner-computes":
            assert summ.total_transfer == 0 and summ.cut_edge_count == 0
    print()
    print(t.render())

    # P=1: bit-identical to the single-node engines.
    base = rewrite_schedule(case.trace, S)
    for part in PARTITIONERS:
        summ, _ = by_key[(1, part)]
        assert (summ.shards[0].recv, summ.shards[0].send) == (base.loads, base.stores)
    lru1 = execute_graph(case.schedule, 1, S, policy="lru")
    ref = lru_replay_trace(case.trace, S)
    assert (lru1.shards[0].recv, lru1.shards[0].send) == (ref.loads, ref.stores)

    # owner-computes wins on the bounding quantity at the largest P.
    oc, oc_ratio = by_key[(PS[-1], "owner-computes")]
    lg, _ = by_key[(PS[-1], "level-greedy")]
    assert oc.max_recv <= lg.max_recv
    assert oc_ratio < 8.0  # within a small constant of the per-node bound

    # Fixed-strategy cross-check: sharding the recorded block schedule by
    # ownership reproduces parallel/simulate.py bit for bit.
    asg = triangle_block_assignment(n, 4, S)
    sched, owner = record_block_schedule(asg, M_COLS)
    fixed = simulate_syrk(asg, M_COLS)
    summ = execute_graph(sched, 4, S, owner=owner, policy="explicit")
    for sr, nr in zip(summ.shards, fixed.nodes):
        assert sr.recv == nr.total_recv
        assert sr.send == nr.c_send
        assert sr.peak_memory == nr.peak_memory
    print(f"\nexplicit sharding == simulate_syrk on {fixed.p} nodes: bit-identical")
    print(f"owner-computes at P={PS[-1]}: max recv / per-node bound = {oc_ratio:.3f}")
