"""E11 — extension: distributed SYRK per-node communication (§2.2 direction).

Not a paper experiment: the conclusion conjectures that the triangle-block
insight yields communication-efficient *parallel* symmetric kernels.  We
distribute the result matrix over P nodes two ways — classical square tiles
vs the paper's triangle blocks — and simulate each node's share on its own
two-level machine (other nodes = slow memory, the §2.2 equivalence).

Shape claims: the triangle-block distribution reduces the maximum per-node
receive volume by the same ``(k-1)/s`` factor as the sequential result
(-> sqrt(2) for large S), at equal node memory and comparable compute
balance; received C-elements total exactly one pass over the triangle.
"""

import pytest

from repro.parallel import simulate_syrk, square_tile_assignment, triangle_block_assignment
from repro.utils.fmt import Table, format_int

N, M_COLS, S = 240, 8, 15
PS = [1, 2, 4, 8, 16]


def run_sweep():
    out = []
    for p in PS:
        sq = simulate_syrk(square_tile_assignment(N, p, S), M_COLS)
        tb = simulate_syrk(triangle_block_assignment(N, p, S), M_COLS)
        out.append((p, sq, tb))
    return out


@pytest.mark.benchmark(group="e11")
def test_e11_parallel_syrk(once):
    sweep = once(run_sweep)

    t = Table(
        ["P", "max recv (square)", "max recv (triangle)", "ratio", "A-ratio",
         "imbalance sq/tb", "peak mem ok"],
        title=f"E11: distributed SYRK, N={N}, M={M_COLS}, node memory S={S}",
    )
    for p, sq, tb in sweep:
        mem_ok = all(r.peak_memory <= S for r in sq.nodes + tb.nodes)
        t.add_row(
            [p, format_int(sq.max_recv), format_int(tb.max_recv),
             f"{sq.max_recv / tb.max_recv:.3f}", f"{sq.max_a_recv / tb.max_a_recv:.3f}",
             f"{sq.compute_imbalance:.3f}/{tb.compute_imbalance:.3f}", str(mem_ok)]
        )
        assert mem_ok
        # triangle blocks win on the bounding quantity at every P
        assert tb.max_recv < sq.max_recv
        assert tb.max_a_recv < sq.max_a_recv
        # balance stays tight for both
        assert sq.compute_imbalance < 1.2 and tb.compute_imbalance < 1.2
        # every C element received exactly once across the fleet, and the
        # send side mirrors it per node (writeback evictions surfaced)
        assert sum(r.c_recv for r in sq.nodes) == N * (N + 1) // 2
        assert sum(r.c_recv for r in tb.nodes) == N * (N + 1) // 2
        assert all(r.c_send == r.c_recv for r in sq.nodes + tb.nodes)
        assert sq.total_c_send == tb.total_c_send == N * (N + 1) // 2
    print()
    print(t.render())

    # the advantage tracks the sequential (k-1)/s story (4/3 at S=15)
    p, sq, tb = sweep[-1]
    ratio = sq.max_a_recv / tb.max_a_recv
    print(f"\nat P={p}: per-node max A-receive ratio = {ratio:.3f} "
          f"(sequential finite-S target (k-1)/s = {4 / 3:.3f})")
    assert 1.2 < ratio < 1.45
