"""E5 — Figures 1/2 and Lemmas 5.3/5.5: partition structure and the gap g.

Regenerates the structural figures from live partition objects, verifies
block disjointness + exact zone coverage exhaustively for a grid of (n, k),
and measures the coprime gap ``g = floor(N/k) - c`` against the worst-case
bound ``q`` and the sieve count (exactly ``prod (p-1)`` coprime residues per
primorial-length interval) — the paper's "in practice g is much lower
than q" remark, quantified.
"""

import math

import pytest

from repro.core.partition import plan_partition, recursion_profile
from repro.utils.fmt import Table, format_int
from repro.utils.primes import (
    coprime_count_in_primorial_interval,
    coprime_gap_statistics,
    primorial_up_to,
)
from repro.viz.figures import render_tbs_layout, render_zones_and_blocks


def run_coverage_grid():
    results = []
    for n, k in [(27, 5), (40, 4), (66, 6), (85, 5), (98, 7), (120, 4)]:
        part = plan_partition(n, k)
        if part is None:
            results.append((n, k, None, None, None))
            continue
        results.append((n, k, part.c, part.validate_blocks_disjoint(), part.validate_exact_cover()))
    return results


@pytest.mark.benchmark(group="e5")
def test_e5_partition_structure(once):
    results = once(run_coverage_grid)

    t = Table(
        ["n", "k", "c", "blocks disjoint", "exact cover"],
        title="E5: exhaustive partition validation (Lemma 5.3 + counting)",
    )
    for n, k, c, disjoint, cover in results:
        if c is None:
            t.add_row([n, k, "-", "fallback", "fallback"])
            continue
        t.add_row([n, k, c, str(disjoint), str(cover)])
        assert disjoint and cover
    print()
    print(t.render())

    # ---- the gap g = N/k - c vs worst case q and sieve prediction ------
    t2 = Table(
        ["k", "q = primorial(k-2)", "phi-count per interval", "max gap (bounds 50..2000)", "mean gap"],
        title="E5: coprime gap statistics (Lemma 5.5 / sieve remark)",
    )
    for k in (4, 5, 6, 7, 9, 11):
        q = primorial_up_to(k - 2)
        stats = coprime_gap_statistics(q, range(50, 2000))
        count = coprime_count_in_primorial_interval(k - 2)
        t2.add_row([k, format_int(q), count, int(stats["max"]), f"{stats['mean']:.2f}"])
        assert stats["max"] <= q          # worst-case bound
        assert stats["mean"] <= max(4.0, q / count)  # sieve density heuristic
    print()
    print(t2.render())

    # ---- figure regeneration (witnessed structure) ----------------------
    part = plan_partition(27, 5)
    fig1 = render_zones_and_blocks(part, blocks=[(0, 0), (1, 0)])
    marks_a = sum(line.count("A") for line in fig1.splitlines())
    marks_b = sum(line.count("B") for line in fig1.splitlines())
    assert marks_a == marks_b == 10  # k(k-1)/2 elements per block
    fig2 = render_tbs_layout(27, 5)
    assert set("Trs") <= set("".join(fig2.splitlines()))
    print("\nFigure 1 and Figure 2 regenerated (see examples/io_model_explorer.py to view).")

    # recursion profile sanity at a realistic size
    prof = recursion_profile(2000, 5)
    assert prof[-1]["mode"] == "ooc_syrk"
    print(f"TBS recursion at N=2000, k=5: depth {len(prof)}, levels {[lv['n'] for lv in prof]}")
