"""E20 — static certification throughput vs the dynamic validator.

Records the E13 configuration (TBS SYRK, ``m = 6``, ``S = 8N``) per N and
puts the same schedule through both residency checkers:

* the **validated replay** — the dynamic pipeline every rewrite/search
  pays to establish a schedule's legality and counters today: compile the
  trace IR (:func:`repro.trace.compiled.compile_trace`), replay the op
  order through the array engine (:func:`repro.trace.replay.lru_replay_trace`)
  and validate the explicit stream step by step
  (:func:`repro.sched.validate.validate_schedule`);
* the **static certifier** (:func:`repro.check.certify.certify_schedule`)
  — one sorted event table over the whole stream, no simulation, the
  ``repro check`` CI gate's engine.

Claims asserted:

* certifier and validator agree on every schedule: zero findings and
  bit-identical (loads, stores, peak occupancy);
* mutated schedules fail closed: dropping a load flips both verdicts;
* at N >= 512 certification is >= 10x faster than the validated replay —
  the ISSUE 10 acceptance bar that makes certifying every store object
  before upload affordable.

Results land in a BENCH JSON (``benchmarks/out/bench_e20_check.json`` or
``$BENCH_E20_JSON``).  Run with ``--smoke`` for CI sizes (agreement stays
asserted; the absolute-speedup claim is skipped).
"""

import time

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.check.certify import certify_schedule
from repro.core.tbs import tbs_syrk
from repro.errors import ScheduleError
from repro.sched.schedule import LoadStep, Schedule, record_schedule
from repro.sched.validate import validate_schedule
from repro.trace.compiled import compile_trace
from repro.trace.replay import lru_replay_trace
from repro.utils.fmt import Table, format_int

M_COLS = 6
SPEEDUP_FLOOR = 10.0  # asserted at N >= ASSERT_N, full mode only
ASSERT_N = 512


def record_case(n: int):
    s = 8 * n
    m = TwoLevelMachine(s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, M_COLS)))
    m.add_matrix("C", np.zeros((n, n)))
    sched = record_schedule(
        m, lambda: tbs_syrk(m, "A", "C", range(n), range(M_COLS))
    )
    return sched, s


def best_of(fn, rounds=3):
    best = float("inf")
    out = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def measure_one(n: int):
    sched, s = record_case(n)

    def replay_path():
        trace = compile_trace(sched)
        lru_replay_trace(trace, s)
        return validate_schedule(sched, s)

    replayed, t_replay = best_of(replay_path)
    cert, t_certify = best_of(lambda: certify_schedule(sched, s))

    assert cert.ok and not cert.findings, (n, cert.findings[:3])
    for key in ("loads", "stores", "peak_occupancy"):
        assert cert.stats[key] == replayed[key], (n, key)

    # fail-closed: the same mutation trips both checkers
    i = next(i for i, st in enumerate(sched.steps) if isinstance(st, LoadStep))
    bad = Schedule(
        steps=[st for j, st in enumerate(sched.steps) if j != i],
        shapes=sched.shapes,
    )
    with pytest.raises(ScheduleError):
        validate_schedule(bad, s)
    assert not certify_schedule(bad, s).ok, n

    return {
        "n": n,
        "m": M_COLS,
        "s": s,
        "n_steps": len(sched.steps),
        "loads": cert.stats["loads"],
        "stores": cert.stats["stores"],
        "peak_occupancy": cert.stats["peak_occupancy"],
        "replay_sec": t_replay,
        "certify_sec": t_certify,
        "replay_steps_per_sec": len(sched.steps) / t_replay,
        "certify_steps_per_sec": len(sched.steps) / t_certify,
        "certify_speedup": t_replay / t_certify,
    }


def write_bench_json(rows):
    from common import write_bench_json as write_common

    return write_common(
        "e20_check_certify_throughput", rows,
        env_var="BENCH_E20_JSON", default_name="bench_e20_check.json",
    )


@pytest.mark.benchmark(group="e20")
def test_e20_certify_vs_validated_replay(once, smoke):
    ns = [48, 96] if smoke else [128, 256, 512]
    rows = once(lambda: [measure_one(n) for n in ns])

    t = Table(
        ["N", "S", "steps", "replay st/s", "certify st/s", "certify x"],
        title=(
            f"E20 static certification vs validated replay "
            f"(compile + LRU replay + validate), TBS SYRK m={M_COLS}, S=8N"
        ),
    )
    for row in rows:
        t.add_row(
            [row["n"], row["s"], format_int(row["n_steps"]),
             format_int(int(row["replay_steps_per_sec"])),
             format_int(int(row["certify_steps_per_sec"])),
             f"{row['certify_speedup']:.1f}"]
        )
    print()
    print(t.render())
    path = write_bench_json(rows)
    print(f"\nBENCH JSON written to {path}")

    for row in rows:
        assert row["certify_speedup"] > 1.0, row["n"]
    if not smoke:
        big = [row for row in rows if row["n"] >= ASSERT_N]
        assert big, "sweep must include the acceptance size"
        for row in big:
            assert row["certify_speedup"] >= SPEEDUP_FLOOR, row
