"""Schema check: every benchmark/report artifact carries a provenance block.

Usage::

    PYTHONPATH=src python benchmarks/check_provenance.py [out_dir]

Scans ``benchmarks/out/*.json`` (or the given directory) and fails — exit
code 1, one line per offender — unless every JSON document has a
``"provenance"`` object with the standard fields of
:func:`repro.obs.provenance.provenance_stamp` at the expected schema
version.  Run reports (``repro.report/v1``) and Chrome trace timelines are
validated by the same rule: all three writers stamp the block at the top
level.  CI runs this after the smoke benchmarks, so an artifact writer
that silently drops its stamp cannot merge.

Named ``check_*`` (not ``test_*``/``bench_*``) on purpose: it is a CI
gate over whatever files exist on disk, not a pytest-collected case.
"""

import glob
import json
import os
import sys

from repro.obs.provenance import SCHEMA_VERSION

#: Fields every provenance block must carry (values may be null when the
#: environment cannot supply them — e.g. no git binary — but the keys must
#: exist so their absence is always distinguishable from "not stamped").
REQUIRED_FIELDS = (
    "schema_version",
    "git_sha",
    "git_dirty",
    "host",
    "platform",
    "python",
    "numpy",
    "timestamp_utc",
)


def check_file(path):
    """Problems found in one artifact (empty list means it passes)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable JSON: {exc}"]
    if not isinstance(doc, dict):
        return ["top-level JSON value is not an object"]
    prov = doc.get("provenance")
    if not isinstance(prov, dict):
        return ["missing 'provenance' object"]
    problems = [f"provenance lacks {name!r}" for name in REQUIRED_FIELDS if name not in prov]
    if prov.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"provenance schema_version {prov.get('schema_version')!r} != {SCHEMA_VERSION}"
        )
    return problems


def main(argv):
    out_dir = argv[1] if len(argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    paths = sorted(glob.glob(os.path.join(out_dir, "*.json")))
    if not paths:
        print(f"no JSON artifacts under {out_dir}; nothing to check")
        return 1
    failures = 0
    for path in paths:
        problems = check_file(path)
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {path}: {problem}")
        else:
            print(f"ok   {path}")
    if failures:
        print(f"{failures}/{len(paths)} artifacts missing provenance")
        return 1
    print(f"all {len(paths)} artifacts carry provenance (schema v{SCHEMA_VERSION})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
