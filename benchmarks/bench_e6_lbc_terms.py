"""E6 — Figure 3 / Section 5.2.2: the LBC term decomposition vs block size b.

Sweeps the panel width b at fixed N with the exact models (machine-verified
at small N by the test suite and by the measured column here), printing the
four-term decomposition:

    (1) OOC_CHOL diagonal blocks      ~ b^2 N / (3 sqrt S)     (grows with b)
    (2) OOC_TRSM panels               ~ b N^2 / (2 sqrt S)     (grows with b)
    (3) TBS downdate A-traffic        ~ N^3 / (3 sqrt(2S))     (b-independent)
    (4) trailing-C reloads            ~ N^3 / (6 b)            (shrinks with b)

and asserting the crossover structure: small b is dominated by (4), large b
by (2), and b = sqrt(N) minimizes the total with (3) dominant — exactly the
argument that fixes the paper's block size.
"""

import math

import pytest

from repro.analysis.model import lbc_term_model
from repro.core.lbc import lbc_term_breakdown
from repro.utils.fmt import Table, format_int
from conftest import counting_machine

S = 15
N_MODEL = 4096
BS = [8, 16, 32, 64, 128, 256, 512]


def run_sweep():
    out = []
    for b in BS:
        parts = lbc_term_model(N_MODEL, S, b)
        # split the syrk phase into A-traffic (term 3) and C-reloads (term 4):
        # every LBC iteration reloads the trailing triangle once ->
        # sum_i tri(N - (i+1)b) elements of C traffic inside TBS.
        c_reloads = sum(
            (N_MODEL - (i + 1) * b) * (N_MODEL - (i + 1) * b + 1) // 2
            for i in range(N_MODEL // b)
            if (i + 1) * b < N_MODEL
        )
        out.append((b, parts, c_reloads))
    return out


@pytest.mark.benchmark(group="e6")
def test_e6_lbc_term_decomposition(once):
    sweep = once(run_sweep)

    t = Table(
        ["b", "(1) chol", "(2) trsm", "(3)+(4) syrk", "(4) C-reloads", "total Q"],
        title=f"E6: LBC loads by phase, N={N_MODEL}, S={S} (exact models)",
    )
    totals = {}
    parts_by_b = {}
    for b, parts, c_reloads in sweep:
        total = parts["chol"].loads + parts["trsm"].loads + parts["syrk"].loads
        totals[b] = total
        parts_by_b[b] = (parts, c_reloads)
        t.add_row(
            [b, format_int(parts["chol"].loads), format_int(parts["trsm"].loads),
             format_int(parts["syrk"].loads), format_int(c_reloads), format_int(total)]
        )
    print()
    print(t.render())

    # crossover structure
    b_star = int(math.isqrt(N_MODEL))  # 64
    best_b = min(totals, key=totals.get)
    print(f"\nbest b in sweep: {best_b}; paper's choice sqrt(N) = {b_star}")
    assert best_b in (32, 64, 128), "optimum must sit near sqrt(N)"
    # (4) shrinks like 1/b: its absolute volume and its share of the syrk
    # phase fall monotonically with b (it dominates only for b < ~(k-1)/2).
    c_reload_shares = [parts_by_b[b][1] / parts_by_b[b][0]["syrk"].loads for b in BS]
    assert all(x > y for x, y in zip(c_reload_shares, c_reload_shares[1:]))
    assert c_reload_shares[0] > 0.15 and c_reload_shares[-1] < 0.02
    # (2) grows monotonically with b and dominates at huge b
    trsm_loads = [parts_by_b[b][0]["trsm"].loads for b in BS]
    assert all(x < y for x, y in zip(trsm_loads, trsm_loads[1:]))
    parts_big, c_big = parts_by_b[BS[-1]]
    assert parts_big["trsm"].loads > parts_big["chol"].loads
    assert c_big < parts_by_b[BS[0]][1]

    # ---- measured cross-check at small N --------------------------------
    n_small, b_small = 96, 8
    m = counting_machine(S, {"A": (n_small, n_small)})
    measured = lbc_term_breakdown(m, "A", range(n_small), b=b_small)
    model = lbc_term_model(n_small, S, b_small)
    for phase in ("chol", "trsm", "syrk"):
        assert measured[phase] == model[phase].loads, phase
    print(f"measured phase loads at N={n_small}, b={b_small} == model: True")
