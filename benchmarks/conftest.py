"""Shared helpers for the experiment benches.

Every bench regenerates one experiment from DESIGN.md's per-experiment
index (E1-E9), printing its table(s) to stdout and asserting the paper's
*shape* claims (who wins, by what factor, where the crossovers are).

pytest-benchmark timing wraps the headline computation of each experiment
(one round — the quantities measured are deterministic counts, not noisy
wall-clock samples; the timing is informative only).

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TwoLevelMachine


def counting_machine(s: int, shapes: dict[str, tuple[int, int]]) -> TwoLevelMachine:
    m = TwoLevelMachine(s, strict=False, numerics=False)
    for name, shape in shapes.items():
        m.add_matrix(name, np.zeros(shape))
    return m


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="shrink problem sizes in benches that consume the `smoke` "
        "fixture (currently E13-E16, whose full sizes take tens of "
        "seconds; E1-E12, including the parallel bench E11, are already "
        "CI-sized). Shape claims stay asserted; E13's absolute-speedup "
        "claims are skipped",
    )


@pytest.fixture
def smoke(request):
    """True when the suite runs with --smoke (CI-sized problems)."""
    return request.config.getoption("--smoke")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
