"""E8 — the symmetric-vs-nonsymmetric kernel table (intro's Table-1 framing).

One table, four factorization/multiplication kernels, measured leading
constants next to the literature's:

    kernel      algorithm        constant x            paper / literature
    GEMM        square tiles     2 N^2 K / sqrt(S)     2            [folklore]
    LU          left-looking     N^3 / sqrt(S)         2/3          [Kwasniewski]
    SYRK        TBS              N^2 M / sqrt(S)       1/sqrt(2)    (Thm 5.6)
    SYRK        OOC_SYRK         N^2 M / sqrt(S)       1            [Bereux]
    Cholesky    LBC              N^3 / sqrt(S)         1/(3 sqrt 2) (Thm 5.7)
    Cholesky    OOC_CHOL         N^3 / sqrt(S)         1/3          [Bereux]

Constants are extracted from exact model predictions at large N (the models
are integer-equal to machine measurements — asserted here at small N) and
normalized by the tile-rounding factor so the table shows the S -> infinity
constant the literature states.
"""

import math

import pytest

from repro.analysis.model import (
    lbc_model,
    ooc_chol_model,
    ooc_gemm_model,
    ooc_lu_model,
    ooc_syrk_model,
    tbs_model,
)
from repro.analysis.sweep import run_cholesky_once, run_syrk_once
from repro.config import square_tile_side_for_memory, triangle_side_for_memory
from repro.utils.fmt import Table

S = 1275  # k = 50, s = 34: small rounding corrections
N = 40_000
M_COLS = 4


def extract_constants():
    k = triangle_side_for_memory(S)
    s_tile = square_tile_side_for_memory(S)
    c_pass = N * (N + 1) // 2
    rows = []
    # GEMM: streamed traffic 2 N^2 K / s_tile
    gemm = ooc_gemm_model(N, M_COLS, N, S)
    gemm_streamed = gemm.loads - N * N
    rows.append(("GEMM", "square tiles", gemm_streamed * s_tile / (N * N * M_COLS), 2.0))
    # LU
    n_lu = 16_384
    lu = ooc_lu_model(n_lu, S)
    rows.append(("LU", "left-looking tiles", lu.loads * s_tile / n_lu**3, 2.0 / 3.0))
    # SYRK
    tbs = tbs_model(N, M_COLS, S)
    rows.append(("SYRK", "TBS", (tbs.loads - c_pass) * (k - 1) / (N * N * M_COLS) / math.sqrt(2), 1 / math.sqrt(2)))
    ocs = ooc_syrk_model(N, M_COLS, S)
    rows.append(("SYRK", "OOC_SYRK", (ocs.loads - c_pass) * s_tile / (N * N * M_COLS), 1.0))
    # Cholesky
    n_ch = 36_864
    lbc = lbc_model(n_ch, S, 192)
    rows.append(("Cholesky", "LBC", lbc.loads * (k - 1) / n_ch**3 / math.sqrt(2), 1 / (3 * math.sqrt(2))))
    occ = ooc_chol_model(n_ch, S)
    rows.append(("Cholesky", "OOC_CHOL", occ.loads * s_tile / n_ch**3, 1.0 / 3.0))
    return rows


@pytest.mark.benchmark(group="e8")
def test_e8_kernel_comparison(once):
    rows = once(extract_constants)

    t = Table(
        ["kernel", "algorithm", "measured constant", "literature/paper", "rel err"],
        title=f"E8: kernel constants x (work)/sqrt(S), extracted at S={S} (tile-normalized)",
    )
    for kernel, alg, measured, target in rows:
        rel = abs(measured - target) / target
        t.add_row([kernel, alg, f"{measured:.4f}", f"{target:.4f}", f"{rel:.2%}"])
        # LBC carries O(N^{5/2}) terms that decay like 1/sqrt(N); at the
        # N affordable here they are ~15% (E3 shows the convergence trend).
        tol = 0.16 if alg == "LBC" else 0.12
        assert rel < tol, (kernel, alg, measured, target)
    print()
    print(t.render())

    by = {(k2, a): m for k2, a, m, _ in rows}
    # the sqrt(2) symmetric advantages
    assert by[("SYRK", "OOC_SYRK")] / by[("SYRK", "TBS")] == pytest.approx(math.sqrt(2), rel=0.08)
    # LBC's O(N^{5/2}) terms keep its measured constant ~15% high at this N;
    # the ratio is asserted loosely here and its convergence to sqrt(2) is
    # E3's dedicated table.
    assert by[("Cholesky", "OOC_CHOL")] / by[("Cholesky", "LBC")] == pytest.approx(math.sqrt(2), rel=0.15)
    assert by[("Cholesky", "OOC_CHOL")] / by[("Cholesky", "LBC")] > 1.20
    # LU does twice the Cholesky-baseline traffic
    assert by[("LU", "left-looking tiles")] / by[("Cholesky", "OOC_CHOL")] == pytest.approx(2.0, rel=0.05)

    # measured == model ground truth at small, machine-affordable sizes
    small = run_syrk_once("tbs", 60, 6, 15)
    assert small.loads == small.model_loads
    small_c = run_cholesky_once("occ", 36, 15)
    assert small_c.loads == small_c.model_loads
    print("\nmodel == machine verified at small N (and across the test suite).")
