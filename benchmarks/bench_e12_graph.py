"""E12 — dependency-graph rescheduling: is the recorded order the best legal one?

Extracts the task DAG of four recorded schedules (TBS, OOC_SYRK, TBS-SYR2K,
OOC_CHOL), re-schedules each under the worklist heuristics, regenerates
explicit load/evict streams (load-on-demand, evict-by-furthest-next-use),
and compares I/O volumes against LRU replay, the Belady/MIN per-order
floor, and the paper's lower bounds.

Shape claims asserted:

* every rescheduled stream passes the machine-independent validator and
  replays to the *bit-identical* numeric result (reduction chains kept);
* Belady replay never loads more than LRU at equal capacity — MIN is the
  per-order optimum;
* rewriting even the *original* order with the on-demand/furthest-next-use
  policy matches or beats the hand-written explicit streams (they evict
  conservatively); on TBS at least one heuristic order does too;
* the DAGs expose real structure: pure accumulation kernels (SYRK/SYR2K)
  collapse to reduction classes with a tiny critical path, while Cholesky's
  factor/solve chain forces a long critical path.
"""

import pytest

from repro.graph.compare import CASES, compare_case, record_case
from repro.graph.scheduler import HEURISTICS

SIZES = {
    "tbs": (40, 6, 15),
    "ocs": (40, 6, 15),
    "syr2k": (36, 4, 15),
    "chol": (32, 0, 15),
}


def run_case(kernel: str):
    n, mcols, s = SIZES[kernel]
    case = record_case(kernel, n, mcols, s)
    return case, compare_case(case, HEURISTICS, check_numerics=True)


@pytest.mark.benchmark(group="e12")
def test_e12_graph_rescheduling(once):
    from repro.utils.fmt import Table, format_int

    results = once(lambda: {kernel: run_case(kernel) for kernel in SIZES})

    for kernel, (case, comp) in results.items():
        n, mcols, s = SIZES[kernel]
        g = comp.graph
        counts = g.edge_counts()
        t = Table(
            ["order / policy", "Q (loads)", "stores", "Q/bound", "legal", "bit-exact"],
            title=(
                f"E12 {CASES[kernel]}: n={n} m={mcols} S={s} — {len(g)} ops, "
                f"{counts['raw']}/{counts['war']}/{counts['waw']}/{counts['reduction']} "
                f"RAW/WAR/WAW/reduction edges, critical path {int(g.critical_path_cost())}"
            ),
        )
        for row in comp.rows:
            t.add_row(
                [row.label, format_int(row.loads), format_int(row.stores),
                 f"{row.loads / case.lower_bound:.3f}",
                 "-" if row.valid is None else str(row.valid),
                 "-" if row.exact is None else str(row.exact)]
            )
        print()
        print(t.render())

        lru = comp.row("lru")
        belady = comp.row("belady")
        explicit = comp.row("explicit")
        # MIN is optimal for a fixed access sequence: never above LRU, never
        # below the cold-miss floor.
        assert belady.loads <= lru.loads
        # Every rescheduled stream is legal and numerically exact.
        for heuristic in HEURISTICS:
            row = comp.row(f"reschedule:{heuristic}")
            assert row.valid, (kernel, heuristic)
            assert row.exact, (kernel, heuristic)
        # The canonical rewrite of the *original* order (load-on-demand +
        # furthest-next-use eviction) already matches or beats the
        # hand-written explicit stream.
        assert comp.row("reschedule:original").loads <= explicit.loads, kernel
        # Nothing legal beats the Belady floor of its own order... but every
        # row must stay above the paper's lower bound.
        for row in comp.rows:
            assert row.loads >= case.lower_bound * 0.99, (kernel, row.label)

    # Headline claim: on TBS, at least one heuristic order matches or beats
    # the original explicit I/O volume.
    _case, comp = results["tbs"]
    explicit = comp.row("explicit")
    best = min(comp.row(f"reschedule:{h}").loads for h in HEURISTICS)
    assert best <= explicit.loads

    # Structure claim: accumulate-only kernels have span O(M); Cholesky's
    # dependence chain is an order of magnitude deeper.
    assert int(results["tbs"][1].graph.critical_path_cost()) <= SIZES["tbs"][1] + 1
    assert int(results["chol"][1].graph.critical_path_cost()) > 3 * (
        int(results["tbs"][1].graph.critical_path_cost())
    )
