"""E10 — extension: triangle-block SYR2K (the conclusion's future work).

Not a paper experiment: this regenerates the paper's *prediction* that the
triangle-block idea extends "to other kernels which use the same input
several times".  We carry the construction through for the symmetric
rank-2k update and measure the same sqrt(2) story:

* triangle-block SYR2K beats the square-tile baseline by (k-1)/t -> sqrt(2);
* measured == exact model; volumes respect the extended lower bound
  sqrt(2) N^2 M / sqrt(S);
* numerics verified by the strict machine (in the test suite).
"""

import math

import pytest

from repro.analysis.model import ooc_syr2k_model, tbs_syr2k_model
from repro.core.syr2k import (
    syr2k_lower_bound,
    syr2k_square_tile_side,
    syr2k_triangle_side_for_memory,
)
from repro.utils.fmt import Table, format_int
from conftest import counting_machine

S = 14  # k = 4, t = 2
M_COLS = 8
NS = [40, 80, 160]


def run_measured():
    from repro.core.syr2k import ooc_syr2k, tbs_syr2k

    rows = []
    for n in NS:
        m = counting_machine(S, {"A": (n, M_COLS), "B": (n, M_COLS), "C": (n, n)})
        t = tbs_syr2k(m, "A", "B", "C", range(n), range(M_COLS))
        m.assert_empty()
        m2 = counting_machine(S, {"A": (n, M_COLS), "B": (n, M_COLS), "C": (n, n)})
        o = ooc_syr2k(m2, "A", "B", "C", range(n), range(M_COLS))
        m2.assert_empty()
        rows.append((n, t, o))
    return rows


@pytest.mark.benchmark(group="e10")
def test_e10_syr2k_extension(once):
    rows = once(run_measured)
    k = syr2k_triangle_side_for_memory(S)
    tile = syr2k_square_tile_side(S)

    t = Table(
        ["N", "lower bnd", "Q TB-SYR2K", "Q square-tile", "stream ratio", "== models"],
        title=f"E10: SYR2K at S={S} (k={k}, t={tile}), M={M_COLS}",
    )
    for n, tb, oc in rows:
        lb = syr2k_lower_bound(n, M_COLS, S, form="exact")
        c_pass = n * (n + 1) // 2
        ratio = (oc.loads - c_pass) / (tb.loads - c_pass)
        ok = (
            tb.loads == tbs_syr2k_model(n, M_COLS, S).loads
            and oc.loads == ooc_syr2k_model(n, M_COLS, S).loads
        )
        t.add_row([n, f"{lb:,.0f}", format_int(tb.loads), format_int(oc.loads), f"{ratio:.3f}", str(ok)])
        assert ok
        assert lb <= tb.loads <= oc.loads
    print()
    print(t.render())

    # model-extended: the sqrt(2) limit, as for SYRK (E2)
    s_big = 5050
    kk = syr2k_triangle_side_for_memory(s_big)
    tt = syr2k_square_tile_side(s_big)
    n_big, m_big = 150_000, 2
    c_pass = n_big * (n_big + 1) // 2
    tb_big = tbs_syr2k_model(n_big, m_big, s_big).loads - c_pass
    oc_big = ooc_syr2k_model(n_big, m_big, s_big).loads - c_pass
    ratio = oc_big / tb_big
    print(
        f"\nmodel-extended at S={s_big} (k={kk}, t={tt}), N={n_big:,}: "
        f"stream ratio = {ratio:.4f} (target (k-1)/t = {(kk - 1) / tt:.4f}, sqrt(2) = {math.sqrt(2):.4f})"
    )
    assert ratio == pytest.approx(math.sqrt(2.0), rel=0.05)
