#!/usr/bin/env python3
"""The Hong-Kung motivation: naive loop nests vs blocked schedules.

Runs Algorithm 1 (SYRK) verbatim under an LRU cache of S elements for three
loop orders, and compares against the blocked OOC_SYRK and TBS schedules on
the same machine size.  Once the working set of the inner loops exceeds S,
the naive orders degenerate toward one load per operand — the observation
that started the whole communication-avoiding line of work (Section 2.1).

Run:  python examples/pebble_game.py
"""

import numpy as np

from repro import TwoLevelMachine, naive_syrk_lru, ooc_syrk, tbs_syrk
from repro.kernels.flops import syrk_mults
from repro.utils.fmt import Table, banner, format_int
from repro.utils.rng import random_tall_matrix

N, M, S = 40, 20, 15  # M > S: a row of A cannot stay resident; N past TBS threshold


def main() -> None:
    print(banner("red-blue pebble game: naive LRU vs blocked schedules"))
    a = random_tall_matrix(N, M)
    mults = syrk_mults(N, M)
    print(f"\nC (lower {N}x{N}) += A ({N}x{M}) A^T under S = {S}; {mults:,} multiplies\n")

    t = Table(["schedule", "Q = loads", "loads per multiply"])
    reference = np.tril(a @ a.T)

    for order in ("ijk", "ikj", "kij"):
        pm, c = naive_syrk_lru(a, capacity=S, order=order)
        assert np.max(np.abs(np.tril(c) - reference)) < 1e-10
        t.add_row([f"naive {order} + LRU", format_int(pm.loads), f"{pm.loads / mults:.3f}"])

    for name, fn in (("OOC_SYRK (blocked)", ooc_syrk), ("TBS (triangle blocks)", tbs_syrk)):
        m = TwoLevelMachine(S)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((N, N)))
        stats = fn(m, "A", "C", range(N), range(M))
        m.assert_empty()
        assert np.max(np.abs(np.tril(m.result("C")) - reference)) < 1e-10
        t.add_row([name, format_int(stats.loads), f"{stats.loads / mults:.3f}"])

    print(t.render())
    print(
        "\nall five runs produce the identical matrix (verified); only the"
        "\norder of operations — the schedule — changes the I/O volume."
    )


if __name__ == "__main__":
    main()
