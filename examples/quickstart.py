#!/usr/bin/env python3
"""Quickstart: run the paper's TBS schedule and see the sqrt(2) story.

Computes C += A Aᵀ (lower triangle) three ways on a simulated two-level
machine with S = 15 fast-memory elements:

* TBS           — the paper's triangle-block schedule (Algorithm 4),
* OOC_SYRK      — Bereux's square-tile baseline,
* the lower bound of Corollary 4.7,

verifies both results against NumPy to machine precision, and prints the
I/O volumes.  Everything here is exact: the machine counts every element
moved between memories.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TwoLevelMachine, ooc_syrk, syrk_lower_bound, tbs_syrk, triangle_side_for_memory
from repro.utils.fmt import Table, banner, format_int
from repro.utils.rng import random_tall_matrix

N, M, S = 60, 8, 15


def run(schedule_fn, name: str, a: np.ndarray):
    machine = TwoLevelMachine(S)  # strict mode: NaN-poisoned verification
    machine.add_matrix("A", a)
    machine.add_matrix("C", np.zeros((N, N)))
    stats = schedule_fn(machine, "A", "C", range(N), range(M))
    machine.assert_empty()
    # verify against the in-memory reference
    reference = np.tril(a @ a.T)
    error = np.max(np.abs(np.tril(machine.result("C")) - reference))
    assert error < 1e-10, f"{name} failed verification: {error}"
    return stats


def main() -> None:
    print(banner("repro quickstart: I/O-optimal SYRK (SPAA'22)"))
    a = random_tall_matrix(N, M)
    k = triangle_side_for_memory(S)
    print(f"\nmachine: S = {S} elements  ->  triangle side k = {k}, square tile s = 3")
    print(f"problem: C (lower {N}x{N}) += A ({N}x{M}) A^T\n")

    tbs = run(tbs_syrk, "TBS", a)
    ocs = run(ooc_syrk, "OOC_SYRK", a)
    lb = syrk_lower_bound(N, M, S, form="exact")

    t = Table(["schedule", "Q = loads", "A-traffic", "C-traffic", "peak mem"])
    t.add_row(["lower bound (Cor 4.7)", f"{lb:,.0f}", "-", "-", "-"])
    t.add_row(
        ["TBS (Algorithm 4)", format_int(tbs.loads), format_int(tbs.loads_by_matrix["A"]),
         format_int(tbs.loads_by_matrix["C"]), format_int(tbs.peak_occupancy)]
    )
    t.add_row(
        ["OOC_SYRK (Bereux)", format_int(ocs.loads), format_int(ocs.loads_by_matrix["A"]),
         format_int(ocs.loads_by_matrix["C"]), format_int(ocs.peak_occupancy)]
    )
    print(t.render())

    ratio = ocs.loads_by_matrix["A"] / tbs.loads_by_matrix["A"]
    print(
        f"\nA-traffic ratio OOC_SYRK / TBS = {ratio:.3f}"
        f"  (finite-S target (k-1)/s = {4 / 3:.3f}; -> sqrt(2) = 1.414 as S grows)"
    )
    print("both results verified against NumPy to 1e-10.  Done.")


if __name__ == "__main__":
    main()
