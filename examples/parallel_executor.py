#!/usr/bin/env python3
"""Sharded DAG execution: run one recorded schedule on P simulated nodes.

The paper's §2.2 observation — a node of a parallel machine is a two-level
machine whose "slow memory" is everyone else — turns distributed SYRK into
p replays of the same machinery used for the sequential results:

1. record the TBS schedule for C += A Aᵀ as a flat op stream;
2. extract its task DAG; the DAG's antichain levels are exactly the op sets
   a multi-node schedule may run concurrently;
3. partition the ops across p nodes (level-greedy / locality /
   owner-computes) and replay each shard on its own counting engine at node
   memory S — every load is a network receive, every store a send, and
   cross-shard RAW/reduction edges pin the node-to-node slice of it;
4. compare the partitioners' maximum per-node receive volume against the
   per-node lower bound, and reproduce the fixed block strategy of
   repro.parallel.simulate bit for bit via the explicit sharding mode.

Run:  python examples/parallel_executor.py
"""

from repro.core.bounds import parallel_syrk_lower_bound_per_node
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.parallel import (
    PARTITIONERS,
    execute_graph,
    record_block_schedule,
    simulate_syrk,
    triangle_block_assignment,
)
from repro.utils.fmt import Table, banner, format_int

N, M, S, P = 40, 6, 15, 4


def main() -> None:
    print(banner(f"sharded DAG executor: TBS SYRK on {P} nodes"))
    case = record_case("tbs", N, M, S)
    graph = DependencyGraph.from_trace(case.trace)
    print(
        f"recorded {len(graph)} compute ops; critical path "
        f"{int(graph.critical_path_cost())} — every antichain level is a set of "
        "ops the nodes may run concurrently"
    )

    bound = parallel_syrk_lower_bound_per_node(N, M, P, S)
    t = Table(["partitioner", "max recv", "mean recv", "xfer", "imbalance",
               "peak<=S", "recv/bound"])
    for part in PARTITIONERS:
        summ = execute_graph(case.schedule, P, S, partitioner=part,
                             policy="rewrite", graph=graph)
        t.add_row(
            [part, format_int(summ.max_recv), format_int(int(summ.mean_recv)),
             format_int(summ.total_transfer), f"{summ.compute_imbalance:.3f}",
             str(summ.peak_ok), f"{summ.max_recv / bound:.3f}"]
        )
    print()
    print(t.render())
    print()
    print("owner-computes never splits a commuting reduction class, so its")
    print("cross-node transfer volume is zero and its max receive volume is")
    print("the closest to the per-node lower bound.")

    asg = triangle_block_assignment(N, P, S)
    sched, owner = record_block_schedule(asg, M)
    fixed = simulate_syrk(asg, M)
    summ = execute_graph(sched, P, S, owner=owner, policy="explicit")
    same = all(
        (sr.recv, sr.send, sr.peak_memory) == (nr.total_recv, nr.c_send, nr.peak_memory)
        for sr, nr in zip(summ.shards, fixed.nodes)
    )
    print()
    print(f"fixed triangle-block strategy, re-run through the executor's")
    print(f"explicit sharding mode: per-node counts bit-identical = {same}")


if __name__ == "__main__":
    main()
