#!/usr/bin/env python3
"""The future-work kernel: triangle-block SYR2K (C += A·Bᵀ + B·Aᵀ).

The paper's conclusion predicts its triangle-block idea extends "to other
kernels which use the same input several times".  This example runs the
extension implemented in :mod:`repro.core.syr2k`: the same partition
geometry as TBS, two streamed column segments per iteration, and the same
sqrt(2) advantage over square tiles — here demonstrated on a symmetric
cross-covariance update, verified numerically on the strict machine.

Run:  python examples/syr2k_extension.py
"""

import numpy as np

from repro import TwoLevelMachine
from repro.core.syr2k import (
    ooc_syr2k,
    syr2k_lower_bound,
    syr2k_reference,
    syr2k_square_tile_side,
    syr2k_triangle_side_for_memory,
    tbs_syr2k,
)
from repro.utils.fmt import Table, banner, format_int
from repro.utils.rng import random_tall_matrix

N, M, S = 80, 8, 14  # S=14: SYR2K triangle side k=4, tile t=2


def run(fn, name, a, b):
    machine = TwoLevelMachine(S)
    machine.add_matrix("A", a)
    machine.add_matrix("B", b)
    machine.add_matrix("C", np.zeros((N, N)))
    stats = fn(machine, "A", "B", "C", range(N), range(M))
    machine.assert_empty()
    err = np.max(np.abs(np.tril(machine.result("C")) - syr2k_reference(a, b)))
    assert err < 1e-10, f"{name}: {err}"
    return stats, err


def main() -> None:
    print(banner("SYR2K extension: C += A B^T + B A^T with triangle blocks"))
    k = syr2k_triangle_side_for_memory(S)
    t = syr2k_square_tile_side(S)
    print(f"\nS = {S}: triangle side k = {k} (k(k+3)/2 <= S), square tile t = {t} (t^2+4t <= S)")
    print(f"problem: C (lower {N}x{N}) += A B^T + B A^T, A and B {N}x{M}\n")

    a = random_tall_matrix(N, M, seed=11)
    b = random_tall_matrix(N, M, seed=12)
    tb, err1 = run(tbs_syr2k, "TB-SYR2K", a, b)
    oc, err2 = run(ooc_syr2k, "square-tile SYR2K", a, b)
    lb = syr2k_lower_bound(N, M, S, form="exact")

    table = Table(["schedule", "Q = loads", "stream traffic", "verified"])
    table.add_row(["extended lower bound", f"{lb:,.0f}", "-", "-"])
    c_pass = N * (N + 1) // 2
    table.add_row(["TB-SYR2K (extension)", format_int(tb.loads), format_int(tb.loads - c_pass), f"{err1:.1e}"])
    table.add_row(["square-tile baseline", format_int(oc.loads), format_int(oc.loads - c_pass), f"{err2:.1e}"])
    print(table.render())

    ratio = (oc.loads - c_pass) / (tb.loads - c_pass)
    print(
        f"\nstream-traffic ratio = {ratio:.3f} (finite-S target (k-1)/t = {(k - 1) / t:.3f};"
        f" -> sqrt(2) as S grows — see benchmarks/bench_e10_syr2k.py)"
    )


if __name__ == "__main__":
    main()
