#!/usr/bin/env python3
"""Order search: close the explicit-vs-Belady gap the heuristics leave.

The dependency graph of a recorded schedule exposes a space of legal
compute orders; one-shot greedy heuristics pick a decent point in it, but
the remaining gap to the Belady floor is a property of the *order* — so
search for a better one:

1. record the TBS schedule for C += A Aᵀ and extract its task DAG (for
   SYRK: 0 RAW/WAR/WAW edges, just commuting reduction chains);
2. run the three search strategies — beam search and lookahead greedy on
   the incremental LRU objective, simulated annealing over
   reduction-class interleavings — first keeping reduction order
   (bit-exact), then relaxed (equal up to FP reassociation);
3. dress every found order into an explicit, validated load/evict stream
   and compare its Q against the one-shot heuristics and the Belady
   floor of the recorded order.

Run:  python examples/order_search.py
"""

from repro.graph import (
    STRATEGIES,
    belady_replay,
    dependency_graph,
    record_case,
    reschedule,
    rewrite_schedule,
    search_order,
)
from repro.utils.fmt import Table, banner, format_int

N, M, S = 40, 6, 15


def main() -> None:
    print(banner("order search: beyond one-shot scheduling heuristics"))
    case = record_case("tbs", N, M, S)
    graph = dependency_graph(case.trace)
    floor = belady_replay(case.trace, S).loads
    print(
        f"recorded {len(graph)} compute ops in "
        f"{len(graph.reduction_classes())} commuting reduction chains; "
        f"explicit Q = {case.explicit_loads:,}, "
        f"Belady floor of that order = {floor:,}"
    )

    baseline = reschedule(case.trace, S, "locality", graph=graph)
    print(f"one-shot locality heuristic: Q = {baseline.loads:,} (bit-exact)")

    t = Table(["strategy", "relaxed", "Q (loads)", "Q/belady-floor", "bit-exact"])
    best_q = baseline.loads
    for strategy in STRATEGIES:
        for relax in (False, True):
            found = search_order(
                graph, S, strategy, relax_reductions=relax,
                **({"iters": 400} if strategy == "anneal" else {}),
            )
            rw = rewrite_schedule(
                case.trace, S, found.order, graph=graph, relax_reductions=relax
            )
            exact = case.check_exact(rw.schedule)
            assert exact or relax  # kept reductions must replay bit-identically
            best_q = min(best_q, rw.loads)
            t.add_row(
                [strategy, str(relax), format_int(rw.loads),
                 f"{rw.loads / floor:.3f}", str(exact)]
            )
    print()
    print(t.render())
    print()
    print(f"best searched order: Q = {best_q:,} vs heuristic {baseline.loads:,}")
    print("Relaxed orders re-interleave commuting += chains (note the zigzag:")
    print("a reversed chain shares its operand columns with the next chain's")
    print("head), trading bit-exactness for I/O — the FP difference stays at")
    print("reassociation level while Q moves toward the floor.")


if __name__ == "__main__":
    main()
