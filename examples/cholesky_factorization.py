#!/usr/bin/env python3
"""Out-of-core Cholesky with LBC, end to end: factor, verify, solve.

Scenario: an SPD system A x = b (e.g. a dense kernel/covariance system)
whose matrix lives in slow memory.  We factor it in place with the paper's
LBC schedule (Algorithm 5), verify the factor numerically, inspect the
per-phase I/O decomposition of Section 5.2.2, compare against Bereux's
left-looking OOC_CHOL, and finally use the factor to solve the system.

Run:  python examples/cholesky_factorization.py
"""

import numpy as np

from repro import TwoLevelMachine, cholesky_lower_bound, lbc_cholesky, ooc_chol
from repro.core.lbc import lbc_term_breakdown
from repro.utils.fmt import Table, banner, format_int
from repro.utils.rng import random_spd_matrix

N, S, B = 64, 15, 8  # b = sqrt(N) = 8, the paper's block size


def main() -> None:
    print(banner("LBC: Large Block Cholesky (Algorithm 5)"))
    a = random_spd_matrix(N)
    rhs = np.arange(1, N + 1, dtype=float)

    # --- factor with LBC on the strict machine --------------------------
    machine = TwoLevelMachine(S)
    machine.add_matrix("A", a)
    stats = lbc_cholesky(machine, "A", range(N), b=B)
    machine.assert_empty()
    l = np.tril(machine.result("A"))

    err = np.max(np.abs(l @ l.T - a))
    print(f"\nN = {N}, S = {S}, block size b = {B} (sqrt(N))")
    print(f"factor check: max |L L^T - A| = {err:.2e}")
    assert err < 1e-8

    # --- solve A x = b with the factor ----------------------------------
    y = np.linalg.solve(l, rhs)           # forward substitution
    x = np.linalg.solve(l.T, y)           # backward substitution
    res = np.max(np.abs(a @ x - rhs))
    print(f"solve  check: max |A x - b|    = {res:.2e}")

    # --- I/O accounting --------------------------------------------------
    baseline = TwoLevelMachine(S, strict=False, numerics=False)
    baseline.add_matrix("A", np.zeros((N, N)))
    occ = ooc_chol(baseline, "A", range(N))
    lb = cholesky_lower_bound(N, S, form="exact")

    t = Table(["schedule", "Q = loads", "stores", "Q / bound"])
    t.add_row(["lower bound (Cor 4.8)", f"{lb:,.0f}", "-", "1.000"])
    t.add_row(["LBC (Algorithm 5)", format_int(stats.loads), format_int(stats.stores), f"{stats.loads / lb:.3f}"])
    t.add_row(["OOC_CHOL (Bereux)", format_int(occ.loads), format_int(occ.stores), f"{occ.loads / lb:.3f}"])
    print()
    print(t.render())
    print(
        "\n(at this small N the right-looking C-reload term still dominates;"
        "\n the LBC advantage appears past the crossover N ~ 130 for S = 15 —"
        "\n see benchmarks/bench_e3_cholesky.py for the convergence table)"
    )

    # --- Section 5.2.2 term decomposition -------------------------------
    decomp_machine = TwoLevelMachine(S, strict=False, numerics=False)
    decomp_machine.add_matrix("A", np.zeros((N, N)))
    parts = lbc_term_breakdown(decomp_machine, "A", range(N), b=B)
    t2 = Table(["LBC phase", "loads", "share"])
    total = sum(parts.values())
    for name, label in [("chol", "OOC_CHOL diag blocks (term 1)"),
                        ("trsm", "OOC_TRSM panels     (term 2)"),
                        ("syrk", "TBS downdates       (terms 3+4)")]:
        t2.add_row([label, format_int(parts[name]), f"{parts[name] / total:.1%}"])
    print()
    print(t2.render())
    print("\nthe TBS downdates dominate, as the Section 5.2.2 analysis requires.")


if __name__ == "__main__":
    main()
