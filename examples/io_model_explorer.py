#!/usr/bin/env python3
"""Explore the paper's structures: figures, recursion, constants tables.

Prints text renderings of the paper's three figures from the *actual*
implementation objects (not drawings), the TBS recursion profile, the
before/after constants table of the introduction, and a model-extended
convergence table showing the measured leading constants approaching the
paper's 1/sqrt(2), 1, 1/(3 sqrt 2) and 1/3 as S grows.

Run:  python examples/io_model_explorer.py
"""

import math

from repro.analysis.model import lbc_model, ooc_chol_model, ooc_syrk_model, tbs_model
from repro.config import square_tile_side_for_memory, triangle_side_for_memory
from repro.core.bounds import literature_bounds_table
from repro.core.partition import plan_partition, recursion_profile
from repro.utils.fmt import Table, banner, format_float
from repro.viz.figures import (
    render_indexing_positions,
    render_lbc_iteration,
    render_tbs_layout,
    render_zones_and_blocks,
)


def figures() -> None:
    print(banner("Figure 1: zones and triangle blocks (n=27, k=5 -> c=5)"))
    part = plan_partition(27, 5)
    print(render_zones_and_blocks(part, blocks=[(0, 0), (1, 0), (2, 1)]))
    print("\nzones: '-'/'=' squares; '+' diagonal zones (recursion);")
    print("'A','B','C': three triangle blocks, one element per square zone\n")

    print(banner("Figure 2 (left): the cyclic indexing family"))
    print(render_indexing_positions(part, 2, 3))
    print()
    print(banner("Figure 2 (right): TBS layout (n=27, k=5)"))
    print(render_tbs_layout(27, 5))
    print("\n'T' triangle blocks / 'r' recursive zones / 's' OOC_SYRK strip\n")

    print(banner("Figure 3: LBC iteration i=1 (N=12, b=3)"))
    print(render_lbc_iteration(12, 3, 1))
    print("\n'C' OOC_CHOL block / 't' TRSM panel / 'S' TBS downdate / 'L' final\n")


def recursion() -> None:
    print(banner("TBS recursion profile (N=600, S=15 -> k=5)"))
    t = Table(["depth", "n", "c", "strip l", "mode", "count"])
    for level in recursion_profile(600, 5):
        t.add_row([level["depth"], level["n"], level["c"], level["l"], level["mode"], level["count"]])
    print(t.render())
    print()


def constants_table() -> None:
    print(banner("the paper's four contributions (constants x N^2M/sqrt(S) or N^3/sqrt(S))"))
    t = Table(["kernel", "quantity", "before", "source", "after", "source (paper)"])
    for row in literature_bounds_table():
        t.add_row(
            [
                row["kernel"],
                row["quantity"],
                format_float(row["before"]),
                row["before_source"],
                format_float(row["after"]),
                row["after_source"],
            ]
        )
    print(t.render())
    print()


def convergence() -> None:
    print(banner("model-extended convergence of measured leading constants"))
    print(
        "\nconstants: c_A(alg) = A-traffic * sqrt(S) / (N^2 M)   [SYRK]\n"
        "           c(alg)  = Q * sqrt(S) / N^3                 [Cholesky]\n"
        "(the models below equal measured machine counts exactly; verified\n"
        " by the test suite on every shape it can afford to simulate)\n"
    )
    t = Table(["S", "k", "s", "c_A TBS", "-> 0.7071", "c_A OCS", "-> 1.0", "ratio", "-> 1.4142"])
    mcols = 4
    for s in (15, 66, 190, 465, 1275, 5050):
        k = triangle_side_for_memory(s)
        st = square_tile_side_for_memory(s)
        n = max(40 * k * k, 20000)
        c_pass = n * (n + 1) // 2
        tbs = (tbs_model(n, mcols, s).loads - c_pass) * math.sqrt(s) / (n * n * mcols)
        ocs = (ooc_syrk_model(n, mcols, s).loads - c_pass) * math.sqrt(s) / (n * n * mcols)
        t.add_row(
            [s, k, st, f"{tbs:.4f}", f"{math.sqrt(s) / (k - 1):.4f}",
             f"{ocs:.4f}", f"{math.sqrt(s) / st:.4f}", f"{ocs / tbs:.4f}", f"{(k - 1) / st:.4f}"]
        )
    print(t.render())

    print()
    t2 = Table(["S", "N", "c LBC", "-> 0.2357", "c OCC", "-> 0.3333", "ratio"])
    for s, n in ((15, 4096), (66, 9216), (190, 16384)):
        b = int(math.isqrt(n))
        lbc = lbc_model(n, s, b).loads * math.sqrt(s) / n**3
        occ = ooc_chol_model(n, s).loads * math.sqrt(s) / n**3
        t2.add_row([s, n, f"{lbc:.4f}", "0.2357", f"{occ:.4f}", "0.3333", f"{occ / lbc:.4f}"])
    print(t2.render())
    print(
        "\nfinite-S targets shown beside each measured constant; the paper's"
        "\nasymptotic constants are approached as S (and N) grow."
    )


def main() -> None:
    figures()
    recursion()
    constants_table()
    convergence()


if __name__ == "__main__":
    main()
