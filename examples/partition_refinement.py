#!/usr/bin/env python3
"""Transfer-aware partition refinement: search the assignment space.

E14 showed that *which node runs which op* dominates how close a sharded
replay gets to the per-node communication floor — owner-computes lands
near 2x the bound while level-greedy pays 3-4x, mostly in split reduction
classes.  This example closes part of that gap by search instead of by
construction:

1. record the TBS schedule for C += A Aᵀ and extract its task DAG;
2. seed the executor with each one-shot partitioner at P nodes;
3. refine every seed with `repro.parallel.refine` — single-op and
   reduction-class moves against an incremental max(recv + transfer_in)
   ledger, final winner re-measured with real per-shard replays (the
   refiner never returns a partition measured worse than its seed);
4. compare seed vs refined volumes and the weighted makespan model
   (per-op cost = mults, per-cross-edge cost = alpha + beta*elements).

Run:  python examples/partition_refinement.py
"""

from repro.core.bounds import parallel_syrk_lower_bound_per_node
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.parallel import (
    PARTITIONERS,
    execute_graph,
    makespan_model,
    partition_graph,
    refine_partition,
)
from repro.utils.fmt import Table, banner, format_int

N, M, S, P = 40, 6, 15, 4


def main() -> None:
    print(banner(f"transfer-aware partition refinement: TBS SYRK on {P} nodes"))
    case = record_case("tbs", N, M, S)
    graph = DependencyGraph.from_trace(case.trace)
    mults = [float(node.op.mults) for node in graph.nodes]
    bound = parallel_syrk_lower_bound_per_node(N, M, P, S)
    print(
        f"recorded {len(graph)} compute ops; critical path "
        f"{int(graph.critical_path_cost())} ops "
        f"({int(graph.critical_path_cost(mults))} mults weighted); "
        f"per-node receive bound {bound:,.0f}"
    )

    t = Table(["partitioner", "seed r+x", "refined r+x", "gain", "moves",
               "seed makespan", "refined makespan", "never worse"])
    for part in PARTITIONERS:
        seed = partition_graph(graph, P, part)
        refined = refine_partition(graph, seed, P, S, strategy="greedy")
        seed_span = makespan_model(graph, seed, p=P, weights=mults)
        ref_span = makespan_model(graph, refined.owner, p=P, weights=mults)
        t.add_row(
            [part, format_int(refined.seed_cost), format_int(refined.cost),
             f"{1 - refined.cost / max(1, refined.seed_cost):.1%}",
             refined.moves,
             format_int(int(seed_span.makespan)),
             format_int(int(ref_span.makespan)),
             str(refined.cost <= refined.seed_cost)]
        )
    print()
    print(t.render())
    print()
    print("'r+x' is max(recv + transfer_in) over the nodes, measured by real")
    print("per-shard belady replays — the refiner's hard never-worse metric.")

    # The refined assignment drops straight into the executor.
    seed = partition_graph(graph, P, "level-greedy")
    refined = refine_partition(graph, seed, P, S)
    summ = execute_graph(
        case.schedule, P, S, owner=refined.owner, policy="rewrite",
        graph=graph, partitioner_label="level-greedy+refine",
    )
    print()
    print(
        f"refined level-greedy through the validated rewrite policy: "
        f"peak<=S everywhere = {summ.peak_ok}, "
        f"max recv+xfer = {summ.max_recv_incl_transfers:,}, "
        f"weighted makespan = {summ.makespan:,.0f}"
    )


if __name__ == "__main__":
    main()
