#!/usr/bin/env python3
"""Out-of-core Gram matrix of a tall-skinny dataset (the SYRK motivation).

Scenario: a dataset of N samples x M features whose Gram matrix G = X Xᵀ is
needed (kernel methods, covariance estimation, normal equations).  N is
large enough that G (N^2/2 elements) dwarfs fast memory, so the schedule —
not the flop count — decides the data movement bill.

This example sweeps dataset heights on a small simulated machine and shows:

* TBS's A-traffic advantage over the square-tile baseline approaches
  (k-1)/s (-> sqrt(2) for large S) — Theorem 5.6 vs Bereux;
* both schedules pay the same one-pass C-traffic (N(N+1)/2);
* measured volumes sit between the Corollary 4.7 lower bound and the
  Theorem 5.6 upper bound;
* the numeric Gram matrix is exact (strict machine verification at the
  smallest size).

Run:  python examples/gram_matrix_out_of_core.py
"""

import numpy as np

from repro import TwoLevelMachine, ooc_syrk, syrk_lower_bound, tbs_syrk
from repro.analysis.sweep import run_syrk_once
from repro.utils.fmt import Table, banner, format_int
from repro.utils.rng import random_tall_matrix

S = 15          # fast memory (k = 5, s = 3)
M = 16          # features
HEIGHTS = [60, 120, 240, 480]


def verify_smallest() -> None:
    n = HEIGHTS[0]
    x = random_tall_matrix(n, M)
    machine = TwoLevelMachine(S)
    machine.add_matrix("X", x)
    machine.add_matrix("G", np.zeros((n, n)))
    tbs_syrk(machine, "X", "G", range(n), range(M))
    machine.assert_empty()
    err = np.max(np.abs(np.tril(machine.result("G")) - np.tril(x @ x.T)))
    print(f"numeric check at N={n}: max |G - X X^T| = {err:.2e}  (strict machine)")
    assert err < 1e-10


def main() -> None:
    print(banner("out-of-core Gram matrix: TBS vs square tiles"))
    print(f"\nS = {S}, M = {M} features; sweeping dataset height N\n")
    verify_smallest()

    t = Table(
        ["N", "lower bnd", "Q TBS", "Q OOC_SYRK", "A-ratio", "TBS/bound"]
    )
    for n in HEIGHTS:
        tbs = run_syrk_once("tbs", n, M, S)
        ocs = run_syrk_once("ocs", n, M, S)
        lb = syrk_lower_bound(n, M, S, form="exact")
        t.add_row(
            [
                str(n),
                f"{lb:,.0f}",
                format_int(tbs.loads),
                format_int(ocs.loads),
                f"{ocs.a_loads / tbs.a_loads:.3f}",
                f"{tbs.loads / lb:.3f}",
            ]
        )
    print()
    print(t.render())
    print(
        "\nThe A-ratio approaches (k-1)/s = 1.333 at S=15; rerun with a larger"
        "\nS (e.g. S=5050: k=100, s=70) and the same sweep approaches sqrt(2)."
        "\nTBS/bound > 1 is the one-pass C-traffic plus lower-order terms the"
        "\npaper's Theorem 5.6 accounts for explicitly."
    )


if __name__ == "__main__":
    main()
