#!/usr/bin/env python3
"""Dependency-graph rescheduling: discover cheaper legal orders of a trace.

The paper's message is that I/O volume is a property of the *order* of
computations.  This example makes that concrete end to end:

1. record the TBS schedule for C += A Aᵀ as a flat op stream;
2. extract its task DAG — for SYRK, a forest of commuting reduction chains
   (one per triangle block), with no other dependences at all;
3. re-schedule the DAG under the worklist heuristics and dress each order
   back up with explicit loads/evicts (load-on-demand, evict-by-furthest-
   next-use);
4. validate every stream against the model's rules, replay it on a fresh
   machine, and check the result is bit-identical to the original;
5. compare against LRU and Belady/MIN replays of the original order.

Run:  python examples/dag_rescheduling.py
"""

import numpy as np

from repro.analysis.lru_replay import lru_replay
from repro.graph import belady_replay, compare_case, dependency_graph, record_case
from repro.graph.scheduler import HEURISTICS
from repro.utils.fmt import Table, banner, format_int

N, M, S = 40, 6, 15


def main() -> None:
    print(banner("DAG rescheduling: legal orders of the TBS op stream"))
    case = record_case("tbs", N, M, S)
    graph = dependency_graph(case.schedule)
    counts = graph.edge_counts()
    print(
        f"recorded {len(graph)} compute ops; dependence edges: "
        f"{counts['raw']} RAW, {counts['war']} WAR, {counts['waw']} WAW, "
        f"{counts['reduction']} reduction (commuting +=)"
    )
    print(
        f"critical path: {int(graph.critical_path_cost())} ops across "
        f"{len(graph.reduction_classes())} reduction classes — "
        "the DAG is almost embarrassingly parallel"
    )

    comp = compare_case(case, HEURISTICS, check_numerics=True)
    t = Table(["order / policy", "Q (loads)", "stores", "legal", "bit-identical"])
    for row in comp.rows:
        t.add_row(
            [row.label, format_int(row.loads), format_int(row.stores),
             "-" if row.valid is None else str(row.valid),
             "-" if row.exact is None else str(row.exact)]
        )
    print()
    print(t.render())

    lru = lru_replay(case.schedule, S)
    opt = belady_replay(case.schedule, S)
    best = min(comp.row(f"reschedule:{h}").loads for h in HEURISTICS)
    print()
    print(f"explicit TBS stream:        Q = {case.explicit_loads:,}")
    print(f"best rescheduled stream:    Q = {best:,} (validated, bit-identical result)")
    print(f"LRU replay of the order:    Q = {lru.loads:,}")
    print(f"Belady floor of the order:  Q = {opt.loads:,}")
    print()
    print("Every legal reordering reproduces the original result exactly; the")
    print("I/O difference is pure scheduling, which is the paper's point.")


if __name__ == "__main__":
    main()
