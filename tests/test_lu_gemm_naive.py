"""Tests for the LU / GEMM comparators and the naive LRU schedules."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.model import ooc_gemm_model, ooc_lu_model
from repro.baselines.gemm import ooc_gemm
from repro.baselines.lu import ooc_lu
from repro.baselines.naive import naive_cholesky_lru, naive_syrk_lru
from repro.baselines.ooc_syrk import ooc_syrk
from repro.errors import ConfigurationError
from repro.kernels.reference import cholesky_reference, lu_nopivot_reference, syrk_reference
from repro.utils.rng import random_diag_dominant_matrix, random_spd_matrix, random_tall_matrix


class TestOocLu:
    def run(self, n, s=15, seed=0):
        a = random_diag_dominant_matrix(n, seed=seed)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        stats = ooc_lu(m, "A", range(n))
        m.assert_empty()
        return a, m, stats

    @pytest.mark.parametrize("n", [1, 2, 4, 7, 13, 24])
    def test_numerics(self, n):
        a, m, _ = self.run(n)
        l_ref, u_ref = lu_nopivot_reference(a)
        got = m.result("A")
        np.testing.assert_allclose(np.tril(got, -1), np.tril(l_ref, -1), rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(np.triu(got), u_ref, rtol=1e-8, atol=1e-10)

    @pytest.mark.parametrize("n,s", [(10, 15), (24, 15), (17, 24)])
    def test_measured_equals_model(self, n, s):
        _, _, stats = self.run(n, s=s)
        pred = ooc_lu_model(n, s)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_peak_within_capacity(self):
        _, _, stats = self.run(20, s=15)
        assert stats.peak_occupancy <= 15

    def test_lu_costs_about_twice_cholesky(self):
        # Kwasniewski constants: LU 2/3 vs Cholesky-baseline 1/3 (same S).
        from repro.analysis.model import ooc_chol_model

        n, s = 60, 15
        lu = ooc_lu_model(n, s).loads
        chol = ooc_chol_model(n, s).loads
        assert 1.6 < lu / chol < 2.4


class TestOocGemm:
    def test_numerics(self):
        a = random_tall_matrix(8, 5, seed=1)
        b = random_tall_matrix(5, 7, seed=2)
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("B", b)
        m.add_matrix("C", np.zeros((8, 7)))
        stats = ooc_gemm(m, "A", "B", "C", range(8), range(5), range(7))
        m.assert_empty()
        np.testing.assert_allclose(m.result("C"), a @ b, rtol=1e-10)
        pred = ooc_gemm_model(8, 5, 7, 15)
        assert stats.loads == pred.loads

    def test_sign_and_accumulate(self):
        a = random_tall_matrix(4, 3, seed=3)
        b = random_tall_matrix(3, 4, seed=4)
        c0 = np.ones((4, 4))
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("B", b)
        m.add_matrix("C", c0)
        ooc_gemm(m, "A", "B", "C", range(4), range(3), range(4), sign=-1.0)
        np.testing.assert_allclose(m.result("C"), c0 - a @ b, rtol=1e-10)

    def test_oversized_tile_rejected(self):
        m = TwoLevelMachine(15)
        m.add_matrix("A", np.zeros((4, 4)))
        m.add_matrix("B", np.zeros((4, 4)))
        m.add_matrix("C", np.zeros((4, 4)))
        with pytest.raises(ConfigurationError):
            ooc_gemm(m, "A", "B", "C", range(4), range(4), range(4), tile=5)


class TestNaiveLru:
    @pytest.mark.parametrize("order", ["ijk", "ikj", "kij"])
    def test_syrk_result_correct(self, order):
        a = random_tall_matrix(8, 3, seed=5)
        _, c = naive_syrk_lru(a, capacity=15, order=order)
        np.testing.assert_allclose(np.tril(c), np.tril(syrk_reference(a)), rtol=1e-10)

    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            naive_syrk_lru(np.zeros((2, 2)), 4, order="jki")

    def test_cholesky_result_correct(self):
        a = random_spd_matrix(10, seed=6)
        _, l = naive_cholesky_lru(a, capacity=15)
        np.testing.assert_allclose(l, cholesky_reference(a), rtol=1e-9)

    def test_naive_blows_up_vs_blocked(self):
        # E9's point: once a row of A no longer fits in fast memory
        # (M > S), the naive order pays ~2 loads per multiply while the
        # blocked schedule streams each column past a resident tile.
        n, mc, s = 16, 20, 15
        a = random_tall_matrix(n, mc, seed=7)
        pm, _ = naive_syrk_lru(a, capacity=s, order="ijk")
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        blocked = ooc_syrk(m, "A", "C", range(n), range(mc))
        assert pm.loads > 2.0 * blocked.loads

    def test_naive_loses_row_reuse_when_m_exceeds_s(self):
        # With M <= S the ijk order keeps row i resident (about M loads per
        # C element); with M > S it degenerates to ~2M loads per element.
        n, s = 14, 15
        small = naive_syrk_lru(random_tall_matrix(n, 6, seed=1), s, "ijk")[0]
        big = naive_syrk_lru(random_tall_matrix(n, 20, seed=1), s, "ijk")[0]
        per_op_small = small.loads / small.mults
        per_op_big = big.loads / big.mults
        assert per_op_small < 1.2
        assert per_op_big > 1.8

    def test_naive_small_enough_fits(self):
        # If everything fits in fast memory, LRU loads each element once.
        a = random_tall_matrix(3, 2, seed=8)
        pm, _ = naive_syrk_lru(a, capacity=100)
        assert pm.loads == 3 * 2 + 3 * (3 + 1) // 2

    def test_cholesky_io_counts(self):
        a = random_spd_matrix(12, seed=9)
        pm, _ = naive_cholesky_lru(a, capacity=10)
        assert pm.loads > 12 * 13 // 2  # must reload
        assert pm.stores >= 12 * 13 // 2 - 10  # results written back
