"""Tests for the TBS partition planner (Section 5.1.1 geometry)."""

import numpy as np
import pytest

from repro.core.partition import TBSPartition, choose_c, plan_partition, recursion_profile
from repro.errors import ConfigurationError
from repro.utils.primes import primorial_up_to


class TestChooseC:
    def test_examples_k5(self):
        # k=5 -> q=6: c must avoid factors 2 and 3.
        assert choose_c(25, 5) == 5
        assert choose_c(30, 5) == 5      # 6 shares factors; fall to 5
        assert choose_c(35, 5) == 7
        assert choose_c(60, 5) == 11     # 12 -> 11
        assert choose_c(4, 5) == 0       # bound 0

    def test_coprimality(self):
        for k in (4, 5, 6, 7):
            q = primorial_up_to(k - 2)
            for n in range(k, 400, 7):
                c = choose_c(n, k)
                if c:
                    assert np.gcd(c, q) == 1
                    assert c <= n // k

    def test_k_too_small(self):
        with pytest.raises(ConfigurationError):
            choose_c(10, 1)


class TestPlanPartition:
    def test_infeasible_returns_none(self):
        assert plan_partition(10, 5) is None  # c = 2 < k-1 = 4
        assert plan_partition(1, 5) is None

    def test_feasible_geometry(self):
        part = plan_partition(27, 5)
        assert part is not None
        assert part.c == 5
        assert part.covered == 25
        assert part.leftover == 2
        assert len(part.strip()) == 2
        assert list(part.strip()) == [25, 26]

    def test_groups_partition_covered_rows(self):
        part = plan_partition(37, 5)
        assert part is not None
        seen = np.concatenate(part.groups())
        np.testing.assert_array_equal(np.sort(seen), np.arange(part.covered))

    def test_group_bounds(self):
        part = plan_partition(27, 5)
        with pytest.raises(ConfigurationError):
            part.group(5)

    @pytest.mark.parametrize("n,k", [(27, 5), (20, 4), (37, 5), (66, 6), (49, 4)])
    def test_blocks_disjoint_and_cover(self, n, k):
        part = plan_partition(n, k)
        assert part is not None
        assert part.validate_blocks_disjoint()
        assert part.validate_exact_cover()

    def test_block_count_matches_zone_area(self):
        part = plan_partition(27, 5)
        blocks = list(part.iter_blocks())
        assert len(blocks) == part.c**2
        pairs_per_block = part.k * (part.k - 1) // 2
        zone_pairs = part.k * (part.k - 1) // 2 * part.c**2
        assert len(blocks) * pairs_per_block == zone_pairs

    def test_block_rows_one_per_group(self):
        part = plan_partition(27, 5)
        for (_ij, rows) in part.iter_blocks():
            assert sorted(int(r) // part.c for r in rows) == list(range(part.k))


class TestRecursionProfile:
    def test_terminates_with_fallback(self):
        prof = recursion_profile(27, 5)
        assert prof[-1]["mode"] == "ooc_syrk"
        assert prof[0]["mode"] == "triangle_blocks"

    def test_widths_multiply_by_k(self):
        prof = recursion_profile(200, 4)
        for depth, level in enumerate(prof):
            assert level["depth"] == depth
            assert level["count"] == 4**depth

    def test_n_shrinks_to_c(self):
        prof = recursion_profile(125, 5)
        for a, b in zip(prof, prof[1:]):
            assert b["n"] == a["c"]

    def test_small_is_immediate_fallback(self):
        prof = recursion_profile(8, 5)
        assert len(prof) == 1
        assert prof[0]["mode"] == "ooc_syrk"
        assert prof[0]["l"] == 8
