"""Tests for the in-memory reference kernels and work-count formulas."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, VerificationError
from repro.kernels.flops import (
    cholesky_flops,
    cholesky_mults,
    cholesky_update_mults,
    gemm_mults,
    lu_flops,
    lu_mults,
    syrk_flops,
    syrk_mults,
    trsm_flops,
    trsm_mults,
)
from repro.kernels.opsets import (
    cholesky_update_count,
    data_accessed,
    data_accessed_no_symmetry,
    iter_cholesky_updates,
    iter_syrk_ops,
    restriction,
    symmetric_footprint,
    syrk_opset_size,
)
from repro.kernels.reference import (
    cholesky_element_loops,
    cholesky_lower_in_place,
    cholesky_reference,
    gemm_reference,
    lu_nopivot_in_place,
    lu_nopivot_reference,
    syrk_element_loops,
    syrk_reference,
    trsm_element_loops,
    trsm_right_lower_transpose,
)
from repro.utils.rng import (
    random_diag_dominant_matrix,
    random_lower_triangular,
    random_spd_matrix,
    random_tall_matrix,
)


class TestSyrkReference:
    def test_vectorized_matches_element_loops(self):
        a = random_tall_matrix(7, 4, seed=0)
        c = random_tall_matrix(7, 7, seed=1)
        np.testing.assert_allclose(
            syrk_reference(a, c), syrk_element_loops(a, c), rtol=1e-12
        )

    def test_upper_triangle_untouched(self):
        a = random_tall_matrix(5, 3, seed=2)
        c = np.full((5, 5), 7.0)
        out = syrk_reference(a, c)
        np.testing.assert_array_equal(np.triu(out, 1), np.triu(c, 1))

    def test_sign(self):
        a = random_tall_matrix(4, 2, seed=3)
        out = syrk_reference(a, sign=-1.0)
        np.testing.assert_allclose(out, -np.tril(a @ a.T), rtol=1e-12)

    def test_default_zero_c(self):
        a = random_tall_matrix(4, 2, seed=4)
        np.testing.assert_allclose(syrk_reference(a), np.tril(a @ a.T))


class TestCholeskyReference:
    @pytest.mark.parametrize("n", [1, 2, 5, 12, 30])
    def test_matches_numpy(self, n):
        a = random_spd_matrix(n, seed=n)
        np.testing.assert_allclose(cholesky_reference(a), np.linalg.cholesky(a), rtol=1e-9)

    def test_element_loops_match(self):
        a = random_spd_matrix(9, seed=5)
        np.testing.assert_allclose(
            cholesky_element_loops(a), np.linalg.cholesky(a), rtol=1e-9
        )

    def test_in_place_ignores_upper_garbage(self):
        a = random_spd_matrix(6, seed=6)
        work = np.tril(a).copy()
        work += np.triu(np.full((6, 6), np.nan), 1)  # poison the upper part
        cholesky_lower_in_place(work)
        np.testing.assert_allclose(np.tril(work), np.linalg.cholesky(a), rtol=1e-9)

    def test_nonpositive_pivot_raises(self):
        bad = np.array([[1.0, 0.0], [0.0, -1.0]])
        with pytest.raises(VerificationError):
            cholesky_reference(bad)

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            cholesky_lower_in_place(np.zeros((2, 3)))


class TestTrsm:
    @pytest.mark.parametrize("n,mrows", [(1, 1), (4, 7), (9, 3)])
    def test_solves(self, n, mrows):
        l = random_lower_triangular(n, seed=n)
        b = random_tall_matrix(mrows, n, seed=n + 1)
        x = trsm_right_lower_transpose(l, b)
        np.testing.assert_allclose(x @ np.tril(l).T, b, rtol=1e-9, atol=1e-9)

    def test_element_loops_match(self):
        l = random_lower_triangular(6, seed=8)
        b = random_tall_matrix(4, 6, seed=9)
        np.testing.assert_allclose(
            trsm_element_loops(l, b), trsm_right_lower_transpose(l, b), rtol=1e-9
        )

    def test_dim_mismatch(self):
        with pytest.raises(ConfigurationError):
            trsm_right_lower_transpose(np.eye(3), np.zeros((2, 4)))


class TestGemmAndLu:
    def test_gemm(self):
        a = random_tall_matrix(4, 3, seed=10)
        b = random_tall_matrix(3, 5, seed=11)
        np.testing.assert_allclose(gemm_reference(a, b), a @ b, rtol=1e-12)
        c = np.ones((4, 5))
        np.testing.assert_allclose(gemm_reference(a, b, c, sign=-1.0), c - a @ b, rtol=1e-12)

    def test_gemm_dim_mismatch(self):
        with pytest.raises(ConfigurationError):
            gemm_reference(np.zeros((2, 3)), np.zeros((4, 2)))

    @pytest.mark.parametrize("n", [1, 2, 6, 15])
    def test_lu_reconstructs(self, n):
        a = random_diag_dominant_matrix(n, seed=n)
        l, u = lu_nopivot_reference(a)
        np.testing.assert_allclose(l @ u, a, rtol=1e-9)
        np.testing.assert_allclose(np.diag(l), 1.0)
        assert np.allclose(np.triu(l, 1), 0)
        assert np.allclose(np.tril(u, -1), 0)

    def test_lu_zero_pivot(self):
        with pytest.raises(VerificationError):
            lu_nopivot_in_place(np.zeros((2, 2)))


class TestOpsets:
    @pytest.mark.parametrize("n,m", [(2, 1), (4, 3), (7, 2)])
    def test_syrk_size_matches_enumeration(self, n, m):
        assert syrk_opset_size(n, m) == sum(1 for _ in iter_syrk_ops(n, m))

    @pytest.mark.parametrize("n", [3, 4, 6, 9])
    def test_cholesky_count_matches_enumeration(self, n):
        assert cholesky_update_count(n) == sum(1 for _ in iter_cholesky_updates(n))

    def test_triples_are_ordered(self):
        for (i, j, k) in iter_cholesky_updates(6):
            assert i > j > k
        for (i, j, k) in iter_syrk_ops(5, 3):
            assert i > j and 0 <= k < 3

    def test_restriction_and_footprint(self):
        b = [(3, 1, 0), (2, 0, 0), (3, 1, 1)]
        assert restriction(b, 0) == {(3, 1), (2, 0)}
        assert restriction(b, 1) == {(3, 1)}
        assert symmetric_footprint({(3, 1), (2, 0)}) == {0, 1, 2, 3}

    def test_data_accessed_example(self):
        # One C element updated at two iterations: 1 + 2 + 2 = 5.
        assert data_accessed([(1, 0, 0), (1, 0, 1)]) == 5

    def test_data_accessed_counts_distinct(self):
        # Triangle T on one iteration: 3 C elements, 3 A elements.
        b = [(1, 0, 0), (2, 0, 0), (2, 1, 0)]
        assert data_accessed(b) == 6

    def test_no_symmetry_never_smaller(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            b = {
                (int(i), int(j), int(k))
                for i, j, k in zip(
                    rng.integers(1, 8, 10), rng.integers(0, 7, 10), rng.integers(0, 4, 10)
                )
                if i > j
            }
            if b:
                assert data_accessed_no_symmetry(b) >= data_accessed(b)

    def test_symmetry_saving_on_triangle(self):
        # A full triangle at one iteration: footprint 3 vs 3+3 rows+cols... the
        # no-symmetry count treats row and column uses separately.
        b = [(1, 0, 0), (2, 0, 0), (2, 1, 0)]
        assert data_accessed_no_symmetry(b) == 3 + 2 + 2
        assert data_accessed(b) == 3 + 3


class TestFlops:
    def test_syrk_counts_match_enumeration(self):
        n, m = 6, 4
        assert syrk_mults(n, m, include_diagonal=False) == sum(1 for _ in iter_syrk_ops(n, m))
        assert syrk_mults(n, m) == n * (n + 1) // 2 * m
        assert syrk_flops(n, m) == 2 * syrk_mults(n, m)

    def test_cholesky_counts_match_enumeration(self):
        n = 7
        strict_updates = sum(1 for _ in iter_cholesky_updates(n))
        assert cholesky_update_mults(n) == strict_updates
        # Algorithm 2's loop includes j == i: count all updates directly.
        all_updates = sum(
            1
            for k in range(n)
            for i in range(k + 1, n)
            for j in range(k + 1, i + 1)
        )
        assert all_updates == (n**3 - n) // 6
        assert cholesky_mults(n) == all_updates + n * (n - 1) // 2
        assert cholesky_flops(n) == 2 * all_updates + n * (n - 1) // 2 + n

    def test_gemm_trsm_lu(self):
        assert gemm_mults(2, 3, 4) == 24
        assert trsm_mults(3, 5) == 5 * (3 + 3)
        assert trsm_flops(3, 5) == 5 * (2 * 3 + 3)
        # LU: updates sum (n-k-1)^2 + divisions n(n-1)/2
        assert lu_mults(3) == (4 + 1 + 0) + 3
        assert lu_flops(3) == 2 * 5 + 3
