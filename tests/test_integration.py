"""End-to-end integration tests across modules.

These are the cross-cutting guarantees: record -> validate -> replay
round-trips; strict vs counting machines agree on I/O; the block-level
machine and the element-level pebble machine agree on results; the paper's
headline inequalities hold end-to-end on real runs.
"""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.baselines.ooc_chol import ooc_chol
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.bounds import cholesky_lower_bound, syrk_lower_bound
from repro.core.lbc import lbc_cholesky
from repro.core.tbs import tbs_syrk
from repro.kernels.reference import cholesky_reference, syrk_reference
from repro.machine.pebble import ExplicitPebbleMachine
from repro.sched.schedule import record_schedule, replay_schedule
from repro.sched.validate import validate_schedule
from repro.utils.rng import random_spd_matrix, random_tall_matrix


class TestRecordValidateReplay:
    @pytest.mark.parametrize("alg", ["tbs", "ocs"])
    def test_syrk_pipeline(self, alg):
        n, mc, s = 33, 4, 15
        a = random_tall_matrix(n, mc, seed=1)

        m1 = TwoLevelMachine(s)
        m1.add_matrix("A", a)
        m1.add_matrix("C", np.zeros((n, n)))
        fn = tbs_syrk if alg == "tbs" else ooc_syrk
        sched = record_schedule(m1, lambda: fn(m1, "A", "C", range(n), range(mc)))

        # 1. independent legality check
        summary = validate_schedule(sched, capacity=s)
        assert summary["peak_occupancy"] <= s
        # 2. replay equivalence (fresh machine, same inputs)
        m2 = TwoLevelMachine(s)
        m2.add_matrix("A", a)
        m2.add_matrix("C", np.zeros((n, n)))
        replay_schedule(sched, m2)
        np.testing.assert_allclose(m2.result("C"), m1.result("C"))
        assert m2.stats.loads == m1.stats.loads
        # 3. numeric verification
        np.testing.assert_allclose(
            np.tril(m1.result("C")), np.tril(syrk_reference(a)), rtol=1e-10, atol=1e-12
        )

    def test_lbc_pipeline(self):
        n, s, b = 16, 15, 4
        a = random_spd_matrix(n, seed=2)
        m1 = TwoLevelMachine(s)
        m1.add_matrix("A", a)
        sched = record_schedule(m1, lambda: lbc_cholesky(m1, "A", range(n), b=b))
        validate_schedule(sched, capacity=s)
        m2 = TwoLevelMachine(s)
        m2.add_matrix("A", a)
        replay_schedule(sched, m2)
        np.testing.assert_allclose(m2.result("A"), m1.result("A"))
        np.testing.assert_allclose(np.tril(m1.result("A")), cholesky_reference(a), rtol=1e-9)


class TestStrictVsCounting:
    @pytest.mark.parametrize(
        "make",
        [
            lambda m: tbs_syrk(m, "A", "C", range(29), range(3)),
            lambda m: ooc_syrk(m, "A", "C", range(29), range(3)),
        ],
    )
    def test_identical_io_accounting(self, make):
        a = random_tall_matrix(29, 3, seed=3)

        def build(strict, numerics):
            m = TwoLevelMachine(15, strict=strict, numerics=numerics)
            m.add_matrix("A", a)
            m.add_matrix("C", np.zeros((29, 29)))
            st = make(m)
            return st

        st_strict = build(True, True)
        st_count = build(False, False)
        assert st_strict.loads == st_count.loads
        assert st_strict.stores == st_count.stores
        assert st_strict.mults == st_count.mults
        assert st_strict.peak_occupancy == st_count.peak_occupancy

    def test_nonstrict_numerics_also_correct(self):
        # Non-strict mode computes in place in slow memory; results must
        # still be exactly right for legal schedules.
        a = random_tall_matrix(26, 4, seed=4)
        m = TwoLevelMachine(15, strict=False)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((26, 26)))
        tbs_syrk(m, "A", "C", range(26), range(4))
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a)), rtol=1e-10, atol=1e-12
        )


class TestBlockVsPebbleEquivalence:
    def test_same_result_same_loads_for_equivalent_schedule(self):
        # Execute OOC_SYRK's exact schedule element-by-element on the
        # explicit pebble machine: identical loads, stores, and numbers.
        n, mc, s = 6, 2, 15
        a = random_tall_matrix(n, mc, seed=5)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        stats = ooc_syrk(m, "A", "C", range(n), range(mc))

        pm = ExplicitPebbleMachine(s)
        pm.add_matrix("A", a)
        pm.add_matrix("C", np.zeros((n, n)))
        tile = 3  # square_tile_side_for_memory(15)
        blocks = [list(range(0, 3)), list(range(3, 6))]
        for bi, ri in enumerate(blocks):
            # diagonal tile (lower incl diag)
            elems = [("C", i, j) for i in ri for j in ri if j <= i]
            for e in elems:
                pm.load(e)
            for k in range(mc):
                segs = [("A", i, k) for i in ri]
                for e in segs:
                    pm.load(e)
                for i in ri:
                    for j in ri:
                        if j <= i:
                            pm.op_muladd(("C", i, j), ("A", i, k), ("A", j, k))
                for e in segs:
                    pm.evict(e, writeback=False)
            for e in elems:
                pm.evict(e, writeback=True)
            for rj in blocks[:bi]:
                elems = [("C", i, j) for i in ri for j in rj]
                for e in elems:
                    pm.load(e)
                for k in range(mc):
                    segs = [("A", i, k) for i in ri] + [("A", j, k) for j in rj]
                    for e in segs:
                        pm.load(e)
                    for i in ri:
                        for j in rj:
                            pm.op_muladd(("C", i, j), ("A", i, k), ("A", j, k))
                    for e in segs:
                        pm.evict(e, writeback=False)
                for e in elems:
                    pm.evict(e, writeback=True)

        assert pm.loads == stats.loads
        assert pm.stores == stats.stores
        assert pm.mults == stats.mults
        np.testing.assert_allclose(pm.result("C"), m.result("C"), rtol=1e-12)


class TestHeadlineInequalities:
    def test_syrk_sandwich(self):
        # lower bound <= TBS <= OCS on every tested shape.
        for n, mc, s in [(40, 6, 15), (54, 3, 15), (66, 8, 21)]:
            mt = TwoLevelMachine(s, strict=False, numerics=False)
            mt.add_matrix("A", np.zeros((n, mc)))
            mt.add_matrix("C", np.zeros((n, n)))
            t = tbs_syrk(mt, "A", "C", range(n), range(mc))
            mo = TwoLevelMachine(s, strict=False, numerics=False)
            mo.add_matrix("A", np.zeros((n, mc)))
            mo.add_matrix("C", np.zeros((n, n)))
            o = ooc_syrk(mo, "A", "C", range(n), range(mc))
            lb = syrk_lower_bound(n, mc, s, form="exact")
            assert lb <= t.loads <= o.loads

    def test_cholesky_sandwich(self):
        # N must be past the LBC/OCC crossover (~130 at S=15): below it the
        # right-looking C-reload term still outweighs the sqrt(2) saving.
        n, s, b = 144, 15, 12
        ml = TwoLevelMachine(s, strict=False, numerics=False)
        ml.add_matrix("A", np.zeros((n, n)))
        l = lbc_cholesky(ml, "A", range(n), b=b)
        mo = TwoLevelMachine(s, strict=False, numerics=False)
        mo.add_matrix("A", np.zeros((n, n)))
        o = ooc_chol(mo, "A", range(n))
        lb = cholesky_lower_bound(n, s, form="exact")
        assert lb <= l.loads <= o.loads
