"""Tests for indexing families (Definitions 5.1-5.4, Lemmas 5.3 and 5.5)."""

import math

import pytest

from repro.core.indexing import (
    CyclicIndexingFamily,
    IndexingFamily,
    block_row_indices,
    blocks_are_disjoint,
    cyclic_family_is_applicable,
    is_valid_indexing_family,
)
from repro.errors import ConfigurationError
from repro.utils.primes import primorial_up_to


class TestCyclicDefinition:
    @pytest.mark.parametrize("c,k", [(5, 4), (5, 5), (7, 5), (11, 6), (7, 4)])
    def test_anchoring(self, c, k):
        fam = CyclicIndexingFamily(c, k)
        fam.check_definition()  # f(0) = j, f(1) = i

    def test_formula(self):
        fam = CyclicIndexingFamily(5, 4)
        assert fam.position(2, 3, 0) == 3
        assert fam.position(2, 3, 1) == 2
        assert fam.position(2, 3, 2) == (2 + 3 * 1) % 5
        assert fam.position(2, 3, 3) == (2 + 3 * 2) % 5

    def test_out_of_range(self):
        fam = CyclicIndexingFamily(5, 4)
        with pytest.raises(ConfigurationError):
            fam.position(5, 0, 0)
        with pytest.raises(ConfigurationError):
            fam.position(0, 0, 4)

    def test_rows_equation_1(self):
        fam = CyclicIndexingFamily(5, 4)
        rows = fam.rows(2, 3)
        assert list(rows) == [0 * 5 + 3, 1 * 5 + 2, 2 * 5 + (2 + 3) % 5, 3 * 5 + (2 + 6) % 5]

    def test_block_row_indices_helper(self):
        assert list(block_row_indices(5, 4, 2, 3)) == list(CyclicIndexingFamily(5, 4).rows(2, 3))


class TestLemma55:
    """c >= k-1 and c coprime with [2, k-2]  =>  the cyclic family is valid."""

    @pytest.mark.parametrize(
        "c,k",
        [(5, 4), (5, 5), (7, 5), (7, 6), (11, 6), (11, 7), (13, 7), (25, 5), (29, 6)],
    )
    def test_applicable_families_are_valid(self, c, k):
        assert cyclic_family_is_applicable(c, k)
        fam = CyclicIndexingFamily(c, k)
        assert is_valid_indexing_family(fam)

    @pytest.mark.parametrize("c,k", [(5, 4), (7, 5), (11, 6)])
    def test_validity_implies_disjoint_blocks(self, c, k):
        # Lemma 5.3: valid family => pairwise disjoint triangle blocks.
        fam = CyclicIndexingFamily(c, k)
        assert blocks_are_disjoint(fam)

    @pytest.mark.parametrize("c,k", [(6, 5), (8, 6), (9, 5), (10, 6)])
    def test_non_coprime_c_is_invalid(self, c, k):
        # When c shares a factor with some d in [2, k-2], the cyclic family
        # collides (two blocks agree on two zone-rows) -> blocks overlap.
        assert not cyclic_family_is_applicable(c, k)
        fam = CyclicIndexingFamily(c, k, check=False)
        assert not is_valid_indexing_family(fam)
        assert not blocks_are_disjoint(fam)

    def test_c_below_k_minus_1_rejected(self):
        with pytest.raises(ConfigurationError):
            CyclicIndexingFamily(3, 5)

    def test_applicability_predicate(self):
        assert cyclic_family_is_applicable(5, 5)      # gcd(5, 6) = 1
        assert not cyclic_family_is_applicable(6, 5)  # gcd(6, 6) = 6
        assert not cyclic_family_is_applicable(3, 5)  # c < k-1
        q = primorial_up_to(8 - 2)
        for c in range(7, 60):
            assert cyclic_family_is_applicable(c, 8) == (math.gcd(c, q) == 1)

    def test_k2_and_k3_always_applicable_when_large(self):
        # [2, k-2] is empty for k <= 3: every c >= k-1 works.
        assert cyclic_family_is_applicable(2, 3)
        assert cyclic_family_is_applicable(1, 2)
        assert is_valid_indexing_family(CyclicIndexingFamily(4, 3))


class TestValidityPredicate:
    def test_injectivity_logic(self):
        # A hand-built invalid family: constant on u >= 2.
        class Bad(IndexingFamily):
            def position(self, i, j, u):
                if u == 0:
                    return j
                if u == 1:
                    return i
                return 0  # every block agrees on rows u=2,3,... -> invalid

        fam = Bad(4, 4)
        assert not is_valid_indexing_family(fam)
        assert not blocks_are_disjoint(fam)

    def test_all_rows_count(self):
        fam = CyclicIndexingFamily(5, 4)
        rows = fam.all_rows()
        assert len(rows) == 25
        for (_i, _j), r in rows.items():
            assert len(r) == 4
            # one row per zone-row group
            assert sorted(v // 5 for v in r) == [0, 1, 2, 3]
