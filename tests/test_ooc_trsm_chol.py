"""Tests for the OOC_TRSM and OOC_CHOL baselines."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.model import ooc_chol_model, ooc_trsm_model
from repro.baselines.ooc_chol import ooc_chol
from repro.baselines.ooc_trsm import ooc_trsm
from repro.core.bounds import cholesky_lower_bound
from repro.errors import ConfigurationError
from repro.kernels.reference import cholesky_reference, trsm_right_lower_transpose
from repro.utils.rng import random_lower_triangular, random_spd_matrix, random_tall_matrix


class TestOocTrsm:
    def run(self, ntri, mrows, s=15, seed=0):
        l = random_lower_triangular(ntri, seed=seed)
        b = random_tall_matrix(mrows, ntri, seed=seed + 1)
        m = TwoLevelMachine(s)
        m.add_matrix("L", l)
        m.add_matrix("B", b)
        stats = ooc_trsm(m, "L", "B", range(ntri), range(mrows))
        m.assert_empty()
        return l, b, m, stats

    @pytest.mark.parametrize("ntri,mrows", [(1, 1), (3, 5), (8, 8), (13, 21), (7, 2)])
    def test_numerics(self, ntri, mrows):
        l, b, m, _ = self.run(ntri, mrows)
        want = trsm_right_lower_transpose(l, b)
        np.testing.assert_allclose(m.result("B"), want, rtol=1e-9, atol=1e-10)

    @pytest.mark.parametrize("ntri,mrows,s", [(5, 9, 15), (13, 21, 15), (10, 10, 24)])
    def test_measured_equals_model(self, ntri, mrows, s):
        _, _, _, stats = self.run(ntri, mrows, s=s)
        pred = ooc_trsm_model(ntri, mrows, s)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_peak_within_capacity(self):
        _, _, _, stats = self.run(12, 17, s=15)
        assert stats.peak_occupancy <= 15

    def test_same_matrix_l_and_x(self):
        # LBC-style in-place panel solve within one backing matrix.
        n, b = 9, 3
        spd = random_spd_matrix(n, seed=4)
        ref_l = cholesky_reference(spd)
        work = spd.copy()
        work[:b, :b] = ref_l[:b, :b]  # pretend the diagonal block is factored
        m = TwoLevelMachine(15)
        m.add_matrix("A", work)
        ooc_trsm(m, "A", "A", np.arange(b), np.arange(b, n))
        m.assert_empty()
        np.testing.assert_allclose(m.result("A")[b:, :b], ref_l[b:, :b], rtol=1e-9)

    def test_oversized_tile_rejected(self):
        m = TwoLevelMachine(15)
        m.add_matrix("L", np.eye(4))
        m.add_matrix("B", np.zeros((4, 4)))
        with pytest.raises(ConfigurationError):
            ooc_trsm(m, "L", "B", range(4), range(4), tile=4)


class TestOocChol:
    def run(self, n, s=15, seed=0):
        a = random_spd_matrix(n, seed=seed)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        stats = ooc_chol(m, "A", range(n))
        m.assert_empty()
        return a, m, stats

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 17, 30])
    def test_numerics(self, n):
        a, m, _ = self.run(n)
        np.testing.assert_allclose(
            np.tril(m.result("A")), cholesky_reference(a), rtol=1e-9, atol=1e-10
        )

    @pytest.mark.parametrize("n,s", [(9, 15), (22, 15), (30, 24), (14, 48)])
    def test_measured_equals_model(self, n, s):
        _, _, stats = self.run(n, s=s)
        pred = ooc_chol_model(n, s)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_above_lower_bound(self):
        n, s = 30, 15
        _, _, stats = self.run(n, s=s)
        assert stats.loads >= cholesky_lower_bound(n, s, form="exact")

    def test_peak_within_capacity(self):
        _, _, stats = self.run(25, s=15)
        assert stats.peak_occupancy <= 15

    def test_each_tile_loaded_once_leading(self):
        # Every element of the lower triangle is loaded exactly once as tile
        # traffic; the rest of the loads are streamed updates/solves.
        n, s = 20, 15
        _, _, stats = self.run(n, s=s)
        assert stats.stores_by_matrix["A"] == n * (n + 1) // 2

    def test_submatrix_factorization(self):
        # Factor a trailing diagonal block of a larger matrix in place.
        big = random_spd_matrix(12, seed=9)
        rows = np.arange(5, 12)
        m = TwoLevelMachine(15)
        m.add_matrix("A", big)
        ooc_chol(m, "A", rows)
        m.assert_empty()
        want = cholesky_reference(big[np.ix_(rows, rows)])
        got = np.tril(m.result("A")[np.ix_(rows, rows)])
        np.testing.assert_allclose(got, want, rtol=1e-9)
