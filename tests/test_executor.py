"""Tests for the sharded task-DAG executor (repro.parallel.executor)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph, OpNode
from repro.graph.rewriter import rewrite_schedule
from repro.parallel import (
    PARTITIONERS,
    execute_graph,
    owner_from_assignment,
    partition_graph,
    record_block_schedule,
    shard_schedule,
    simulate_syrk,
    square_tile_assignment,
    triangle_block_assignment,
)
from repro.sched.schedule import ComputeStep
from repro.sched.validate import validate_schedule
from repro.trace.replay import belady_replay_trace, lru_replay_trace

N, M, S = 33, 4, 15


@pytest.fixture(scope="module")
def tbs_case():
    return record_case("tbs", N, M, S)


@pytest.fixture(scope="module")
def tbs_graph(tbs_case):
    return DependencyGraph.from_trace(tbs_case.trace)


class TestPartitioners:
    @pytest.mark.parametrize("heuristic", PARTITIONERS)
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_every_op_assigned_once(self, tbs_graph, heuristic, p):
        owner = partition_graph(tbs_graph, p, heuristic)
        assert len(owner) == len(tbs_graph)
        assert set(owner) <= set(range(p))

    @pytest.mark.parametrize("heuristic", PARTITIONERS)
    def test_p1_is_trivial(self, tbs_graph, heuristic):
        assert partition_graph(tbs_graph, 1, heuristic) == [0] * len(tbs_graph)

    def test_level_greedy_uses_antichains(self, tbs_graph):
        # ops at equal depth are mutually independent; the partitioner may
        # spread any level across nodes without violating an edge
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        depth = tbs_graph.depths()
        for u, v, _kinds in tbs_graph.edges():
            assert depth[u] < depth[v]
        assert len(set(owner)) == 4

    def test_owner_computes_never_splits_writers(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "owner-computes")
        elem_writer: dict[int, int] = {}
        for v, node in enumerate(tbs_graph.nodes):
            for key in node.write_keys:
                assert elem_writer.setdefault(key, owner[v]) == owner[v]

    def test_owner_computes_zero_cut_for_syrk(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "owner-computes")
        assert tbs_graph.cut_edges(owner) == []
        assert tbs_graph.cut_transfers(owner) == {}

    def test_locality_respects_balance_slack(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "locality")
        mults = [0] * 4
        for v, node in enumerate(tbs_graph.nodes):
            mults[owner[v]] += max(int(node.op.mults), 1)
        assert max(mults) <= 1.2 * sum(mults) / 4 + max(
            max(int(n.op.mults), 1) for n in tbs_graph.nodes
        )

    def test_locality_slack_one_accepts_exact_balance(self):
        # Regression: the float cap `slack * sum(weights) / p` rounded below
        # the exact bound when the total is unrepresentable, so at
        # balance_slack=1.0 every node was "full", the cap fell back to
        # all-nodes, and affinity piled uniform ops onto one node.  The
        # integer cap keeps exact balance reachable: three uniform ops that
        # share an operand must still spread one-per-node.
        class _HugeOp:
            mults = 3002399751580331  # 3 * mults == 2**53 + 1 (inexact)

        nodes = [
            OpNode(
                index=i, op=_HugeOp(),
                input_keys=frozenset({99}), write_keys=frozenset({100 + i}),
            )
            for i in range(3)
        ]
        graph = DependencyGraph(nodes)
        owner = partition_graph(graph, 3, "locality", balance_slack=1.0)
        assert sorted(owner) == [0, 1, 2]

    def test_bad_args(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            partition_graph(tbs_graph, 0)
        with pytest.raises(ConfigurationError):
            partition_graph(tbs_graph, 2, "random")


class TestCutAccounting:
    def test_cut_edges_vs_manual(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        cut = tbs_graph.cut_edges(owner)
        expected = [(u, v, k) for u, v, k in tbs_graph.edges() if owner[u] != owner[v]]
        assert cut == expected

    def test_cut_transfers_elements_are_shared_writes(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        flows = tbs_graph.cut_transfers(owner)
        for (src, dst), elems in flows.items():
            assert src != dst
            produced = set()
            for v, node in enumerate(tbs_graph.nodes):
                if owner[v] == src:
                    produced |= node.write_keys
            assert elems <= produced

    def test_owner_length_checked(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            tbs_graph.cut_edges([0])


class TestExecutorSingleNode:
    def test_p1_rewrite_matches_single_node_optimum(self, tbs_case):
        summ = execute_graph(tbs_case.schedule, 1, S, policy="rewrite")
        base = rewrite_schedule(tbs_case.trace, S)
        assert (summ.shards[0].recv, summ.shards[0].send) == (base.loads, base.stores)
        assert summ.peak_ok

    @pytest.mark.parametrize("policy,replay", [
        ("lru", lru_replay_trace), ("belady", belady_replay_trace),
    ])
    def test_p1_counting_policies_bit_identical(self, tbs_case, policy, replay):
        summ = execute_graph(tbs_case.schedule, 1, S, policy=policy)
        ref = replay(tbs_case.trace, S)
        assert (summ.shards[0].recv, summ.shards[0].send) == (ref.loads, ref.stores)


class TestExecutorSharded:
    @pytest.mark.parametrize("p", [1, 4, 16])
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_peak_within_s_and_work_conserved(self, tbs_case, tbs_graph, p, partitioner):
        summ = execute_graph(
            tbs_case.schedule, p, S, partitioner=partitioner, policy="rewrite",
            graph=tbs_graph,
        )
        assert summ.peak_ok
        assert sum(r.n_ops for r in summ.shards) == len(tbs_graph)
        assert summ.total_mults == sum(int(n.op.mults) for n in tbs_graph.nodes)
        assert summ.compute_imbalance >= 1.0

    def test_transfer_totals_match_flows(self, tbs_case, tbs_graph):
        summ = execute_graph(tbs_case.schedule, 4, S, partitioner="level-greedy",
                             policy="lru", graph=tbs_graph)
        flows = tbs_graph.cut_transfers(list(summ.owner))
        assert summ.total_transfer == sum(len(e) for e in flows.values())
        # global in/out symmetry: every transferred element leaves exactly
        # one shard and arrives at exactly one (asserted inside
        # execute_graph too; total_transfer used to sum only the receiving
        # side with no cross-check against the senders)
        assert summ.total_transfer_out == summ.total_transfer
        assert summ.max_transfer_out <= summ.total_transfer_out
        assert summ.max_recv_incl_transfers >= summ.max_recv

    def test_summary_carries_weighted_span_and_makespan(self, tbs_case, tbs_graph):
        summ = execute_graph(tbs_case.schedule, 4, S, partitioner="level-greedy",
                             policy="lru", graph=tbs_graph, alpha=2.0, beta=0.5)
        mults = [float(n.op.mults) for n in tbs_graph.nodes]
        # units: critical_path counts ops, critical_path_mults counts work
        assert summ.critical_path == int(tbs_graph.critical_path_cost())
        assert summ.critical_path_mults == int(tbs_graph.critical_path_cost(mults))
        assert (summ.alpha, summ.beta) == (2.0, 0.5)
        assert summ.makespan >= max(summ.critical_path_mults,
                                    max(r.mults for r in summ.shards))

    def test_partitioner_label_override(self, tbs_case, tbs_graph):
        owner = partition_graph(tbs_graph, 3, "owner-computes")
        summ = execute_graph(tbs_case.schedule, 3, S, owner=owner, policy="lru",
                             graph=tbs_graph, partitioner_label="oc+refine")
        assert summ.partitioner == "oc+refine"

    def test_empty_shards_report_zero(self, tbs_case):
        # more nodes than ops is legal; idle shards report zeros
        p = len(DependencyGraph.from_trace(tbs_case.trace)) + 3
        summ = execute_graph(tbs_case.schedule, p, S, partitioner="level-greedy",
                             policy="lru")
        idle = [r for r in summ.shards if r.n_ops == 0]
        assert idle and all(r.recv == r.send == r.peak_memory == 0 for r in idle)
        assert summ.peak_ok

    def test_chol_case_executes(self):
        case = record_case("chol", 16, 0, S)
        summ = execute_graph(case.schedule, 4, S, partitioner="locality",
                             policy="rewrite")
        assert summ.peak_ok
        # every distinct element must be received by at least one shard
        assert summ.total_recv >= case.trace.n_elements
        assert sum(r.n_ops for r in summ.shards) == summ.n_ops

    def test_explicit_owner_roundtrip(self, tbs_case, tbs_graph):
        owner = partition_graph(tbs_graph, 3, "owner-computes")
        summ = execute_graph(tbs_case.schedule, 3, S, owner=owner, policy="lru",
                             graph=tbs_graph)
        assert summ.owner == tuple(owner)
        assert summ.partitioner == "explicit-owner"

    def test_mismatched_graph_rejected(self, tbs_case):
        # Regression: a graph from a different recording used to silently
        # truncate the replay instead of raising.
        other = record_case("tbs", 20, 2, S)
        small_graph = DependencyGraph.from_trace(other.trace)
        with pytest.raises(ConfigurationError, match="same recorded run"):
            execute_graph(tbs_case.schedule, 2, S, graph=small_graph)

    def test_graph_trace_reused(self, tbs_case, tbs_graph):
        summ = execute_graph(tbs_case.schedule, 2, S, policy="lru", graph=tbs_graph)
        direct = execute_graph(tbs_case.trace, 2, S, policy="lru", graph=tbs_graph)
        assert [(r.recv, r.send) for r in summ.shards] == \
            [(r.recv, r.send) for r in direct.shards]

    def test_bad_args(self, tbs_case):
        with pytest.raises(ConfigurationError):
            execute_graph(tbs_case.schedule, 2, 0)
        with pytest.raises(ConfigurationError):
            execute_graph(tbs_case.schedule, 2, S, policy="magic")
        with pytest.raises(ConfigurationError):
            execute_graph(tbs_case.trace, 2, S, policy="explicit")
        with pytest.raises(ConfigurationError):
            execute_graph(tbs_case.schedule, 2, S, owner=[0])
        with pytest.raises(ConfigurationError):
            execute_graph(tbs_case.schedule, 2, S,
                          owner=[5] * len(tbs_case.trace.ops))


class TestExplicitSharding:
    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    def test_bit_identical_to_simulate_syrk(self, mk):
        n, p, m = 40, 4, 3
        asg = mk(n, p, S)
        sched, owner = record_block_schedule(asg, m)
        fixed = simulate_syrk(asg, m)
        summ = execute_graph(sched, p, S, owner=owner, policy="explicit")
        for sr, nr in zip(summ.shards, fixed.nodes):
            assert sr.recv == nr.total_recv
            assert sr.send == nr.c_send
            assert sr.mults == nr.mults
            assert sr.peak_memory == nr.peak_memory

    def test_owner_from_assignment_matches_recorded_owner(self):
        asg = triangle_block_assignment(30, 3, S)
        sched, owner = record_block_schedule(asg, 3)
        graph = DependencyGraph.from_schedule(sched)
        derived = owner_from_assignment(graph, asg)
        assert derived == owner

    def test_shards_are_valid_schedules(self):
        asg = square_tile_assignment(24, 3, S)
        sched, owner = record_block_schedule(asg, 3)
        shards = shard_schedule(sched, owner)
        assert len(shards) == 3
        for shard in shards:
            validate_schedule(shard, S)
        # per-node computes partition the original stream
        total = sum(
            sum(1 for s in shard.steps if isinstance(s, ComputeStep))
            for shard in shards
        )
        assert total == len(owner)

    def test_shard_volume_partitions_original(self):
        # every load of the recorded block strategy serves exactly one node,
        # so the per-node volumes sum to the original's
        asg = triangle_block_assignment(30, 4, S)
        sched, owner = record_block_schedule(asg, 3)
        shards = shard_schedule(sched, owner)
        loads, stores = sched.io_volume()
        shard_io = [shard.io_volume() for shard in shards]
        assert sum(l for l, _ in shard_io) == loads
        assert sum(st for _, st in shard_io) == stores

    def test_owner_length_mismatch(self):
        asg = square_tile_assignment(12, 2, S)
        sched, owner = record_block_schedule(asg, 2)
        with pytest.raises(ConfigurationError):
            shard_schedule(sched, owner[:-1])

    def test_idle_top_nodes_report_zero(self):
        # Regression: p larger than the highest owner index used to crash
        # the explicit policy with IndexError instead of reporting idle
        # shards.
        asg = square_tile_assignment(12, 2, S)
        sched, owner = record_block_schedule(asg, 2)
        summ = execute_graph(sched, 5, S, owner=owner, policy="explicit")
        assert len(summ.shards) == 5
        idle = [r for r in summ.shards if r.n_ops == 0]
        assert len(idle) == 3
        assert all(r.recv == r.send == r.peak_memory == 0 for r in idle)
        assert shard_schedule(sched, [0] * len(owner), 3)[2].steps == []
        with pytest.raises(ConfigurationError):
            shard_schedule(sched, owner, 1)

    def test_owner_from_assignment_rejects_foreign_schedule(self, tbs_case):
        # a TBS recording's ops write C pairs spanning several nodes' shares
        graph = DependencyGraph.from_trace(tbs_case.trace)
        asg = square_tile_assignment(N, 4, S)
        with pytest.raises(ConfigurationError):
            owner_from_assignment(graph, asg)
