"""Tests for triangle blocks and the sigma machinery (Definitions 3.3-3.5, Lemma 3.6)."""

import math

import pytest

from repro.core.triangle import (
    canonical_triangle,
    max_triangle_elements_for_footprint,
    sigma,
    side_length,
    symmetric_footprint_size,
    triangle_block,
    triangle_block_size,
)


class TestTriangleBlock:
    def test_small(self):
        assert triangle_block([0, 2, 5]) == {(2, 0), (5, 0), (5, 2)}
        assert triangle_block([3]) == set()
        assert triangle_block([]) == set()

    @pytest.mark.parametrize("side", range(7))
    def test_size_formula(self, side):
        rows = list(range(0, 2 * side, 2))
        assert len(triangle_block(rows)) == triangle_block_size(side)

    def test_all_pairs_subdiagonal(self):
        for i, j in triangle_block([1, 4, 7, 9]):
            assert i > j

    def test_negative_side_rejected(self):
        with pytest.raises(ValueError):
            triangle_block_size(-1)


class TestSigma:
    def test_lemma_3_6_closed_form(self):
        # sigma(m) = ceil(sqrt(1/4 + 2m) + 1/2) for m >= 1.
        for m in range(1, 500):
            expected = math.ceil(math.sqrt(0.25 + 2 * m) + 0.5)
            assert sigma(m) == expected, m

    def test_sigma_zero(self):
        assert sigma(0) == 0

    @pytest.mark.parametrize("m", range(1, 200))
    def test_sigma_is_minimal_side(self, m):
        s = sigma(m)
        assert s * (s - 1) // 2 >= m
        assert (s - 1) * (s - 2) // 2 < m

    def test_sigma_concave_increments(self):
        # sigma is concave in the discrete sense used by Lemma 4.3:
        # increments are non-increasing.
        vals = [sigma(m) for m in range(0, 300)]
        diffs = [vals[i + 1] - vals[i] for i in range(len(vals) - 1)]
        # after the initial jump, increments are 0 or 1 and "spread out"
        assert all(d in (0, 1, 2) for d in diffs)
        assert diffs[0] == 2  # sigma(1) - sigma(0) = 2

    def test_sigma_subadditive(self):
        # sigma(a + b) <= sigma(a) + sigma(b): the property Lemma 4.3's
        # rebalancing argument needs (consolidating per-iteration work into
        # full chunks never increases the footprint sum).
        for a in range(1, 80):
            for b in range(1, 80):
                assert sigma(a + b) <= sigma(a) + sigma(b)

    def test_consolidation_dominance_continuous(self):
        # Lemma 4.3's middle inequality holds with the *continuous* sigma
        # (concave): for any decomposition {m_k} of x with max part m,
        # K*sigma_real(m) + sigma_real(x - K*m) <= sum_k sigma_real(m_k).
        from repro.core.triangle import sigma_real

        def decomps(total, largest):
            if total == 0:
                yield ()
                return
            for part in range(min(total, largest), 0, -1):
                for rest in decomps(total - part, part):
                    yield (part,) + rest

        for x in range(1, 16):
            for parts in decomps(x, x):
                m = max(parts)
                k_full, rem = divmod(x, m)
                balanced = k_full * sigma_real(m) + sigma_real(rem)
                assert balanced <= sum(sigma_real(p) for p in parts) + 1e-9, (x, parts)

    def test_consolidation_integer_slack_bounded(self):
        # Reproduction finding: with the integer sigma the inequality can
        # fail (e.g. parts (4,3,3)), but only by rounding slack, bounded by
        # the number of non-empty balanced iterations.
        def decomps(total, largest):
            if total == 0:
                yield ()
                return
            for part in range(min(total, largest), 0, -1):
                for rest in decomps(total - part, part):
                    yield (part,) + rest

        worst = 0
        for x in range(1, 16):
            for parts in decomps(x, x):
                m = max(parts)
                k_full, rem = divmod(x, m)
                balanced = k_full * sigma(m) + sigma(rem)
                slack = balanced - sum(sigma(p) for p in parts)
                worst = max(worst, slack)
                assert slack <= k_full + 1, (x, parts)
        assert worst >= 1  # the (4,3,3) counterexample family exists

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sigma(-1)


class TestCanonicalTriangle:
    @pytest.mark.parametrize("m", range(0, 100))
    def test_size_and_footprint(self, m):
        t = canonical_triangle(m)
        assert len(t) == m
        assert symmetric_footprint_size(t) == sigma(m)

    def test_prefix_property(self):
        # T(m') is a subset of T(m) for m' <= m (needed by Definition 4.2's
        # union argument: the union of all restrictions is T(m)).
        for m in range(0, 40):
            for mp in range(0, m + 1):
                assert canonical_triangle(mp) <= canonical_triangle(m)

    def test_within_sigma_rows(self):
        t = canonical_triangle(17)
        s = sigma(17)
        assert all(0 <= j < i < s for i, j in t)


class TestFootprint:
    def test_side_length(self):
        assert side_length({(2, 0), (5, 0)}) == 3
        assert side_length(set()) == 0

    def test_max_elements_inverse(self):
        for f in range(0, 50):
            m = max_triangle_elements_for_footprint(f)
            assert m == f * (f - 1) // 2
            if m > 0:
                assert sigma(m) <= f

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            max_triangle_elements_for_footprint(-2)
