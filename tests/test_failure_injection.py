"""Failure injection: every way a schedule can be wrong must fail loudly.

The simulator's value as a measurement instrument rests on these: capacity
violations, non-resident touches, redundant loads, and omitted writebacks
must all be *detected*, not silently absorbed.
"""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.errors import (
    CapacityError,
    RedundantLoadError,
    ResidencyError,
    ScheduleError,
)
from repro.sched.ops import OuterColsUpdate, TriangleUpdate
from repro.sched.schedule import EvictStep, LoadStep, Schedule, record_schedule
from repro.sched.validate import validate_schedule


def machine(s=10, **kw):
    m = TwoLevelMachine(s, **kw)
    m.add_matrix("A", np.arange(20, dtype=float).reshape(5, 4))
    m.add_matrix("C", np.zeros((5, 5)))
    return m


class TestCapacityInjection:
    def test_oversized_single_load(self):
        m = machine(s=3)
        with pytest.raises(CapacityError) as exc:
            m.load(m.tile("A", [0, 1], [0, 1]))
        assert exc.value.requested == 4
        assert exc.value.capacity == 3

    def test_accumulated_overflow(self):
        m = machine(s=4)
        m.load(m.tile("A", [0], [0, 1, 2]))
        with pytest.raises(CapacityError):
            m.load(m.tile("A", [1], [0, 1]))

    def test_failed_load_leaves_state_clean(self):
        m = machine(s=4)
        m.load(m.tile("A", [0], [0, 1, 2]))
        before = m.stats.loads
        with pytest.raises(CapacityError):
            m.load(m.tile("A", [1], [0, 1]))
        assert m.stats.loads == before
        assert m.occupancy() == 3
        # the rejected region is loadable after making room
        m.evict(m.tile("A", [0], [0, 1, 2]))
        m.load(m.tile("A", [1], [0, 1]))


class TestResidencyInjection:
    def test_compute_on_missing_input(self):
        m = machine()
        m.load(m.tile("C", [1], [0]))
        m.load(m.column_segment("A", [1], 0))
        # forgot A[0, 0]
        with pytest.raises(ResidencyError):
            m.compute(OuterColsUpdate(m, "C", "A", "A", [1], [0], 0, 0))

    def test_compute_on_missing_output(self):
        m = machine()
        m.load(m.column_segment("A", [1], 0))
        m.load(m.column_segment("A", [0], 0))
        with pytest.raises(ResidencyError):
            m.compute(OuterColsUpdate(m, "C", "A", "A", [1], [0], 0, 0))

    def test_partial_residency_detected(self):
        m = machine()
        m.load(m.triangle_block("C", [0, 1, 2]))
        m.load(m.column_segment("A", [0, 1], 0))  # missing row 2
        with pytest.raises(ResidencyError):
            m.compute(TriangleUpdate(m, "C", "A", [0, 1, 2], 0))

    def test_evict_partial(self):
        m = machine()
        m.load(m.tile("C", [0], [0]))
        with pytest.raises(ResidencyError):
            m.evict(m.tile("C", [0], [0, 1]))


class TestRedundantLoadInjection:
    def test_detected_by_default(self):
        m = machine()
        m.load(m.tile("A", [0], [0, 1]))
        with pytest.raises(RedundantLoadError):
            m.load(m.tile("A", [0], [1, 2]))  # overlaps in (0,1)

    def test_validator_catches_it_too(self):
        m = machine(allow_redundant_loads=True)
        sched = record_schedule(
            m,
            lambda: (m.load(m.tile("A", [0], [0])), m.load(m.tile("A", [0], [0]))),
        )
        with pytest.raises(ScheduleError, match="redundant"):
            validate_schedule(sched, capacity=10, require_empty_end=False)


class TestWritebackOmission:
    def test_strict_mode_detects_lost_update(self):
        # A schedule that computes but forgets the writeback produces a
        # stale slow-memory result -> verification against the reference
        # fails.  This is the NaN-poison/strictness contract.
        m = machine()
        a = m.result("A").copy()
        tile = m.tile("C", [1], [0])
        m.load(tile)
        m.load(m.column_segment("A", [1], 1))
        m.load(m.column_segment("A", [0], 1))
        m.compute(OuterColsUpdate(m, "C", "A", "A", [1], [0], 1, 1))
        m.evict(tile, writeback=False)  # BUG injected here
        expected = a[1, 1] * a[0, 1]
        assert expected != 0.0
        assert m.result("C")[1, 0] != pytest.approx(expected)

    def test_forgotten_load_poisons_result(self):
        # Reading C without loading it first is impossible (residency), but
        # a *wrongly-scoped* load is the sneakier bug: load only part of a
        # region via a differently-shaped op. Strict mode NaNs anything not
        # covered, so the result cannot silently look right.
        m = machine()
        ws = m.workspace("C")
        assert np.isnan(ws).all()


class TestValidatorEndState:
    def test_leak_detection(self):
        m = machine()
        sched = record_schedule(m, lambda: m.load(m.tile("A", [0], [0])))
        with pytest.raises(ScheduleError, match="not empty"):
            validate_schedule(sched, capacity=10)
        # but tolerated when explicitly allowed
        summary = validate_schedule(sched, capacity=10, require_empty_end=False)
        assert summary["loads"] == 1

    def test_evict_never_loaded(self):
        m = machine()
        reg = m.tile("A", [0], [0])
        sched = Schedule(steps=[EvictStep(reg, False)], shapes={"A": (5, 4), "C": (5, 5)})
        with pytest.raises(ScheduleError, match="non-resident"):
            validate_schedule(sched, capacity=10)
