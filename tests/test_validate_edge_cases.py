"""Edge-case coverage for sched/validate.py (machine-independent referee).

Complements tests/test_schedule.py: redundant loads under
``allow_redundant_loads``, unknown matrices from every step type,
``require_empty_end=False``, and the guarantee that every violation message
names the offending step index.
"""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.errors import ScheduleError
from repro.machine.regions import Region
from repro.sched.ops import OuterColsUpdate
from repro.sched.schedule import ComputeStep, EvictStep, LoadStep, Schedule
from repro.sched.validate import validate_schedule


def region(matrix, flats):
    return Region(matrix, np.array(flats, dtype=np.int64))


def simple_schedule(steps, shapes=None):
    return Schedule(steps=list(steps), shapes=shapes or {"A": (2, 2)})


class TestRedundantLoads:
    def schedule(self):
        r = region("A", [0, 1])
        return simple_schedule([LoadStep(r), LoadStep(r), EvictStep(r, writeback=False)])

    def test_rejected_by_default(self):
        with pytest.raises(ScheduleError, match="redundant"):
            validate_schedule(self.schedule(), capacity=4)

    def test_allowed_when_opted_in(self):
        summary = validate_schedule(self.schedule(), capacity=4, allow_redundant_loads=True)
        # the wasted traffic is still counted: both loads contribute
        assert summary["loads"] == 4
        assert summary["peak_occupancy"] == 2

    def test_partial_overlap_counts_full_region(self):
        sched = simple_schedule(
            [
                LoadStep(region("A", [0, 1])),
                LoadStep(region("A", [1, 2])),  # element 1 redundant
                EvictStep(region("A", [0, 1, 2]), writeback=False),
            ]
        )
        summary = validate_schedule(sched, capacity=4, allow_redundant_loads=True)
        assert summary["loads"] == 4
        assert summary["peak_occupancy"] == 3

    def test_redundant_load_still_capacity_checked(self):
        # only the *fresh* elements count against capacity
        sched = simple_schedule(
            [
                LoadStep(region("A", [0, 1])),
                LoadStep(region("A", [0, 1, 2])),
                EvictStep(region("A", [0, 1, 2]), writeback=False),
            ]
        )
        summary = validate_schedule(sched, capacity=3, allow_redundant_loads=True)
        assert summary["peak_occupancy"] == 3


class TestUnknownMatrix:
    def test_unknown_in_load(self):
        sched = simple_schedule([LoadStep(region("X", [0]))])
        with pytest.raises(ScheduleError, match="unknown matrix 'X'"):
            validate_schedule(sched, capacity=4)

    def test_unknown_in_evict(self):
        sched = simple_schedule([EvictStep(region("X", [0]), writeback=False)])
        with pytest.raises(ScheduleError, match="unknown matrix 'X'"):
            validate_schedule(sched, capacity=4)

    def test_unknown_in_compute(self):
        m = TwoLevelMachine(8)
        m.add_matrix("A", np.zeros((2, 2)))
        op = OuterColsUpdate(m, "A", "A", "A", [0], [1], 0, 0)
        sched = simple_schedule([ComputeStep(op)], shapes={"B": (2, 2)})
        with pytest.raises(ScheduleError, match="unknown matrix 'A'"):
            validate_schedule(sched, capacity=4)


class TestEmptyEnd:
    def schedule(self):
        return simple_schedule([LoadStep(region("A", [0, 1]))])

    def test_nonempty_end_rejected_by_default(self):
        with pytest.raises(ScheduleError, match="not empty"):
            validate_schedule(self.schedule(), capacity=4)

    def test_nonempty_end_allowed_when_opted_out(self):
        summary = validate_schedule(self.schedule(), capacity=4, require_empty_end=False)
        assert summary == {"loads": 2, "stores": 0, "peak_occupancy": 2}


class TestMessagesNameTheStep:
    def test_redundant_load_names_step(self):
        r = region("A", [0])
        sched = simple_schedule([LoadStep(r), LoadStep(r)])
        with pytest.raises(ScheduleError, match=r"step 1:"):
            validate_schedule(sched, capacity=4)

    def test_capacity_violation_names_step(self):
        sched = simple_schedule(
            [LoadStep(region("A", [0, 1])), LoadStep(region("A", [2, 3]))]
        )
        with pytest.raises(ScheduleError, match=r"step 1:.*capacity 3"):
            validate_schedule(sched, capacity=3)

    def test_evict_nonresident_names_step(self):
        sched = simple_schedule(
            [LoadStep(region("A", [0])), EvictStep(region("A", [0, 1]), writeback=False)]
        )
        with pytest.raises(ScheduleError, match=r"step 1:.*non-resident"):
            validate_schedule(sched, capacity=4)

    def test_compute_nonresident_names_step(self):
        m = TwoLevelMachine(8)
        m.add_matrix("A", np.zeros((2, 2)))
        op = OuterColsUpdate(m, "A", "A", "A", [0], [1], 0, 0)
        sched = simple_schedule(
            [LoadStep(region("A", [0])), ComputeStep(op)], shapes={"A": (2, 2)}
        )
        with pytest.raises(ScheduleError, match=r"step 1: compute.*non-resident"):
            validate_schedule(sched, capacity=8)
