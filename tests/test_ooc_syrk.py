"""Tests for the OOC_SYRK baseline: numerics, exact model match, invariants."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.model import ooc_syrk_model, ooc_syrk_rect_model, ooc_syrk_strip_model
from repro.baselines.ooc_syrk import ooc_syrk, ooc_syrk_rect, ooc_syrk_strip
from repro.core.bounds import syrk_lower_bound
from repro.errors import ConfigurationError
from repro.kernels.flops import syrk_mults
from repro.kernels.reference import syrk_reference
from repro.utils.rng import random_tall_matrix


def run_syrk(n, mc, s=15, sign=1.0, seed=0, c0=None, **kw):
    a = random_tall_matrix(n, mc, seed=seed)
    m = TwoLevelMachine(s)
    m.add_matrix("A", a)
    m.add_matrix("C", np.zeros((n, n)) if c0 is None else c0)
    stats = ooc_syrk(m, "A", "C", range(n), range(mc), sign=sign, **kw)
    m.assert_empty()
    return a, m, stats


class TestNumerics:
    @pytest.mark.parametrize("n,mc", [(1, 1), (3, 2), (7, 5), (10, 3), (23, 4)])
    def test_matches_reference(self, n, mc):
        a, m, _ = run_syrk(n, mc)
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a)), rtol=1e-10, atol=1e-12
        )

    def test_accumulates_into_existing_c(self):
        c0 = np.arange(49, dtype=float).reshape(7, 7)
        a, m, _ = run_syrk(7, 3, c0=c0.copy())
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a, c0)), rtol=1e-10
        )

    def test_negative_sign(self):
        a, m, _ = run_syrk(9, 2, sign=-1.0)
        np.testing.assert_allclose(
            np.tril(m.result("C")), -np.tril(a @ a.T), rtol=1e-10, atol=1e-12
        )

    def test_upper_triangle_untouched(self):
        c0 = np.full((8, 8), 5.0)
        _, m, _ = run_syrk(8, 2, c0=c0.copy())
        np.testing.assert_array_equal(np.triu(m.result("C"), 1), np.triu(c0, 1))

    def test_submatrix_rows(self):
        # Operate on a scattered row subset of a bigger matrix.
        a = random_tall_matrix(12, 4, seed=3)
        rows = np.array([1, 3, 4, 8, 9, 11])
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((12, 12)))
        ooc_syrk(m, "A", "C", rows, range(4))
        m.assert_empty()
        sub = a[rows]
        want = np.tril(sub @ sub.T)
        got = m.result("C")[np.ix_(rows, rows)]
        np.testing.assert_allclose(np.tril(got), want, rtol=1e-10, atol=1e-12)


class TestAccounting:
    @pytest.mark.parametrize("n,mc,s", [(7, 3, 15), (20, 5, 15), (33, 2, 24), (40, 7, 35)])
    def test_measured_equals_model(self, n, mc, s):
        _, _, stats = run_syrk(n, mc, s=s)
        pred = ooc_syrk_model(n, mc, s)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_peak_within_capacity(self):
        _, _, stats = run_syrk(25, 6, s=15)
        assert stats.peak_occupancy <= 15

    def test_work_is_full_syrk(self):
        n, mc = 18, 4
        _, _, stats = run_syrk(n, mc)
        assert stats.mults == syrk_mults(n, mc, include_diagonal=True)

    def test_above_lower_bound(self):
        n, mc, s = 40, 8, 15
        _, _, stats = run_syrk(n, mc, s=s)
        assert stats.loads >= syrk_lower_bound(n, mc, s, form="exact")

    def test_c_loaded_exactly_once(self):
        n, mc = 21, 3
        _, _, stats = run_syrk(n, mc)
        assert stats.loads_by_matrix["C"] == n * (n + 1) // 2
        assert stats.stores_by_matrix["C"] == n * (n + 1) // 2

    def test_explicit_tile_override(self):
        _, _, stats = run_syrk(20, 3, s=24, tile=2)
        pred = ooc_syrk_model(20, 3, 24, tile=2)
        assert stats.loads == pred.loads

    def test_oversized_tile_rejected(self):
        with pytest.raises(ConfigurationError):
            run_syrk(10, 2, s=15, tile=4)  # 16 + 8 > 15


class TestRect:
    def test_numerics_and_model(self):
        a = random_tall_matrix(14, 3, seed=5)
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((14, 14)))
        ri, rj = np.arange(8, 14), np.arange(0, 8)
        stats = ooc_syrk_rect(m, "A", "C", ri, rj, range(3))
        m.assert_empty()
        want = a[ri] @ a[rj].T
        np.testing.assert_allclose(m.result("C")[np.ix_(ri, rj)], want, rtol=1e-10)
        pred = ooc_syrk_rect_model(6, 8, 3, 15)
        assert stats.loads == pred.loads

    def test_overlapping_rows_rejected(self):
        m = TwoLevelMachine(15)
        m.add_matrix("A", np.zeros((6, 2)))
        m.add_matrix("C", np.zeros((6, 6)))
        with pytest.raises(ConfigurationError):
            ooc_syrk_rect(m, "A", "C", [0, 1, 2], [2, 3], range(2))


class TestStrip:
    def test_computes_trapezoid(self):
        a = random_tall_matrix(15, 3, seed=6)
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((15, 15)))
        strip, prior = np.arange(10, 15), np.arange(0, 10)
        stats = ooc_syrk_strip(m, "A", "C", strip, prior, range(3))
        m.assert_empty()
        full = np.tril(a @ a.T)
        got = m.result("C")
        # strip rows complete ...
        np.testing.assert_allclose(got[10:, :], full[10:, :], rtol=1e-10, atol=1e-12)
        # ... and nothing else written
        assert np.all(got[:10, :] == 0)
        pred = ooc_syrk_strip_model(5, 10, 3, 15)
        assert stats.loads == pred.loads

    def test_empty_strip_is_noop(self):
        m = TwoLevelMachine(15)
        m.add_matrix("A", np.zeros((5, 2)))
        m.add_matrix("C", np.zeros((5, 5)))
        stats = ooc_syrk_strip(m, "A", "C", [], np.arange(5), range(2))
        assert stats.loads == 0

    def test_misordered_strip_rejected(self):
        m = TwoLevelMachine(15)
        m.add_matrix("A", np.zeros((6, 2)))
        m.add_matrix("C", np.zeros((6, 6)))
        with pytest.raises(ConfigurationError):
            ooc_syrk_strip(m, "A", "C", [0, 1], [2, 3], range(2))
