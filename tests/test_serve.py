"""Tests for the schedule-serving layer (:mod:`repro.serve`).

Covers the three tiers and their contracts: content-addressed store
round-trips (bit-identical replays), corruption/stale-manifest recovery
(bad objects read as misses, never exceptions), the bounded cache's LRU
semantics pinned against the array replay engines on the same access
log, the oracle's Belady equivalence, and the async front end's
single-flight guarantee (N concurrent duplicates → exactly one search).
"""

import asyncio
import json
import os
import threading
import time

import numpy as np
import pytest

from repro.__main__ import main
from repro.errors import ConfigurationError
from repro.graph.compare import record_case
from repro.obs.probe import probe_scope
from repro.sched.schedule import Schedule, replay_schedule
from repro.serve import (
    ScheduleCache,
    ScheduleKey,
    ScheduleService,
    ScheduleStore,
    log_to_trace,
    warm_store,
)
from repro.trace.replay import belady_replay_trace, lru_replay_trace

CASE_ARGS = ("tbs", 20, 3, 10)


@pytest.fixture(scope="module")
def case():
    return record_case(*CASE_ARGS)


@pytest.fixture
def key():
    return ScheduleKey("tbs", 20, 3, 10)


@pytest.fixture
def store(tmp_path):
    return ScheduleStore(tmp_path / "store")


class TestScheduleKey:
    def test_digest_is_spelling_independent(self):
        a = ScheduleKey("tbs", 40, 6, 15, p=1, alpha=1, beta=1)
        b = ScheduleKey("tbs", np.int64(40), 6.0, 15, p=True, alpha=1.0, beta=1.0)
        assert a == b and a.digest() == b.digest()

    def test_dict_roundtrip(self, key):
        assert ScheduleKey.from_dict(key.as_dict()) == key
        assert json.loads(key.canonical()) == key.as_dict()

    def test_every_field_addresses(self, key):
        for other in (
            ScheduleKey("ocs", 20, 3, 10),
            ScheduleKey("tbs", 21, 3, 10),
            ScheduleKey("tbs", 20, 4, 10),
            ScheduleKey("tbs", 20, 3, 11),
            ScheduleKey("tbs", 20, 3, 10, p=4),
            ScheduleKey("tbs", 20, 3, 10, policy="search"),
            ScheduleKey("tbs", 20, 3, 10, alpha=2.0),
            ScheduleKey("tbs", 20, 3, 10, beta=0.5),
        ):
            assert other.digest() != key.digest()

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            ScheduleKey("tbs", 0, 3, 10)
        with pytest.raises(ConfigurationError):
            ScheduleKey("tbs", 20, 3, 10, p=0)

    def test_sortable(self, key):
        assert sorted([ScheduleKey("tbs", 30, 3, 10), key])[0] == key


class TestScheduleStore:
    def test_put_get_bit_identical(self, store, case, key):
        digest = store.put(key, case.schedule)
        assert digest == key.digest()
        assert key in store and len(store) == 1
        loaded = store.get(key)
        assert case.check_exact(loaded)  # replays to bit-identical results

    def test_missing_is_none(self, store, key):
        assert store.get(key) is None
        assert key not in store

    def test_second_instance_same_root(self, store, case, key):
        store.put(key, case.schedule)
        again = ScheduleStore(store.root)
        assert again.get(key) is not None

    def test_corrupt_object_reads_as_miss(self, store, case, key):
        store.put(key, case.schedule)
        with open(store.object_path(key), "wb") as fh:
            fh.write(b"this is not a zip archive")
        with probe_scope() as probe:
            assert store.get(key) is None
        assert probe.counters["serve.store.corrupt"] == 1
        # a fresh put repairs the entry
        store.put(key, case.schedule)
        assert store.get(key) is not None

    def test_truncated_object_reads_as_miss(self, store, case, key):
        store.put(key, case.schedule)
        path = store.object_path(key)
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.truncate(size // 2)
        assert store.get(key) is None

    def test_deleted_manifest_recovers(self, store, case, key):
        store.put(key, case.schedule)
        os.unlink(os.path.join(store.root, "manifest.json"))
        assert store.get(key) is not None     # get never needs the manifest
        stats = store.stats()                  # stats rescans the objects
        assert stats["entries"] == 1 and stats["bytes"] > 0

    def test_garbage_manifest_recovers(self, store, case, key):
        store.put(key, case.schedule)
        with open(os.path.join(store.root, "manifest.json"), "w") as fh:
            fh.write("{ not json")
        assert store.get(key) is not None
        assert store.stats()["entries"] == 1

    def test_stale_manifest_entry_dropped(self, store, case, key):
        store.put(key, case.schedule)
        os.unlink(store.object_path(key))
        assert store.get(key) is None
        assert store.stats()["entries"] == 0   # rescan drops the ghost

    def test_keys_listing(self, store, case, key):
        store.put(key, case.schedule)
        other = ScheduleKey("tbs", 20, 3, 10, policy="search")
        store.put(other, case.schedule)
        assert store.keys() == sorted([key, other])
        assert sorted(store.digests()) == sorted([key.digest(), other.digest()])

    def test_orphan_object_adopted_keyless(self, store, case, key):
        store.put(key, case.schedule)
        os.unlink(os.path.join(store.root, "manifest.json"))
        assert store.keys() == []              # orphan: digest serves, key lost
        assert store.stats()["entries"] == 1

    def test_interrupted_put_keeps_old_entry(self, store, case, key, monkeypatch):
        import repro.trace.io as tio

        store.put(key, case.schedule)
        before = open(store.object_path(key), "rb").read()

        real = tio.np.savez_compressed

        def torn(path, **arrays):
            with open(path, "wb") as fh:
                fh.write(b"PK\x03\x04 torn mid-write")
            raise KeyboardInterrupt

        monkeypatch.setattr(tio.np, "savez_compressed", torn)
        with pytest.raises(KeyboardInterrupt):
            store.put(key, case.schedule)
        monkeypatch.setattr(tio.np, "savez_compressed", real)
        assert open(store.object_path(key), "rb").read() == before
        assert store.get(key) is not None

    def test_stats_shape(self, store, case, key):
        store.put(key, case.schedule)
        stats = store.stats()
        assert stats["per_kernel"] == {"tbs": 1}
        assert stats["per_policy"] == {"heuristic": 1}


class TestScheduleCache:
    def test_bound_is_hard(self):
        cache = ScheduleCache(3)
        for i in range(50):
            d = f"k{i % 7}"
            if cache.get(d) is None:
                cache.put(d, i)
            assert len(cache) <= 3
        assert cache.evictions > 0

    def test_lru_eviction_order(self):
        cache = ScheduleCache(3)
        for d in ("a", "b", "c"):
            cache.get(d)
            cache.put(d, d)
        assert cache.get("a") == "a"       # refresh a: b is now the LRU entry
        cache.put("d", "d")
        assert "b" not in cache
        assert all(d in cache for d in ("a", "c", "d"))

    def test_put_refresh_never_evicts(self):
        cache = ScheduleCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)                  # refresh, not insert
        assert cache.evictions == 0 and cache.get("a") == 3

    def test_lru_matches_replay_engine(self):
        rng = np.random.default_rng(7)
        log = [f"k{i}" for i in rng.integers(0, 12, size=400)]
        trace = log_to_trace(log)
        for capacity in (1, 2, 3, 5, 8, 12, 20):
            cache = ScheduleCache.replay(log, capacity)
            ref = lru_replay_trace(trace, capacity)
            assert cache.misses == ref.loads, capacity
            assert cache.hits == ref.n_accesses - ref.loads

    def test_oracle_matches_belady_engine(self):
        rng = np.random.default_rng(11)
        log = [f"k{i}" for i in rng.integers(0, 10, size=300)]
        trace = log_to_trace(log)
        for capacity in (1, 2, 4, 6, 10):
            cache = ScheduleCache.replay(log, capacity, "oracle")
            ref = belady_replay_trace(trace, capacity)
            assert cache.misses == ref.loads, capacity
            lru = ScheduleCache.replay(log, capacity)
            assert cache.hits >= lru.hits  # the oracle is a floor on misses

    def test_oracle_needs_and_checks_its_log(self):
        with pytest.raises(ConfigurationError, match="future"):
            ScheduleCache(2, "oracle")
        with pytest.raises(ConfigurationError, match="future"):
            ScheduleCache(2, "lru", future=["a"])
        cache = ScheduleCache(2, "oracle", future=["a", "b"])
        cache.get("a")
        with pytest.raises(ConfigurationError, match="recorded log"):
            cache.get("x")

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ScheduleCache(0)
        with pytest.raises(ConfigurationError):
            ScheduleCache(2, "fifo")

    def test_log_records_gets(self):
        cache = ScheduleCache(2)
        cache.get("a"); cache.put("a", 1); cache.get("a")
        assert cache.log == ["a", "a"]
        assert cache.hit_rate == 0.5

    def test_evictions_counted_on_probe(self):
        with probe_scope() as probe:
            ScheduleCache.replay(["a", "b", "c", "a"], 1)
        assert probe.counters["serve.evictions"] == 3


def run(coro):
    return asyncio.run(coro)


class SlowSearcher:
    """A deliberately slow, call-counting fake searcher (thread-safe)."""

    def __init__(self, schedule, delay=0.05, fail_first=False):
        self.schedule = schedule
        self.delay = delay
        self.fail_first = fail_first
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, key):
        with self._lock:
            self.calls += 1
            first = self.calls == 1
        time.sleep(self.delay)
        if self.fail_first and first:
            raise RuntimeError("transient search failure")
        return self.schedule


class TestScheduleService:
    def test_single_flight(self, store, case, key):
        searcher = SlowSearcher(case.schedule)
        service = ScheduleService(store, ScheduleCache(4), searcher=searcher)

        async def fan_out():
            return await asyncio.gather(
                *[service.get_schedule(key) for _ in range(16)]
            )

        with probe_scope() as probe:
            results = run(fan_out())
        assert searcher.calls == 1
        assert all(r is results[0] for r in results)
        assert service.searches == 1 and service.misses == 1
        assert service.coalesced == 15
        assert probe.counters["serve.coalesced"] == 15
        assert probe.counters["serve.searches"] == 1

    def test_memory_then_store_tiers(self, store, case, key):
        searcher = SlowSearcher(case.schedule, delay=0.0)
        service = ScheduleService(store, ScheduleCache(4), searcher=searcher)
        run(service.get_schedule(key))
        run(service.get_schedule(key))
        assert (service.searches, service.hits, service.store_hits) == (1, 1, 0)
        # a fresh service over the same root serves from disk, no search
        cold = ScheduleService(store, ScheduleCache(4), searcher=searcher)
        run(cold.get_schedule(key))
        assert (cold.searches, cold.store_hits) == (0, 1)
        assert searcher.calls == 1

    def test_no_cache_tier(self, store, case, key):
        searcher = SlowSearcher(case.schedule, delay=0.0)
        service = ScheduleService(store, None, searcher=searcher)
        run(service.get_schedule(key))
        run(service.get_schedule(key))
        assert service.hits == 0 and service.store_hits == 1
        assert service.stats_snapshot()["searches"] == 1

    def test_corrupt_store_falls_through_to_search(self, store, case, key):
        store.put(key, case.schedule)
        with open(store.object_path(key), "wb") as fh:
            fh.write(b"garbage")
        searcher = SlowSearcher(case.schedule, delay=0.0)
        service = ScheduleService(store, ScheduleCache(4), searcher=searcher)
        run(service.get_schedule(key))
        assert searcher.calls == 1         # corrupt entry read as a miss
        assert store.get(key) is not None  # ... and the search repaired it

    def test_search_failure_propagates_then_retries(self, store, case, key):
        searcher = SlowSearcher(case.schedule, delay=0.01, fail_first=True)

        async def herd():
            return await asyncio.gather(
                *[service.get_schedule(key) for _ in range(4)],
                return_exceptions=True,
            )

        service = ScheduleService(store, ScheduleCache(4), searcher=searcher)
        results = run(herd())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert searcher.calls == 1         # the herd shared one failure
        # the failed flight is gone; the next request searches again
        assert run(service.get_schedule(key)) is case.schedule
        assert searcher.calls == 2

    def test_concurrency_stress(self, store, case):
        keys = [ScheduleKey("tbs", 20, 3, 10 + i) for i in range(6)]
        rng = np.random.default_rng(3)
        stream = [keys[i] for i in rng.integers(0, len(keys), size=60)]
        searcher = SlowSearcher(case.schedule, delay=0.02)
        service = ScheduleService(store, ScheduleCache(3), searcher=searcher)

        async def herd():
            return await asyncio.gather(*[service.get_schedule(k) for k in stream])

        results = run(herd())
        distinct = len({k.digest() for k in stream})
        assert searcher.calls == distinct  # one search per distinct key, ever
        assert service.searches == distinct
        assert len(results) == len(stream)
        assert len(service.cache) <= 3
        snap = service.stats_snapshot()
        assert snap["requests"] == len(stream)
        assert (snap["hits"] + snap["store_hits"] + snap["misses"]
                + snap["coalesced"]) == len(stream)

    def test_real_searcher_by_policy(self, store, key):
        service = ScheduleService(store, ScheduleCache(2))
        schedule = run(service.get_schedule(key))
        assert isinstance(schedule, Schedule)
        assert service.searches == 1
        case = record_case(*CASE_ARGS)
        assert case.check_exact(schedule)

    def test_unknown_policy_raises(self, store):
        bad = ScheduleKey("tbs", 20, 3, 10, policy="magic")
        service = ScheduleService(store, ScheduleCache(2))
        with pytest.raises(ConfigurationError, match="policy"):
            run(service.get_schedule(bad))

    def test_async_context_manager(self, store, case, key):
        async def scenario():
            async with ScheduleService(
                store, searcher=SlowSearcher(case.schedule, delay=0.0)
            ) as service:
                await service.get_schedule(key)
                return service

        assert run(scenario()).searches == 1


class TestWarmStore:
    def test_warm_fills_misses_only(self, store, key):
        other = ScheduleKey("tbs", 22, 3, 10)
        assert warm_store(store, [key, other]) == [key, other]
        assert warm_store(store, [key, other]) == []
        assert warm_store(store, [key], force=True) == [key]
        assert len(store) == 2

    def test_warm_parallel_matches_serial(self, tmp_path):
        keys = [ScheduleKey("tbs", 20, 3, 10), ScheduleKey("tbs", 22, 3, 10)]
        serial = ScheduleStore(tmp_path / "serial")
        fanned = ScheduleStore(tmp_path / "fanned")
        warm_store(serial, keys, jobs=1)
        warm_store(fanned, keys, jobs=2)
        for key in keys:
            a, b = serial.get(key), fanned.get(key)
            assert len(a.steps) == len(b.steps)
            assert a.io_volume() == b.io_volume()


class TestServeCli:
    def test_warm_query_stats_roundtrip(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        base = ["--store", root, "--kernel", "tbs", "--ns", "20", "22",
                "--m", "3", "--s", "10"]
        assert main(["serve", "warm"] + base) == 0
        out = capsys.readouterr().out
        assert "2 searched" in out
        assert main(["serve", "warm"] + base) == 0
        assert "0 searched" in capsys.readouterr().out
        assert main(
            ["serve", "query"] + base
            + ["--requests", "40", "--cache-size", "2", "--batch", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "mem hits" in out and "coalesced" in out
        stats_json = str(tmp_path / "serve_stats.json")
        assert main(["serve", "stats", "--store", root, "--json", stats_json]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        doc = json.loads(open(stats_json).read())
        assert doc["experiment"] == "serve_stats"
        assert "provenance" in doc and doc["rows"][0]["entries"] == 2

    def test_query_cold_searches(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        assert main(
            ["serve", "query", "--store", root, "--kernel", "tbs",
             "--ns", "20", "--m", "3", "--s", "10",
             "--requests", "8", "--cache-size", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "searches" in out and "mean cold search" in out


def test_loaded_schedule_replays(tmp_path, case):
    """End to end: serve → load → replay on a fresh machine, bit-identical."""
    store = ScheduleStore(tmp_path / "s")
    key = ScheduleKey(*CASE_ARGS)
    warm_store(store, [key])
    m = case.make_machine()
    replay_schedule(store.get(key), m)
    m.assert_empty()
    assert np.array_equal(m.result("C"), case.reference["C"])
