"""Tests for transfer-aware partition refinement and the makespan model."""

import pytest

from repro.errors import ConfigurationError, ScheduleError
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph, OpNode
from repro.parallel import (
    PARTITIONERS,
    REFINE_STRATEGIES,
    PartitionLedger,
    balance_cap,
    execute_graph,
    makespan_model,
    partition_cost,
    partition_graph,
    refine_partition,
    write_groups,
)

N, M, S = 33, 4, 15


@pytest.fixture(scope="module")
def tbs_case():
    return record_case("tbs", N, M, S)


@pytest.fixture(scope="module")
def tbs_graph(tbs_case):
    return DependencyGraph.from_trace(tbs_case.trace)


def model_cost_from_scratch(graph, owner, p):
    """Brute-force recomputation of the ledger's objective."""
    footprint = [set() for _ in range(p)]
    for v, node in enumerate(graph.nodes):
        footprint[owner[v]] |= node.touched_keys()
    transfer_in = [0] * p
    for (_src, dst), elems in graph.cut_transfers(list(owner)).items():
        transfer_in[dst] += len(elems)
    return max(len(f) + t for f, t in zip(footprint, transfer_in))


class TestPartitionLedger:
    def test_initial_state_matches_scratch(self, tbs_graph):
        for part in PARTITIONERS:
            owner = partition_graph(tbs_graph, 4, part)
            ledger = PartitionLedger(tbs_graph, owner, 4)
            assert ledger.cost() == model_cost_from_scratch(tbs_graph, owner, 4)
            flows = tbs_graph.cut_transfers(owner)
            assert sum(ledger.transfer_in) == sum(len(e) for e in flows.values())
            assert sum(ledger.transfer_in) == sum(ledger.transfer_out)

    def test_incremental_moves_match_scratch(self, tbs_graph):
        import random

        rng = random.Random(11)
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        ledger = PartitionLedger(tbs_graph, owner, 4)
        for _ in range(60):
            v = rng.randrange(len(tbs_graph))
            q = rng.randrange(4)
            ledger.move(v, q)
        assert ledger.cost() == model_cost_from_scratch(tbs_graph, ledger.owner, 4)
        assert sum(ledger.transfer_in) == sum(ledger.transfer_out)

    def test_move_then_undo_restores_exactly(self, tbs_graph):
        owner = partition_graph(tbs_graph, 3, "locality")
        ledger = PartitionLedger(tbs_graph, owner, 3)
        before = (
            list(ledger.owner), list(ledger.footprint),
            list(ledger.transfer_in), list(ledger.transfer_out),
            list(ledger.loads), dict(ledger.pair_count),
        )
        group = [0, 1, len(tbs_graph) // 2]
        undo = ledger.move_group(group, 2)
        ledger.undo(undo)
        after = (
            list(ledger.owner), list(ledger.footprint),
            list(ledger.transfer_in), list(ledger.transfer_out),
            list(ledger.loads), dict(ledger.pair_count),
        )
        assert before == after

    def test_bad_args(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            PartitionLedger(tbs_graph, [0], 2)
        with pytest.raises(ConfigurationError):
            PartitionLedger(tbs_graph, [5] * len(tbs_graph), 2)


class TestPartitionCost:
    def test_matches_executor(self, tbs_case, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        for policy in ("belady", "lru"):
            cost = partition_cost(tbs_graph, owner, 4, S, policy=policy)
            summ = execute_graph(
                tbs_case.schedule, 4, S, owner=owner, policy=policy,
                graph=tbs_graph,
            )
            assert cost == summ.max_recv_incl_transfers

    def test_bad_args(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            partition_cost(tbs_graph, [0] * len(tbs_graph), 1, S, policy="magic")
        with pytest.raises(ConfigurationError):
            partition_cost(tbs_graph, [0], 1, S)
        with pytest.raises(ConfigurationError):
            partition_cost(tbs_graph, [3] * len(tbs_graph), 2, S)


class TestRefinePartition:
    @pytest.mark.parametrize("strategy", REFINE_STRATEGIES)
    def test_never_worse_and_exact_cover(self, tbs_graph, strategy):
        seed = partition_graph(tbs_graph, 4, "level-greedy")
        result = refine_partition(
            tbs_graph, seed, 4, S, strategy=strategy, iters=120, max_moves=64
        )
        assert result.cost <= result.seed_cost
        assert result.cost == partition_cost(tbs_graph, result.owner, 4, S)
        assert result.seed_cost == partition_cost(tbs_graph, seed, 4, S)
        assert len(result.owner) == len(tbs_graph)
        assert set(result.owner) <= set(range(4))
        assert result.seed_owner == tuple(seed)

    def test_greedy_improves_level_greedy(self, tbs_graph):
        seed = partition_graph(tbs_graph, 4, "level-greedy")
        result = refine_partition(tbs_graph, seed, 4, S, strategy="greedy")
        assert result.improved
        assert result.moves > 0

    def test_keep_writers_together_preserves_exclusive_writers(self, tbs_graph):
        seed = partition_graph(tbs_graph, 4, "owner-computes")
        result = refine_partition(
            tbs_graph, seed, 4, S, strategy="greedy", keep_writers_together=True
        )
        writer: dict[int, int] = {}
        for v, node in enumerate(tbs_graph.nodes):
            for key in node.write_keys:
                assert writer.setdefault(key, result.owner[v]) == result.owner[v]

    def test_balance_slack_respected(self, tbs_graph):
        seed = partition_graph(tbs_graph, 4, "level-greedy")
        slack = 1.1
        result = refine_partition(
            tbs_graph, seed, 4, S, strategy="greedy", balance_slack=slack
        )
        weights = [max(int(n.op.mults), 1) for n in tbs_graph.nodes]
        cap = max(
            balance_cap(sum(weights), 4, slack),
            max(
                sum(w for v, w in enumerate(weights) if seed[v] == q)
                for q in range(4)
            ),
        )
        loads = [0] * 4
        for v, q in enumerate(result.owner):
            loads[q] += weights[v]
        assert max(loads) <= cap

    def test_p1_is_noop(self, tbs_graph):
        seed = [0] * len(tbs_graph)
        result = refine_partition(tbs_graph, seed, 1, S)
        assert result.owner == tuple(seed)
        assert result.cost == result.seed_cost

    def test_bad_args(self, tbs_graph):
        seed = [0] * len(tbs_graph)
        with pytest.raises(ConfigurationError):
            refine_partition(tbs_graph, seed, 2, S, strategy="magic")
        with pytest.raises(ConfigurationError):
            refine_partition(tbs_graph, seed, 0, S)
        with pytest.raises(ConfigurationError):
            refine_partition(tbs_graph, seed, 2, 0)
        with pytest.raises(ConfigurationError):
            refine_partition(tbs_graph, seed, 2, S, iters=-1)
        with pytest.raises(ConfigurationError):
            refine_partition(tbs_graph, seed, 2, S, max_moves=-1)


class TestWriteGroups:
    def test_partition_of_ops_and_exclusive_writes(self, tbs_graph):
        groups = write_groups(tbs_graph)
        seen = sorted(v for g in groups for v in g)
        assert seen == list(range(len(tbs_graph)))
        group_of = {}
        for gi, g in enumerate(groups):
            for v in g:
                group_of[v] = gi
        writer: dict[int, int] = {}
        for v, node in enumerate(tbs_graph.nodes):
            for key in node.write_keys:
                assert writer.setdefault(key, group_of[v]) == group_of[v]


class TestMakespanModel:
    def test_p1_serializes_all_work(self, tbs_graph):
        ms = makespan_model(tbs_graph, [0] * len(tbs_graph))
        total = sum(float(n.op.mults) for n in tbs_graph.nodes)
        assert ms.makespan == total
        assert ms.comm_latency == 0 and ms.n_cross_edges == 0
        assert ms.parallel_efficiency == pytest.approx(1.0)

    def test_bounded_below_by_both_floors(self, tbs_graph):
        for part in PARTITIONERS:
            owner = partition_graph(tbs_graph, 4, part)
            ms = makespan_model(tbs_graph, owner)
            assert ms.makespan >= ms.critical_path
            assert ms.makespan >= ms.max_busy
            assert 0 < ms.parallel_efficiency <= 1.0

    def test_alpha_beta_monotone(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        lo = makespan_model(tbs_graph, owner, alpha=0.0, beta=0.0)
        hi = makespan_model(tbs_graph, owner, alpha=5.0, beta=2.0)
        assert hi.makespan >= lo.makespan
        assert lo.comm_latency == 0.0

    def test_zero_comm_for_owner_computes(self, tbs_graph):
        # owner-computes cuts no edges on the SYRK DAG at all
        owner = partition_graph(tbs_graph, 4, "owner-computes")
        ms = makespan_model(tbs_graph, owner, alpha=3.0, beta=7.0)
        assert ms.n_cross_edges == 0 and ms.comm_latency == 0.0

    def test_custom_order_and_weights(self, tbs_graph):
        owner = [0] * len(tbs_graph)
        order = tbs_graph.topological_order()
        ms = makespan_model(
            tbs_graph, owner, order=order, weights=[1.0] * len(tbs_graph)
        )
        assert ms.makespan == len(tbs_graph)
        assert ms.critical_path == int(tbs_graph.critical_path_cost())

    def test_bad_args(self, tbs_graph):
        n = len(tbs_graph)
        with pytest.raises(ConfigurationError):
            makespan_model(tbs_graph, [0] * (n - 1))
        with pytest.raises(ConfigurationError):
            makespan_model(tbs_graph, [0] * n, weights=[1.0])
        with pytest.raises(ConfigurationError):
            makespan_model(tbs_graph, [0] * n, alpha=-1.0)
        with pytest.raises(ConfigurationError):
            makespan_model(tbs_graph, [1] * n, p=1)
        with pytest.raises(ScheduleError):
            makespan_model(tbs_graph, [0] * n, order=list(range(n))[::-1])

    def test_empty_graph(self):
        empty = DependencyGraph([])
        ms = makespan_model(empty, [], p=2)
        assert ms.makespan == 0.0 and ms.bottleneck == -1
        assert ms.parallel_efficiency == 1.0


class TestCriticalPathCost:
    def test_unit_weights_match_length(self, tbs_graph):
        # No-argument form == explicit unit weights == the deprecated
        # node-count span (which must still answer, with a warning).
        unit = tbs_graph.critical_path_cost()
        assert tbs_graph.critical_path_cost([1] * len(tbs_graph)) == unit
        with pytest.warns(DeprecationWarning):
            assert tbs_graph.critical_path_length() == unit

    def test_weighted_span_in_summary(self, tbs_case, tbs_graph):
        summ = execute_graph(
            tbs_case.schedule, 4, S, partitioner="owner-computes",
            policy="lru", graph=tbs_graph,
        )
        mults = [float(n.op.mults) for n in tbs_graph.nodes]
        assert summ.critical_path == int(tbs_graph.critical_path_cost())
        assert summ.critical_path_mults == int(tbs_graph.critical_path_cost(mults))
        assert summ.makespan >= summ.critical_path_mults

    def test_length_mismatch_raises(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            tbs_graph.critical_path_cost([1.0])
