"""Tests for the SYR2K extension (the paper's future-work kernel)."""

import math

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.model import ooc_syr2k_model, tbs_syr2k_model
from repro.core.syr2k import (
    ooc_syr2k,
    syr2k_lower_bound,
    syr2k_reference,
    syr2k_square_tile_side,
    syr2k_triangle_side_for_memory,
    tbs_syr2k,
)
from repro.errors import ConfigurationError
from repro.utils.rng import random_tall_matrix


def run(fn, n, mc, s=14, sign=1.0, seed=0, **kw):
    a = random_tall_matrix(n, mc, seed=seed)
    b = random_tall_matrix(n, mc, seed=seed + 1)
    m = TwoLevelMachine(s)
    m.add_matrix("A", a)
    m.add_matrix("B", b)
    m.add_matrix("C", np.zeros((n, n)))
    stats = fn(m, "A", "B", "C", range(n), range(mc), sign=sign, **kw)
    m.assert_empty()
    return a, b, m, stats


class TestShapeParameters:
    @pytest.mark.parametrize("s", range(5, 300, 7))
    def test_triangle_side_inequality(self, s):
        k = syr2k_triangle_side_for_memory(s)
        assert k * (k + 3) // 2 <= s
        assert (k + 1) * (k + 4) // 2 > s

    @pytest.mark.parametrize("s", range(5, 300, 7))
    def test_square_tile_inequality(self, s):
        t = syr2k_square_tile_side(s)
        assert t * t + 4 * t <= s
        assert (t + 1) * (t + 1) + 4 * (t + 1) > s

    def test_syr2k_memory_tighter_than_syrk(self):
        # Two streamed segments cost one extra row of memory: k is never
        # larger than the SYRK triangle side.
        from repro.config import triangle_side_for_memory

        for s in range(5, 200, 3):
            assert syr2k_triangle_side_for_memory(s) <= triangle_side_for_memory(s)


class TestNumerics:
    @pytest.mark.parametrize("fn", [tbs_syr2k, ooc_syr2k])
    @pytest.mark.parametrize("n", [1, 5, 13, 27, 40])
    def test_matches_reference(self, fn, n):
        a, b, m, _ = run(fn, n, 3)
        ref = syr2k_reference(a, b)
        np.testing.assert_allclose(np.tril(m.result("C")), ref, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("fn", [tbs_syr2k, ooc_syr2k])
    def test_negative_sign(self, fn):
        a, b, m, _ = run(fn, 20, 2, sign=-1.0)
        ref = -np.tril(a @ b.T + b @ a.T)
        np.testing.assert_allclose(np.tril(m.result("C")), ref, rtol=1e-10, atol=1e-12)

    def test_symmetric_in_a_b(self):
        # C(A, B) == C(B, A) numerically.
        a1, b1, m1, _ = run(tbs_syr2k, 24, 3, seed=5)
        m2 = TwoLevelMachine(14)
        m2.add_matrix("A", b1)
        m2.add_matrix("B", a1)
        m2.add_matrix("C", np.zeros((24, 24)))
        tbs_syr2k(m2, "A", "B", "C", range(24), range(3))
        np.testing.assert_allclose(m1.result("C"), m2.result("C"), rtol=1e-12)

    def test_reference_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            syr2k_reference(np.zeros((3, 2)), np.zeros((4, 2)))


class TestAccounting:
    @pytest.mark.parametrize("n,mc,s", [(12, 2, 14), (27, 3, 14), (40, 4, 14), (54, 2, 20)])
    def test_tbs_measured_equals_model(self, n, mc, s):
        _, _, _, stats = run(tbs_syr2k, n, mc, s=s)
        pred = tbs_syr2k_model(n, mc, s)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    @pytest.mark.parametrize("n,mc,s", [(12, 2, 14), (27, 3, 14), (33, 2, 24)])
    def test_ocs_measured_equals_model(self, n, mc, s):
        _, _, _, stats = run(ooc_syr2k, n, mc, s=s)
        pred = ooc_syr2k_model(n, mc, s)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_peak_within_capacity(self):
        for fn in (tbs_syr2k, ooc_syr2k):
            _, _, _, stats = run(fn, 30, 3)
            assert stats.peak_occupancy <= 14

    def test_work_count(self):
        n, mc = 25, 3
        _, _, _, stats = run(tbs_syr2k, n, mc)
        # 2 mults per (pair, k), pairs incl. diagonal
        assert stats.mults == 2 * (n * (n + 1) // 2) * mc

    def test_above_lower_bound(self):
        n, mc, s = 40, 4, 14
        _, _, _, stats = run(tbs_syr2k, n, mc, s=s)
        assert stats.loads >= syr2k_lower_bound(n, mc, s, form="exact")

    def test_tbs_beats_baseline_in_regime(self):
        n, mc, s = 48, 6, 14
        _, _, _, t = run(tbs_syr2k, n, mc, s=s)
        _, _, _, o = run(ooc_syr2k, n, mc, s=s)
        assert t.loads < o.loads

    def test_bad_k_rejected(self):
        with pytest.raises(ConfigurationError):
            run(tbs_syr2k, 10, 2, s=14, k=5)  # 5*8/2 = 20 > 14
        with pytest.raises(ConfigurationError):
            run(tbs_syr2k, 10, 2, s=2)

    def test_lower_bound_forms(self):
        assert syr2k_lower_bound(10, 3, 8, form="exact") < syr2k_lower_bound(10, 3, 8)
        with pytest.raises(ConfigurationError):
            syr2k_lower_bound(10, 3, 8, form="nope")

    def test_sqrt2_gap_at_scale_via_models(self):
        # A/B-traffic ratio baseline/TBS -> (k-1)/t as for SYRK.
        s = 5050
        k = syr2k_triangle_side_for_memory(s)  # ~98
        t = syr2k_square_tile_side(s)          # ~69
        n, mc = 150_000, 2
        c_pass = n * (n + 1) // 2
        tbs = tbs_syr2k_model(n, mc, s).loads - c_pass
        ocs = ooc_syr2k_model(n, mc, s).loads - c_pass
        assert ocs / tbs == pytest.approx((k - 1) / t, rel=0.03)
        assert ocs / tbs == pytest.approx(math.sqrt(2.0), rel=0.05)
