"""Repo-invariant lints, atomic writes, and store-side certification.

The lint half of ``repro.check`` enforces repository conventions the
runtime half can't see: every durable write goes through the atomic
helpers, every literal probe counter is documented, every RNG is seeded,
and wall-clock timing stays inside the observability layer.  The suite
closes with the self-test the rules exist for: the shipped ``src`` tree
lints clean.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.check import lint_paths, lint_source
from repro.check.lint import counter_documented, find_taxonomy, parse_taxonomy
from repro.graph.compare import record_case
from repro.obs import probe_scope
from repro.obs.report import build_report, save_report
from repro.sched.schedule import EvictStep, Schedule
from repro.serve.store import ScheduleKey, ScheduleStore
from repro.trace.io import save_schedule
from repro.utils.atomic import atomic_write_json, atomic_write_text

REPO = pathlib.Path(__file__).resolve().parent.parent


def _codes(source, filename="pkg/mod.py"):
    return [f.code for f in lint_source(source, filename)]


# --------------------------------------------------------------------- #
# RPL101: raw durable writes
# --------------------------------------------------------------------- #
class TestRawWriteLint:
    def test_open_for_write_flagged(self):
        assert _codes('open(p, "w").write(x)\n') == ["RPL101"]
        assert _codes('open(p, mode="ab")\n') == ["RPL101"]

    def test_read_open_ok(self):
        assert _codes('open(p).read()\n') == []
        assert _codes('open(p, "rb").read()\n') == []

    def test_savez_flagged(self):
        assert _codes("np.savez(p, a=a)\n") == ["RPL101"]
        assert _codes("numpy.savez_compressed(p, a=a)\n") == ["RPL101"]

    def test_io_layer_exempt(self):
        assert _codes('open(p, "wb")\n', "src/repro/trace/io.py") == []

    def test_atomic_function_exempt(self):
        src = (
            "def put(path, text):\n"
            '    with open(path + ".tmp", "w") as fh:\n'
            "        fh.write(text)\n"
            '    os.replace(path + ".tmp", path)\n'
        )
        assert _codes(src) == []

    def test_dynamic_mode_not_flagged(self):
        assert _codes("open(p, mode)\n") == []


# --------------------------------------------------------------------- #
# RPL102: probe counter taxonomy
# --------------------------------------------------------------------- #
TAXONOMY = (
    "counters `check.certify.{runs,steps,findings}` and\n"
    "`replay.<policy>.hits` plus `serve.requests` here.\n"
)


class TestCounterLint:
    def test_parse_taxonomy_expands_braces_and_wildcards(self):
        patterns = parse_taxonomy(TAXONOMY)
        assert counter_documented("check.certify.runs", patterns)
        assert counter_documented("check.certify.findings", patterns)
        assert counter_documented("replay.belady.hits", patterns)
        assert counter_documented("serve.requests", patterns)
        assert not counter_documented("check.certify.bogus", patterns)
        assert not counter_documented("replay.belady.misses", patterns)

    def test_undocumented_literal_flagged(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OBSERVABILITY.md").write_text(TAXONOMY)
        mod = tmp_path / "pkg.py"
        mod.write_text(
            'probe.count("serve.requests")\nprobe.count("made.up.name", 2)\n'
        )
        findings = lint_paths([str(mod)])
        assert [f.code for f in findings] == ["RPL102"]
        assert "made.up.name" in findings[0].message
        assert findings[0].line == 2

    def test_dynamic_names_skipped(self):
        assert _codes("probe.count(name)\nprobe.count(f\"x.{y}\")\n") == []

    def test_repo_taxonomy_is_discoverable(self):
        path = find_taxonomy(str(REPO / "src" / "repro" / "obs" / "probe.py"))
        assert path is not None and path.name == "OBSERVABILITY.md"


# --------------------------------------------------------------------- #
# RPL103 / RPL104: unseeded RNG, stray perf_counter
# --------------------------------------------------------------------- #
class TestRngAndClockLint:
    def test_unseeded_rng_flagged(self):
        assert _codes("np.random.default_rng()\n") == ["RPL103"]
        assert _codes("import random\nrandom.Random()\n") == ["RPL103"]
        assert _codes("np.random.shuffle(xs)\n") == ["RPL103"]

    def test_seeded_rng_ok(self):
        assert _codes("np.random.default_rng(0)\n") == []
        assert _codes("np.random.default_rng(seed)\n") == []

    def test_rng_module_exempt(self):
        assert _codes(
            "np.random.default_rng()\n", "src/repro/utils/rng.py"
        ) == []

    def test_perf_counter_flagged_outside_obs(self):
        assert _codes("import time\nt = time.perf_counter()\n") == ["RPL104"]
        assert _codes(
            "from time import perf_counter\nperf_counter()\n"
        ) == ["RPL104"]

    def test_perf_counter_ok_in_obs_and_benchmarks(self):
        src = "import time\nt = time.perf_counter()\n"
        assert _codes(src, "src/repro/obs/probe.py") == []
        assert _codes(src, "benchmarks/common.py") == []

    def test_syntax_error_is_a_finding(self):
        assert _codes("def broken(:\n") == ["RPL100"]


# --------------------------------------------------------------------- #
# the point of the rules: the shipped tree lints clean
# --------------------------------------------------------------------- #
class TestRepoIsClean:
    def test_src_lints_clean(self):
        assert lint_paths([str(REPO / "src")]) == []

    def test_benchmarks_lint_clean(self):
        assert lint_paths([str(REPO / "benchmarks")]) == []


# --------------------------------------------------------------------- #
# atomic writes (satellite): a killed write never clobbers the artifact
# --------------------------------------------------------------------- #
class TestAtomicWrites:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(str(path), {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}

    def test_killed_replace_leaves_destination_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "out.json"
        path.write_text('{"old": true}')

        def die(src, dst):
            raise OSError("killed mid-flight")

        monkeypatch.setattr(os, "replace", die)
        with pytest.raises(OSError, match="mid-flight"):
            atomic_write_text(str(path), '{"new": true}')
        # destination untouched, no temp siblings leak
        assert json.loads(path.read_text()) == {"old": True}
        assert list(tmp_path.iterdir()) == [path]

    def test_serializer_failure_never_touches_disk(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("intact")
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        assert path.read_text() == "intact"
        assert list(tmp_path.iterdir()) == [path]

    def test_save_report_goes_through_atomic_path(self, tmp_path, monkeypatch):
        with probe_scope() as probe:
            probe.count("demo.events")
        report = build_report(probe, command="t", params={})
        path = tmp_path / "r.json"
        monkeypatch.setattr(
            os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("boom"))
        )
        with pytest.raises(OSError):
            save_report(report, str(path))
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []


# --------------------------------------------------------------------- #
# store-side certification (satellite): corrupt-but-parseable is a miss
# --------------------------------------------------------------------- #
class TestStoreVerify:
    @pytest.fixture()
    def seeded_store(self, tmp_path):
        case = record_case("tbs", 16, 4, 15)
        store = ScheduleStore(str(tmp_path / "store"))
        key = ScheduleKey("tbs", 16, 4, 15)
        store.put(key, case.schedule)
        return store, key, case

    def test_valid_object_passes_verification(self, seeded_store):
        store, key, case = seeded_store
        got = store.get(key, verify=True)
        assert got is not None and len(got) == len(case.schedule)

    def test_tampered_object_counts_invalid_and_misses(self, seeded_store):
        store, key, case = seeded_store
        # parseable but wrong: drop one evict, so certification fails
        # (redundant reload / residual residency) while load_schedule works
        i = next(
            i for i, s in enumerate(case.schedule.steps)
            if isinstance(s, EvictStep)
        )
        bad = Schedule(
            steps=[s for j, s in enumerate(case.schedule.steps) if j != i],
            shapes=case.schedule.shapes,
        )
        save_schedule(bad, store.object_path(key))
        assert store.get(key) is not None  # unverified read still serves it
        with probe_scope() as probe:
            assert store.get(key, verify=True) is None
        assert probe.counters["serve.store.invalid"] == 1
        assert probe.timers["serve.store.verify"]["calls"] == 1

    def test_service_falls_through_to_search(self, seeded_store):
        import asyncio

        from repro.serve.frontend import ScheduleService

        store, key, case = seeded_store
        i = next(
            i for i, s in enumerate(case.schedule.steps)
            if isinstance(s, EvictStep)
        )
        bad = Schedule(
            steps=[s for j, s in enumerate(case.schedule.steps) if j != i],
            shapes=case.schedule.shapes,
        )
        save_schedule(bad, store.object_path(key))
        service = ScheduleService(
            store, searcher=lambda k: case.schedule, verify_store=True
        )
        got = asyncio.run(service.get_schedule(key))
        assert len(got) == len(case.schedule)
        assert service.misses == 1 and service.searches == 1
        # the repaired entry now verifies
        assert store.get(key, verify=True) is not None
