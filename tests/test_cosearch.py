"""Unit tests for the joint order x partition co-search layer.

Three groups:

* :class:`~repro.parallel.makespan.MakespanLedger` — the checkpointed
  delta evaluator must agree with a cold
  :func:`~repro.parallel.makespan.makespan_model` pass bit for bit, on
  cold construction and across randomized interleaved order/owner move
  sequences (the satellite regression pin);
* :class:`~repro.parallel.cosearch.CoSearchState` — the threaded state's
  incremental objective equals the measured :func:`cosearch_cost` after
  every committed move, and the move generators respect legality, the
  balance cap and the exact-cover invariant;
* :func:`~repro.parallel.cosearch.cosearch` — the portfolio driver's
  bookkeeping (never-worse postcondition, measured re-check, seed
  labeling, jobs/chain bit-identity, probe counters, CLI surface).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.core.tbs import tbs_syrk
from repro.errors import ConfigurationError
from repro.graph.dependency import DependencyGraph
from repro.graph.rewriter import rewrite_schedule
from repro.obs.probe import probe_scope
from repro.parallel import (
    CoSearchState,
    MakespanLedger,
    cosearch,
    cosearch_cost,
    cosearch_portfolio,
    makespan_model,
    movable_units,
    partition_graph,
)
from repro.parallel.cosearch import CoSearchCost
from repro.sched.schedule import record_schedule
from repro.trace.compiled import compile_trace


def build_graph(n: int = 24, mc: int = 3, s: int = 15) -> DependencyGraph:
    m = TwoLevelMachine(s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, mc)))
    m.add_matrix("C", np.zeros((n, n)))
    schedule = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(n), range(mc)))
    return DependencyGraph.from_trace(compile_trace(schedule))


@pytest.fixture(scope="module")
def tbs_graph() -> DependencyGraph:
    return build_graph()


def random_legal_order(
    graph: DependencyGraph, rng: random.Random, *, relax: bool = True
) -> list[int]:
    """A random topological order: Kahn's algorithm, shuffled frontier."""
    n = len(graph)
    indeg = [
        len(graph.effective_preds(v, relax_reductions=relax)) for v in range(n)
    ]
    eff_succs: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        for u in graph.effective_preds(v, relax_reductions=relax):
            eff_succs[u].append(v)
    ready = [v for v in range(n) if indeg[v] == 0]
    order: list[int] = []
    while ready:
        v = ready.pop(rng.randrange(len(ready)))
        order.append(v)
        for w in eff_succs[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    assert graph.is_valid_order(order, relax_reductions=relax)
    return order


class TestMakespanLedger:
    def test_cold_score_matches_model(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "locality")
        ledger = MakespanLedger(tbs_graph, owner, p=4)
        cold = makespan_model(tbs_graph, owner, p=4)
        assert ledger.makespan == cold.makespan

    def test_cold_score_matches_model_with_order(self, tbs_graph):
        rng = random.Random(7)
        order = random_legal_order(tbs_graph, rng)
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        ledger = MakespanLedger(
            tbs_graph, owner, p=4, order=order, relax_reductions=True
        )
        cold = makespan_model(
            tbs_graph, owner, p=4, order=order, relax_reductions=True
        )
        assert ledger.makespan == cold.makespan

    def test_score_without_commit_leaves_state(self, tbs_graph):
        owner = list(partition_graph(tbs_graph, 4, "locality"))
        ledger = MakespanLedger(tbs_graph, owner, p=4)
        before = ledger.makespan
        cand = list(owner)
        cand[0] = (cand[0] + 1) % 4
        ledger.score(owner=cand, from_pos=0)
        assert ledger.makespan == before
        assert list(ledger.owner) == owner

    def test_delta_equals_full_recompute_random_moves(self, tbs_graph):
        """Satellite regression pin: delta == cold model over 300 moves."""
        rng = random.Random(20220711)
        n = len(tbs_graph)
        p = 4
        owner = list(partition_graph(tbs_graph, p, "locality"))
        order = list(range(n))
        ledger = MakespanLedger(
            tbs_graph, owner, p=p, order=order, relax_reductions=True
        )
        eff_order_moves = 0
        for _ in range(300):
            if rng.random() < 0.5:
                # owner move: one random op to a random node
                v = rng.randrange(n)
                q = rng.randrange(p)
                if owner[v] == q:
                    continue
                owner[v] = q
                i0 = order.index(v)
                ledger.score(owner=owner, from_pos=i0)
                ledger.commit()
            else:
                # order move: swap two adjacent ops when legal
                i = rng.randrange(n - 1)
                cand = list(order)
                cand[i], cand[i + 1] = cand[i + 1], cand[i]
                if not tbs_graph.is_valid_order(cand, relax_reductions=True):
                    continue
                order = cand
                ledger.score(order=order, from_pos=i)
                ledger.commit()
                eff_order_moves += 1
            cold = makespan_model(
                tbs_graph, owner, p=p, order=order, relax_reductions=True
            )
            assert ledger.makespan == cold.makespan  # bit-identical
        assert eff_order_moves > 10  # the order dimension was exercised

    def test_from_pos_midstream_matches_cold(self, tbs_graph):
        rng = random.Random(3)
        n = len(tbs_graph)
        owner = list(partition_graph(tbs_graph, 4, "owner-computes"))
        ledger = MakespanLedger(tbs_graph, owner, p=4, relax_reductions=True)
        # change an op deep in the order; score from its position only
        v = n - 3
        owner[v] = (owner[v] + 1) % 4
        got = ledger.score(owner=owner, from_pos=v)
        cold = makespan_model(tbs_graph, owner, p=4, relax_reductions=True)
        assert got == cold.makespan
        rng.random()  # keep the fixture rng untouched pattern explicit

    def test_interval_does_not_change_result(self, tbs_graph):
        owner = list(partition_graph(tbs_graph, 4, "locality"))
        cold = makespan_model(tbs_graph, owner, p=4)
        for interval in (1, 5, 64, 10**6):
            ledger = MakespanLedger(tbs_graph, owner, p=4, interval=interval)
            assert ledger.makespan == cold.makespan
            owner2 = list(owner)
            owner2[7] = (owner2[7] + 1) % 4
            got = ledger.score(owner=owner2, from_pos=7)
            cold2 = makespan_model(tbs_graph, owner2, p=4)
            assert got == cold2.makespan

    def test_empty_graph(self):
        g = build_graph(2, 1)  # smallest recordable case
        owner = [0] * len(g)
        ledger = MakespanLedger(g, owner, p=2)
        cold = makespan_model(g, owner, p=2)
        assert ledger.makespan == cold.makespan

    def test_rejects_bad_owner(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            MakespanLedger(tbs_graph, [9] * len(tbs_graph), p=4)

    def test_rejects_illegal_order(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "locality")
        bad = list(range(len(tbs_graph)))[::-1]
        with pytest.raises(Exception):
            MakespanLedger(tbs_graph, owner, p=4, order=bad)


class TestCoSearchCost:
    def test_matches_components(self, tbs_graph):
        p, s = 4, 15
        owner = list(partition_graph(tbs_graph, p, "locality"))
        measured = cosearch_cost(tbs_graph, owner, p, s)
        span = makespan_model(tbs_graph, owner, p=p)
        assert measured.makespan == span.makespan
        assert measured.cost == measured.makespan + measured.beta * measured.bottleneck_io
        assert measured.bottleneck_io == max(
            l + t for l, t in zip(measured.loads, measured.transfer_in)
        )
        assert len(measured.loads) == p

    def test_single_node_has_no_transfers(self, tbs_graph):
        measured = cosearch_cost(tbs_graph, [0] * len(tbs_graph), 1, 15)
        assert measured.transfer_in == (0,)
        assert measured.loads[0] > 0

    def test_rejects_bad_owner_length(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            cosearch_cost(tbs_graph, [0, 1], 2, 15)


class TestCoSearchState:
    def test_seed_cost_matches_measured(self, tbs_graph):
        p, s = 4, 15
        owner = partition_graph(tbs_graph, p, "locality")
        state = CoSearchState(tbs_graph, owner, p, s)
        measured = cosearch_cost(
            tbs_graph, owner, p, s, relax_reductions=True
        )
        assert state.cost() == measured.cost
        assert state.seed_cost == state.cost()
        assert not state.profitable()

    def test_cost_tracks_measured_across_moves(self, tbs_graph):
        """After every committed move, cost() == cosearch_cost, bit for bit."""
        p, s = 4, 15
        rng = random.Random(11)
        owner = partition_graph(tbs_graph, p, "level-greedy")
        state = CoSearchState(tbs_graph, owner, p, s, balance_slack=None)
        committed = 0
        for _ in range(200):
            proposal = state.step(rng)
            if proposal is None:
                continue
            cand_cost, commit = proposal
            if rng.random() < 0.5:
                continue  # reject: state must be unchanged
            commit()
            committed += 1
            measured = cosearch_cost(
                tbs_graph, state.ledger.owner, p, s, order=state.order,
                relax_reductions=True,
            )
            assert state.cost() == measured.cost
            assert state.loads == list(measured.loads)
        assert committed > 20
        assert state.order_moves > 0 and state.owner_moves > 0

    def test_exact_cover_after_moves(self, tbs_graph):
        p, s = 4, 15
        rng = random.Random(5)
        state = CoSearchState(
            tbs_graph, partition_graph(tbs_graph, p, "locality"), p, s
        )
        for _ in range(150):
            proposal = state.step(rng)
            if proposal is not None:
                proposal[1]()
        owner = state.ledger.owner
        assert len(owner) == len(tbs_graph)
        assert all(0 <= q < p for q in owner)
        assert tbs_graph.is_valid_order(state.order, relax_reductions=True)
        assert sorted(state.order) == list(range(len(tbs_graph)))

    def test_balance_cap_respected(self, tbs_graph):
        p, s = 4, 15
        rng = random.Random(9)
        state = CoSearchState(
            tbs_graph, partition_graph(tbs_graph, p, "locality"), p, s,
            balance_slack=1.2,
        )
        assert state.cap is not None
        for _ in range(150):
            proposal = state.step(rng)
            if proposal is not None:
                proposal[1]()
        assert max(state.ledger.loads) <= state.cap

    def test_keep_writers_together_units(self, tbs_graph):
        units, op_units = movable_units(tbs_graph, keep_writers_together=True)
        owned = sorted(v for unit in units for v in unit)
        assert owned == list(range(len(tbs_graph)))
        for v in range(len(tbs_graph)):
            assert v in units[op_units[v][0]]

    def test_rejects_bad_params(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "locality")
        with pytest.raises(ConfigurationError):
            CoSearchState(tbs_graph, owner, 0, 15)
        with pytest.raises(ConfigurationError):
            CoSearchState(tbs_graph, owner, 4, 0)
        with pytest.raises(ConfigurationError):
            CoSearchState(tbs_graph, owner, 4, 15, order_move_prob=1.5)


class TestCosearchDriver:
    def test_never_worse_and_measured(self, tbs_graph):
        res = cosearch(tbs_graph, 4, 15, iters=120, seed=0,
                       search_kwargs={"anneal": {"iters": 40, "seed": 0}})
        assert res.cost <= res.seed_cost
        # the returned pair re-measures to exactly the reported cost
        measured = cosearch_cost(
            tbs_graph, res.owner, 4, 15, order=res.order,
            relax_reductions=True,
        )
        assert measured.cost == res.cost
        assert isinstance(res.measured, CoSearchCost)
        assert res.seed_label in res.seed_costs
        assert res.seed_cost == min(res.seed_costs.values())
        assert sorted(res.order) == list(range(len(tbs_graph)))
        assert all(0 <= q < 4 for q in res.owner)

    def test_jobs_bit_identical(self, tbs_graph):
        kw = dict(iters=80, seed=3,
                  search_kwargs={"anneal": {"iters": 30, "seed": 3}})
        serial = cosearch(tbs_graph, 4, 15, jobs=1, **kw)
        fanned = cosearch(tbs_graph, 4, 15, jobs=4, **kw)
        assert serial.cost == fanned.cost
        assert serial.order == fanned.order
        assert serial.owner == fanned.owner
        assert serial.chain_costs == fanned.chain_costs
        assert serial.winner_chain == fanned.winner_chain

    def test_explicit_seeds_and_revert_path(self, tbs_graph):
        # iters=0: no chain can improve, so the best seed must come back
        # verbatim through the never-worse postcondition.
        owner = list(partition_graph(tbs_graph, 4, "locality"))
        seeds = [("only", list(range(len(tbs_graph))), owner)]
        res = cosearch(tbs_graph, 4, 15, iters=0, seeds=seeds)
        assert res.cost == res.seed_cost
        assert res.owner == tuple(owner)
        assert res.order == list(range(len(tbs_graph)))
        assert res.seed_label == "only"
        assert not res.improved

    def test_portfolio_contents(self, tbs_graph):
        seeds = cosearch_portfolio(
            tbs_graph, 4, 15,
            search_kwargs={"anneal": {"iters": 20, "seed": 0}},
        )
        labels = [label for label, _o, _w in seeds]
        assert any(label.endswith("|recorded") for label in labels)
        assert any(label.endswith("|locality") for label in labels)
        assert any("search:anneal" in label for label in labels)
        for _label, order, owner in seeds:
            assert sorted(order) == list(range(len(tbs_graph)))
            assert len(owner) == len(tbs_graph)

    def test_probe_counters(self, tbs_graph):
        with probe_scope() as probe:
            cosearch(tbs_graph, 2, 15, iters=60,
                     search_kwargs={"anneal": {"iters": 20, "seed": 0}})
        counts = probe.counters
        assert counts["cosearch.runs"] == 1
        assert counts["cosearch.evaluations"] > 0
        assert "convergence.cosearch" in probe.attachments

    def test_rejects_bad_args(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            cosearch(tbs_graph, 4, 15, iters=-1)
        with pytest.raises(ConfigurationError):
            cosearch(tbs_graph, 4, 15, seeds=[])

    def test_winner_order_rewrites_within_capacity(self, tbs_graph):
        """The winning order dresses into a validated stream with peak <= S."""
        s = 15
        res = cosearch(tbs_graph, 4, s, iters=100, seed=1,
                       search_kwargs={"anneal": {"iters": 30, "seed": 1}})
        rewrite = rewrite_schedule(
            tbs_graph.trace, s, res.order, graph=tbs_graph,
            relax_reductions=True,
        )
        assert rewrite.summary["peak_occupancy"] <= s
