"""Tests for the lower-bound formulas and OI ceilings (Section 4 corollaries)."""

import math

import pytest

from repro.core.bounds import (
    cholesky_lower_bound,
    cholesky_upper_bound,
    literature_bounds_table,
    max_operational_intensity,
    parallel_cholesky_lower_bound_per_node,
    parallel_gemm_lower_bound_per_node,
    parallel_syrk_lower_bound_per_node,
    syrk_lower_bound,
    syrk_upper_bound,
)
from repro.errors import ConfigurationError

SQRT2 = math.sqrt(2.0)


class TestSyrkBound:
    def test_paper_constant(self):
        # Corollary 4.7: N^2 M / (sqrt(2) sqrt(S)).
        assert syrk_lower_bound(100, 10, 64) == pytest.approx(100**2 * 10 / (SQRT2 * 8.0))

    def test_improves_olivry_by_sqrt2(self):
        ours = syrk_lower_bound(64, 8, 32, which="paper")
        prior = syrk_lower_bound(64, 8, 32, which="olivry")
        assert ours / prior == pytest.approx(SQRT2)

    def test_exact_form_below_asymptotic(self):
        # exact uses N(N-1)/2 < N^2/2.
        assert syrk_lower_bound(50, 5, 16, form="exact") < syrk_lower_bound(50, 5, 16)

    def test_upper_bounds_order(self):
        # TBS upper < Bereux upper, both >= the paper lower bound.
        n, m, s = 1000, 100, 128
        lb = syrk_lower_bound(n, m, s)
        tbs = syrk_upper_bound(n, m, s, "tbs")
        ber = syrk_upper_bound(n, m, s, "bereux")
        assert lb <= tbs < ber

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            syrk_lower_bound(0, 1, 1)
        with pytest.raises(ConfigurationError):
            syrk_lower_bound(1, 0, 1)
        with pytest.raises(ConfigurationError):
            syrk_lower_bound(1, 1, 1, which="nope")
        with pytest.raises(ConfigurationError):
            syrk_lower_bound(1, 1, 1, form="nope")


class TestCholeskyBound:
    def test_paper_constant(self):
        assert cholesky_lower_bound(90, 49) == pytest.approx(90**3 / (3 * SQRT2 * 7.0))

    def test_ordering_of_literature_bounds(self):
        n, s = 500, 100
        olivry = cholesky_lower_bound(n, s, which="olivry")
        paper = cholesky_lower_bound(n, s, which="paper")
        kwas = cholesky_lower_bound(n, s, which="kwasniewski")
        assert olivry < paper < kwas  # kwasniewski assumed no symmetric reuse

    def test_paper_improves_olivry_by_sqrt2(self):
        a = cholesky_lower_bound(77, 33, which="paper")
        b = cholesky_lower_bound(77, 33, which="olivry")
        assert a / b == pytest.approx(SQRT2)

    def test_upper_bounds(self):
        n, s = 2000, 256
        assert cholesky_upper_bound(n, s, "lbc") == pytest.approx(n**3 / (3 * math.sqrt(2 * s)))
        assert cholesky_upper_bound(n, s, "bereux") / cholesky_upper_bound(n, s, "lbc") == pytest.approx(SQRT2)

    def test_lbc_upper_matches_lower(self):
        # The paper's punchline: upper bound == lower bound (leading term).
        n, s = 10_000, 1024
        assert cholesky_upper_bound(n, s, "lbc") == pytest.approx(cholesky_lower_bound(n, s))


class TestOICeilings:
    def test_symmetric_vs_gemm_factor(self):
        s = 200
        sym = max_operational_intensity(s, "symmetric", "mults")
        gem = max_operational_intensity(s, "gemm", "mults")
        assert gem / sym == pytest.approx(SQRT2)

    def test_flops_vs_mults(self):
        s = 128
        assert max_operational_intensity(s, "symmetric", "flops") == pytest.approx(math.sqrt(2 * s))
        assert max_operational_intensity(s, "symmetric", "mults") == pytest.approx(math.sqrt(s / 2))
        assert max_operational_intensity(s, "gemm", "flops") == pytest.approx(2 * math.sqrt(s))

    def test_symmetric_flops_ceiling_exceeds_gemm_mults(self):
        # sqrt(2S) > sqrt(S): per flop the symmetric kernels are higher —
        # the "intrinsically higher OI" headline.
        s = 64
        assert max_operational_intensity(s, "symmetric", "flops") > max_operational_intensity(s, "gemm", "mults")

    def test_bad_kernel(self):
        with pytest.raises(ConfigurationError):
            max_operational_intensity(10, "qr")


class TestLiteratureTable:
    def test_four_contributions(self):
        table = literature_bounds_table()
        assert len(table) == 4
        for row in table:
            if row["quantity"] == "lower bound":
                # bounds were raised by sqrt(2)
                assert row["after"] == pytest.approx(row["before"] * SQRT2)
            else:
                # algorithm volumes were cut by sqrt(2)
                assert row["after"] == pytest.approx(row["before"] / SQRT2)

    def test_gap_closed(self):
        table = literature_bounds_table()
        syrk = [r for r in table if r["kernel"] == "SYRK"]
        chol = [r for r in table if r["kernel"] == "Cholesky"]
        # after the paper, lower bound == algorithm constant for both kernels
        assert syrk[0]["after"] == pytest.approx(syrk[1]["after"])
        assert chol[0]["after"] == pytest.approx(chol[1]["after"])


class TestParallelBounds:
    def test_cholesky_per_node(self):
        assert parallel_cholesky_lower_bound_per_node(100, 4, 25) == pytest.approx(100**3 / (4 * 5))

    def test_gemm_per_node(self):
        v = parallel_gemm_lower_bound_per_node(10, 20, 30, 2, 16)
        assert v == pytest.approx(10 * 20 * 30 / (2 * SQRT2 * 2 * 4) - 16)

    def test_syrk_per_node(self):
        v = parallel_syrk_lower_bound_per_node(100, 8, 4, 16)
        assert v == pytest.approx(100 * 100 * 8 / (SQRT2 * 4 * 4) - 16)

    def test_syrk_per_node_scales_down_with_p(self):
        assert parallel_syrk_lower_bound_per_node(100, 8, 1, 16) > \
            parallel_syrk_lower_bound_per_node(100, 8, 8, 16)

    def test_syrk_per_node_p1_matches_sequential_shape(self):
        # At P = 1 the formula is the sequential Corollary 4.7 minus the
        # resident-operand slack S.
        n, m, s = 64, 8, 32
        seq = syrk_lower_bound(n, m, s)
        assert parallel_syrk_lower_bound_per_node(n, m, 1, s) == pytest.approx(seq - s)

    def test_bad_p(self):
        with pytest.raises(ConfigurationError):
            parallel_cholesky_lower_bound_per_node(10, 0, 4)
        with pytest.raises(ConfigurationError):
            parallel_syrk_lower_bound_per_node(10, 4, 0, 4)
        with pytest.raises(ConfigurationError):
            parallel_syrk_lower_bound_per_node(10, 0, 2, 4)
