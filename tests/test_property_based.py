"""Property-based tests (hypothesis) on the paper's invariants.

The crown jewel is Theorem 4.1 as a universally-quantified property: *any*
subcomputation ``B ⊆ 𝒮`` satisfies ``|B| <= sqrt(2)/(3 sqrt 3) D(B)^{3/2}``.
The strategy draws arbitrary triple sets; `data_accessed` implements
Proposition 3.4.  Everything else — σ identities, indexing-family validity,
partition coverage, machine invariants under random legal op streams — is
property-tested in the same spirit.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TwoLevelMachine
from repro.core.balanced import (
    check_rebalancing_dominates,
    max_ops_bound,
    rebalance,
    rebalancing_slack,
)
from repro.core.indexing import CyclicIndexingFamily, blocks_are_disjoint, is_valid_indexing_family
from repro.core.partition import plan_partition
from repro.core.triangle import canonical_triangle, sigma, sigma_real, symmetric_footprint_size
from repro.core.tbs import tbs_syrk
from repro.kernels.opsets import data_accessed, data_accessed_no_symmetry
from repro.kernels.reference import syrk_reference
from repro.utils.primes import is_coprime, largest_coprime_below, primorial_up_to

triples = st.sets(
    st.tuples(
        st.integers(min_value=1, max_value=12),  # i
        st.integers(min_value=0, max_value=11),  # j
        st.integers(min_value=0, max_value=6),   # k
    ).filter(lambda t: t[0] > t[1]),
    min_size=1,
    max_size=60,
)


class TestTheorem41Property:
    @given(b=triples)
    @settings(max_examples=300, deadline=None)
    def test_any_subcomputation_obeys_bound(self, b):
        d = data_accessed(b)
        assert len(b) <= max_ops_bound(float(d)) + 1e-9

    @given(b=triples)
    @settings(max_examples=200, deadline=None)
    def test_symmetry_never_hurts(self, b):
        assert data_accessed(b) <= data_accessed_no_symmetry(b)

    @given(b=triples)
    @settings(max_examples=200, deadline=None)
    def test_rebalancing_dominates_continuous(self, b):
        assert check_rebalancing_dominates(b)

    @given(b=triples)
    @settings(max_examples=200, deadline=None)
    def test_integer_rebalancing_slack_bounded(self, b):
        bal = rebalance(b)
        assert rebalancing_slack(b) <= bal.full_iterations + 1


class TestSigmaProperties:
    @given(m=st.integers(min_value=0, max_value=100_000))
    def test_sigma_vs_real(self, m):
        if m == 0:
            assert sigma(0) == 0
        else:
            assert sigma(m) == math.ceil(sigma_real(m))

    @given(m=st.integers(min_value=1, max_value=5_000))
    def test_sigma_inverse(self, m):
        s = sigma(m)
        assert s * (s - 1) // 2 >= m > (s - 1) * (s - 2) // 2

    @given(m=st.integers(min_value=0, max_value=2_000))
    def test_canonical_triangle_invariants(self, m):
        t = canonical_triangle(m)
        assert len(t) == m
        assert symmetric_footprint_size(t) == sigma(m)
        assert all(i > j >= 0 for i, j in t)


class TestPrimesProperties:
    @given(bound=st.integers(min_value=1, max_value=3_000), klim=st.integers(min_value=2, max_value=9))
    def test_largest_coprime_maximal(self, bound, klim):
        q = primorial_up_to(klim)
        c = largest_coprime_below(bound, q)
        assert 1 <= c <= bound
        assert is_coprime(c, q)
        assert all(not is_coprime(x, q) for x in range(c + 1, bound + 1))


class TestIndexingProperties:
    @given(
        k=st.integers(min_value=3, max_value=6),
        offset=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_chosen_c_always_valid(self, k, offset):
        # Whatever n we start from, the planner's c yields a valid family.
        n = k * (k - 1 + offset)
        part = plan_partition(n, k)
        if part is None:
            return
        fam = part.family
        assert is_valid_indexing_family(fam)

    @given(c=st.integers(min_value=4, max_value=12), k=st.integers(min_value=3, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_validity_equals_disjointness(self, c, k):
        if c < k - 1:
            return
        fam = CyclicIndexingFamily(c, k, check=False)
        assert is_valid_indexing_family(fam) == blocks_are_disjoint(fam)


class TestPartitionProperties:
    @given(n=st.integers(min_value=1, max_value=90), k=st.integers(min_value=3, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_partition_geometry(self, n, k):
        part = plan_partition(n, k)
        if part is None:
            return
        assert part.c >= k - 1
        assert part.covered + part.leftover == n
        assert part.validate_blocks_disjoint()
        assert part.validate_exact_cover()


class TestMachineProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=34),
        mc=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_tbs_always_correct_and_within_capacity(self, seed, n, mc):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, mc))
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        stats = tbs_syrk(m, "A", "C", range(n), range(mc))
        m.assert_empty()
        assert stats.peak_occupancy <= 15
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a)), rtol=1e-9, atol=1e-10
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_legal_streams_preserve_invariants(self, seed, steps):
        # Drive the machine with random legal loads/evicts; occupancy
        # accounting must match a reference set model exactly.
        rng = np.random.default_rng(seed)
        m = TwoLevelMachine(20)
        m.add_matrix("X", np.zeros((6, 6)))
        resident: set[int] = set()
        for _ in range(steps):
            if resident and rng.random() < 0.45:
                take = rng.choice(sorted(resident), size=rng.integers(1, len(resident) + 1), replace=False)
                from repro.machine.regions import Region

                m.evict(Region("X", np.sort(take)), writeback=bool(rng.random() < 0.5))
                resident -= set(int(t) for t in take)
            else:
                free = sorted(set(range(36)) - resident)
                if not free:
                    continue
                room = 20 - len(resident)
                if room == 0:
                    continue
                count = int(rng.integers(1, min(len(free), room) + 1))
                take = rng.choice(free, size=count, replace=False)
                from repro.machine.regions import Region

                m.load(Region("X", np.sort(take)))
                resident |= set(int(t) for t in take)
            assert m.occupancy() == len(resident)
            assert m.occupancy() <= 20


class TestSyr2kProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=30),
        mc=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_tbs_syr2k_always_correct(self, seed, n, mc):
        from repro.core.syr2k import syr2k_reference, tbs_syr2k

        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, mc))
        b = rng.standard_normal((n, mc))
        m = TwoLevelMachine(14)
        m.add_matrix("A", a)
        m.add_matrix("B", b)
        m.add_matrix("C", np.zeros((n, n)))
        stats = tbs_syr2k(m, "A", "B", "C", range(n), range(mc))
        m.assert_empty()
        assert stats.peak_occupancy <= 14
        np.testing.assert_allclose(
            np.tril(m.result("C")), syr2k_reference(a, b), rtol=1e-9, atol=1e-10
        )


class TestParallelProperties:
    @given(
        n=st.integers(min_value=4, max_value=70),
        p=st.integers(min_value=1, max_value=9),
        strategy=st.sampled_from(["square", "triangle"]),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_assignments_always_exact_cover(self, n, p, strategy):
        from repro.parallel.partition import (
            square_tile_assignment,
            triangle_block_assignment,
        )

        mk = square_tile_assignment if strategy == "square" else triangle_block_assignment
        asg = mk(n, p, 15)
        assert asg.validate_exact_cover()

    @given(
        n=st.integers(min_value=8, max_value=50),
        p=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_simulation_conserves_work(self, n, p):
        from repro.kernels.flops import syrk_mults
        from repro.parallel import simulate_syrk, triangle_block_assignment

        mc = 3
        summ = simulate_syrk(triangle_block_assignment(n, p, 15), mc)
        assert summ.total_mults == syrk_mults(n, mc, include_diagonal=True)
        assert all(r.peak_memory <= 15 for r in summ.nodes)
        assert sum(r.c_recv for r in summ.nodes) == n * (n + 1) // 2
