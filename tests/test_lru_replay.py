"""Tests for the LRU replay analyzer: explicit control vs hardware replacement."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.lru_replay import lru_competitiveness, lru_replay
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.tbs import tbs_syrk
from repro.errors import ConfigurationError
from repro.sched.schedule import record_schedule


def recorded(fn, n=40, mc=6, s=15):
    m = TwoLevelMachine(s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, mc)))
    m.add_matrix("C", np.zeros((n, n)))
    sched = record_schedule(m, lambda: fn(m, "A", "C", range(n), range(mc)))
    return sched, m.stats.loads


class TestLruReplay:
    def test_counts_are_consistent(self):
        sched, explicit = recorded(tbs_syrk)
        r = lru_replay(sched, 15)
        assert r.loads >= r.distinct          # at least the cold misses
        assert r.n_accesses >= r.loads
        assert 0 < r.miss_rate <= 1
        assert r.q == r.loads

    def test_infinite_cache_hits_cold_floor(self):
        sched, _ = recorded(tbs_syrk, n=27, mc=3)
        r = lru_replay(sched, capacity=10**6)
        assert r.loads == r.distinct

    def test_blocked_orders_are_cache_friendly(self):
        # At equal capacity, LRU on the blocked op order stays within a few
        # percent of the explicitly managed volume: the advantage is in the
        # order of computations, not the eviction decisions.
        for fn in (tbs_syrk, ooc_syrk):
            sched, explicit = recorded(fn)
            ratio = lru_competitiveness(sched, explicit, capacity=15)
            assert 0.9 < ratio < 1.1, (fn.__name__, ratio)

    def test_tbs_advantage_survives_lru(self):
        sched_t, _ = recorded(tbs_syrk)
        sched_o, _ = recorded(ooc_syrk)
        assert lru_replay(sched_t, 15).loads < lru_replay(sched_o, 15).loads

    def test_more_capacity_never_hurts_much(self):
        # LRU is not anomaly-free in general, but on these streaming orders
        # volumes decrease monotonically in the tested range.
        sched, _ = recorded(tbs_syrk)
        vols = [lru_replay(sched, c).loads for c in (15, 30, 60, 120)]
        assert all(a >= b for a, b in zip(vols, vols[1:]))

    def test_stores_track_dirty_data(self):
        sched, _ = recorded(ooc_syrk, n=20, mc=2)
        r = lru_replay(sched, 15)
        # every written C element is eventually stored at least once
        assert r.stores >= 20 * 21 // 2

    def test_bad_args(self):
        sched, explicit = recorded(tbs_syrk, n=12, mc=2)
        with pytest.raises(ConfigurationError):
            lru_replay(sched, 0)
        with pytest.raises(ConfigurationError):
            lru_competitiveness(sched, 0, 15)
