"""Tests for the dependency-graph scheduling engine (repro.graph)."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.lru_replay import lru_replay
from repro.baselines.ooc_chol import ooc_chol
from repro.core.tbs import tbs_syrk
from repro.errors import ConfigurationError, ScheduleError
from repro.graph import (
    DependencyGraph,
    access_sequence,
    belady_replay,
    compare_case,
    dependency_graph,
    list_schedule,
    record_case,
    replacement_gap,
    reschedule,
    rewrite_schedule,
)
from repro.graph.scheduler import HEURISTICS
from repro.sched.schedule import ComputeStep, record_schedule, replay_schedule
from repro.sched.validate import validate_schedule

N, MC, S = 26, 3, 15


@pytest.fixture(scope="module")
def tbs_case():
    return record_case("tbs", N, MC, S)


@pytest.fixture(scope="module")
def chol_case():
    return record_case("chol", 20, 0, S)


@pytest.fixture(scope="module")
def tbs_graph(tbs_case):
    return dependency_graph(tbs_case.schedule)


@pytest.fixture(scope="module")
def chol_graph(chol_case):
    return dependency_graph(chol_case.schedule)


class TestDependencyGraph:
    def test_one_node_per_compute_step(self, tbs_case, tbs_graph):
        n_computes = sum(1 for s in tbs_case.schedule.steps if isinstance(s, ComputeStep))
        assert len(tbs_graph) == n_computes > 0

    def test_tbs_is_pure_reduction(self, tbs_graph):
        # SYRK only accumulates into disjoint triangle blocks: the DAG is a
        # forest of per-block reduction chains, nothing else.
        counts = tbs_graph.edge_counts()
        assert counts["raw"] == counts["war"] == counts["waw"] == 0
        assert counts["reduction"] > 0
        # each chain has one op per streamed column
        assert tbs_graph.critical_path_cost() <= MC + 1

    def test_chol_has_true_dependences(self, chol_graph):
        # Cholesky's factor/solve/downdate pipeline is a deep DAG.
        counts = chol_graph.edge_counts()
        assert counts["raw"] > 0
        assert counts["waw"] > 0
        assert chol_graph.critical_path_cost() > 10

    def test_edges_point_forward(self, tbs_graph, chol_graph):
        for g in (tbs_graph, chol_graph):
            for u, v, _kinds in g.edges():
                assert u < v

    def test_original_order_is_valid(self, chol_graph):
        order = list(range(len(chol_graph)))
        assert chol_graph.is_valid_order(order)
        assert not chol_graph.is_valid_order(order[:-1])  # not a permutation

    def test_reversed_reduction_chain(self, tbs_graph):
        # Reversing a reduction chain breaks the strict order but is legal
        # once reductions are relaxed — that is exactly the commuting class.
        chain = tbs_graph.reduction_classes()[0]
        order = list(range(len(tbs_graph)))
        for a, b in zip(chain, reversed(chain)):
            order[a] = b
        assert not tbs_graph.is_valid_order(order)
        assert tbs_graph.is_valid_order(order, relax_reductions=True)

    def test_reduction_classes_are_accumulations(self, tbs_graph, chol_graph):
        for g in (tbs_graph, chol_graph):
            classes = g.reduction_classes()
            assert classes
            for group in classes:
                assert len(group) > 1
                assert all(g.nodes[i].is_accumulation for i in group)

    def test_depths_consistent(self, chol_graph):
        depths = chol_graph.depths()
        for u, v, _k in chol_graph.edges():
            assert depths[v] >= depths[u] + 1
        assert chol_graph.critical_path_cost() == max(depths) + 1

    def test_rejects_non_schedule(self):
        with pytest.raises(ConfigurationError):
            dependency_graph([1, 2, 3])


class TestListScheduler:
    def test_original_heuristic_is_identity(self, tbs_graph, chol_graph):
        for g in (tbs_graph, chol_graph):
            res = list_schedule(g, "original")
            assert res.is_identity

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    @pytest.mark.parametrize("relax", [False, True])
    def test_all_heuristics_emit_valid_orders(self, chol_graph, heuristic, relax):
        res = list_schedule(chol_graph, heuristic, relax_reductions=relax)
        assert sorted(res.order) == list(range(len(chol_graph)))
        assert chol_graph.is_valid_order(res.order, relax_reductions=relax)

    def test_unknown_heuristic(self, tbs_graph):
        with pytest.raises(ConfigurationError, match="heuristic"):
            list_schedule(tbs_graph, "random")

    def test_ops_returns_reordered_ops(self, tbs_graph):
        res = list_schedule(tbs_graph, "depth-first")
        ops = res.ops()
        assert len(ops) == len(tbs_graph)
        assert ops[0] is tbs_graph.nodes[res.order[0]].op


class TestBeladyReplay:
    def test_never_above_lru(self, tbs_case, chol_case):
        for case in (tbs_case, chol_case):
            for capacity in (S, 2 * S, 4 * S):
                opt = belady_replay(case.schedule, capacity)
                lru = lru_replay(case.schedule, capacity)
                assert opt.loads <= lru.loads
                assert opt.loads >= opt.distinct  # at least the cold misses

    def test_same_access_sequence_as_lru(self, tbs_case):
        opt = belady_replay(tbs_case.schedule, S)
        lru = lru_replay(tbs_case.schedule, S)
        assert opt.n_accesses == lru.n_accesses
        assert opt.distinct == lru.distinct

    def test_infinite_capacity_hits_cold_floor(self, tbs_case):
        r = belady_replay(tbs_case.schedule, 10 ** 6)
        assert r.loads == r.distinct
        assert r.miss_rate == r.loads / r.n_accesses

    def test_monotone_in_capacity(self, tbs_case):
        vols = [belady_replay(tbs_case.schedule, c).loads for c in (S, 2 * S, 4 * S)]
        assert all(a >= b for a, b in zip(vols, vols[1:]))

    def test_capacity_must_be_positive(self, tbs_case):
        with pytest.raises(ConfigurationError):
            belady_replay(tbs_case.schedule, 0)

    def test_replacement_gap_at_least_one(self, tbs_case):
        assert replacement_gap(tbs_case.schedule, S) >= 1.0

    def test_access_sequence_marks_writes(self, tbs_case):
        seq = access_sequence(tbs_case.schedule)
        assert any(write for _key, write in seq)       # C elements are written
        assert any(not write for _key, write in seq)   # A elements are not


class TestRewriter:
    def test_original_order_rewrite_is_exact_and_cheaper(self, tbs_case):
        res = rewrite_schedule(tbs_case.schedule, S)
        assert res.summary["peak_occupancy"] <= S
        # on-demand loading never exceeds the hand-written explicit volume
        assert res.loads <= tbs_case.explicit_loads
        assert tbs_case.check_exact(res.schedule)

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_reschedule_heuristics_are_exact(self, tbs_case, heuristic):
        res = reschedule(tbs_case.schedule, S, heuristic)
        validate_schedule(res.schedule, S)
        assert tbs_case.check_exact(res.schedule)

    def test_chol_reschedule_is_exact(self, chol_case):
        res = reschedule(chol_case.schedule, S, "depth-first")
        assert chol_case.check_exact(res.schedule)

    def test_relaxed_reductions_allclose_not_bitexact(self, tbs_case):
        res = reschedule(tbs_case.schedule, S, "locality", relax_reductions=True)
        m = tbs_case.make_machine()
        replay_schedule(res.schedule, m)
        np.testing.assert_allclose(m.result("C"), tbs_case.reference["C"])

    def test_bad_orders_rejected(self, tbs_case, tbs_graph):
        with pytest.raises(ScheduleError, match="permutation"):
            rewrite_schedule(tbs_case.schedule, S, [0, 0, 1])
        chain = tbs_graph.reduction_classes()[0]
        order = list(range(len(tbs_graph)))
        order[chain[0]], order[chain[-1]] = order[chain[-1]], order[chain[0]]
        with pytest.raises(ScheduleError, match="violates"):
            rewrite_schedule(tbs_case.schedule, S, order, graph=tbs_graph)

    def test_capacity_too_small(self, tbs_case):
        with pytest.raises(ScheduleError, match="cannot fit"):
            rewrite_schedule(tbs_case.schedule, 3)

    def test_dirty_elements_written_back_once_loaded_again(self):
        # A schedule whose output region is evicted under pressure and
        # reloaded must round-trip partial sums through slow memory.
        n, mc, s = 12, 4, 6  # tile side 2: tiny memory forces churn
        rng = np.random.default_rng(3)
        a = rng.standard_normal((n, mc))

        def fresh():
            m = TwoLevelMachine(s)
            m.add_matrix("A", a)
            m.add_matrix("C", np.zeros((n, n)))
            return m

        m1 = fresh()
        sched = record_schedule(m1, lambda: tbs_syrk(m1, "A", "C", range(n), range(mc)))
        m1.assert_empty()
        res = reschedule(sched, s, "fan-out")  # interleaves blocks: heavy churn
        m2 = fresh()
        replay_schedule(res.schedule, m2)
        m2.assert_empty()
        assert np.array_equal(m2.result("C"), m1.result("C"))


class TestCompareHarness:
    def test_rows_and_invariants(self, tbs_case):
        comp = compare_case(tbs_case, ("original", "locality"), check_numerics=True)
        labels = [r.label for r in comp.rows]
        assert labels[:3] == ["explicit", "lru", "belady"]
        assert comp.row("belady").loads <= comp.row("lru").loads
        assert comp.row("reschedule:original").valid
        assert comp.row("reschedule:original").exact
        assert set(comp.rewrites) == {"original", "locality"}
        with pytest.raises(KeyError):
            comp.row("nope")

    def test_unknown_case_name(self):
        with pytest.raises(ConfigurationError, match="unknown case"):
            record_case("gemm", 10, 2, 15)

    def test_ooc_chol_case_records_cleanly(self, chol_case):
        # reference["A"] holds the in-place factor; its lower triangle must
        # reproduce the original SPD matrix (still intact in make_machine()).
        spd = chol_case.make_machine().result("A")
        factor = np.tril(chol_case.reference["A"])
        np.testing.assert_allclose(factor @ factor.T, spd, atol=1e-8)
