"""Tests for the observability layer: probes, series, reports, timelines.

Ends with the invariance suite — the load-bearing guarantee of the whole
layer: with a recording probe installed (or convergence recording turned
on), every engine returns results bit-identical to an uninstrumented run.
"""

import dataclasses
import io
import json

import pytest

from repro.__main__ import main
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.graph.search import AnnealStats, anneal_minimize, anneal_search
from repro.obs import (
    NULL_PROBE,
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    AnnealSeries,
    RecordingProbe,
    RoundSeries,
    build_report,
    export_timeline,
    get_probe,
    load_report,
    probe_scope,
    provenance_stamp,
    render_report,
    render_series,
    save_report,
    series_from_dict,
    set_probe,
    timed,
    timeline_events,
)
from repro.parallel import makespan_model, partition_graph, refine_partition
from repro.trace.replay import belady_replay_trace, lru_replay_trace

N, M, S = 26, 3, 15


@pytest.fixture(scope="module")
def tbs_case():
    return record_case("tbs", N, M, S)


@pytest.fixture(scope="module")
def tbs_graph(tbs_case):
    return DependencyGraph.from_trace(tbs_case.trace)


# --------------------------------------------------------------------- #
# probes
# --------------------------------------------------------------------- #

class TestProbe:
    def test_null_probe_is_the_default(self):
        probe = get_probe()
        assert probe is NULL_PROBE
        assert probe.enabled is False

    def test_null_probe_hooks_are_noops(self):
        NULL_PROBE.count("x", 3)
        NULL_PROBE.emit("s", a=1)
        assert NULL_PROBE.attach("name", object()) == "name"
        with NULL_PROBE.span("phase"):
            pass
        with NULL_PROBE.timer("t") as t:
            pass
        assert t.elapsed >= 0.0  # measures even when nobody records

    def test_probe_scope_installs_and_restores(self):
        assert get_probe() is NULL_PROBE
        with probe_scope() as probe:
            assert get_probe() is probe
            assert probe.enabled is True
        assert get_probe() is NULL_PROBE

    def test_probe_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with probe_scope():
                raise RuntimeError("boom")
        assert get_probe() is NULL_PROBE

    def test_probe_scope_nests(self):
        with probe_scope() as outer:
            with probe_scope() as inner:
                assert get_probe() is inner
            assert get_probe() is outer
        assert get_probe() is NULL_PROBE

    def test_set_probe_returns_previous(self):
        probe = RecordingProbe()
        previous = set_probe(probe)
        try:
            assert previous is NULL_PROBE
            assert get_probe() is probe
        finally:
            assert set_probe(None) is probe
        assert get_probe() is NULL_PROBE

    def test_counters_accumulate(self):
        probe = RecordingProbe()
        probe.count("a")
        probe.count("a", 4)
        probe.count("b", 2)
        assert probe.counters == {"a": 5, "b": 2}

    def test_timers_aggregate_total_and_calls(self):
        probe = RecordingProbe()
        with probe.timer("phase"):
            pass
        with probe.timer("phase"):
            pass
        rec = probe.timers["phase"]
        assert rec["calls"] == 2
        assert rec["total"] >= 0.0

    def test_spans_record_nesting_depth(self):
        probe = RecordingProbe()
        with probe.span("outer"):
            with probe.span("inner"):
                pass
        outer, inner = probe.spans
        assert (outer["name"], outer["depth"]) == ("outer", 0)
        assert (inner["name"], inner["depth"]) == ("inner", 1)
        assert outer["end"] >= inner["end"] >= inner["start"] >= outer["start"]

    def test_attach_dedups_names(self):
        probe = RecordingProbe()
        assert probe.attach("conv", 1) == "conv"
        assert probe.attach("conv", 2) == "conv#2"
        assert probe.attach("conv", 3) == "conv#3"
        assert probe.attachments == {"conv": 1, "conv#2": 2, "conv#3": 3}

    def test_emit_appends_rows(self):
        probe = RecordingProbe()
        probe.emit("s", x=1)
        probe.emit("s", x=2)
        assert probe.series["s"] == [{"x": 1}, {"x": 2}]

    def test_timed_binds_to_active_probe(self):
        with timed("off") as t:
            pass
        assert t.elapsed >= 0.0 and t.probe is None
        with probe_scope() as probe:
            with timed("on"):
                pass
        assert probe.timers["on"]["calls"] == 1

    def test_snapshot_converts_series_attachments(self):
        probe = RecordingProbe()
        series = AnnealSeries(label="x")
        series.add(0, 1.5, 3.0, 3.0, True)
        probe.attach("conv", series)
        snap = probe.snapshot()
        assert snap["attachments"]["conv"]["kind"] == "anneal"
        json.dumps(snap)  # the whole snapshot must be JSON-able


# --------------------------------------------------------------------- #
# convergence series
# --------------------------------------------------------------------- #

class TestSeries:
    def test_anneal_series_round_trip(self):
        s = AnnealSeries(label="demo")
        s.add(0, 1.5, 10.0, 10.0, True)
        s.add(1, 1.0, 12.0, 10.0, False)
        s.add(2, 0.5, 8.0, 8.0, True)
        assert len(s) == 3
        assert s.improvement == 2.0
        assert s.plateau_length() == 1
        rebuilt = series_from_dict(s.as_dict())
        assert isinstance(rebuilt, AnnealSeries)
        assert rebuilt == s

    def test_round_series_round_trip(self):
        s = RoundSeries(label="demo", engine="greedy")
        s.add(0, 9.0)
        s.add(1, 7.0)
        assert len(s) == 2
        assert s.improvement == 2.0
        rebuilt = series_from_dict(s.as_dict())
        assert isinstance(rebuilt, RoundSeries)
        assert rebuilt == s

    def test_empty_series_edge_cases(self):
        assert AnnealSeries().improvement == 0.0
        assert AnnealSeries().plateau_length() == 0
        assert RoundSeries().improvement == 0.0

    def test_series_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown series kind"):
            series_from_dict({"kind": "nope"})
        with pytest.raises(ValueError):
            series_from_dict({})

    def test_round_trip_survives_json(self):
        s = AnnealSeries(label="j")
        s.add(0, 1.5, 4.0, 4.0, False)
        rebuilt = series_from_dict(json.loads(json.dumps(s.as_dict())))
        assert rebuilt == s


# --------------------------------------------------------------------- #
# AnnealStats + the anneal_minimize edge cases (satellite c)
# --------------------------------------------------------------------- #

class TestAnnealStats:
    def test_acceptance_rate_zero_without_evaluations(self):
        assert AnnealStats().acceptance_rate == 0.0
        assert AnnealStats(iters=5, skipped=5).acceptance_rate == 0.0

    def test_acceptance_rate_is_accepted_over_evaluations(self):
        stats = AnnealStats(iters=10, evaluations=8, accepted=2, skipped=2)
        assert stats.acceptance_rate == 0.25

    def test_anneal_minimize_zero_iters(self):
        import random

        series = AnnealSeries()
        cost, stats = anneal_minimize(
            7.0, lambda rng: None, iters=0, rng=random.Random(0), series=series
        )
        assert cost == 7.0
        assert (stats.iters, stats.evaluations, stats.accepted) == (0, 0, 0)
        assert len(series) == 0

    def test_anneal_minimize_single_iter_runs_at_t_start(self):
        # iters=1 used to divide by zero in the geometric cooling schedule;
        # the guard pins the single iteration to t_start.
        import random

        series = AnnealSeries()
        cost, stats = anneal_minimize(
            10.0,
            lambda rng: (9.0, lambda: None),
            iters=1,
            rng=random.Random(0),
            t_start=2.0,
            t_end=0.1,
            series=series,
        )
        assert cost == 9.0  # downhill always accepted
        assert stats.iters == 1 and stats.accepted == 1
        assert series.temps == [2.0]

    def test_anneal_minimize_series_matches_stats(self):
        import random

        series = AnnealSeries()
        state = {"cost": 100.0}

        def step(rng):
            if rng.random() < 0.3:
                return None  # no-op proposal: cools but never costed
            cand = state["cost"] + rng.uniform(-5.0, 5.0)

            def commit():
                state["cost"] = cand

            return cand, commit

        _, stats = anneal_minimize(
            100.0, step, iters=50, rng=random.Random(3), series=series
        )
        assert len(series) == stats.iters == 50
        assert sum(series.accepted) == stats.accepted
        assert stats.evaluations + stats.skipped == stats.iters
        # bests non-increasing, temps non-increasing
        assert all(b <= a for a, b in zip(series.bests, series.bests[1:]))
        assert all(b <= a for a, b in zip(series.temps, series.temps[1:]))


# --------------------------------------------------------------------- #
# provenance
# --------------------------------------------------------------------- #

class TestProvenance:
    def test_stamp_has_all_standard_fields(self):
        stamp = provenance_stamp()
        for field in (
            "schema_version", "git_sha", "git_dirty", "host",
            "platform", "python", "numpy", "timestamp_utc",
        ):
            assert field in stamp
        assert stamp["schema_version"] == SCHEMA_VERSION
        json.dumps(stamp)

    def test_extra_keys_merge(self):
        stamp = provenance_stamp(extra={"experiment": "e16"})
        assert stamp["experiment"] == "e16"

    def test_extra_may_not_shadow_standard_fields(self):
        with pytest.raises(ValueError, match="shadows"):
            provenance_stamp(extra={"git_sha": "cafebabe"})


# --------------------------------------------------------------------- #
# run reports
# --------------------------------------------------------------------- #

class TestReport:
    def _probe_with_content(self):
        probe = RecordingProbe()
        probe.count("demo.events", 3)
        with probe.timer("demo.phase"):
            pass
        series = AnnealSeries(label="demo")
        series.add(0, 1.5, 5.0, 5.0, True)
        series.add(1, 1.0, 4.0, 4.0, True)
        probe.attach("convergence.demo", series)
        return probe

    def test_build_save_load_round_trip(self, tmp_path):
        report = build_report(
            self._probe_with_content(), command="unit", params={"n": 26}
        )
        assert report["schema"] == REPORT_SCHEMA
        path = tmp_path / "r.json"
        save_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded == json.loads(json.dumps(report))
        assert loaded["counters"]["demo.events"] == 3
        assert loaded["timers"]["demo.phase"]["calls"] == 1
        assert loaded["attachments"]["convergence.demo"]["kind"] == "anneal"
        assert loaded["params"] == {"n": 26}

    def test_round_trip_through_file_objects(self):
        report = build_report(self._probe_with_content(), command="buf")
        buf = io.StringIO()
        save_report(report, buf)
        buf.seek(0)
        assert load_report(buf)["command"] == "buf"

    def test_load_report_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a run report"):
            load_report(str(path))

    def test_render_report_mentions_everything(self):
        report = build_report(self._probe_with_content(), command="unit")
        text = render_report(report)
        assert "run report: unit" in text
        assert "demo.events" in text
        assert "demo.phase" in text
        assert "convergence.demo" in text

    def test_render_series(self):
        assert render_series([]) == "(empty series)"
        text = render_series([5.0, 4.0, 3.0, 3.0])
        assert "max" in text and "min" in text and "*" in text
        assert render_series([2.0, 2.0])  # flat series must not divide by zero


# --------------------------------------------------------------------- #
# per-op makespan arrays (satellite b)
# --------------------------------------------------------------------- #

class TestMakespanPerOpArrays:
    def test_finish_max_is_makespan(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        span = makespan_model(tbs_graph, owner)
        assert len(span.start) == len(span.finish) == len(tbs_graph)
        assert max(span.finish) == span.makespan
        assert span.finish[span.bottleneck] == span.makespan

    def test_start_is_finish_minus_weight(self, tbs_graph):
        owner = partition_graph(tbs_graph, 2, "owner-computes")
        span = makespan_model(tbs_graph, owner)
        for v, node in enumerate(tbs_graph.nodes):
            assert span.finish[v] - span.start[v] == float(node.op.mults)
            assert span.start[v] >= 0.0

    def test_node_array_echoes_owner(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        span = makespan_model(tbs_graph, owner)
        assert list(span.node) == list(owner)

    def test_dependences_respected_in_times(self, tbs_graph):
        owner = partition_graph(tbs_graph, 4, "level-greedy")
        span = makespan_model(tbs_graph, owner)
        for v in range(len(tbs_graph)):
            for u in tbs_graph.effective_preds(v, relax_reductions=False):
                assert span.start[v] >= span.finish[u]


# --------------------------------------------------------------------- #
# timelines
# --------------------------------------------------------------------- #

class TestTimeline:
    @pytest.fixture(scope="class")
    def cut_span(self, tbs_graph):
        # level-greedy deals antichain levels across nodes, so RAW edges
        # cross nodes and the cut is non-empty — flows must appear.
        owner = partition_graph(tbs_graph, 2, "level-greedy")
        assert tbs_graph.cut_transfers(list(owner))
        return owner, makespan_model(tbs_graph, owner)

    def test_one_track_per_node(self, tbs_graph, cut_span):
        _, span = cut_span
        events = timeline_events(tbs_graph, span)
        tracks = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(tracks) == span.p
        assert sorted(t["args"]["name"] for t in tracks) == [
            f"node {q}" for q in range(span.p)
        ]

    def test_one_complete_event_per_op(self, tbs_graph, cut_span):
        _, span = cut_span
        events = timeline_events(tbs_graph, span)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(tbs_graph)
        assert all(e["ts"] >= 0.0 for e in xs)
        assert max(e["ts"] + e["dur"] for e in xs) == span.makespan
        assert {e["tid"] for e in xs} <= set(range(span.p))

    def test_flow_events_cover_the_cut(self, tbs_graph, cut_span):
        _, span = cut_span
        events = timeline_events(tbs_graph, span)
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        ends = {e["id"]: e for e in events if e["ph"] == "f"}
        assert starts and set(starts) == set(ends)  # s/f always paired
        for fid, s in starts.items():
            f = ends[fid]
            assert s["tid"] != f["tid"]  # flows only cross nodes
            assert f["ts"] >= s["ts"]  # consumer starts after producer ends
            assert f["args"]["elements"] > 0

    def test_no_flows_when_owner_computes(self, tbs_graph):
        owner = partition_graph(tbs_graph, 2, "owner-computes")
        span = makespan_model(tbs_graph, owner)
        events = timeline_events(tbs_graph, span)
        # owner-computes never splits a reduction class: zero transfers,
        # and the timeline shows exactly that.
        if not tbs_graph.cut_transfers(list(owner)):
            assert not [e for e in events if e["ph"] == "s"]

    def test_rejects_span_without_per_op_arrays(self, tbs_graph, cut_span):
        _, span = cut_span
        stripped = dataclasses.replace(span, start=(), finish=(), node=())
        with pytest.raises(ValueError, match="per-op times"):
            timeline_events(tbs_graph, stripped)

    def test_export_writes_valid_json(self, tbs_graph, cut_span, tmp_path):
        _, span = cut_span
        path = tmp_path / "t.json"
        doc = export_timeline(tbs_graph, span, str(path), label="unit")
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert on_disk["meta"]["label"] == "unit"
        assert on_disk["meta"]["makespan"] == span.makespan
        assert on_disk["provenance"]["schema_version"] == SCHEMA_VERSION
        assert isinstance(on_disk["traceEvents"], list)


# --------------------------------------------------------------------- #
# the CLI surface: --report / --timeline / `repro report`
# --------------------------------------------------------------------- #

class TestCliObservability:
    def test_parallel_report_and_timeline(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        timeline_path = tmp_path / "t.json"
        assert main([
            "parallel", "--kernel", "tbs", "--n", str(N), "--m", str(M),
            "--s", str(S), "--p", "2", "--refine", "anneal",
            "--report", str(report_path), "--timeline", str(timeline_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"report written to {report_path}" in out

        report = load_report(str(report_path))
        assert report["command"] == "parallel"
        assert report["params"]["refine"] == "anneal"
        assert report["provenance"]["schema_version"] == SCHEMA_VERSION
        assert report["counters"]["executor.runs"] >= 1
        assert report["counters"]["refine.runs"] >= 1
        assert any(k.startswith("replay.") for k in report["counters"])
        assert "executor.replay" in report["timers"]
        assert "parallel.refine.anneal" in report["timers"]
        anneal_attachments = [
            a for k, a in report["attachments"].items()
            if k.startswith("convergence.refine.anneal")
        ]
        assert anneal_attachments
        assert all(len(a["best"]) > 0 for a in anneal_attachments)

        timeline = json.loads(timeline_path.read_text())
        assert timeline["provenance"]["schema_version"] == SCHEMA_VERSION
        assert any(e["ph"] == "X" for e in timeline["traceEvents"])

    def test_search_report(self, tmp_path, capsys):
        report_path = tmp_path / "r.json"
        assert main([
            "search", "--kernel", "tbs", "--n", str(N), "--m", str(M),
            "--s", str(S), "--strategy", "anneal", "--iters", "60",
            "--relax", "--report", str(report_path),
        ]) == 0
        report = load_report(str(report_path))
        assert report["command"] == "search"
        assert report["counters"]["search.anneal.runs"] == 1
        assert report["counters"]["search.order_costs"] > 0
        assert "search.strategy.anneal" in report["timers"]
        assert "convergence.search.anneal" in report["attachments"]
        capsys.readouterr()

    def test_report_subcommand_renders(self, tmp_path, capsys):
        path = tmp_path / "r.json"
        probe = RecordingProbe()
        probe.count("demo.events")
        save_report(build_report(probe, command="unit"), str(path))
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run report: unit" in out
        assert "demo.events" in out

    def test_report_subcommand_rejects_non_reports(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            main(["report", str(path)])


# --------------------------------------------------------------------- #
# invariance: observability never changes a result
# --------------------------------------------------------------------- #

class TestInvariance:
    def test_anneal_search_bit_identical_under_probe(self, tbs_graph):
        baseline = anneal_search(tbs_graph, S, iters=120, seed=7,
                                 relax_reductions=True)
        with probe_scope():
            probed = anneal_search(tbs_graph, S, iters=120, seed=7,
                                   relax_reductions=True)
        recorded = anneal_search(tbs_graph, S, iters=120, seed=7,
                                 relax_reductions=True,
                                 record_convergence=True)
        assert probed.order == baseline.order
        assert probed.cost == baseline.cost
        assert recorded.order == baseline.order
        assert recorded.cost == baseline.cost
        assert baseline.convergence is None
        assert len(recorded.convergence) == recorded.params["iters"]

    @pytest.mark.parametrize("strategy", ["greedy", "anneal"])
    def test_refine_partition_bit_identical_under_probe(self, tbs_graph, strategy):
        seed = partition_graph(tbs_graph, 4, "level-greedy")
        kwargs = dict(strategy=strategy, iters=150, seed=5)
        baseline = refine_partition(tbs_graph, seed, 4, S, **kwargs)
        with probe_scope() as probe:
            probed = refine_partition(tbs_graph, seed, 4, S, **kwargs)
        recorded = refine_partition(tbs_graph, seed, 4, S,
                                    record_convergence=True, **kwargs)
        assert probed.owner == baseline.owner
        assert probed.cost == baseline.cost
        assert recorded.owner == baseline.owner
        assert recorded.cost == baseline.cost
        assert not baseline.convergence
        assert strategy in recorded.convergence
        assert probe.counters["refine.runs"] == 1
        assert f"convergence.refine.{strategy}" in probe.attachments

    @pytest.mark.parametrize("replay", [lru_replay_trace, belady_replay_trace])
    def test_replay_counts_bit_identical_under_probe(self, tbs_case, replay):
        baseline = replay(tbs_case.trace, S)
        with probe_scope() as probe:
            probed = replay(tbs_case.trace, S)
        assert probed == baseline  # the whole ReplayResult dataclass
        policy = "lru" if replay is lru_replay_trace else "belady"
        assert probe.counters[f"replay.{policy}.replays"] == 1
        assert probe.counters[f"replay.{policy}.misses"] == baseline.loads
        assert (
            probe.counters[f"replay.{policy}.hits"]
            == baseline.n_accesses - baseline.loads
        )
        assert probe.counters[f"replay.{policy}.stores"] == baseline.stores
