"""Smoke tests: every example script's main() runs and prints its story.

The examples double as living documentation; these tests keep them from
rotting.  The heavyweight sweeps inside them are already sized for seconds.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "TBS" in out and "OOC_SYRK" in out and "verified" in out

    def test_pebble_game(self, capsys):
        load_example("pebble_game").main()
        out = capsys.readouterr().out
        assert "naive ijk" in out and "TBS" in out

    def test_cholesky_factorization(self, capsys):
        load_example("cholesky_factorization").main()
        out = capsys.readouterr().out
        assert "factor check" in out and "LBC phase" in out

    def test_syr2k_extension(self, capsys):
        load_example("syr2k_extension").main()
        out = capsys.readouterr().out
        assert "TB-SYR2K" in out and "sqrt(2)" in out

    def test_dag_rescheduling(self, capsys):
        load_example("dag_rescheduling").main()
        out = capsys.readouterr().out
        assert "reduction" in out and "Belady floor" in out and "bit-identical" in out

    def test_order_search(self, capsys):
        load_example("order_search").main()
        out = capsys.readouterr().out
        assert "beam" in out and "anneal" in out and "lookahead" in out
        assert "best searched order" in out and "Belady floor" in out

    def test_parallel_executor(self, capsys):
        load_example("parallel_executor").main()
        out = capsys.readouterr().out
        assert "owner-computes" in out
        assert "bit-identical = True" in out

    def test_partition_refinement(self, capsys):
        load_example("partition_refinement").main()
        out = capsys.readouterr().out
        assert "never worse" in out and "False" not in out
        assert "makespan" in out and "peak<=S everywhere = True" in out

    @pytest.mark.slow
    def test_gram_matrix(self, capsys):
        load_example("gram_matrix_out_of_core").main()
        out = capsys.readouterr().out
        assert "A-ratio" in out

    @pytest.mark.slow
    def test_io_model_explorer(self, capsys):
        load_example("io_model_explorer").main()
        out = capsys.readouterr().out
        assert "Figure 1" in out and "0.7071" in out
