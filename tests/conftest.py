"""Shared fixtures: seeded RNG, machine factories, canonical shapes.

Conventions used across the suite:

* ``S = 15`` is the canonical small memory (triangle side k=5, square tile
  s=3) — large enough for every schedule, small enough that strict-mode
  verification runs are fast;
* strict machines verify numerics, counting machines
  (``strict=False, numerics=False``) are for I/O-only assertions;
* all inputs come from the seeded generators in :mod:`repro.utils.rng`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TwoLevelMachine


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20220711)


@pytest.fixture
def small_s() -> int:
    return 15


def make_machine(s: int, mats: dict[str, np.ndarray], **kw) -> TwoLevelMachine:
    """A strict machine pre-loaded with matrices (copied)."""
    m = TwoLevelMachine(s, **kw)
    for name, arr in mats.items():
        m.add_matrix(name, arr)
    return m


def make_counting_machine(s: int, shapes: dict[str, tuple[int, int]]) -> TwoLevelMachine:
    """A fast counting-only machine with zero matrices of given shapes."""
    m = TwoLevelMachine(s, strict=False, numerics=False)
    for name, shape in shapes.items():
        m.add_matrix(name, np.zeros(shape))
    return m


@pytest.fixture
def machine_factory():
    return make_machine


@pytest.fixture
def counting_factory():
    return make_counting_machine
