"""Property-based checks for the joint order x partition co-search.

Same two-generator pattern as ``tests/test_refine_property.py`` and
``tests/test_search_property.py`` — hypothesis when available, a seeded
random sweep otherwise — feeding one set of invariants:

* after any interleaved sequence of committed order/owner moves the
  state still holds a *legal exact cover*: every op owned by exactly one
  node in ``0..p-1``, and the order a valid topological order of the
  graph under ``relax_reductions``;
* the winning order always dresses into a **validated** explicit stream
  with peak occupancy ``<= S`` (the rewriter's
  :func:`~repro.sched.validate.validate_schedule` is the judge);
* the driver is **never worse than its seed**, measured independently
  with :func:`~repro.parallel.cosearch.cosearch_cost`, across kernels x
  partitioner seeds x ``p in {2, 4, 16}``;
* chains are deterministic: ``jobs=1`` and ``jobs=4`` return
  bit-identical results for any base seed.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.tbs import tbs_syrk
from repro.graph.dependency import DependencyGraph
from repro.graph.rewriter import rewrite_schedule
from repro.parallel import (
    PARTITIONERS,
    CoSearchState,
    cosearch,
    cosearch_cost,
    partition_graph,
)
from repro.sched.schedule import record_schedule
from repro.trace.compiled import compile_trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

PS = (2, 4, 16)
S = 15


def build_graph(kernel_name: str, n: int, mc: int, s: int = S) -> DependencyGraph:
    kernel = tbs_syrk if kernel_name == "tbs" else ooc_syrk
    m = TwoLevelMachine(s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, mc)))
    m.add_matrix("C", np.zeros((n, n)))
    schedule = record_schedule(m, lambda: kernel(m, "A", "C", range(n), range(mc)))
    return DependencyGraph.from_trace(compile_trace(schedule))


_GRAPHS: dict = {}


def cached_graph(kernel: str, n: int, mc: int) -> DependencyGraph:
    key = (kernel, n, mc)
    if key not in _GRAPHS:
        _GRAPHS[key] = build_graph(kernel, n, mc)
    return _GRAPHS[key]


def check_state_invariants(kernel: str, n: int, mc: int, p: int, seed: int):
    """Interleaved moves preserve exact cover, legality and the ledger."""
    graph = cached_graph(kernel, n, mc)
    rng = random.Random(seed)
    owner = partition_graph(graph, p, list(PARTITIONERS)[seed % len(PARTITIONERS)])
    state = CoSearchState(graph, owner, p, S)
    for _ in range(80):
        proposal = state.step(rng)
        if proposal is None:
            continue
        _cand, commit = proposal
        if rng.random() < 0.7:
            commit()
    got = state.ledger.owner
    assert len(got) == len(graph)
    assert all(0 <= q < p for q in got)  # exact cover: one owner per op
    assert sorted(state.order) == list(range(len(graph)))
    assert graph.is_valid_order(state.order, relax_reductions=True)
    measured = cosearch_cost(
        graph, got, p, S, order=state.order, relax_reductions=True
    )
    assert state.cost() == measured.cost  # incremental == ground truth


def check_never_worse(kernel: str, n: int, mc: int, p: int, seed: int):
    """cosearch() measured cost <= best measured seed cost; order valid."""
    graph = cached_graph(kernel, n, mc)
    res = cosearch(
        graph, p, S, iters=60, seed=seed,
        search_kwargs={"anneal": {"iters": 25, "seed": seed}},
    )
    assert res.cost <= res.seed_cost
    remeasured = cosearch_cost(
        graph, res.owner, p, S, order=res.order, relax_reductions=True
    )
    assert remeasured.cost == res.cost
    assert res.cost <= min(res.seed_costs.values())
    # the winning order dresses into a validated stream with peak <= S
    rewrite = rewrite_schedule(
        graph.trace, S, res.order, graph=graph, relax_reductions=True
    )
    assert rewrite.summary["peak_occupancy"] <= S


def check_jobs_identity(kernel: str, n: int, mc: int, p: int, seed: int):
    graph = cached_graph(kernel, n, mc)
    kw = dict(iters=40, seed=seed,
              search_kwargs={"anneal": {"iters": 20, "seed": seed}})
    serial = cosearch(graph, p, S, jobs=1, **kw)
    fanned = cosearch(graph, p, S, jobs=4, **kw)
    assert serial.cost == fanned.cost
    assert serial.order == fanned.order
    assert serial.owner == fanned.owner
    assert serial.chain_costs == fanned.chain_costs


if HAVE_HYPOTHESIS:

    @settings(max_examples=8, deadline=None)
    @given(
        kernel=st.sampled_from(["tbs", "ocs"]),
        n=st.integers(min_value=10, max_value=18),
        p=st.sampled_from(PS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_state_invariants_hypothesis(kernel, n, p, seed):
        check_state_invariants(kernel, n, 3, p, seed)

    @settings(max_examples=6, deadline=None)
    @given(
        kernel=st.sampled_from(["tbs", "ocs"]),
        p=st.sampled_from(PS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_never_worse_hypothesis(kernel, p, seed):
        check_never_worse(kernel, 14, 3, p, seed)


@pytest.mark.parametrize("kernel", ["tbs", "ocs"])
@pytest.mark.parametrize("p", PS)
def test_state_invariants_seeded(kernel, p):
    rng = random.Random(20220711 + p)
    for _ in range(2):
        check_state_invariants(kernel, rng.choice((12, 16)), 3, p, rng.randrange(2**16))


@pytest.mark.parametrize("kernel", ["tbs", "ocs"])
@pytest.mark.parametrize("p", PS)
def test_never_worse_seeded(kernel, p):
    rng = random.Random(777 + p)
    check_never_worse(kernel, 14, 3, p, rng.randrange(2**16))


@pytest.mark.parametrize("p", (2, 4))
def test_jobs_identity_seeded(p):
    check_jobs_identity("tbs", 14, 3, p, 5)
