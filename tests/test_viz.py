"""Tests for the figure renderers: structure witnessed, not just drawn."""

import pytest

from repro.core.partition import plan_partition
from repro.errors import ConfigurationError
from repro.viz.ascii import CharGrid
from repro.viz.figures import (
    render_indexing_positions,
    render_lbc_iteration,
    render_tbs_layout,
    render_zones_and_blocks,
)


class TestCharGrid:
    def test_put_get_render(self):
        g = CharGrid(2, 3, fill=".")
        g.put(0, 1, "x")
        assert g.get(0, 1) == "x"
        assert g.render() == ".x.\n..."

    def test_fill_rect(self):
        g = CharGrid(3, 3)
        g.fill_rect(1, 3, 0, 2, "#")
        assert g.render().splitlines()[2] == "##."

    def test_rulers(self):
        g = CharGrid(2, 12)
        text = g.render(rulers=True)
        assert text.splitlines()[0].strip().startswith("0123456789")

    def test_bounds(self):
        g = CharGrid(2, 2)
        with pytest.raises(IndexError):
            g.put(2, 0, "x")
        with pytest.raises(ValueError):
            g.put(0, 0, "xy")
        with pytest.raises(ValueError):
            CharGrid(-1, 2)


class TestFigure1:
    def test_blocks_place_one_element_per_zone(self):
        part = plan_partition(27, 5)
        text = render_zones_and_blocks(part, blocks=[(0, 0)], rulers=False)
        lines = text.splitlines()
        # Count block marks: a side-k triangle block has k(k-1)/2 elements.
        marks = sum(line.count("A") for line in lines)
        assert marks == 5 * 4 // 2
        # each mark in a distinct square zone: zone = (row-group, col-group)
        zones = set()
        for r, line in enumerate(lines):
            for c, ch in enumerate(line):
                if ch == "A":
                    zones.add((r // part.c, c // part.c))
        assert len(zones) == 5 * 4 // 2

    def test_two_blocks_do_not_collide(self):
        part = plan_partition(27, 5)
        text = render_zones_and_blocks(part, blocks=[(0, 0), (2, 1)])
        assert sum(line.count("B") for line in text.splitlines()) == 10


class TestFigure2:
    def test_indexing_positions_match_family(self):
        part = plan_partition(27, 5)
        text = render_indexing_positions(part, 2, 3)
        lines = [l for l in text.splitlines() if l.strip().startswith("u=")]
        assert len(lines) == part.k
        for u, line in enumerate(lines):
            pos = part.family.position(2, 3, u)
            assert f"f({u}) = {pos}" in line
            bracket = line[line.index("[") + 1 : line.index("]")]
            assert bracket[pos] == "*"
            assert bracket.count("*") == 1

    def test_layout_regions_counted(self):
        n, k = 27, 5
        text = render_tbs_layout(n, k)
        part = plan_partition(n, k)
        joined = "".join(text.splitlines())
        n_t = joined.count("T")
        n_r = joined.count("r")
        n_s = joined.count("s")
        # T = inter-group pairs, r = intra-group lower (incl diag), s = strip
        assert n_t == part.k * (part.k - 1) // 2 * part.c**2
        assert n_r == part.k * (part.c * (part.c + 1) // 2)
        assert n_s == sum(r + 1 for r in range(part.covered, n))
        assert n_t + n_r + n_s == n * (n + 1) // 2

    def test_layout_fallback(self):
        text = render_tbs_layout(8, 5)
        assert "F" in text and "T" not in text


class TestFigure3:
    def test_panel_areas(self):
        n, b, i = 12, 3, 1
        text = render_lbc_iteration(n, b, i)
        joined = "".join(text.splitlines())
        lo, hi = i * b, (i + 1) * b
        assert joined.count("L") == sum(min(r + 1, lo) for r in range(n))
        assert joined.count("C") == b * (b + 1) // 2 + 0  # diagonal block lower
        assert joined.count("t") == (n - hi) * b
        # everything lower-triangular is exactly one of L/C/t/S
        assert sum(joined.count(ch) for ch in "LCtS") == n * (n + 1) // 2

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            render_lbc_iteration(10, 3, 0)
        with pytest.raises(ConfigurationError):
            render_lbc_iteration(12, 3, 4)
