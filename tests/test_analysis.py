"""Tests for the analysis layer: models-vs-measured grid, OI, optimum, sweeps."""

import math

import numpy as np
import pytest

from repro.analysis.model import (
    IOPrediction,
    lbc_model,
    lbc_term_model,
    ooc_chol_model,
    ooc_gemm_model,
    ooc_lu_model,
    ooc_syrk_model,
    ooc_trsm_model,
    tbs_model,
    tbs_tiled_model,
)
from repro.analysis.oi import measured_oi, oi_ceiling, oi_gap
from repro.analysis.optimum import numeric_p_doubleprime, verify_theorem41_chain
from repro.analysis.roofline import roofline_rows
from repro.analysis.sweep import run_cholesky_once, run_syrk_once, sweep_cholesky, sweep_syrk
from repro.core.balanced import solve_p_doubleprime
from repro.errors import ConfigurationError
from repro.machine.tracker import IOStats


class TestIOPrediction:
    def test_add_and_scale(self):
        a = IOPrediction(3, 1)
        b = IOPrediction(4, 2)
        assert (a + b) == IOPrediction(7, 3)
        assert a.scaled(3) == IOPrediction(9, 3)


class TestModelAsymptotics:
    def test_tbs_leading_constant_converges(self):
        # Q_A(TBS) * (k-1) / (N^2 M) -> 1 as N grows (then sqrt(S)/(k-1)
        # -> 1/sqrt(2) as S grows).
        s, mcols = 15, 8
        k = 5
        prev = None
        for n in (200, 800, 3200):
            pred = tbs_model(n, mcols, s)
            a_traffic = pred.loads - n * (n + 1) // 2  # remove the C pass
            const = a_traffic * (k - 1) / (n * n * mcols)
            if prev is not None:
                assert abs(const - 1.0) < abs(prev - 1.0) + 0.02
            prev = const
        assert abs(prev - 1.0) < 0.1

    def test_sqrt2_ratio_at_large_s(self):
        # With S = 5050 (k = 100, s = 70) the OCS/TBS A-traffic ratio is
        # (k-1)/s = 99/70 = 1.4143 ~ sqrt(2); at N = 200k the strip and
        # fallback overheads are < 1%.
        s = 5050
        n, mcols = 200_000, 4
        tbs = tbs_model(n, mcols, s)
        ocs = ooc_syrk_model(n, mcols, s)
        c_pass = n * (n + 1) // 2
        ratio = (ocs.loads - c_pass) / (tbs.loads - c_pass)
        assert ratio == pytest.approx(math.sqrt(2.0), rel=0.01)

    def test_occ_leading_constant(self):
        # Q(OCC) * s / N^3 -> 1/3 for large N.
        s = 66  # tile side 7
        n = 1400
        pred = ooc_chol_model(n, s)
        assert pred.loads * 7 / n**3 == pytest.approx(1 / 3, rel=0.05)

    def test_lbc_beats_occ_model(self):
        s = 15
        for n in (400, 900, 1600):
            b = int(math.isqrt(n))
            lbc = lbc_model(n, s, b)
            occ = ooc_chol_model(n, s)
            assert lbc.loads < occ.loads

    def test_lbc_term_structure(self):
        # At b = sqrt(N) the SYRK term dominates chol and trsm terms.
        n, s = 1600, 15
        parts = lbc_term_model(n, s, 40)
        assert parts["syrk"].loads > parts["trsm"].loads
        assert parts["syrk"].loads > parts["chol"].loads

    def test_lu_is_twice_chol(self):
        s = 48
        n = 600
        lu = ooc_lu_model(n, s).loads
        chol = ooc_chol_model(n, s).loads
        assert lu / chol == pytest.approx(2.0, rel=0.1)

    def test_gemm_model_leading(self):
        # 2 n p K / s streamed + n p tile loads.
        s, t = 35, 5
        pred = ooc_gemm_model(100, 50, 100, s)
        streamed = pred.loads - 100 * 100
        assert streamed == pytest.approx(2 * 100 * 100 * 50 / t, rel=0.01)

    def test_trsm_model_leading(self):
        s = 24  # tile 4
        ntri, mrows = 64, 256
        pred = ooc_trsm_model(ntri, mrows, s)
        # leading term ntri^2 * mrows / tile
        assert pred.loads == pytest.approx(ntri**2 * mrows / 4, rel=0.15)

    def test_bad_lbc_b(self):
        with pytest.raises(ConfigurationError):
            lbc_model(10, 15, 3)
        with pytest.raises(ConfigurationError):
            lbc_term_model(12, 15, 4, syrk="nope")


class TestOI:
    def make_stats(self, loads, mults):
        st = IOStats()
        st.loads = loads
        st.mults = mults
        st.flops = 2 * mults
        return st

    def test_measured(self):
        st = self.make_stats(100, 500)
        assert measured_oi(st) == 5.0
        assert measured_oi(st, per="flops") == 10.0

    def test_ceiling_and_gap(self):
        s = 50
        assert oi_ceiling(s) == pytest.approx(math.sqrt(25.0))
        st = self.make_stats(100, 250)
        assert oi_gap(st, s) == pytest.approx(2.5 / 5.0)


class TestOptimum:
    @pytest.mark.parametrize("x", [5, 45, 300, 3000])
    def test_slsqp_matches_closed_form(self, x):
        # SLSQP occasionally reports success=False at tight ftol while
        # sitting numerically on the optimum; assert on the value.
        num = numeric_p_doubleprime(float(x))
        closed = solve_p_doubleprime(float(x))
        assert num.value == pytest.approx(closed.value, rel=1e-4)
        assert num.i_star == pytest.approx(closed.i_star, rel=1e-2)

    @pytest.mark.parametrize("x", [3, 10, 45, 100, 1000])
    def test_theorem41_chain(self, x):
        chk = verify_theorem41_chain(x)
        assert chk.enumerated <= chk.continuous + 1e-9
        assert chk.continuous <= chk.bound + 1e-9
        assert 0 < chk.tightness <= 1.0


class TestSweep:
    def test_syrk_row_fields(self):
        row = run_syrk_once("tbs", 54, 6, 15)
        assert row.kernel == "syrk" and row.alg == "tbs"
        assert row.loads == row.model_loads  # measured == model
        assert row.a_loads + row.c_loads == row.loads
        assert row.loads >= row.lower_bound * 0  # sanity
        assert row.ratio_to_bound > 1.0
        assert row.q == row.loads

    def test_cholesky_row_fields(self):
        row = run_cholesky_once("lbc", 36, 15, b=6)
        assert row.loads == row.model_loads
        assert row.leading_constant > 0

    def test_unknown_alg(self):
        with pytest.raises(ConfigurationError):
            run_syrk_once("magic", 10, 2, 15)
        with pytest.raises(ConfigurationError):
            run_cholesky_once("magic", 10, 15)

    def test_sweep_shapes(self):
        rows = sweep_syrk([27, 40], [3], [15], algs=("tbs", "ocs"))
        assert len(rows) == 4
        tbs_rows = [r for r in rows if r.alg == "tbs"]
        ocs_rows = [r for r in rows if r.alg == "ocs"]
        for t, o in zip(tbs_rows, ocs_rows):
            assert t.loads <= o.loads

    def test_sweep_cholesky(self):
        rows = sweep_cholesky([36], [15], algs=("lbc", "occ"), b=6)
        # b is only meaningful for lbc; occ ignores it -> must not crash
        assert len(rows) == 2


class TestRoofline:
    def test_rows_complete_and_bounded(self):
        rows = roofline_rows(n=48, mcols=8, s=15, lbc_b=6)
        names = {r.schedule for r in rows}
        assert len(rows) == 6
        assert any("TBS" in n for n in names)
        for r in rows:
            assert 0 < r.fraction <= 1.05  # never meaningfully above ceiling

    def test_tbs_closer_to_symmetric_ceiling_than_ocs(self):
        rows = {r.schedule: r for r in roofline_rows(n=120, mcols=16, s=15, lbc_b=None)}
        assert rows["TBS (syrk)"].oi > rows["OOC_SYRK"].oi
