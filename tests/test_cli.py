"""Tests for the command-line interface (python -m repro ...)."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "TBS" in out and "OOC_SYRK" in out and "lower bound" in out

    def test_figures(self, capsys):
        assert main(["figures", "--n", "27", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 3" in out
        assert "f(0)" in out  # indexing positions

    def test_figures_fallback(self, capsys):
        assert main(["figures", "--n", "8", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "not applicable" in out

    def test_sweep_syrk(self, capsys):
        assert main(["sweep", "syrk", "--s", "15", "--m", "4", "--ns", "40"]) == 0
        out = capsys.readouterr().out
        assert "tbs" in out and "ocs" in out and "True" in out

    def test_sweep_cholesky(self, capsys):
        assert main(["sweep", "cholesky", "--s", "15", "--ns", "36"]) == 0
        out = capsys.readouterr().out
        assert "lbc" in out and "occ" in out

    def test_constants(self, capsys):
        assert main(["constants"]) == 0
        out = capsys.readouterr().out
        assert "0.7071" in out and "0.2357" in out

    def test_replay(self, capsys):
        assert main(["replay", "--s", "15", "--n", "26", "--m", "3"]) == 0
        out = capsys.readouterr().out
        assert "LRU replay" in out and "TBS" in out and "OCS" in out
        assert "explicit Q" in out

    def test_graph(self, capsys):
        assert main(["graph", "--kernel", "tbs", "--n", "26", "--m", "3", "--s", "15"]) == 0
        out = capsys.readouterr().out
        assert "dependency graph" in out
        assert "belady" in out and "reschedule:locality" in out
        assert "reduction classes" in out

    def test_graph_chol_subset_no_numerics(self, capsys):
        assert main(
            ["graph", "--kernel", "chol", "--n", "16", "--m", "0", "--s", "15",
             "--heuristics", "original", "--no-numerics"]
        ) == 0
        out = capsys.readouterr().out
        assert "RAW" in out and "reschedule:original" in out
        assert "reschedule:fan-out" not in out

    def test_search(self, capsys):
        assert main(
            ["search", "--kernel", "tbs", "--n", "26", "--m", "3", "--s", "15",
             "--strategy", "beam", "anneal", "--iters", "60", "--relax"]
        ) == 0
        out = capsys.readouterr().out
        assert "order search" in out and "reduction" in out
        assert "search:beam" in out and "search:anneal" in out
        assert "search:lookahead" not in out
        assert "belady (floor)" in out and "heuristic:locality" in out

    def test_search_strict_default_strategies(self, capsys):
        assert main(
            ["search", "--kernel", "chol", "--n", "12", "--m", "0", "--s", "15",
             "--iters", "40", "--heuristics", "original"]
        ) == 0
        out = capsys.readouterr().out
        assert "search:beam" in out and "search:lookahead" in out
        assert "heuristic:original" in out
        assert "0.00e+00" in out  # strict orders replay bit-identically

    def test_parallel(self, capsys):
        assert main(
            ["parallel", "--kernel", "tbs", "--n", "26", "--m", "3", "--s", "15",
             "--p", "1", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "sharded DAG executor" in out
        assert "owner-computes" in out and "level-greedy" in out
        assert "recv/bound" in out and "True" in out

    def test_parallel_single_partitioner_lru(self, capsys):
        assert main(
            ["parallel", "--kernel", "chol", "--n", "12", "--m", "0", "--s", "15",
             "--p", "2", "--partitioners", "locality", "--policy", "lru"]
        ) == 0
        out = capsys.readouterr().out
        assert "locality" in out and "level-greedy" not in out

    def test_parallel_refine_and_makespan(self, capsys):
        assert main(
            ["parallel", "--kernel", "tbs", "--n", "26", "--m", "3", "--s", "15",
             "--p", "2", "--partitioners", "level-greedy", "--refine", "greedy"]
        ) == 0
        out = capsys.readouterr().out
        assert "level-greedy+refine" in out
        assert "makespan" in out and "max xfer out" in out
        # critical path is labeled in both units (the node-count span used
        # to print unit-less next to mult counts)
        assert "ops" in out and "mults weighted" in out

    def test_cosearch(self, capsys):
        assert main(
            ["cosearch", "--kernel", "tbs", "--n", "20", "--m", "3", "--s", "15",
             "--p", "2", "--iters", "60", "--search-iters", "25"]
        ) == 0
        out = capsys.readouterr().out
        assert "joint order x partition co-search" in out
        assert "best seed" in out and "co-search" in out
        assert "unified objective" in out

    def test_cosearch_report_and_timeline(self, capsys, tmp_path):
        report = tmp_path / "cosearch.json"
        timeline = tmp_path / "timeline.json"
        assert main(
            ["cosearch", "--kernel", "tbs", "--n", "20", "--m", "3", "--s", "15",
             "--p", "2", "--iters", "60", "--search-iters", "25",
             "--report", str(report), "--timeline", str(timeline)]
        ) == 0
        assert report.exists() and timeline.exists()
        assert main(["report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "cosearch.runs" in out and "convergence.cosearch" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])


class TestTraceCli:
    def test_compile_info_replay(self, capsys, tmp_path):
        out_path = str(tmp_path / "t.npz")
        sched_path = str(tmp_path / "s.npz")
        assert main(
            ["trace", "compile", "--kernel", "tbs", "--n", "26", "--m", "3",
             "--s", "15", "-o", out_path, "--schedule-out", sched_path]
        ) == 0
        out = capsys.readouterr().out
        assert "trace written" in out and "full schedule written" in out

        assert main(["trace", "info", out_path]) == 0
        out = capsys.readouterr().out
        assert "distinct elements" in out

        assert main(["trace", "info", sched_path]) == 0
        out = capsys.readouterr().out
        assert "schedule container" in out and "computes" in out

        assert main(
            ["trace", "replay", out_path, "--capacity", "15", "30",
             "--policy", "both", "--check"]
        ) == 0
        out = capsys.readouterr().out
        assert "lru" in out and "belady" in out
        assert "all counts identical" in out

    def test_replay_schedule_container(self, capsys, tmp_path):
        sched_path = str(tmp_path / "s.npz")
        assert main(
            ["trace", "compile", "--kernel", "chol", "--n", "12", "--m", "0",
             "--s", "15", "-o", str(tmp_path / "unused.npz"),
             "--schedule-out", sched_path]
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", "replay", sched_path, "--capacity", "15", "--policy", "lru"]
        ) == 0
        out = capsys.readouterr().out
        assert "lru" in out

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])
