"""Tests for repro.utils: intervals, fmt, rng, checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.checks import (
    check_divides,
    check_matrix,
    check_nonnegative,
    check_positive,
    check_square,
)
from repro.utils.fmt import Table, banner, format_float, format_int, format_ratio
from repro.utils.intervals import (
    as_index_array,
    block_ranges,
    block_starts,
    contiguous_runs,
    is_strictly_increasing,
    split_indices,
)
from repro.utils.rng import (
    random_diag_dominant_matrix,
    random_lower_triangular,
    random_spd_matrix,
    random_tall_matrix,
)


class TestIntervals:
    def test_block_starts(self):
        assert block_starts(0, 10, 4) == [0, 4, 8]
        assert block_starts(3, 3, 4) == []
        with pytest.raises(ValueError):
            block_starts(0, 10, 0)
        with pytest.raises(ValueError):
            block_starts(5, 3, 1)

    def test_block_ranges_cover_exactly(self):
        for lo, hi, sz in [(0, 10, 4), (2, 17, 5), (0, 1, 3), (5, 5, 2)]:
            ranges = block_ranges(lo, hi, sz)
            flat = [x for a, b in ranges for x in range(a, b)]
            assert flat == list(range(lo, hi))

    def test_split_indices(self):
        chunks = split_indices(np.arange(7), 3)
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5], [6]]
        assert split_indices(np.array([], dtype=np.int64), 3) == []

    def test_contiguous_runs(self):
        assert contiguous_runs(np.array([0, 1, 2, 5, 6, 9])) == [(0, 3), (5, 7), (9, 10)]
        assert contiguous_runs(np.array([], dtype=np.int64)) == []
        assert contiguous_runs(np.array([4])) == [(4, 5)]
        with pytest.raises(ValueError):
            contiguous_runs(np.array([3, 3]))

    def test_runs_roundtrip(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            idx = np.unique(rng.integers(0, 60, size=25))
            runs = contiguous_runs(idx)
            rebuilt = np.concatenate([np.arange(a, b) for a, b in runs]) if runs else np.array([], dtype=np.int64)
            np.testing.assert_array_equal(rebuilt, idx)

    def test_as_index_array(self):
        np.testing.assert_array_equal(as_index_array(range(3)), [0, 1, 2])
        np.testing.assert_array_equal(as_index_array([5, 2]), [5, 2])
        with pytest.raises(ValueError):
            as_index_array(np.zeros((2, 2)))

    def test_strictly_increasing(self):
        assert is_strictly_increasing(np.array([1, 2, 9]))
        assert not is_strictly_increasing(np.array([1, 1, 2]))
        assert is_strictly_increasing(np.array([3]))


class TestFmt:
    def test_table_renders_aligned(self):
        t = Table(["alg", "Q"])
        t.add_row(["TBS", 1234])
        t.add_row(["OCS", 17])
        text = t.render()
        lines = text.splitlines()
        assert lines[0].startswith("alg")
        assert len({len(line) for line in lines[:2]}) >= 1
        assert "TBS" in text and "1234" in text

    def test_table_formats(self):
        t = Table(["x", "r"])
        t.add_row([0.70716, 1.4142], formats=[format_float, format_ratio])
        assert t.rows[0] == ["0.7072", "1.414x"]

    def test_table_wrong_width(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_title_and_banner(self):
        t = Table(["a"], title="T")
        t.add_row([1])
        assert t.render().splitlines()[0] == "T"
        assert "hello" in banner("hello")
        assert len(banner("hi", width=40)) == 40

    def test_format_int(self):
        assert format_int(1234567) == "1,234,567"

    def test_format_float_zero(self):
        assert format_float(0.0) == "0"


class TestRng:
    def test_tall_matrix_shape_and_determinism(self):
        a = random_tall_matrix(8, 3, seed=1)
        b = random_tall_matrix(8, 3, seed=1)
        assert a.shape == (8, 3)
        np.testing.assert_array_equal(a, b)

    def test_spd_is_spd(self):
        a = random_spd_matrix(20, seed=2)
        np.testing.assert_allclose(a, a.T)
        w = np.linalg.eigvalsh(a)
        assert w.min() > 0.5

    def test_diag_dominant(self):
        a = random_diag_dominant_matrix(15, seed=3)
        off = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off - np.abs(np.diag(a)) - 1e-9)
        # strict dominance: |a_ii| > sum_{j != i} |a_ij|
        for i in range(15):
            assert abs(a[i, i]) > np.abs(a[i]).sum() - abs(a[i, i])

    def test_lower_triangular(self):
        l = random_lower_triangular(10, seed=4)
        assert np.allclose(np.triu(l, 1), 0)
        assert np.all(np.abs(np.diag(l)) >= 1.0)
        lu = random_lower_triangular(10, seed=4, unit_diagonal=True)
        np.testing.assert_allclose(np.diag(lu), 1.0)


class TestChecks:
    def test_positive(self):
        assert check_positive("x", 3) == 3
        for bad in (0, -1, 2.5):
            with pytest.raises(ConfigurationError):
                check_positive("x", bad)

    def test_nonnegative(self):
        assert check_nonnegative("x", 0) == 0
        with pytest.raises(ConfigurationError):
            check_nonnegative("x", -1)

    def test_matrix_and_square(self):
        assert check_matrix("m", np.zeros((2, 3))).shape == (2, 3)
        with pytest.raises(ConfigurationError):
            check_matrix("m", np.zeros(3))
        assert check_square("m", np.zeros((2, 2))).shape == (2, 2)
        with pytest.raises(ConfigurationError):
            check_square("m", np.zeros((2, 3)))

    def test_divides(self):
        check_divides("b|n", 4, 12)
        with pytest.raises(ConfigurationError):
            check_divides("b|n", 5, 12)


class TestDisjointSets:
    def test_groups_after_unions(self):
        from repro.utils.unionfind import DisjointSets

        sets = DisjointSets(6)
        sets.union(0, 1)
        sets.union(1, 2)
        sets.union(4, 5)
        groups = sorted(sorted(g) for g in sets.groups().values())
        assert groups == [[0, 1, 2], [3], [4, 5]]
        assert sets.find(0) == sets.find(2)
        assert sets.find(3) != sets.find(4)

    def test_singletons(self):
        from repro.utils.unionfind import DisjointSets

        sets = DisjointSets(3)
        assert sorted(sets.groups().values()) == [[0], [1], [2]]
