"""Tests for the compute-op IR: numerics, declared regions, work counts."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.errors import ConfigurationError
from repro.kernels.flops import cholesky_flops, cholesky_mults, lu_mults
from repro.sched.ops import (
    CholFactorResident,
    GemmOuterUpdate,
    LuFactorResident,
    OuterColsUpdate,
    TriangleUpdate,
    TrsmSolveStep,
    UnitLowerSolveStep,
    UpperSolveStep,
    syrk_outer_update,
)


def loaded_machine(s=64, n=6, mc=4, seed=0):
    rng = np.random.default_rng(seed)
    m = TwoLevelMachine(s)
    m.add_matrix("A", rng.standard_normal((n, mc)))
    m.add_matrix("C", rng.standard_normal((n, n)))
    return m


class TestOuterColsUpdate:
    def test_numerics(self):
        m = loaded_machine()
        a = m.result("A").copy()
        c0 = m.result("C").copy()
        I, J, k = [1, 3], [0, 2], 1
        m.load(m.tile("C", I, J))
        m.load(m.column_segment("A", I, k))
        m.load(m.column_segment("A", J, k))
        m.compute(OuterColsUpdate(m, "C", "A", "A", I, J, k, k, sign=-1.0))
        got = m.workspace("C")[np.ix_(I, J)]
        want = c0[np.ix_(I, J)] - np.outer(a[I, k], a[J, k])
        np.testing.assert_allclose(got, want)

    def test_declared_regions(self):
        m = loaded_machine()
        op = OuterColsUpdate(m, "C", "A", "A", [1, 3], [0, 2], 1, 1)
        reads = {(r.matrix, r.size) for r in op.reads()}
        assert ("C", 4) in reads and ("A", 2) in reads
        assert [w.matrix for w in op.writes()] == ["C"]

    def test_work(self):
        m = loaded_machine()
        op = OuterColsUpdate(m, "C", "A", "A", [1, 3], [0, 2], 1, 1)
        assert op.mults == 4 and op.flops == 8

    def test_syrk_convenience(self):
        m = loaded_machine()
        op = syrk_outer_update(m, "C", "A", [1], [0], 2)
        assert op.a == op.b == "A" and op.ka == op.kb == 2


class TestTriangleUpdate:
    def test_strict_numerics(self):
        m = loaded_machine()
        a = m.result("A").copy()
        c0 = m.result("C").copy()
        R, k = [0, 2, 5], 3
        m.load(m.triangle_block("C", R))
        m.load(m.column_segment("A", R, k))
        m.compute(TriangleUpdate(m, "C", "A", R, k))
        ws = m.workspace("C")
        for i in R:
            for j in R:
                if i > j:
                    assert ws[i, j] == pytest.approx(c0[i, j] + a[i, k] * a[j, k])

    def test_diagonal_variant(self):
        m = loaded_machine()
        a = m.result("A").copy()
        c0 = m.result("C").copy()
        R, k = [1, 2, 4], 0
        m.load(m.lower_tile("C", R))
        m.load(m.column_segment("A", R, k))
        m.compute(TriangleUpdate(m, "C", "A", R, k, include_diagonal=True))
        ws = m.workspace("C")
        for i in R:
            assert ws[i, i] == pytest.approx(c0[i, i] + a[i, k] ** 2)

    def test_work_counts(self):
        m = loaded_machine()
        op = TriangleUpdate(m, "C", "A", [0, 1, 2, 3], 0)
        assert op.mults == 6 and op.flops == 12
        op2 = TriangleUpdate(m, "C", "A", [0, 1, 2, 3], 0, include_diagonal=True)
        assert op2.mults == 10

    def test_duplicate_rows_rejected(self):
        m = loaded_machine()
        with pytest.raises(ConfigurationError):
            TriangleUpdate(m, "C", "A", [1, 1, 2], 0)


class TestGemmOuterUpdate:
    def test_numerics(self):
        rng = np.random.default_rng(1)
        m = TwoLevelMachine(64)
        m.add_matrix("A", rng.standard_normal((5, 5)))
        m.add_matrix("B", rng.standard_normal((5, 5)))
        m.add_matrix("C", np.zeros((5, 5)))
        I, J, k = [0, 2], [1, 3], 2
        m.load(m.tile("C", I, J))
        m.load(m.column_segment("A", I, k))
        m.load(m.row_segment("B", k, J))
        m.compute(GemmOuterUpdate(m, "C", "A", "B", I, J, k))
        a, b = m.result("A"), m.result("B")
        np.testing.assert_allclose(m.workspace("C")[np.ix_(I, J)], np.outer(a[I, k], b[k, J]))


class TestTrsmSolveStep:
    def test_full_tile_solve_matches_reference(self):
        rng = np.random.default_rng(2)
        n, rows = 4, [0, 1, 2]
        l = np.tril(rng.standard_normal((n, n))) + 3 * np.eye(n)
        b = rng.standard_normal((3, n))
        m = TwoLevelMachine(64)
        m.add_matrix("L", l)
        m.add_matrix("B", b)
        jcols = np.arange(n)
        m.load(m.tile("B", rows, jcols))
        for t in range(n):
            lrow = m.row_segment("L", t, jcols[: t + 1])
            m.load(lrow)
            m.compute(TrsmSolveStep(m, "B", "L", rows, jcols, t))
            m.evict(lrow)
        from scipy.linalg import solve_triangular

        want = solve_triangular(l, b.T, lower=True).T
        np.testing.assert_allclose(m.workspace("B")[np.ix_(rows, jcols)], want[rows], rtol=1e-12)

    def test_bad_step_index(self):
        m = loaded_machine()
        with pytest.raises(ConfigurationError):
            TrsmSolveStep(m, "C", "C", [0], [0, 1], 5)


class TestUpperSolveStep:
    def test_solves_xu_equals_b(self):
        rng = np.random.default_rng(3)
        n, rows = 4, [0, 2]
        u = np.triu(rng.standard_normal((n, n))) + 3 * np.eye(n)
        b = rng.standard_normal((5, n))
        m = TwoLevelMachine(64)
        m.add_matrix("U", u)
        m.add_matrix("B", b)
        jcols = np.arange(n)
        m.load(m.tile("B", rows, jcols))
        for t in range(n):
            ucol = m.column_segment("U", jcols[: t + 1], t)
            m.load(ucol)
            m.compute(UpperSolveStep(m, "B", "U", rows, jcols, t))
            m.evict(ucol)
        want = b @ np.linalg.inv(u)
        np.testing.assert_allclose(m.workspace("B")[np.ix_(rows, jcols)], want[rows], rtol=1e-10)


class TestUnitLowerSolveStep:
    def test_solves_lx_equals_b(self):
        rng = np.random.default_rng(4)
        n, cols = 4, [0, 1, 2]
        l = np.tril(rng.standard_normal((n, n)), -1) + np.eye(n)
        b = rng.standard_normal((n, 3))
        m = TwoLevelMachine(64)
        m.add_matrix("L", l)
        m.add_matrix("B", b)
        irows = np.arange(n)
        m.load(m.tile("B", irows, cols))
        for t in range(n):
            if t:
                lrow = m.row_segment("L", t, irows[:t])
                m.load(lrow)
            m.compute(UnitLowerSolveStep(m, "B", "L", irows, cols, t))
            if t:
                m.evict(lrow)
        want = np.linalg.solve(l, b)
        np.testing.assert_allclose(m.workspace("B")[np.ix_(irows, cols)], want, rtol=1e-10)

    def test_step_zero_is_free(self):
        m = loaded_machine()
        op = UnitLowerSolveStep(m, "C", "C", [0, 1], [2, 3], 0)
        assert op.mults == 0 and len(op.reads()) == 1


class TestResidentFactorizations:
    def test_chol_factor(self):
        rng = np.random.default_rng(5)
        g = rng.standard_normal((4, 4))
        spd = g @ g.T + 4 * np.eye(4)
        m = TwoLevelMachine(64)
        m.add_matrix("A", spd)
        rows = np.arange(4)
        m.load(m.lower_tile("A", rows))
        op = CholFactorResident(m, "A", rows)
        m.compute(op)
        got = np.tril(np.nan_to_num(m.workspace("A")))
        want = np.linalg.cholesky(spd)
        np.testing.assert_allclose(got, want, rtol=1e-10)
        assert op.mults == cholesky_mults(4)
        assert op.flops == cholesky_flops(4)

    def test_chol_on_subrows(self):
        rng = np.random.default_rng(6)
        g = rng.standard_normal((6, 6))
        spd = g @ g.T + 6 * np.eye(6)
        rows = np.array([1, 3, 4])
        m = TwoLevelMachine(64)
        m.add_matrix("A", spd)
        m.load(m.lower_tile("A", rows))
        m.compute(CholFactorResident(m, "A", rows))
        sub = spd[np.ix_(rows, rows)]
        want = np.linalg.cholesky(sub)
        ws = m.workspace("A")
        got = np.array([[ws[r, c] if ci <= ri else 0.0 for ci, c in enumerate(rows)] for ri, r in enumerate(rows)])
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_lu_factor(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((4, 4)) + 5 * np.eye(4)
        m = TwoLevelMachine(64)
        m.add_matrix("A", a)
        rows = np.arange(4)
        m.load(m.tile("A", rows, rows))
        op = LuFactorResident(m, "A", rows)
        m.compute(op)
        got = m.workspace("A")[np.ix_(rows, rows)]
        l = np.tril(got, -1) + np.eye(4)
        u = np.triu(got)
        np.testing.assert_allclose(l @ u, a, rtol=1e-10)
        assert op.mults == lu_mults(4)
