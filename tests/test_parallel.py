"""Tests for the parallel (P-node) model: assignments and simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.flops import syrk_mults
from repro.parallel.partition import (
    BlockSpec,
    _deal,
    balance_cap,
    square_tile_assignment,
    triangle_block_assignment,
)
from repro.parallel.simulate import (
    NodeReport,
    ParallelSummary,
    record_block_schedule,
    simulate_syrk,
)


class TestBlockSpec:
    def test_rect_pairs(self):
        b = BlockSpec("rect", (3, 4), (0, 1))
        assert b.pairs() == {(3, 0), (3, 1), (4, 0), (4, 1)}
        assert b.n_pairs() == 4

    def test_diag_pairs(self):
        b = BlockSpec("diag", (1, 2))
        assert b.pairs() == {(1, 1), (2, 1), (2, 2)}
        assert b.n_pairs() == 3

    def test_triangle_pairs(self):
        b = BlockSpec("triangle", (0, 3, 7))
        assert b.pairs() == {(3, 0), (7, 0), (7, 3)}
        assert b.n_pairs() == 3

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            BlockSpec("blob", (1,)).pairs()


class TestAssignments:
    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    @pytest.mark.parametrize("n,p", [(20, 1), (27, 3), (40, 4), (60, 7), (33, 16)])
    def test_exact_cover(self, mk, n, p):
        asg = mk(n, p, 15)
        assert len(asg.blocks) == p
        assert asg.validate_exact_cover()

    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    def test_balance_reasonable(self, mk):
        asg = mk(120, 8, 15)
        counts = asg.node_pair_counts()
        assert max(counts) <= 1.25 * (sum(counts) / len(counts))

    def test_triangle_strategy_uses_triangle_blocks(self):
        asg = triangle_block_assignment(60, 4, 15)
        kinds = {b.kind for node in asg.blocks for b in node}
        assert "triangle" in kinds

    def test_square_strategy_has_no_triangle_blocks(self):
        asg = square_tile_assignment(60, 4, 15)
        kinds = {b.kind for node in asg.blocks for b in node}
        assert kinds <= {"rect", "diag"}

    def test_small_n_falls_back(self):
        # Below the TBS threshold the triangle strategy degenerates to tiles.
        asg = triangle_block_assignment(10, 2, 15)
        kinds = {b.kind for node in asg.blocks for b in node}
        assert "triangle" not in kinds
        assert asg.validate_exact_cover()

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            square_tile_assignment(0, 2, 15)
        with pytest.raises(ConfigurationError):
            triangle_block_assignment(10, 0, 15)


class TestDealBalance:
    """Regression: `_deal` used to ignore its `start` offset and break ties
    toward low-index nodes, piling the surplus onto the first nodes when
    ``p`` does not divide the item count."""

    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    @pytest.mark.parametrize("n,p", [(25, 3), (34, 5), (41, 6), (53, 7), (62, 9)])
    def test_non_divisible_cover_and_spread(self, mk, n, p):
        asg = mk(n, p, 15)
        assert asg.validate_exact_cover()
        counts = asg.node_pair_counts()
        assert len(counts) == p
        # largest-first greedy: spread stays within one (largest) block
        biggest = max(b.n_pairs() for node in asg.blocks for b in node)
        assert max(counts) - min(counts) <= biggest

    def test_equal_items_rotate_from_start(self):
        items = [BlockSpec("rect", (i,), (0,)) for i in range(5)]
        dealt = _deal(items, 3, start=1)
        # 5 equal items over 3 nodes: surplus lands round-robin from `start`
        assert [len(node) for node in dealt] == [1, 2, 2]
        assert sorted(b.rows_i[0] for node in dealt for b in node) == list(range(5))

    def test_equal_items_default_start(self):
        items = [BlockSpec("rect", (i,), (0,)) for i in range(7)]
        dealt = _deal(items, 4)
        assert sorted(len(node) for node in dealt) == [1, 2, 2, 2]

    def test_bad_p(self):
        with pytest.raises(ConfigurationError):
            _deal([], 0)


class TestBalanceCap:
    """Regression: the float expression ``slack * total / p`` can round
    below the true bound, so ``balance_slack=1.0`` spuriously rejected
    exact-balance placements; ``balance_cap`` stays exact."""

    def test_simple_values(self):
        assert balance_cap(30, 3, 1.0) == 10
        assert balance_cap(10, 3, 1.2) == 4  # floor(4.0)
        assert balance_cap(7, 2, 1.0) == 3
        assert balance_cap(0, 4, 1.0) == 0

    def test_exact_at_unrepresentable_total(self):
        # 3w = 2**53 + 1 loses its last bit as a float; float division then
        # lands *below* w and the old cap rejected the exact balance w.
        w = 3002399751580331
        total = 3 * w
        assert float(total) != total  # the premise: total is inexact
        assert (1.0 * total) / 3 < w  # the old float cap was wrong...
        assert balance_cap(total, 3, 1.0) == w  # ...the exact one is not

    def test_iff_property_random(self):
        from fractions import Fraction

        rng = np.random.default_rng(5)
        for _ in range(200):
            total = int(rng.integers(0, 2**60))
            p = int(rng.integers(1, 33))
            slack = float(rng.choice([1.0, 1.2, 1.5, 0.75]))
            cap = balance_cap(total, p, slack)
            bound = Fraction(slack).limit_denominator(10**6) * total / p
            assert cap <= bound < cap + 1

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            balance_cap(10, 0, 1.0)
        with pytest.raises(ConfigurationError):
            balance_cap(10, 2, -0.5)


class TestSimulation:
    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    def test_work_conserved_and_memory_respected(self, mk):
        n, p, s, m = 48, 4, 15, 6
        summ = simulate_syrk(mk(n, p, s), m)
        assert summ.total_mults == syrk_mults(n, m, include_diagonal=True)
        assert all(r.peak_memory <= s for r in summ.nodes)

    def test_c_received_exactly_once_overall(self):
        n, p, s, m = 40, 4, 15, 3
        summ = simulate_syrk(square_tile_assignment(n, p, s), m)
        assert sum(r.c_recv for r in summ.nodes) == n * (n + 1) // 2

    def test_triangle_beats_square_on_max_a_recv(self):
        n, p, s, m = 60, 4, 15, 8
        sq = simulate_syrk(square_tile_assignment(n, p, s), m)
        tb = simulate_syrk(triangle_block_assignment(n, p, s), m)
        assert tb.max_a_recv < sq.max_a_recv
        assert tb.max_recv < sq.max_recv

    def test_single_node_equals_sequential_volume_shape(self):
        # P = 1: per-node receive volume == a sequential schedule's loads.
        from repro.analysis.model import ooc_syrk_model

        n, s, m = 33, 15, 4
        summ = simulate_syrk(square_tile_assignment(n, 1, s), m)
        pred = ooc_syrk_model(n, m, s)
        assert summ.nodes[0].total_recv == pred.loads

    def test_summary_statistics(self):
        summ = simulate_syrk(square_tile_assignment(40, 4, 15), 3)
        assert summ.max_recv >= summ.mean_recv
        assert summ.compute_imbalance >= 1.0
        assert summ.p == 4 and summ.strategy == "square"

    def test_bad_mcols(self):
        with pytest.raises(ConfigurationError):
            simulate_syrk(square_tile_assignment(10, 2, 15), 0)

    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    def test_recv_send_symmetry(self, mk):
        # The docstring's promise, now surfaced: every owned C element is
        # received once and sent back once — per node, not just in total.
        n, p, s, m = 48, 4, 15, 6
        summ = simulate_syrk(mk(n, p, s), m)
        for r in summ.nodes:
            assert r.c_send == r.c_recv
            assert r.total_comm == r.total_recv + r.c_send
        assert summ.total_c_send == n * (n + 1) // 2
        assert summ.max_send >= 1

    def test_zero_block_nodes_summarize(self):
        # p far beyond the block count: some nodes stay idle; every summary
        # statistic must still be well-defined.
        summ = simulate_syrk(square_tile_assignment(6, 5, 15), 2)
        assert any(r.n_blocks == 0 for r in summ.nodes)
        assert summ.mean_recv > 0.0
        assert summ.compute_imbalance >= 1.0
        assert summ.max_recv >= summ.mean_recv


class TestSummaryGuards:
    """Regression: mean_recv / compute_imbalance crashed on an empty node
    list and compute_imbalance returned inf for an all-idle fleet."""

    def test_empty_summary(self):
        summ = ParallelSummary(strategy="square", n=0, m=1, p=0, s=15, nodes=())
        assert summ.mean_recv == 0.0
        assert summ.max_recv == 0
        assert summ.max_a_recv == 0
        assert summ.max_send == 0
        assert summ.compute_imbalance == 1.0
        assert summ.total_mults == 0
        assert summ.total_c_send == 0

    def test_all_idle_fleet_is_balanced(self):
        idle = tuple(
            NodeReport(node=q, n_blocks=0, a_recv=0, c_recv=0, mults=0, peak_memory=0)
            for q in range(3)
        )
        summ = ParallelSummary(strategy="square", n=4, m=1, p=3, s=15, nodes=idle)
        assert summ.compute_imbalance == 1.0
        assert summ.mean_recv == 0.0

    def test_node_report_defaults_send_to_zero(self):
        r = NodeReport(node=0, n_blocks=1, a_recv=3, c_recv=2, mults=5, peak_memory=4)
        assert r.c_send == 0 and r.total_comm == r.total_recv == 5


class TestRecordBlockSchedule:
    def test_owner_covers_all_computes_and_replays(self):
        from repro.sched.schedule import ComputeStep

        asg = triangle_block_assignment(30, 3, 15)
        sched, owner = record_block_schedule(asg, 4)
        n_computes = sum(1 for s in sched.steps if isinstance(s, ComputeStep))
        assert len(owner) == n_computes
        assert set(owner) <= set(range(3))
        # the recorded stream's total volume equals the fleet's summed volume
        fixed = simulate_syrk(asg, 4)
        loads, stores = sched.io_volume()
        assert loads == sum(r.total_recv for r in fixed.nodes)
        assert stores == fixed.total_c_send

    def test_bad_mcols(self):
        with pytest.raises(ConfigurationError):
            record_block_schedule(square_tile_assignment(10, 2, 15), 0)
