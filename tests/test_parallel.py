"""Tests for the parallel (P-node) model: assignments and simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.flops import syrk_mults
from repro.parallel.partition import (
    BlockSpec,
    square_tile_assignment,
    triangle_block_assignment,
)
from repro.parallel.simulate import simulate_syrk


class TestBlockSpec:
    def test_rect_pairs(self):
        b = BlockSpec("rect", (3, 4), (0, 1))
        assert b.pairs() == {(3, 0), (3, 1), (4, 0), (4, 1)}
        assert b.n_pairs() == 4

    def test_diag_pairs(self):
        b = BlockSpec("diag", (1, 2))
        assert b.pairs() == {(1, 1), (2, 1), (2, 2)}
        assert b.n_pairs() == 3

    def test_triangle_pairs(self):
        b = BlockSpec("triangle", (0, 3, 7))
        assert b.pairs() == {(3, 0), (7, 0), (7, 3)}
        assert b.n_pairs() == 3

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            BlockSpec("blob", (1,)).pairs()


class TestAssignments:
    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    @pytest.mark.parametrize("n,p", [(20, 1), (27, 3), (40, 4), (60, 7), (33, 16)])
    def test_exact_cover(self, mk, n, p):
        asg = mk(n, p, 15)
        assert len(asg.blocks) == p
        assert asg.validate_exact_cover()

    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    def test_balance_reasonable(self, mk):
        asg = mk(120, 8, 15)
        counts = asg.node_pair_counts()
        assert max(counts) <= 1.25 * (sum(counts) / len(counts))

    def test_triangle_strategy_uses_triangle_blocks(self):
        asg = triangle_block_assignment(60, 4, 15)
        kinds = {b.kind for node in asg.blocks for b in node}
        assert "triangle" in kinds

    def test_square_strategy_has_no_triangle_blocks(self):
        asg = square_tile_assignment(60, 4, 15)
        kinds = {b.kind for node in asg.blocks for b in node}
        assert kinds <= {"rect", "diag"}

    def test_small_n_falls_back(self):
        # Below the TBS threshold the triangle strategy degenerates to tiles.
        asg = triangle_block_assignment(10, 2, 15)
        kinds = {b.kind for node in asg.blocks for b in node}
        assert "triangle" not in kinds
        assert asg.validate_exact_cover()

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            square_tile_assignment(0, 2, 15)
        with pytest.raises(ConfigurationError):
            triangle_block_assignment(10, 0, 15)


class TestSimulation:
    @pytest.mark.parametrize("mk", [square_tile_assignment, triangle_block_assignment])
    def test_work_conserved_and_memory_respected(self, mk):
        n, p, s, m = 48, 4, 15, 6
        summ = simulate_syrk(mk(n, p, s), m)
        assert summ.total_mults == syrk_mults(n, m, include_diagonal=True)
        assert all(r.peak_memory <= s for r in summ.nodes)

    def test_c_received_exactly_once_overall(self):
        n, p, s, m = 40, 4, 15, 3
        summ = simulate_syrk(square_tile_assignment(n, p, s), m)
        assert sum(r.c_recv for r in summ.nodes) == n * (n + 1) // 2

    def test_triangle_beats_square_on_max_a_recv(self):
        n, p, s, m = 60, 4, 15, 8
        sq = simulate_syrk(square_tile_assignment(n, p, s), m)
        tb = simulate_syrk(triangle_block_assignment(n, p, s), m)
        assert tb.max_a_recv < sq.max_a_recv
        assert tb.max_recv < sq.max_recv

    def test_single_node_equals_sequential_volume_shape(self):
        # P = 1: per-node receive volume == a sequential schedule's loads.
        from repro.analysis.model import ooc_syrk_model

        n, s, m = 33, 15, 4
        summ = simulate_syrk(square_tile_assignment(n, 1, s), m)
        pred = ooc_syrk_model(n, m, s)
        assert summ.nodes[0].total_recv == pred.loads

    def test_summary_statistics(self):
        summ = simulate_syrk(square_tile_assignment(40, 4, 15), 3)
        assert summ.max_recv >= summ.mean_recv
        assert summ.compute_imbalance >= 1.0
        assert summ.p == 4 and summ.strategy == "square"

    def test_bad_mcols(self):
        with pytest.raises(ConfigurationError):
            simulate_syrk(square_tile_assignment(10, 2, 15), 0)
