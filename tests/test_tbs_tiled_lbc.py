"""Tests for tiled TBS (Section 5.1.4) and LBC (Algorithm 5)."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.model import lbc_model, lbc_term_model, ooc_chol_model, tbs_tiled_model
from repro.baselines.ooc_chol import ooc_chol
from repro.config import lbc_block_size
from repro.core.bounds import cholesky_lower_bound
from repro.core.lbc import lbc_cholesky, lbc_term_breakdown
from repro.core.tbs_tiled import tbs_tiled_syrk, tiled_leading_constant
from repro.errors import ConfigurationError
from repro.kernels.flops import cholesky_mults, syrk_mults
from repro.kernels.reference import cholesky_reference, syrk_reference
from repro.utils.rng import random_spd_matrix, random_tall_matrix


def run_tiled(n, mc, s=18, k=3, b=None, sign=1.0, seed=0):
    a = random_tall_matrix(n, mc, seed=seed)
    m = TwoLevelMachine(s)
    m.add_matrix("A", a)
    m.add_matrix("C", np.zeros((n, n)))
    stats = tbs_tiled_syrk(m, "A", "C", range(n), range(mc), sign=sign, k=k, b=b)
    m.assert_empty()
    return a, m, stats


class TestTiledTbsNumerics:
    @pytest.mark.parametrize("n", [1, 5, 12, 18, 25, 36, 50])
    def test_matches_reference(self, n):
        a, m, _ = run_tiled(n, 3)
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a)), rtol=1e-10, atol=1e-12
        )

    def test_negative_sign(self):
        a, m, _ = run_tiled(20, 2, sign=-1.0)
        np.testing.assert_allclose(
            np.tril(m.result("C")), -np.tril(a @ a.T), rtol=1e-10, atol=1e-12
        )

    def test_bigger_tiles(self):
        a, m, _ = run_tiled(64, 4, s=66, k=3, b=4)  # 3*16 + 12 = 60 <= 66
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a)), rtol=1e-10, atol=1e-12
        )


class TestTiledTbsAccounting:
    @pytest.mark.parametrize("n,mc,s,k,b", [(25, 3, 18, 3, 2), (50, 4, 18, 3, 2), (64, 2, 66, 3, 4), (40, 3, 32, 4, 2)])
    def test_measured_equals_model(self, n, mc, s, k, b):
        _, _, stats = run_tiled(n, mc, s=s, k=k, b=b)
        pred = tbs_tiled_model(n, mc, s, k=k, b=b)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_work_is_full_syrk(self):
        n, mc = 30, 3
        _, _, stats = run_tiled(n, mc)
        assert stats.mults == syrk_mults(n, mc, include_diagonal=True)

    def test_peak_within_capacity(self):
        _, _, stats = run_tiled(36, 3, s=18, k=3, b=2)
        assert stats.peak_occupancy <= 18

    def test_validity_threshold_lower_than_element(self):
        # With S=18, element TBS needs n >= c*k with c >= k-1 (k=5 needs
        # n ~ 2S); tiled with k=3, b=2 kicks in at n_tiles >= (k-1)*k = 6
        # tiles = 12 rows.
        from repro.core.partition import plan_partition

        assert plan_partition(12 // 2, 3) is not None  # tiled applicable
        assert plan_partition(12, 5) is None           # element TBS is not

    def test_k_below_3_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tiled(10, 2, s=18, k=2)

    def test_memory_check(self):
        with pytest.raises(ConfigurationError):
            run_tiled(10, 2, s=15, k=3, b=2)  # needs 18

    def test_leading_constant_helper(self):
        assert tiled_leading_constant(2) == pytest.approx(np.sqrt(2.0))
        assert tiled_leading_constant(10) == pytest.approx(np.sqrt(10 / 9))
        with pytest.raises(ConfigurationError):
            tiled_leading_constant(1)


def run_lbc(n, s=15, b=None, seed=0, **kw):
    a = random_spd_matrix(n, seed=seed)
    m = TwoLevelMachine(s)
    m.add_matrix("A", a)
    stats = lbc_cholesky(m, "A", range(n), b=b, **kw)
    m.assert_empty()
    return a, m, stats


class TestLbcNumerics:
    @pytest.mark.parametrize("n,b", [(4, 2), (9, 3), (16, 4), (25, 5), (36, 6), (30, 5)])
    def test_matches_reference(self, n, b):
        a, m, _ = run_lbc(n, b=b)
        np.testing.assert_allclose(
            np.tril(m.result("A")), cholesky_reference(a), rtol=1e-9, atol=1e-10
        )

    def test_default_block_size(self):
        a, m, _ = run_lbc(36)  # b defaults to 6
        np.testing.assert_allclose(
            np.tril(m.result("A")), cholesky_reference(a), rtol=1e-9, atol=1e-10
        )

    @pytest.mark.parametrize("engine", ["tbs", "tiled", "ocs"])
    def test_all_syrk_engines(self, engine):
        kw = {"syrk": engine}
        if engine == "tiled":
            kw.update(k=3, tile_b=2)
        a, m, _ = run_lbc(24, s=18, b=4, **kw)
        np.testing.assert_allclose(
            np.tril(m.result("A")), cholesky_reference(a), rtol=1e-9, atol=1e-10
        )

    def test_submatrix(self):
        big = random_spd_matrix(20, seed=3)
        rows = np.arange(4, 20)
        m = TwoLevelMachine(15)
        m.add_matrix("A", big)
        lbc_cholesky(m, "A", rows, b=4)
        m.assert_empty()
        want = cholesky_reference(big[np.ix_(rows, rows)])
        got = np.tril(m.result("A")[np.ix_(rows, rows)])
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-10)


class TestLbcAccounting:
    @pytest.mark.parametrize("n,s,b", [(16, 15, 4), (36, 15, 6), (48, 15, 6), (36, 28, 6)])
    def test_measured_equals_model(self, n, s, b):
        _, _, stats = run_lbc(n, s=s, b=b)
        pred = lbc_model(n, s, b)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_work_is_full_cholesky(self):
        n = 36
        _, _, stats = run_lbc(n, b=6)
        assert stats.mults == cholesky_mults(n)

    def test_above_lower_bound(self):
        n, s = 48, 15
        _, _, stats = run_lbc(n, s=s, b=6)
        assert stats.loads >= cholesky_lower_bound(n, s, form="exact")

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            run_lbc(10, b=3)  # 3 does not divide 10

    def test_bad_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            run_lbc(16, b=4, syrk="magic")

    def test_term_breakdown_sums_to_total(self):
        n, s, b = 36, 15, 6
        a = random_spd_matrix(n, seed=1)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        parts = lbc_term_breakdown(m, "A", range(n), b=b)
        m.assert_empty()
        _, _, total = run_lbc(n, s=s, b=b, seed=1)
        assert parts["chol"] + parts["trsm"] + parts["syrk"] == total.loads
        model_parts = lbc_term_model(n, s, b)
        assert parts["chol"] == model_parts["chol"].loads
        assert parts["trsm"] == model_parts["trsm"].loads
        assert parts["syrk"] == model_parts["syrk"].loads

    def test_beats_occ_at_scale(self):
        # LBC's asymptotic advantage over the left-looking baseline.
        n, s = 144, 15
        m = TwoLevelMachine(s, strict=False, numerics=False)
        m.add_matrix("A", np.zeros((n, n)))
        lbc = lbc_cholesky(m, "A", range(n), b=12)
        m2 = TwoLevelMachine(s, strict=False, numerics=False)
        m2.add_matrix("A", np.zeros((n, n)))
        occ = ooc_chol(m2, "A", range(n))
        assert lbc.loads < occ.loads

    def test_block_size_default_near_sqrt(self):
        assert lbc_block_size(36) == 6
        _, _, stats = run_lbc(36)
        pred = lbc_model(36, 15, 6)
        assert stats.loads == pred.loads
