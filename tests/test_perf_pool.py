"""Determinism contracts of the process-parallel search fabric (PR 7).

Three layers, one invariant — *results never depend on ``jobs``*:

* :mod:`repro.perf.pool` — ``task_seed`` stream splitting (index 0 is the
  identity, so task 0 of any fan-out reproduces the classic serial run),
  ``parallel_map`` order preservation, pool probe counters;
* one-pass Belady sweeps — the grouped OPT-stack pass
  (``method="distance"``) must be bit-identical in loads / stores /
  evict-vs-flush split to the chunked simulate engine at every capacity,
  on synthetic adversarial streams (hypothesis + seeded sweeps) and on
  recorded kernels; ``sweep_replay_trace`` must give the same rows serial
  and sharded;
* multi-chain annealing and multi-seed refinement — ``jobs=4`` bit-equal
  to the documented serial reduction (chain portfolio: min by
  ``(cost, chain_index)``; refine: seed-list order), with chain/seed 0
  reproducing the single-run API.

Also pins the ``scalar_run`` crossover bugfix: the scalar and vectorized
modes of the chunked engine agree at the boundary capacity where the old
hard-wired threshold flipped behavior.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.compare import record_case, sweep_case
from repro.graph.dependency import DependencyGraph
from repro.graph.search import anneal_search
from repro.obs.probe import probe_scope
from repro.parallel.executor import partition_graph
from repro.parallel.refine import refine_partition, refine_partitions
from repro.perf.pool import SearchPool, parallel_map, task_seed
from repro.trace.compiled import CompiledTrace
from repro.trace.replay import (
    _SCALAR_RUN,
    belady_replay_trace,
    lru_replay_trace,
    sweep_replay_trace,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


# ---------------------------------------------------------------------------
# helpers


def build_trace(ids, writes, op_sizes):
    ids = np.asarray(ids, dtype=np.int64)
    _uniq, ids = np.unique(ids, return_inverse=True)
    ids = ids.astype(np.int64)
    n_elem = int(ids.max()) + 1 if ids.size else 0
    op_starts = np.zeros(len(op_sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(op_sizes, dtype=np.int64), out=op_starts[1:])
    return CompiledTrace(
        matrices=("M",),
        shapes={"M": (1, max(n_elem, 1))},
        elem_ids=ids,
        is_write=np.asarray(writes, dtype=bool),
        op_starts=op_starts,
        op_read_ends=op_starts[1:].copy(),
        key_matrix=np.zeros(n_elem, dtype=np.int32),
        key_flat=np.arange(n_elem, dtype=np.int64),
        ops=None,
    )


def random_stream(rng):
    n = int(rng.integers(1, 120))
    n_keys = int(rng.integers(1, max(2, n // 2) + 1))
    ids = rng.integers(0, n_keys, size=n)
    writes = rng.random(n) < float(rng.uniform(0.0, 0.8))
    n_ops = int(rng.integers(1, 6))
    cuts = np.sort(rng.integers(0, n + 1, size=n_ops - 1))
    op_sizes = np.diff(np.concatenate([[0], cuts, [n]]))
    return ids, writes, op_sizes


def assert_one_pass_matches(trace, capacity):
    """The grouped OPT-stack counts == the chunked simulate engine's."""
    one = belady_replay_trace(trace, capacity, method="distance")
    sim = belady_replay_trace(trace, capacity, method="simulate")
    assert (one.loads, one.stores, one.evict_stores, one.distinct) == (
        sim.loads, sim.stores, sim.evict_stores, sim.distinct), capacity
    # flush split is derived (stores - evict_stores) but assert it anyway
    assert one.stores - one.evict_stores == sim.stores - sim.evict_stores


def square(x):  # module-level: picklable for ProcessPoolExecutor workers
    return x * x


# ---------------------------------------------------------------------------
# pool primitives


class TestTaskSeed:
    def test_index_zero_is_identity(self):
        for seed in (0, 1, 17, 2**40):
            assert task_seed(seed, 0) == seed

    def test_deterministic_and_distinct(self):
        seeds = [task_seed(42, i) for i in range(64)]
        assert seeds == [task_seed(42, i) for i in range(64)]
        assert len(set(seeds)) == 64
        assert all(0 <= s < 2**63 for s in seeds)

    def test_streams_disjoint_across_master_seeds(self):
        a = {task_seed(1, i) for i in range(1, 32)}
        b = {task_seed(2, i) for i in range(1, 32)}
        assert not (a & b)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            task_seed(0, -1)


class TestParallelMap:
    def test_serial_and_parallel_agree_in_order(self):
        items = list(range(23))
        expect = [square(x) for x in items]
        assert parallel_map(square, items, jobs=1) == expect
        assert parallel_map(square, items, jobs=4) == expect
        assert parallel_map(square, items, jobs=4, chunk_size=2) == expect

    def test_empty_and_single(self):
        assert parallel_map(square, [], jobs=4) == []
        assert parallel_map(square, [3], jobs=4) == [9]

    def test_pool_counters_serial(self):
        with probe_scope() as probe:
            with SearchPool(jobs=1) as pool:
                pool.map(square, [1, 2, 3])
        assert probe.counters["pool.tasks"] == 3
        assert "pool.workers" not in probe.counters
        assert "pool.map" in probe.timers

    def test_pool_counters_parallel(self):
        with probe_scope() as probe:
            parallel_map(square, list(range(8)), jobs=2)
        assert probe.counters["pool.tasks"] == 8
        assert probe.counters["pool.workers"] == 2
        assert probe.counters["pool.chunks"] >= 2


# ---------------------------------------------------------------------------
# one-pass Belady sweeps

CAPACITIES = (1, 2, 3, 5, 8, 13, 64)


if HAVE_HYPOTHESIS:

    @st.composite
    def streams(draw):
        n = draw(st.integers(min_value=1, max_value=80))
        n_keys = draw(st.integers(min_value=1, max_value=max(1, n)))
        ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_keys - 1),
                min_size=n, max_size=n,
            )
        )
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        return ids, writes, [n]

    @settings(max_examples=60, deadline=None)
    @given(stream=streams(), capacity=st.integers(min_value=1, max_value=12))
    def test_one_pass_bit_identical_hypothesis(stream, capacity):
        ids, writes, op_sizes = stream
        assert_one_pass_matches(build_trace(ids, writes, op_sizes), capacity)


def test_one_pass_bit_identical_seeded_sweep():
    rng = np.random.default_rng(7777)
    for _ in range(60):
        ids, writes, op_sizes = random_stream(rng)
        trace = build_trace(ids, writes, op_sizes)
        for capacity in CAPACITIES:
            assert_one_pass_matches(trace, capacity)


@pytest.mark.parametrize("kernel,n,mc", [("tbs", 24, 4), ("syr2k", 18, 3), ("chol", 16, 0)])
def test_one_pass_on_recorded_kernels(kernel, n, mc):
    trace = record_case(kernel, n, mc, 15).trace
    distinct = int(trace.n_elements)
    for capacity in (1, 7, 14, 15, 16, 30, distinct, distinct + 5):
        assert_one_pass_matches(trace, capacity)


def test_sweep_rows_independent_of_jobs_and_method():
    trace = record_case("tbs", 24, 4, 15).trace
    caps = [1, 7, 15, 16, 30, 60, 240, 10**6]
    for policy in ("lru", "belady"):
        base = sweep_replay_trace(trace, caps, policy=policy, method="simulate")
        for jobs in (1, 3, 4):
            got = sweep_replay_trace(trace, caps, policy=policy, jobs=jobs)
            assert [(r.loads, r.stores, r.evict_stores) for r in got] == [
                (r.loads, r.stores, r.evict_stores) for r in base], (policy, jobs)


def test_sweep_preserves_input_order_and_duplicates():
    trace = record_case("tbs", 20, 3, 15).trace
    caps = [60, 1, 15, 1, 60]
    rows = sweep_replay_trace(trace, caps, policy="belady")
    assert rows[0].loads == rows[4].loads
    assert rows[1].loads == rows[3].loads
    assert rows[1].loads >= rows[2].loads >= rows[0].loads


def test_single_capacity_served_from_cached_grid():
    trace = record_case("tbs", 20, 3, 15).trace
    caps = [5, 15, 45]
    sweep_replay_trace(trace, caps, policy="belady")
    # grid cached on the trace: any member capacity answers without a new pass
    for capacity in caps:
        one = belady_replay_trace(trace, capacity, method="distance")
        sim = belady_replay_trace(trace, capacity, method="simulate")
        assert (one.loads, one.stores) == (sim.loads, sim.stores)


def test_sweep_case_shape():
    case = record_case("tbs", 20, 3, 15)
    out = sweep_case(case, [15, 30], jobs=2)
    assert set(out) == {"lru", "belady"}
    assert all(len(rows) == 2 for rows in out.values())
    assert out["belady"][0].loads <= out["lru"][0].loads


def test_unknown_method_rejected():
    trace = record_case("tbs", 20, 3, 15).trace
    with pytest.raises(ConfigurationError):
        belady_replay_trace(trace, 15, method="telepathy")
    with pytest.raises(ConfigurationError):
        sweep_replay_trace(trace, [15], policy="fifo")


def test_scalar_run_threshold_override_regression():
    """Scalar and vectorized chunked modes agree at the crossover capacity.

    The old code hard-wired the run threshold; a capacity equal to it chose
    engine modes inconsistently between entry and the mid-replay switch.
    Forcing each mode via ``scalar_run`` must give identical counts.
    """
    rng = np.random.default_rng(31337)
    for _ in range(8):
        ids, writes, op_sizes = random_stream(rng)
        trace = build_trace(ids, writes, op_sizes)
        for capacity in (_SCALAR_RUN - 1, _SCALAR_RUN, _SCALAR_RUN + 1):
            for policy in (lru_replay_trace, belady_replay_trace):
                forced_vec = policy(trace, capacity, method="simulate", scalar_run=0)
                forced_scalar = policy(
                    trace, capacity, method="simulate", scalar_run=10**9
                )
                default = policy(trace, capacity, method="simulate")
                key = lambda r: (r.loads, r.stores, r.evict_stores)
                assert key(forced_vec) == key(forced_scalar) == key(default)


# ---------------------------------------------------------------------------
# search / refine fan-outs


@pytest.fixture(scope="module")
def tbs_graph():
    case = record_case("tbs", 24, 4, 15)
    return DependencyGraph.from_trace(case.trace)


def test_multi_chain_jobs_invariant(tbs_graph):
    serial = anneal_search(tbs_graph, 15, iters=150, seed=3, chains=3, jobs=1)
    fanned = anneal_search(tbs_graph, 15, iters=150, seed=3, chains=3, jobs=4)
    assert serial.cost == fanned.cost
    assert serial.order == fanned.order
    strip = lambda p: {k: v for k, v in p.items() if k != "jobs"}
    assert strip(serial.params) == strip(fanned.params)  # jobs is provenance only


def test_chain_zero_reproduces_single_chain(tbs_graph):
    single = anneal_search(tbs_graph, 15, iters=150, seed=3)
    multi = anneal_search(tbs_graph, 15, iters=150, seed=3, chains=4, jobs=2)
    # chain 0 runs the identical (seed, t_start) schedule as chains=1 ...
    assert multi.params["chain_costs"][0] == single.cost
    # ... so the portfolio min can never be worse than the classic run,
    # and ties resolve to the lowest chain index (documented reduction).
    assert multi.cost <= single.cost
    best = min(multi.params["chain_costs"])
    assert multi.params["winner_chain"] == multi.params["chain_costs"].index(best)


def test_multi_seed_refine_jobs_invariant(tbs_graph):
    owners = [
        list(partition_graph(tbs_graph, 4, part))
        for part in ("level-greedy", "locality")
    ]
    kwargs = dict(strategy="anneal", iters=120, eval_policy="belady")
    serial = refine_partitions(tbs_graph, owners, 4, 15, jobs=1, seed=5, **kwargs)
    fanned = refine_partitions(tbs_graph, owners, 4, 15, jobs=4, seed=5, **kwargs)
    assert [(r.cost, r.owner) for r in serial] == [(r.cost, r.owner) for r in fanned]
    for r in fanned:
        assert r.cost <= r.seed_cost  # never-worse survives the fan-out
        assert r.graph is tbs_graph  # parent reattached the shared DAG
    # seed index 0 reproduces the single-run API bit for bit
    lone = refine_partition(tbs_graph, owners[0], 4, 15, seed=5, **kwargs)
    assert (lone.cost, lone.owner) == (fanned[0].cost, fanned[0].owner)
