"""Tests for schedule recording, replay, and machine-independent validation."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.core.tbs import tbs_syrk
from repro.errors import ScheduleError
from repro.kernels.reference import syrk_reference
from repro.machine.regions import Region
from repro.sched.ops import OuterColsUpdate
from repro.sched.schedule import (
    ComputeStep,
    EvictStep,
    LoadStep,
    Schedule,
    record_schedule,
    replay_schedule,
)
from repro.sched.validate import schedule_footprint, validate_schedule


def syrk_machine(n=26, mc=3, s=15, seed=0, **kw):
    rng = np.random.default_rng(seed)
    m = TwoLevelMachine(s, **kw)
    m.add_matrix("A", rng.standard_normal((n, mc)))
    m.add_matrix("C", np.zeros((n, n)))
    return m


class TestRecordReplay:
    def test_roundtrip_stats_and_result(self):
        m1 = syrk_machine()
        sched = record_schedule(m1, lambda: tbs_syrk(m1, "A", "C", range(26), range(3)))
        # Replay on a fresh machine with the same input values.
        m2 = syrk_machine()
        replay_schedule(sched, m2)
        assert m2.stats.loads == m1.stats.loads
        assert m2.stats.stores == m1.stats.stores
        assert m2.stats.mults == m1.stats.mults
        np.testing.assert_allclose(m2.result("C"), m1.result("C"))

    def test_trace_io_matches_stats(self):
        m = syrk_machine()
        sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(26), range(3)))
        loads, stores = sched.io_volume()
        assert loads == m.stats.loads
        assert stores == m.stats.stores

    def test_step_counts(self):
        m = syrk_machine()
        sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(26), range(3)))
        counts = sched.counts()
        assert counts["load"] == m.stats.n_loads
        assert counts["evict"] == m.stats.n_evicts
        assert counts["compute"] == m.stats.n_computes
        assert len(sched) == sum(counts.values())

    def test_shape_mismatch_rejected(self):
        m = syrk_machine()
        sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(26), range(3)))
        m2 = TwoLevelMachine(15)
        m2.add_matrix("A", np.zeros((26, 4)))  # wrong shape
        m2.add_matrix("C", np.zeros((26, 26)))
        with pytest.raises(ValueError):
            replay_schedule(sched, m2)

    def test_recorder_detached_after_body(self):
        m = syrk_machine()
        sched = record_schedule(m, lambda: m.load(m.tile("C", [0], [0])))
        m.evict(m.tile("C", [0], [0]))  # not recorded
        assert len(sched) == 1


class TestValidate:
    def recorded(self, **kw):
        m = syrk_machine(**kw)
        sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(26), range(3)))
        return m, sched

    def test_valid_schedule_passes(self):
        m, sched = self.recorded()
        summary = validate_schedule(sched, capacity=15)
        assert summary["loads"] == m.stats.loads
        assert summary["stores"] == m.stats.stores
        assert summary["peak_occupancy"] <= 15

    def test_capacity_violation_detected(self):
        _, sched = self.recorded()
        with pytest.raises(ScheduleError, match="capacity"):
            validate_schedule(sched, capacity=14)

    def test_truncated_schedule_leaves_memory_nonempty(self):
        _, sched = self.recorded()
        truncated = Schedule(steps=sched.steps[:-1], shapes=sched.shapes)
        with pytest.raises(ScheduleError, match="not empty"):
            validate_schedule(truncated, capacity=15)

    def test_dropped_load_detected(self):
        _, sched = self.recorded()
        # Remove the first load: later evicts/computes must fail.
        first_load = next(i for i, s in enumerate(sched.steps) if isinstance(s, LoadStep))
        broken = Schedule(
            steps=sched.steps[:first_load] + sched.steps[first_load + 1 :],
            shapes=sched.shapes,
        )
        with pytest.raises(ScheduleError):
            validate_schedule(broken, capacity=15)

    def test_duplicated_load_detected(self):
        _, sched = self.recorded()
        first_load = next(s for s in sched.steps if isinstance(s, LoadStep))
        broken = Schedule(steps=[first_load] + sched.steps, shapes=sched.shapes)
        with pytest.raises(ScheduleError, match="redundant"):
            validate_schedule(broken, capacity=15)

    def test_unknown_matrix_detected(self):
        sched = Schedule(
            steps=[LoadStep(Region("X", np.array([0])))],
            shapes={"A": (2, 2)},
        )
        with pytest.raises(ScheduleError, match="unknown matrix"):
            validate_schedule(sched, capacity=5)

    def test_footprint(self):
        m, sched = self.recorded()
        fp = schedule_footprint(sched)
        # TBS touches every element of A (each column loaded per block) and
        # the full lower triangle of C exactly once (footprint == n(n+1)/2).
        assert fp["C"] == 26 * 27 // 2
        assert fp["A"] == 26 * 3


class TestCachedStats:
    """counts()/io_volume() are computed in one pass and cached by length."""

    def test_cache_invalidated_on_append(self):
        m = syrk_machine()
        sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(26), range(3)))
        loads, stores = sched.io_volume()
        counts = sched.counts()
        # Appending (what recording does) must invalidate the cache.
        extra = Region("A", np.array([0, 1], dtype=np.int64))
        sched.steps.append(LoadStep(extra))
        sched.steps.append(EvictStep(extra, writeback=True))
        loads2, stores2 = sched.io_volume()
        assert (loads2, stores2) == (loads + 2, stores + 2)
        counts2 = sched.counts()
        assert counts2["load"] == counts["load"] + 1
        assert counts2["evict"] == counts["evict"] + 1
        assert counts2["compute"] == counts["compute"]

    def test_cache_hit_returns_same_values(self):
        m = syrk_machine()
        sched = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(26), range(3)))
        assert sched.io_volume() == sched.io_volume()
        first = sched.counts()
        second = sched.counts()
        assert first == second
        # counts() hands out a copy: mutating it must not poison the cache.
        first["load"] = -1
        assert sched.counts()["load"] != -1

    def test_empty_schedule(self):
        sched = Schedule()
        assert sched.io_volume() == (0, 0)
        assert sched.counts() == {"load": 0, "evict": 0, "compute": 0}
