"""Tests for the two-level machine: memories, tracker, facade, strict mode."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.errors import (
    CapacityError,
    ConfigurationError,
    RedundantLoadError,
    ResidencyError,
)
from repro.machine.regions import Region
from repro.sched.ops import OuterColsUpdate, TriangleUpdate


def machine(s=10, strict=True, **kw):
    m = TwoLevelMachine(s, strict=strict, **kw)
    m.add_matrix("A", np.arange(12, dtype=float).reshape(4, 3))
    m.add_matrix("C", np.zeros((4, 4)))
    return m


class TestSlowMemory:
    def test_copies_input(self):
        arr = np.ones((2, 2))
        m = TwoLevelMachine(5)
        m.add_matrix("X", arr)
        arr[0, 0] = 99.0
        assert m.result("X")[0, 0] == 1.0

    def test_duplicate_name_rejected(self):
        m = TwoLevelMachine(5)
        m.add_matrix("X", np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            m.add_matrix("X", np.zeros((2, 2)))

    def test_unknown_name(self):
        m = TwoLevelMachine(5)
        with pytest.raises(ConfigurationError):
            m.result("nope")

    def test_shapes(self):
        m = machine()
        assert m.shape("A") == (4, 3)
        assert m.ncols("A") == 3
        assert m.slow.total_elements() == 12 + 16


class TestLoadEvict:
    def test_load_counts_and_occupancy(self):
        m = machine()
        reg = m.tile("A", [0, 1], [0, 1])
        m.load(reg)
        assert m.stats.loads == 4
        assert m.occupancy() == 4
        m.evict(reg)
        assert m.occupancy() == 0
        assert m.stats.stores == 0

    def test_writeback_counts_stores(self):
        m = machine()
        reg = m.tile("C", [0], [0, 1])
        m.load(reg)
        m.evict(reg, writeback=True)
        assert m.stats.stores == 2

    def test_capacity_enforced_atomically(self):
        m = machine(s=3)
        m.load(m.tile("A", [0], [0, 1]))  # occupancy 2
        with pytest.raises(CapacityError):
            m.load(m.tile("A", [1], [0, 1]))  # would reach 4 > 3
        assert m.occupancy() == 2  # unchanged by the failed load

    def test_redundant_load_rejected(self):
        m = machine()
        m.load(m.tile("A", [0], [0]))
        with pytest.raises(RedundantLoadError):
            m.load(m.tile("A", [0], [0]))

    def test_redundant_load_allowed_and_counted(self):
        m = machine(allow_redundant_loads=True)
        m.load(m.tile("A", [0], [0, 1]))
        m.load(m.tile("A", [0], [0, 1]))  # fully redundant
        assert m.stats.loads == 4  # traffic still counted
        assert m.occupancy() == 2

    def test_evict_nonresident_rejected(self):
        m = machine()
        with pytest.raises(ResidencyError):
            m.evict(m.tile("A", [0], [0]))

    def test_empty_region_noop(self):
        m = machine()
        reg = m.column_segment("A", [], 0)
        m.load(reg)
        m.evict(reg)
        assert m.stats.loads == 0

    def test_peak_occupancy_tracked(self):
        m = machine(s=6)
        r1 = m.tile("A", [0, 1], [0, 1])
        m.load(r1)
        m.evict(r1)
        r2 = m.tile("A", [0], [0])
        m.load(r2)
        m.evict(r2)
        assert m.stats.peak_occupancy == 4

    def test_hold_context_manager(self):
        m = machine()
        with m.hold(m.tile("C", [0], [0]), writeback=True):
            assert m.occupancy() == 1
        assert m.occupancy() == 0
        assert m.stats.stores == 1

    def test_assert_empty(self):
        m = machine()
        m.load(m.tile("A", [0], [0]))
        with pytest.raises(ConfigurationError):
            m.assert_empty()


class TestStrictShadow:
    def test_poison_before_load(self):
        m = machine()
        assert np.isnan(m.workspace("A")).all()

    def test_load_reveals_values(self):
        m = machine()
        m.load(m.tile("A", [1], [0, 1, 2]))
        np.testing.assert_array_equal(m.workspace("A")[1], [3.0, 4.0, 5.0])
        assert np.isnan(m.workspace("A")[0]).all()

    def test_evict_restores_poison(self):
        m = machine()
        reg = m.tile("A", [1], [0, 1, 2])
        m.load(reg)
        m.evict(reg)
        assert np.isnan(m.workspace("A")[1]).all()

    def test_writeback_moves_shadow_to_slow(self):
        m = machine()
        reg = m.tile("C", [0], [0])
        m.load(reg)
        m.workspace("C")[0, 0] = 42.0
        m.evict(reg, writeback=True)
        assert m.result("C")[0, 0] == 42.0

    def test_missing_writeback_loses_update(self):
        m = machine()
        reg = m.tile("C", [0], [0])
        m.load(reg)
        m.workspace("C")[0, 0] = 42.0
        m.evict(reg, writeback=False)
        assert m.result("C")[0, 0] == 0.0  # stale: verification would catch

    def test_nonstrict_workspace_is_slow(self):
        m = machine(strict=False)
        assert m.workspace("A") is m.result("A")


class TestCompute:
    def test_residency_checked(self):
        m = machine()
        op = OuterColsUpdate(m, "C", "A", "A", [0, 1], [2], 0, 0)
        with pytest.raises(ResidencyError):
            m.compute(op)

    def test_compute_applies_and_counts(self):
        m = machine()
        a = m.result("A").copy()
        m.load(m.tile("C", [2, 3], [0, 1]))
        m.load(m.column_segment("A", [2, 3], 0))
        m.load(m.column_segment("A", [0, 1], 0))
        op = OuterColsUpdate(m, "C", "A", "A", [2, 3], [0, 1], 0, 0)
        m.compute(op)
        assert m.stats.mults == 4
        assert m.stats.flops == 8
        assert m.stats.n_computes == 1
        expected = np.outer(a[[2, 3], 0], a[[0, 1], 0])
        np.testing.assert_allclose(m.workspace("C")[np.ix_([2, 3], [0, 1])], expected)

    def test_numerics_off_skips_apply(self):
        m = machine(strict=False, numerics=False)
        m.load(m.tile("C", [2, 3], [0, 1]))
        m.load(m.column_segment("A", [2, 3], 0))
        m.load(m.column_segment("A", [0, 1], 0))
        m.compute(OuterColsUpdate(m, "C", "A", "A", [2, 3], [0, 1], 0, 0))
        np.testing.assert_array_equal(m.result("C"), np.zeros((4, 4)))
        assert m.stats.mults == 4  # work still credited

    def test_triangle_update_touches_only_subdiagonal(self):
        m = machine(s=12)
        rows = [0, 2, 3]
        m.load(m.triangle_block("C", rows))
        m.load(m.column_segment("A", rows, 1))
        m.compute(TriangleUpdate(m, "C", "A", rows, 1, include_diagonal=False))
        ws = m.workspace("C")
        a = np.arange(12, dtype=float).reshape(4, 3)
        for i in rows:
            for j in rows:
                if i > j:
                    assert ws[i, j] == pytest.approx(a[i, 1] * a[j, 1])
        # diagonal and upper entries are still poison
        assert np.isnan(ws[0, 0]) and np.isnan(ws[2, 3])


class TestTracker:
    def test_snapshot_diff(self):
        m = machine()
        m.load(m.tile("A", [0], [0, 1]))
        snap = m.stats.snapshot()
        m.load(m.tile("A", [1], [0]))
        d = m.stats.diff(snap)
        assert d.loads == 1
        assert d.n_loads == 1
        assert m.stats.loads == 3

    def test_by_matrix_breakdown(self):
        m = machine()
        m.load(m.tile("A", [0], [0, 1]))
        m.load(m.tile("C", [0], [0]))
        assert m.stats.loads_by_matrix["A"] == 2
        assert m.stats.loads_by_matrix["C"] == 1

    def test_event_log(self):
        m = TwoLevelMachine(10, record_events=True)
        m.add_matrix("A", np.zeros((2, 2)))
        reg = m.tile("A", [0], [0])
        m.load(reg)
        m.evict(reg)
        kinds = [e.kind for e in m.stats.events]
        assert kinds == ["load", "evict"]

    def test_oi_definitions(self):
        m = machine()
        m.load(m.tile("C", [1], [0]))
        m.load(m.column_segment("A", [1], 0))
        m.load(m.column_segment("A", [0], 0))
        m.compute(OuterColsUpdate(m, "C", "A", "A", [1], [0], 0, 0))
        assert m.stats.operational_intensity("mults") == pytest.approx(1 / 3)
        assert m.stats.operational_intensity("flops") == pytest.approx(2 / 3)
        assert m.stats.q == m.stats.loads

    def test_summary_string(self):
        m = machine()
        m.load(m.tile("A", [0], [0]))
        s = m.stats.summary()
        assert "Q(loads)=1" in s
