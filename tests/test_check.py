"""The static analyzers (repro.check): certifier, races, conservation, CLI.

The load-bearing property: the *static* certifier's verdict agrees with
the *dynamic* validator on every schedule — clean schedules (recorded,
rescheduled, searched) certify clean with identical counters, and every
seeded mutation is flagged with the same code at the same op the dynamic
replay fails at.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import (
    Certificate,
    Finding,
    certify_schedule,
    check_conservation,
    check_races,
    check_summary,
    has_errors,
)
from repro.check.conservation import derived_transfer_totals
from repro.errors import ScheduleError
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph
from repro.graph.rewriter import reschedule, rewrite_schedule
from repro.graph.search import anneal_search
from repro.machine.regions import Region
from repro.obs import probe_scope
from repro.parallel.executor import execute_graph, partition_graph
from repro.sched.schedule import EvictStep, LoadStep, Schedule
from repro.sched.validate import validate_schedule

KERNELS = ("tbs", "ocs", "syr2k", "chol")
N, M, S = 20, 4, 15


@pytest.fixture(scope="module")
def cases():
    return {k: record_case(k, N, M, S) for k in KERNELS}


def _region(matrix, idx):
    return Region(matrix, np.asarray(idx, dtype=np.int64))


def _tiny(steps, shapes=None):
    return Schedule(steps=list(steps), shapes=shapes or {"A": (2, 2)})


# --------------------------------------------------------------------- #
# certifier vs validator: agreement on clean schedules
# --------------------------------------------------------------------- #
class TestCleanAgreement:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_recorded_schedules_certify_clean(self, cases, kernel):
        case = cases[kernel]
        cert = certify_schedule(case.schedule, case.capacity)
        ref = validate_schedule(case.schedule, case.capacity)
        assert cert.ok and not cert.findings
        for key in ("loads", "stores", "peak_occupancy"):
            assert cert.stats[key] == ref[key]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_rescheduled_schedules_certify_clean(self, cases, kernel):
        case = cases[kernel]
        result = reschedule(case.trace, case.capacity, "locality")
        cert = certify_schedule(result.schedule, case.capacity)
        assert cert.ok
        assert cert.stats["loads"] == result.summary["loads"]
        assert cert.stats["peak_occupancy"] == result.summary["peak_occupancy"]

    def test_searched_schedule_certifies_clean(self, cases):
        case = cases["tbs"]
        graph = DependencyGraph.from_trace(case.trace)
        found = anneal_search(
            graph, case.capacity, iters=60, seed=0, relax_reductions=True
        )
        result = rewrite_schedule(
            case.trace, case.capacity, found.order,
            graph=graph, relax_reductions=True,
        )
        cert = certify_schedule(result.schedule, case.capacity)
        assert cert.ok
        assert cert.stats["loads"] == result.summary["loads"]


# --------------------------------------------------------------------- #
# the seeded mutation suite (satellite): each injection is flagged with
# the code the dynamic validator fails with, at the same op
# --------------------------------------------------------------------- #
def _validator_verdict(schedule, capacity) -> Finding:
    with pytest.raises(ScheduleError) as err:
        validate_schedule(schedule, capacity)
    finding = err.value.finding
    assert finding is not None, "validator error lost its Finding"
    return finding


class TestMutations:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_dropped_load(self, cases, kernel):
        case = cases[kernel]
        i = next(
            i for i, s in enumerate(case.schedule.steps) if isinstance(s, LoadStep)
        )
        mutated = Schedule(
            steps=[s for j, s in enumerate(case.schedule.steps) if j != i],
            shapes=case.schedule.shapes,
        )
        expected = _validator_verdict(mutated, case.capacity)
        cert = certify_schedule(mutated, case.capacity)
        assert not cert.ok
        assert (expected.code, expected.op_index) in {
            (f.code, f.op_index) for f in cert.findings
        }

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_inflated_residency(self, cases, kernel):
        """Certifying below the recorded peak is the capacity proof failing."""
        case = cases[kernel]
        peak = validate_schedule(case.schedule, case.capacity)["peak_occupancy"]
        expected = _validator_verdict(case.schedule, peak - 1)
        cert = certify_schedule(case.schedule, peak - 1)
        assert not cert.ok
        assert expected.code == "RPS104"
        assert (expected.code, expected.op_index) in {
            (f.code, f.op_index) for f in cert.findings
        }

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_dropped_evict(self, cases, kernel):
        case = cases[kernel]
        i = next(
            i for i, s in enumerate(case.schedule.steps) if isinstance(s, EvictStep)
        )
        mutated = Schedule(
            steps=[s for j, s in enumerate(case.schedule.steps) if j != i],
            shapes=case.schedule.shapes,
        )
        expected = _validator_verdict(mutated, case.capacity)
        cert = certify_schedule(mutated, case.capacity)
        assert not cert.ok
        assert (expected.code, expected.op_index) in {
            (f.code, f.op_index) for f in cert.findings
        }

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_raw_violating_reorder(self, cases, kernel):
        """Swapping an op before its predecessor is an order violation."""
        graph = DependencyGraph.from_trace(cases[kernel].trace)
        u, v, kinds = graph.edges()[0]
        order = list(range(len(graph)))
        order[u], order[v] = order[v], order[u]
        assert not graph.is_valid_order(order)
        findings = check_races(graph, [0] * len(graph), order=order)
        flagged = [f for f in findings if f.code == "RPR101"]
        assert flagged
        assert any(
            f.op_index == v and f.context["pred"] == u for f in flagged
        )
        # the untouched order is race-free on one shard
        assert not check_races(graph, [0] * len(graph))

    @pytest.mark.parametrize("kernel", ("tbs", "ocs", "syr2k"))
    def test_split_reduction_across_shards(self, cases, kernel):
        graph = DependencyGraph.from_trace(cases[kernel].trace)
        classes = graph.reduction_classes()
        assert classes, "kernel has no commuting reduction classes"
        members = max(classes, key=len)
        owner = [0] * len(graph)
        owner[members[0]] = 1
        relaxed = check_races(graph, owner, relax_reductions=True)
        assert any(f.code == "RPR105" for f in relaxed)
        # unrelaxed, the reduction edges are transfers: ordered, no race
        strict = check_races(graph, owner, relax_reductions=False)
        assert not any(f.code == "RPR105" for f in strict)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_asymmetric_transfer(self, cases, kernel):
        graph = DependencyGraph.from_trace(cases[kernel].trace)
        owner = partition_graph(graph, 4, "level-greedy")
        t_in, t_out = derived_transfer_totals(graph, owner)
        assert not check_conservation(
            graph, owner, transfer_in=t_in, transfer_out=t_out
        )
        t_in = list(t_in)
        t_in[0] += 5  # receive 5 elements nobody sent
        findings = check_conservation(
            graph, owner, transfer_in=t_in, transfer_out=t_out
        )
        assert {f.code for f in findings} == {"RPC101"}


# --------------------------------------------------------------------- #
# certifier stream rules on hand-built schedules
# --------------------------------------------------------------------- #
class TestStreamRules:
    def test_use_before_load(self):
        cert = certify_schedule(
            _tiny([EvictStep(_region("A", [0]), writeback=False)]), 4
        )
        assert [f.code for f in cert.findings] == ["RPS103"]
        assert cert.findings[0].op_index == 0

    def test_double_load(self):
        steps = [
            LoadStep(_region("A", [0, 1])),
            LoadStep(_region("A", [1])),
            EvictStep(_region("A", [0, 1]), writeback=False),
        ]
        cert = certify_schedule(_tiny(steps), 4)
        codes = [f.code for f in cert.findings]
        assert "RPS102" in codes
        assert certify_schedule(_tiny(steps), 4, allow_redundant_loads=True).ok

    def test_dead_evict_is_a_warning(self):
        steps = [
            LoadStep(_region("A", [0])),
            EvictStep(_region("A", [0]), writeback=False),
        ]
        cert = certify_schedule(_tiny(steps), 4)
        assert [f.code for f in cert.findings] == ["RPS201"]
        assert cert.ok  # warnings do not fail certification

    def test_store_of_clean_is_a_warning(self):
        steps = [
            LoadStep(_region("A", [0])),
            EvictStep(_region("A", [0]), writeback=True),
        ]
        cert = certify_schedule(_tiny(steps), 4)
        assert {"RPS201", "RPS202"} == {f.code for f in cert.findings}
        assert cert.stats["stores"] == 1

    def test_capacity_and_residual(self):
        steps = [LoadStep(_region("A", [0, 1, 2]))]
        cert = certify_schedule(_tiny(steps), 2)
        assert {"RPS104", "RPS105"} == {f.code for f in cert.findings}
        ok = certify_schedule(_tiny(steps), 3, require_empty_end=False)
        assert ok.ok and ok.stats["peak_occupancy"] == 3

    def test_unknown_matrix(self):
        cert = certify_schedule(_tiny([LoadStep(_region("Z", [0]))]), 4)
        assert [f.code for f in cert.findings] == ["RPS106"]

    def test_empty_schedule(self):
        cert = certify_schedule(_tiny([]), 4)
        assert cert.ok and cert.stats["loads"] == 0


# --------------------------------------------------------------------- #
# race detector specifics
# --------------------------------------------------------------------- #
class TestRaces:
    def test_partitioned_kernels_are_race_free(self, cases):
        for kernel in KERNELS:
            graph = DependencyGraph.from_trace(cases[kernel].trace)
            for part in ("level-greedy", "locality", "owner-computes"):
                owner = partition_graph(graph, 4, part)
                assert not has_errors(check_races(graph, owner)), (kernel, part)

    def test_dropped_transfer_is_a_raw_race(self, cases):
        graph = DependencyGraph.from_trace(cases["chol"].trace)
        owner = partition_graph(graph, 2, "level-greedy")
        cut_raw = [
            (u, v)
            for u, v, kinds in graph.cut_edges(owner, kinds=frozenset({"raw"}))
        ]
        assert cut_raw, "partition cuts no RAW edges"
        # shipping every transfer: clean; shipping none: every cut RAW races
        full = cut_raw + [
            (u, v)
            for u, v, k in graph.cut_edges(owner, kinds=frozenset({"reduction"}))
        ]
        assert not has_errors(check_races(graph, owner, transfers=full))
        findings = check_races(graph, owner, transfers=[])
        raw_races = {(f.context["pred"], f.op_index)
                     for f in findings if f.code == "RPR102"}
        assert raw_races  # at least the directly-unprotected edges surface

    def test_owner_length_mismatch(self, cases):
        graph = DependencyGraph.from_trace(cases["tbs"].trace)
        with pytest.raises(ValueError, match="owner has"):
            check_races(graph, [0])


# --------------------------------------------------------------------- #
# conservation checks against real executor summaries
# --------------------------------------------------------------------- #
class TestConservation:
    def test_executor_summary_audits_clean(self, cases):
        case = cases["tbs"]
        for part in ("level-greedy", "owner-computes"):
            summary = execute_graph(case.schedule, 4, S, partitioner=part)
            graph = DependencyGraph.from_trace(case.trace)
            assert not check_summary(graph, summary), part

    def test_multi_writer_violation(self, cases):
        graph = DependencyGraph.from_trace(cases["tbs"].trace)
        owner = list(partition_graph(graph, 4, "owner-computes"))
        writer = next(i for i, n in enumerate(graph.nodes) if n.write_keys)
        owner[writer] = (owner[writer] + 1) % 4
        findings = check_conservation(graph, owner, exclusive_writer=True)
        assert any(f.code == "RPC103" for f in findings)

    def test_receive_floor(self, cases):
        graph = DependencyGraph.from_trace(cases["tbs"].trace)
        owner = partition_graph(graph, 2, "level-greedy")
        findings = check_conservation(graph, owner, recv=[0, 10**9])
        assert any(
            f.code == "RPC102" and f.context["shard"] == 0 for f in findings
        )


# --------------------------------------------------------------------- #
# validator diagnostics (satellite: Finding-carrying ScheduleError)
# --------------------------------------------------------------------- #
class TestValidatorFindings:
    def test_finding_carries_op_index_and_code(self):
        steps = [
            LoadStep(_region("A", [0])),
            LoadStep(_region("A", [0])),
        ]
        with pytest.raises(ScheduleError) as err:
            validate_schedule(_tiny(steps), 4)
        finding = err.value.finding
        assert finding.code == "RPS102"
        assert finding.op_index == 1
        assert str(finding.op_index) in str(err.value)

    def test_plain_schedule_errors_have_no_finding(self):
        assert ScheduleError("boom").finding is None


# --------------------------------------------------------------------- #
# observability + CLI
# --------------------------------------------------------------------- #
class TestCheckSurface:
    def test_probe_counters(self, cases):
        case = cases["tbs"]
        graph = DependencyGraph.from_trace(case.trace)
        with probe_scope() as probe:
            certify_schedule(case.schedule, case.capacity)
            check_races(graph, [0] * len(graph))
        assert probe.counters["check.certify.runs"] == 1
        assert probe.counters["check.certify.steps"] == len(case.schedule.steps)
        assert probe.counters["check.races.runs"] == 1
        assert probe.timers["check.certify"]["calls"] == 1

    def test_certificate_is_reusable(self, cases):
        cert = certify_schedule(cases["tbs"].schedule, S)
        assert isinstance(cert, Certificate)
        assert cert.stats["n_steps"] == len(cases["tbs"].schedule.steps)

    def test_cli_kernel_mode(self, capsys):
        from repro.__main__ import main

        rc = main(["check", "--kernel", "tbs", "--n", "16", "--m", "4",
                   "--s", "15", "--p", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: 0 finding(s)" in out

    def test_cli_artifact_mode(self, tmp_path, cases, capsys):
        from repro.__main__ import main
        from repro.trace.io import save_schedule

        path = str(tmp_path / "sched.npz")
        save_schedule(cases["tbs"].schedule, path)
        assert main(["check", path, "--capacity", str(S)]) == 0
        assert main(["check", path, "--capacity", str(S - 1),
                     "--format", "json"]) == 1
        out = capsys.readouterr().out
        assert '"RPS104"' in out

    def test_cli_store_mode(self, tmp_path, cases, capsys):
        from repro.__main__ import main
        from repro.serve.store import ScheduleKey, ScheduleStore

        store = ScheduleStore(str(tmp_path / "store"))
        key = ScheduleKey("tbs", N, M, S)
        store.put(key, cases["tbs"].schedule)
        assert main(["check", "--store", store.root, "--all"]) == 0
        assert main(["check", "--store", store.root,
                     "--digest", key.digest()]) == 0
        capsys.readouterr()
