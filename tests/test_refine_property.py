"""Property-based checks for transfer-aware partition refinement.

Two generators feed the same invariants — mirroring the
``tests/test_search_property.py`` pattern (hypothesis when available, a
seeded random sweep otherwise, so the suite does not depend on the
package):

* refinement always returns a *legal exact-cover* assignment: every op
  owned by exactly one node in ``0..p-1`` — across kernels, partitioner
  seeds, refine seeds and ``p in {2, 4, 16}``;
* the measured objective never increases over the seed partition:
  ``max_q(recv_q + transfer_in_q)`` of the returned assignment is ``<=``
  the seed's, re-measured independently with :func:`partition_cost`;
* the returned bookkeeping is consistent: ``cost``/``seed_cost`` equal
  independent re-measurements, and a reverted run hands the seed back
  verbatim;
* with ``keep_writers_together`` every written element still has exactly
  one owning node (the ``owner_from_assignment``-style write-set
  constraint).
"""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.tbs import tbs_syrk
from repro.graph.dependency import DependencyGraph
from repro.parallel import (
    PARTITIONERS,
    partition_cost,
    partition_graph,
    refine_partition,
)
from repro.sched.schedule import record_schedule
from repro.trace.compiled import compile_trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

PS = (2, 4, 16)


def build_graph(kernel_name: str, n: int, mc: int, s: int) -> DependencyGraph:
    kernel = tbs_syrk if kernel_name == "tbs" else ooc_syrk
    m = TwoLevelMachine(s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, mc)))
    m.add_matrix("C", np.zeros((n, n)))
    schedule = record_schedule(m, lambda: kernel(m, "A", "C", range(n), range(mc)))
    return DependencyGraph.from_trace(compile_trace(schedule))


def check_refinement(graph, p, s, partitioner, strategy, seed, keep_writers):
    seed_owner = partition_graph(graph, p, partitioner)
    result = refine_partition(
        graph, seed_owner, p, s, strategy=strategy, iters=60, max_moves=24,
        seed=seed, keep_writers_together=keep_writers,
    )
    label = (partitioner, strategy, p, seed)
    # legal exact cover: every op owned exactly once, owners in range
    assert len(result.owner) == len(graph), label
    assert all(0 <= q < p for q in result.owner), label
    # never worse than the seed, on independent re-measurement
    measured = partition_cost(graph, result.owner, p, s)
    measured_seed = partition_cost(graph, seed_owner, p, s)
    assert measured == result.cost, label
    assert measured_seed == result.seed_cost, label
    assert measured <= measured_seed, label
    if result.reverted:
        assert result.owner == tuple(seed_owner), label
    if keep_writers:
        writer: dict[int, int] = {}
        for v, node in enumerate(graph.nodes):
            for key in node.write_keys:
                assert writer.setdefault(key, result.owner[v]) == result.owner[v]


if HAVE_HYPOTHESIS:

    @settings(max_examples=10, deadline=None)
    @given(
        kernel=st.sampled_from(["tbs", "ocs"]),
        n=st.integers(min_value=8, max_value=22),
        mc=st.integers(min_value=1, max_value=3),
        s=st.integers(min_value=9, max_value=24),
        p=st.sampled_from(PS),
        partitioner=st.sampled_from(PARTITIONERS),
        strategy=st.sampled_from(["greedy", "anneal"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_refinement_legal_and_never_worse_hypothesis(
        kernel, n, mc, s, p, partitioner, strategy, seed
    ):
        graph = build_graph(kernel, n, mc, s)
        check_refinement(graph, p, s, partitioner, strategy, seed,
                         keep_writers=False)

    @settings(max_examples=6, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=20),
        mc=st.integers(min_value=1, max_value=2),
        p=st.sampled_from(PS),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_refinement_write_constraint_hypothesis(n, mc, p, seed):
        graph = build_graph("tbs", n, mc, 12)
        check_refinement(graph, p, 12, "owner-computes", "greedy", seed,
                         keep_writers=True)


def test_refinement_legal_and_never_worse_seeded_sweep():
    rng = np.random.default_rng(2026)
    for _ in range(6):
        kernel = "tbs" if rng.random() < 0.5 else "ocs"
        n = int(rng.integers(8, 22))
        mc = int(rng.integers(1, 4))
        s = int(rng.integers(9, 25))
        p = int(rng.choice(PS))
        partitioner = str(rng.choice(PARTITIONERS))
        strategy = "greedy" if rng.random() < 0.5 else "anneal"
        graph = build_graph(kernel, n, mc, s)
        check_refinement(graph, p, s, partitioner, strategy,
                         int(rng.integers(0, 2**16)), keep_writers=False)


def test_refinement_write_constraint_seeded_sweep():
    rng = np.random.default_rng(9)
    for _ in range(3):
        n = int(rng.integers(10, 21))
        mc = int(rng.integers(1, 3))
        p = int(rng.choice(PS))
        graph = build_graph("tbs", n, mc, 12)
        check_refinement(graph, p, 12, "owner-computes", "greedy",
                         int(rng.integers(0, 2**16)), keep_writers=True)
