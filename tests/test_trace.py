"""Tests for the compiled trace IR (repro.trace): compilation, replays, io."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.lru_replay import lru_replay, lru_replay_reference
from repro.baselines.ooc_chol import ooc_chol
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.syr2k import tbs_syr2k
from repro.core.tbs import tbs_syrk
from repro.errors import ConfigurationError, ScheduleError
from repro.graph.compare import record_case
from repro.graph.dependency import DependencyGraph, dependency_graph
from repro.graph.policies import belady_replay, belady_replay_reference
from repro.graph.rewriter import rewrite_trace
from repro.sched.schedule import (
    access_sequence,
    access_sequence_reference,
    record_schedule,
    replay_schedule,
)
from repro.trace.compiled import CompiledTrace, compile_trace
from repro.trace.io import (
    file_kind,
    load_schedule,
    load_trace,
    save_schedule,
    save_trace,
)
from repro.trace.replay import belady_replay_trace, lru_replay_trace


def recorded(kernel, n, mc, s):
    m = TwoLevelMachine(s, strict=False, numerics=False)
    if kernel is ooc_chol:
        m.add_matrix("A", np.zeros((n, n)))
        return record_schedule(m, lambda: kernel(m, "A", range(n)))
    m.add_matrix("A", np.zeros((n, mc)))
    m.add_matrix("C", np.zeros((n, n)))
    if kernel is tbs_syr2k:
        m.add_matrix("B", np.zeros((n, mc)))
        return record_schedule(m, lambda: kernel(m, "A", "B", "C", range(n), range(mc)))
    return record_schedule(m, lambda: kernel(m, "A", "C", range(n), range(mc)))


@pytest.fixture(scope="module", params=["tbs", "ocs", "syr2k", "chol"])
def sched(request):
    kernel = {
        "tbs": tbs_syrk, "ocs": ooc_syrk, "syr2k": tbs_syr2k, "chol": ooc_chol,
    }[request.param]
    n, mc = (20, 0) if request.param == "chol" else (26, 3)
    return recorded(kernel, n, mc, 15)


def synthetic_trace(ids, writes, op_sizes=None):
    """Build a CompiledTrace directly from raw arrays (one fake matrix)."""
    ids = np.asarray(ids, dtype=np.int64)
    writes = np.asarray(writes, dtype=bool)
    n_elem = int(ids.max()) + 1 if ids.size else 0
    if op_sizes is None:
        op_sizes = [ids.size]
    op_starts = np.zeros(len(op_sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(op_sizes, dtype=np.int64), out=op_starts[1:])
    return CompiledTrace(
        matrices=("M",),
        shapes={"M": (1, max(n_elem, 1))},
        elem_ids=ids,
        is_write=writes,
        op_starts=op_starts,
        op_read_ends=op_starts[1:].copy(),
        key_matrix=np.zeros(n_elem, dtype=np.int32),
        key_flat=np.arange(n_elem, dtype=np.int64),
        ops=None,
    )


class TestCompiledTrace:
    def test_matches_reference_sequence(self, sched):
        trace = compile_trace(sched)
        assert trace.to_access_sequence() == access_sequence_reference(sched)

    def test_shim_is_bit_identical(self, sched):
        assert access_sequence(sched) == access_sequence_reference(sched)

    def test_next_use_matches_python_loop(self, sched):
        trace = compile_trace(sched)
        seq = access_sequence_reference(sched)
        never = len(seq)
        expected = [never] * len(seq)
        last = {}
        for i in range(len(seq) - 1, -1, -1):
            key = seq[i][0]
            expected[i] = last.get(key, never)
            last[key] = i
        assert trace.next_use().tolist() == expected

    def test_prev_access_inverts_next_use(self, sched):
        trace = compile_trace(sched)
        nxt, prev = trace.next_use(), trace.prev_access()
        for p in range(trace.n_accesses):
            if nxt[p] < trace.n_accesses:
                assert prev[nxt[p]] == p

    def test_op_boundaries(self, sched):
        trace = compile_trace(sched)
        starts = trace.op_starts
        assert starts[0] == 0 and starts[-1] == trace.n_accesses
        assert (np.diff(starts) >= 0).all()
        assert (trace.op_read_ends >= starts[:-1]).all()
        assert (trace.op_read_ends <= starts[1:]).all()
        # This library's ops write subsets of their reads: no write extras.
        assert (trace.op_read_ends == starts[1:]).all()

    def test_keys_decode(self, sched):
        trace = compile_trace(sched)
        keys = trace.keys()
        assert len(keys) == trace.n_elements == len(set(keys))
        assert trace.key_of(0) == keys[0]
        assert set(k for k, _w in access_sequence_reference(sched)) == set(keys)

    def test_compile_is_idempotent(self, sched):
        trace = compile_trace(sched)
        assert compile_trace(trace) is trace

    def test_reorder_matches_recompilation(self, sched):
        trace = compile_trace(sched)
        rng = np.random.default_rng(0)
        order = rng.permutation(trace.n_ops).tolist()
        reordered = trace.reorder(order)
        direct = compile_trace([trace.ops[i] for i in order])
        assert reordered.to_access_sequence() == direct.to_access_sequence()
        assert reordered.ops == [trace.ops[i] for i in order]

    def test_reorder_rejects_non_permutation(self, sched):
        trace = compile_trace(sched)
        with pytest.raises(ConfigurationError, match="permutation"):
            trace.reorder([0] * trace.n_ops)

    def test_select_ops_matches_recompilation(self, sched):
        trace = compile_trace(sched)
        subset = list(range(0, trace.n_ops, 3))
        sub = trace.select_ops(subset)
        direct = compile_trace([trace.ops[i] for i in subset])
        assert sub.to_access_sequence() == direct.to_access_sequence()
        assert sub.ops == [trace.ops[i] for i in subset]
        # interning is shared with the parent, not recompiled
        assert sub.n_elements == trace.n_elements
        assert sub.key_flat is trace.key_flat

    def test_select_ops_shards_partition_the_stream(self, sched):
        trace = compile_trace(sched)
        shards = [list(range(q, trace.n_ops, 4)) for q in range(4)]
        subs = [trace.select_ops(s) for s in shards]
        assert sum(t.n_accesses for t in subs) == trace.n_accesses
        # per-op slices are bit-identical to the parent's
        for ops, sub in zip(shards, subs):
            for local, i in enumerate(ops):
                ids, writes = sub.op_slice(local)
                pids, pwrites = trace.op_slice(i)
                assert np.array_equal(ids, pids)
                assert np.array_equal(writes, pwrites)

    def test_select_ops_replay_independent_of_parent(self, sched):
        # Position links / replay caches must be per-sub-trace, so a shard
        # replay equals recompiling the same ops from scratch.
        trace = compile_trace(sched)
        trace.next_use()  # populate the parent's cache first
        subset = list(range(trace.n_ops // 2))
        sub = trace.select_ops(subset)
        direct = compile_trace([trace.ops[i] for i in subset])
        for capacity in (7, 15):
            a = lru_replay_trace(sub, capacity)
            b = lru_replay_trace(direct, capacity)
            assert (a.loads, a.stores) == (b.loads, b.stores)
            a = belady_replay_trace(sub, capacity)
            b = belady_replay_trace(direct, capacity)
            assert (a.loads, a.stores) == (b.loads, b.stores)

    def test_select_ops_rejects_bad_indices(self, sched):
        trace = compile_trace(sched)
        with pytest.raises(ConfigurationError, match="repeat"):
            trace.select_ops([0, 0])
        with pytest.raises(ConfigurationError, match="indices"):
            trace.select_ops([trace.n_ops])
        empty = trace.select_ops([])
        assert empty.n_ops == 0 and empty.n_accesses == 0

    def test_empty_ops(self):
        trace = compile_trace([])
        assert trace.n_accesses == trace.n_ops == trace.n_elements == 0
        assert trace.to_access_sequence() == []
        assert lru_replay_trace(trace, 4).loads == 0
        assert belady_replay_trace(trace, 4).loads == 0


class TestVectorizedReplays:
    CAPACITIES = (1, 2, 7, 15, 31, 10**6)

    def test_lru_matches_reference(self, sched):
        trace = compile_trace(sched)
        for capacity in self.CAPACITIES:
            ref = lru_replay_reference(sched, capacity)
            for method in ("distance", "simulate"):
                fast = lru_replay_trace(trace, capacity, method=method)
                assert (fast.loads, fast.stores, fast.evict_stores) == (
                    ref.loads, ref.stores, ref.evict_stores), (capacity, method)
                assert fast.n_accesses == ref.n_accesses
                assert fast.distinct == ref.distinct

    def test_belady_matches_reference(self, sched):
        trace = compile_trace(sched)
        for capacity in self.CAPACITIES:
            fast = belady_replay_trace(trace, capacity)
            ref = belady_replay_reference(sched, capacity)
            assert (fast.loads, fast.stores, fast.evict_stores) == (
                ref.loads, ref.stores, ref.evict_stores), capacity

    def test_public_entrypoints_accept_traces(self, sched):
        trace = compile_trace(sched)
        assert lru_replay(trace, 15).loads == lru_replay(sched, 15).loads
        assert belady_replay(trace, 15).loads == belady_replay(sched, 15).loads

    def test_belady_never_above_lru(self, sched):
        trace = compile_trace(sched)
        for capacity in (2, 15, 60):
            assert (
                belady_replay_trace(trace, capacity).loads
                <= lru_replay_trace(trace, capacity).loads
            )

    def test_bad_capacity(self, sched):
        trace = compile_trace(sched)
        for fn in (lru_replay_trace, belady_replay_trace):
            with pytest.raises(ConfigurationError):
                fn(trace, 0)

    def test_stores_split(self, sched):
        # stores == eviction writebacks + final flush, in both engines.
        trace = compile_trace(sched)
        r = lru_replay_trace(trace, 7)
        assert 0 <= r.evict_stores <= r.stores


class TestBeladyTieBreak:
    """Regression for the stale dirty-hint tie-break (ISSUE 2 satellite).

    Among equally-distant (never-used-again) victims the documented policy
    prefers clean elements, deferring dirty writebacks to the final flush.
    A policy that consults a stale dirty snapshot (or prefers dirty
    victims) turns those deferred flushes into eviction-time stores, which
    the ``evict_stores`` counter exposes.
    """

    def test_clean_victim_preferred(self):
        # capacity 2: A written, B read, then C forces one eviction.  Both
        # A and B are never used again; evicting clean B costs nothing now,
        # evicting dirty A would force an immediate writeback.
        trace = synthetic_trace([0, 1, 2], [True, False, False])
        for fn in (belady_replay_trace, belady_replay_reference):
            r = fn(trace, 2)
            assert r.loads == 3
            assert r.evict_stores == 0, fn.__name__
            assert r.stores == 1  # A flushed dirty at the end

    def test_write_hit_refreshes_dirty_state(self):
        # A is pushed clean (read), becomes dirty via a later write *hit*:
        # the tie-break must see the live dirty bit, not the push-time one.
        # capacity 2: A read, A write (hit), B read, C read -> evict B.
        trace = synthetic_trace([0, 0, 1, 2], [False, True, False, False])
        for fn in (belady_replay_trace, belady_replay_reference):
            r = fn(trace, 2)
            assert r.loads == 3
            assert r.evict_stores == 0, fn.__name__
            assert r.stores == 1

    def test_dirty_victim_when_no_clean_available(self):
        # capacity 1 forces evicting the dirty element: the writeback is
        # real and must be counted at eviction time.
        trace = synthetic_trace([0, 1], [True, False])
        for fn in (belady_replay_trace, belady_replay_reference):
            r = fn(trace, 1)
            assert r.evict_stores == 1, fn.__name__
            assert r.stores == 1

    def test_randomized_agreement_on_stores(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(3, 60))
            ids = rng.integers(0, max(2, n // 3), size=n)
            writes = rng.random(n) < 0.4
            trace = synthetic_trace(ids, writes)
            for capacity in (1, 2, 3, 5):
                fast = belady_replay_trace(trace, capacity)
                ref = belady_replay_reference(trace, capacity)
                assert (fast.loads, fast.stores, fast.evict_stores) == (
                    ref.loads, ref.stores, ref.evict_stores)


class TestTraceIO:
    def test_trace_roundtrip(self, sched, tmp_path):
        trace = compile_trace(sched)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.ops is None
        assert loaded.matrices == trace.matrices
        assert loaded.shapes == trace.shapes
        np.testing.assert_array_equal(loaded.elem_ids, trace.elem_ids)
        np.testing.assert_array_equal(loaded.is_write, trace.is_write)
        np.testing.assert_array_equal(loaded.op_starts, trace.op_starts)
        for capacity in (1, 15, 10**6):
            a = lru_replay_trace(trace, capacity)
            b = lru_replay_trace(loaded, capacity)
            assert (a.loads, a.stores) == (b.loads, b.stores)
            a = belady_replay_trace(trace, capacity)
            b = belady_replay_trace(loaded, capacity)
            assert (a.loads, a.stores) == (b.loads, b.stores)

    def test_schedule_roundtrip_bit_identical(self, tmp_path):
        for name, n, mc in (("tbs", 26, 3), ("syr2k", 24, 3), ("chol", 16, 0)):
            case = record_case(name, n, mc, 15)
            path = tmp_path / f"{name}.npz"
            save_schedule(case.schedule, path)
            loaded = load_schedule(path)
            assert loaded.shapes == case.schedule.shapes
            assert len(loaded.steps) == len(case.schedule.steps)
            assert loaded.io_volume() == case.schedule.io_volume()
            assert loaded.counts() == case.schedule.counts()
            m = case.make_machine()
            replay_schedule(loaded, m)
            m.assert_empty()
            for rname in case.result_names:
                assert np.array_equal(m.result(rname), case.reference[rname])
            # the compiled streams are identical too
            assert (
                compile_trace(loaded).to_access_sequence()
                == compile_trace(case.schedule).to_access_sequence()
            )

    def test_file_kind_and_mismatch(self, sched, tmp_path):
        trace = compile_trace(sched)
        tpath, spath = tmp_path / "t.npz", tmp_path / "s.npz"
        save_trace(trace, tpath)
        save_schedule(sched, spath)
        assert file_kind(tpath) == "trace"
        assert file_kind(spath) == "schedule"
        with pytest.raises(ConfigurationError, match="expected"):
            load_trace(spath)
        with pytest.raises(ConfigurationError, match="expected"):
            load_schedule(tpath)

    def test_not_a_container(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_save_is_atomic_under_interrupt(self, sched, tmp_path, monkeypatch):
        """A save killed mid-write never tears the destination container."""
        import repro.trace.io as tio

        path = tmp_path / "s.npz"
        save_schedule(sched, path)
        before = path.read_bytes()

        def torn_write(file, **payload):
            with open(file, "wb") as fh:
                fh.write(b"PK\x03\x04 half a container")
            raise KeyboardInterrupt  # the canonical mid-write kill

        monkeypatch.setattr(tio.np, "savez_compressed", torn_write)
        with pytest.raises(KeyboardInterrupt):
            save_schedule(sched, path)
        monkeypatch.undo()
        # old entry intact, no temp-file litter next to it
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["s.npz"]
        assert load_schedule(path).counts() == sched.counts()

    def test_save_extensionless_path_lands_like_numpy(self, sched, tmp_path):
        """numpy appends .npz to bare names; the atomic path must match."""
        save_schedule(sched, tmp_path / "bare")
        assert (tmp_path / "bare.npz").exists()
        assert load_schedule(tmp_path / "bare.npz").counts() == sched.counts()


class TestGraphOverTrace:
    def test_graph_carries_trace_and_int_keys(self, sched):
        graph = dependency_graph(sched)
        assert graph.trace is not None
        node = graph.nodes[0]
        assert all(isinstance(k, int) for k in node.touched_keys())
        # decoded keys equal the op's region keys
        op = node.op
        decoded = {graph.trace.key_of(k) for k in node.touched_keys()}
        expected = {
            (r.matrix, int(i))
            for r in list(op.reads()) + list(op.writes())
            for i in r.flat
        }
        assert decoded == expected

    def test_dependency_graph_accepts_trace(self, sched):
        trace = compile_trace(sched)
        g1 = dependency_graph(trace)
        g2 = dependency_graph(sched)
        assert g1.edges() == g2.edges()

    def test_from_trace_requires_ops(self, sched, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(compile_trace(sched), path)
        with pytest.raises(ConfigurationError, match="op objects"):
            DependencyGraph.from_trace(load_trace(path))

    def test_rewrite_trace_requires_ops(self, sched, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(compile_trace(sched), path)
        with pytest.raises(ScheduleError, match="op objects"):
            rewrite_trace(load_trace(path), 15)
