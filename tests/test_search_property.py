"""Property-based checks for the order-search engine.

Two generators feed the same invariants — mirroring the
``tests/test_trace_property.py`` pattern (hypothesis when available, a
seeded random sweep otherwise, so the suite does not depend on the
package):

* every search strategy emits a *legal* topological order of the
  dependence DAG for its ``relax_reductions`` setting, and the returned
  ``cost`` is the genuine LRU load count of that order;
* with reductions kept (``relax_reductions=False``), every searched
  order rewrites into an explicit schedule that replays **bit-identical**
  numerics to the recorded run;
* the trace cursor's snapshot/suffix replay (the annealing engine's cost
  hook) agrees with a cold full replay at every split point.
"""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.tbs import tbs_syrk
from repro.graph.dependency import DependencyGraph
from repro.graph.objective import order_cost
from repro.graph.rewriter import rewrite_schedule
from repro.graph.search import STRATEGIES, search_order
from repro.sched.schedule import record_schedule
from repro.trace.compiled import compile_trace
from repro.trace.replay import LruCursor, lru_suffix_cost

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

SEARCH_KWARGS = {"anneal": {"iters": 40}}


def record_kernel(kernel_name: str, n: int, mc: int, s: int, *, numerics: bool):
    kernel = tbs_syrk if kernel_name == "tbs" else ooc_syrk
    m = TwoLevelMachine(s, strict=False, numerics=numerics)
    rng = np.random.default_rng(n * 100 + mc)
    a = rng.standard_normal((n, mc)) if numerics else np.zeros((n, mc))
    m.add_matrix("A", a)
    m.add_matrix("C", np.zeros((n, n)))
    schedule = record_schedule(m, lambda: kernel(m, "A", "C", range(n), range(mc)))
    reference = m.result("C").copy() if numerics else None
    return schedule, a, reference


def check_legality(schedule, s):
    trace = compile_trace(schedule)
    graph = DependencyGraph.from_trace(trace)
    for strategy in STRATEGIES:
        for relax in (False, True):
            result = search_order(
                graph, s, strategy, relax_reductions=relax,
                **SEARCH_KWARGS.get(strategy, {}),
            )
            assert sorted(result.order) == list(range(len(graph))), (strategy, relax)
            assert graph.is_valid_order(result.order, relax_reductions=relax), (
                strategy, relax)
            assert result.cost == order_cost(trace, result.order, s), (strategy, relax)


def check_bit_identical(kernel_name, n, mc, s):
    schedule, a, reference = record_kernel(kernel_name, n, mc, s, numerics=True)
    trace = compile_trace(schedule)
    graph = DependencyGraph.from_trace(trace)
    for strategy in STRATEGIES:
        result = search_order(
            graph, s, strategy, relax_reductions=False,
            **SEARCH_KWARGS.get(strategy, {}),
        )
        rewrite = rewrite_schedule(trace, s, result.order, graph=graph)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        from repro.sched.schedule import replay_schedule

        replay_schedule(rewrite.schedule, m)
        m.assert_empty()
        assert np.array_equal(m.result("C"), reference), strategy


def check_suffix_replay(schedule, s, split_fraction):
    trace = compile_trace(schedule)
    cursor = LruCursor(trace, s)
    split = int(trace.n_ops * split_fraction)
    cursor.apply(range(split))
    snap = cursor.snapshot()
    total = lru_suffix_cost(trace, s, range(split, trace.n_ops), snap)
    assert total == lru_suffix_cost(trace, s, range(trace.n_ops))


if HAVE_HYPOTHESIS:

    @settings(max_examples=10, deadline=None)
    @given(
        kernel=st.sampled_from(["tbs", "ocs"]),
        n=st.integers(min_value=8, max_value=22),
        mc=st.integers(min_value=1, max_value=3),
        s=st.integers(min_value=9, max_value=24),
    )
    def test_search_orders_legal_hypothesis(kernel, n, mc, s):
        schedule, _a, _ref = record_kernel(kernel, n, mc, s, numerics=False)
        check_legality(schedule, s)

    @settings(max_examples=6, deadline=None)
    @given(
        kernel=st.sampled_from(["tbs", "ocs"]),
        n=st.integers(min_value=8, max_value=16),
        mc=st.integers(min_value=1, max_value=2),
        split=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_strict_search_bit_identical_hypothesis(kernel, n, mc, split):
        check_bit_identical(kernel, n, mc, 12)
        schedule, _a, _ref = record_kernel(kernel, n, mc, 12, numerics=False)
        check_suffix_replay(schedule, 12, split)


def test_search_orders_legal_seeded_sweep():
    rng = np.random.default_rng(2024)
    for _ in range(5):
        kernel = "tbs" if rng.random() < 0.5 else "ocs"
        n = int(rng.integers(8, 22))
        mc = int(rng.integers(1, 4))
        s = int(rng.integers(9, 25))
        schedule, _a, _ref = record_kernel(kernel, n, mc, s, numerics=False)
        check_legality(schedule, s)
        check_suffix_replay(schedule, s, float(rng.random()))


def test_strict_search_bit_identical_seeded_sweep():
    rng = np.random.default_rng(7)
    for _ in range(3):
        kernel = "tbs" if rng.random() < 0.5 else "ocs"
        n = int(rng.integers(8, 17))
        mc = int(rng.integers(1, 3))
        check_bit_identical(kernel, n, mc, 12)
