"""Cross-module edge cases: degenerate shapes, empty inputs, config paths."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.model import lbc_model, ooc_syrk_model, tbs_model
from repro.baselines.ooc_syrk import ooc_syrk
from repro.config import MachineConfig
from repro.core.lbc import lbc_cholesky
from repro.core.syr2k import syr2k_reference
from repro.core.tbs import tbs_syrk
from repro.errors import ConfigurationError
from repro.kernels.reference import cholesky_reference, trsm_right_lower_transpose
from repro.machine.fast_memory import FastMemory
from repro.machine.regions import Region
from repro.utils.fmt import Table
from repro.utils.rng import random_lower_triangular, random_spd_matrix, random_tall_matrix


class TestDegenerateShapes:
    def test_one_by_one_syrk(self):
        a = np.array([[2.0]])
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((1, 1)))
        tbs_syrk(m, "A", "C", range(1), range(1))
        m.assert_empty()
        assert m.result("C")[0, 0] == pytest.approx(4.0)

    def test_one_by_one_cholesky(self):
        m = TwoLevelMachine(15)
        m.add_matrix("A", np.array([[9.0]]))
        lbc_cholesky(m, "A", range(1), b=1)
        m.assert_empty()
        assert m.result("A")[0, 0] == pytest.approx(3.0)

    def test_empty_columns_syrk_is_c_pass_only(self):
        # M = 0: the schedule just loads and writes back C (zero update).
        n = 12
        m = TwoLevelMachine(15)
        m.add_matrix("A", np.zeros((n, 1)))
        m.add_matrix("C", np.ones((n, n)))
        stats = ooc_syrk(m, "A", "C", range(n), [])
        m.assert_empty()
        assert stats.loads == n * (n + 1) // 2
        assert stats.mults == 0
        np.testing.assert_array_equal(m.result("C"), np.ones((n, n)))

    def test_single_column_matches_outer_product(self):
        n = 10
        a = random_tall_matrix(n, 1, seed=3)
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        tbs_syrk(m, "A", "C", range(n), range(1))
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(np.outer(a[:, 0], a[:, 0])), rtol=1e-12
        )

    def test_trsm_one_row(self):
        l = random_lower_triangular(5, seed=1)
        b = random_tall_matrix(1, 5, seed=2)
        x = trsm_right_lower_transpose(l, b)
        np.testing.assert_allclose(x @ np.tril(l).T, b, rtol=1e-9)

    def test_cholesky_2x2(self):
        a = np.array([[4.0, 0.0], [2.0, 5.0]])
        a = np.tril(a) + np.tril(a, -1).T
        l = cholesky_reference(a)
        np.testing.assert_allclose(l @ l.T, a, rtol=1e-12)


class TestModelsDegenerate:
    def test_models_at_n1(self):
        assert ooc_syrk_model(1, 1, 15).loads == 1 + 1  # C element + A element
        assert tbs_model(1, 1, 15).loads == 2
        assert lbc_model(1, 15, 1).loads >= 1

    def test_model_zero_cols(self):
        pred = ooc_syrk_model(8, 0, 15)
        assert pred.loads == 8 * 9 // 2
        assert pred.stores == 8 * 9 // 2


class TestMachineConfigPaths:
    def test_config_object_constructor(self):
        cfg = MachineConfig(capacity=10, strict=False, allow_redundant_loads=True)
        m = TwoLevelMachine(cfg)
        assert m.capacity == 10
        assert m.config.strict is False
        assert m.config.allow_redundant_loads is True

    def test_flag_overrides_on_config(self):
        cfg = MachineConfig(capacity=10)
        m = TwoLevelMachine(cfg, strict=False, record_events=True)
        assert m.config.strict is False
        assert m.stats.events is not None

    def test_fast_memory_helpers(self):
        fm = FastMemory(5, strict=False)
        fm.attach("X", (2, 3))
        from repro.machine.slow_memory import SlowMemory

        slow = SlowMemory()
        slow.add("X", np.ones((2, 3)))
        fm.load(Region("X", np.array([0, 1, 4])), slow)
        assert fm.resident_count("X") == 3
        assert fm.resident_count() == 3
        assert fm.is_resident(Region("X", np.array([0, 4])))
        assert not fm.is_resident(Region("X", np.array([2])))
        written = fm.flush_all(slow, writeback=True)
        assert written == 3
        assert fm.occupancy == 0

    def test_empty_region_residency_is_vacuous(self):
        fm = FastMemory(5)
        fm.attach("X", (2, 2))
        assert fm.is_resident(Region("X", np.array([], dtype=np.int64)))


class TestSyr2kReferenceAgainstLoops:
    def test_element_loop_equivalence(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 3))
        b = rng.standard_normal((6, 3))
        want = np.zeros((6, 6))
        for i in range(6):
            for j in range(i + 1):
                for k in range(3):
                    want[i, j] += a[i, k] * b[j, k] + b[i, k] * a[j, k]
        np.testing.assert_allclose(syr2k_reference(a, b), want, rtol=1e-12)


class TestTableEdge:
    def test_empty_table_renders_headers(self):
        t = Table(["a", "bb"])
        text = t.render()
        assert text.splitlines()[0].startswith("a")
        assert len(text.splitlines()) == 2  # header + rule

    def test_lbc_tiled_engine_model_equality(self):
        n, s, b = 24, 18, 4
        a = random_spd_matrix(n, seed=4)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        stats = lbc_cholesky(m, "A", range(n), b=b, syrk="tiled", k=3, tile_b=None)
        m.assert_empty()
        pred = lbc_model(n, s, b, syrk="tiled", k=3)
        assert stats.loads == pred.loads
        np.testing.assert_allclose(np.tril(m.result("A")), cholesky_reference(a), rtol=1e-9)


class TestLargeMemorySingleBlock:
    def test_everything_fits_one_tile(self):
        # S large enough that the whole problem is one block: Q = one pass.
        n, mc = 6, 2
        s = 200
        a = random_tall_matrix(n, mc, seed=5)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        stats = ooc_syrk(m, "A", "C", range(n), range(mc))
        m.assert_empty()
        # single diagonal tile: C once + one A segment per column
        assert stats.loads == n * (n + 1) // 2 + mc * n
        np.testing.assert_allclose(np.tril(m.result("C")), np.tril(a @ a.T), rtol=1e-10)

    def test_tbs_with_huge_memory_falls_back(self):
        # k so large that c < k-1 always: TBS == OCS for any practical n.
        n, mc, s = 30, 3, 10_000
        m = TwoLevelMachine(s, strict=False, numerics=False)
        m.add_matrix("A", np.zeros((n, mc)))
        m.add_matrix("C", np.zeros((n, n)))
        stats = tbs_syrk(m, "A", "C", range(n), range(mc))
        pred = ooc_syrk_model(n, mc, s)
        assert stats.loads == pred.loads


class TestErrorsHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.errors import (
            CapacityError,
            ConfigurationError,
            MachineError,
            RedundantLoadError,
            ReproError,
            ResidencyError,
            ScheduleError,
            VerificationError,
            WritebackError,
        )

        for exc in (
            ConfigurationError("x"),
            CapacityError(1, 2, 3),
            ResidencyError("x"),
            RedundantLoadError("x"),
            WritebackError("x"),
            ScheduleError("x"),
            VerificationError("x"),
        ):
            assert isinstance(exc, ReproError)
        assert issubclass(CapacityError, MachineError)
        assert issubclass(ConfigurationError, ValueError)

    def test_capacity_error_payload(self):
        from repro.errors import CapacityError

        e = CapacityError(5, 10, 12)
        assert e.requested == 5 and e.occupancy == 10 and e.capacity == 12
        assert "12" in str(e)
