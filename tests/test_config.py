"""Tests for repro.config: derived shape parameters and their inequalities."""

import math

import pytest

from repro.config import (
    MachineConfig,
    lbc_block_size,
    square_tile_side_for_memory,
    tiled_tbs_shape_for_memory,
    triangle_side_for_memory,
)
from repro.errors import ConfigurationError


class TestMachineConfig:
    def test_valid(self):
        cfg = MachineConfig(capacity=10)
        assert cfg.capacity == 10
        assert cfg.strict is True
        assert cfg.allow_redundant_loads is False

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_nonpositive_capacity_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            MachineConfig(capacity=bad)


class TestTriangleSide:
    @pytest.mark.parametrize(
        "s,expected",
        [(1, 1), (2, 1), (3, 2), (5, 2), (6, 3), (10, 4), (14, 4), (15, 5), (5050, 100)],
    )
    def test_known_values(self, s, expected):
        assert triangle_side_for_memory(s) == expected

    @pytest.mark.parametrize("s", list(range(1, 200)) + [10**6, 10**9])
    def test_defining_inequality(self, s):
        k = triangle_side_for_memory(s)
        assert k * (k + 1) // 2 <= s, "triangle plus vector must fit"
        assert (k + 1) * (k + 2) // 2 > s, "k must be maximal"

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            triangle_side_for_memory(0)


class TestSquareTileSide:
    @pytest.mark.parametrize("s", list(range(3, 200)) + [10**6])
    def test_defining_inequality(self, s):
        t = square_tile_side_for_memory(s)
        assert t >= 1
        assert t * t + 2 * t <= s, "tile plus two streamed vectors must fit"
        assert (t + 1) * (t + 1) + 2 * (t + 1) > s, "t must be maximal"

    def test_known_values(self):
        assert square_tile_side_for_memory(3) == 1
        assert square_tile_side_for_memory(15) == 3
        assert square_tile_side_for_memory(5050) == 70

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            square_tile_side_for_memory(2)


class TestTiledShape:
    @pytest.mark.parametrize("s", [18, 30, 66, 120, 465, 5050])
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_defining_inequality(self, s, k):
        tri = k * (k - 1) // 2
        if s < tri + k:
            with pytest.raises(ConfigurationError):
                tiled_tbs_shape_for_memory(s, k)
            return
        b = tiled_tbs_shape_for_memory(s, k)
        assert b >= 1
        assert b * b * tri + k * b <= s
        assert (b + 1) * (b + 1) * tri + k * (b + 1) > s

    def test_k_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            tiled_tbs_shape_for_memory(100, 1)


class TestLbcBlockSize:
    @pytest.mark.parametrize("n", [1, 4, 16, 36, 100, 144, 97, 360, 1024])
    def test_divides_and_near_sqrt(self, n):
        b = lbc_block_size(n)
        assert n % b == 0
        # No other divisor is closer to sqrt(N).
        target = math.sqrt(n)
        for d in range(1, n + 1):
            if n % d == 0:
                assert abs(b - target) <= abs(d - target) + 1e-12

    def test_square_number_gets_exact_root(self):
        assert lbc_block_size(144) == 12
        assert lbc_block_size(400) == 20

    def test_prime_degenerates_gracefully(self):
        # A prime N only has divisors 1 and N; pick the closer one.
        assert lbc_block_size(7) in (1, 7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            lbc_block_size(0)
