"""Tests for TBS (Algorithm 4): numerics, exact accounting, optimality shape."""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.model import ooc_syrk_model, tbs_model
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.bounds import syrk_lower_bound
from repro.core.tbs import tbs_report, tbs_syrk
from repro.errors import ConfigurationError
from repro.kernels.flops import syrk_mults
from repro.kernels.reference import syrk_reference
from repro.utils.rng import random_tall_matrix


def run_tbs(n, mc, s=15, sign=1.0, seed=0, **kw):
    a = random_tall_matrix(n, mc, seed=seed)
    m = TwoLevelMachine(s)
    m.add_matrix("A", a)
    m.add_matrix("C", np.zeros((n, n)))
    stats = tbs_syrk(m, "A", "C", range(n), range(mc), sign=sign, **kw)
    m.assert_empty()
    return a, m, stats


class TestNumerics:
    # n spans: full fallback (n < ck), one level, strip present, two levels.
    @pytest.mark.parametrize("n", [1, 4, 8, 20, 25, 27, 33, 47, 60])
    def test_matches_reference(self, n):
        a, m, _ = run_tbs(n, 3)
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a)), rtol=1e-10, atol=1e-12
        )

    def test_negative_sign(self):
        a, m, _ = run_tbs(26, 2, sign=-1.0)
        np.testing.assert_allclose(
            np.tril(m.result("C")), -np.tril(a @ a.T), rtol=1e-10, atol=1e-12
        )

    def test_submatrix_with_column_offset(self):
        # The LBC calling pattern: rows I1, A-columns I0, C the trailing block.
        a = random_tall_matrix(30, 12, seed=2)
        rows = np.arange(5, 30)
        cols = np.arange(2, 7)
        m = TwoLevelMachine(15)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((30, 30)))
        tbs_syrk(m, "A", "C", rows, cols)
        m.assert_empty()
        sub = a[np.ix_(rows, cols)]
        want = np.tril(sub @ sub.T)
        got = np.tril(m.result("C")[np.ix_(rows, rows)])
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)

    def test_larger_memory(self):
        a, m, _ = run_tbs(70, 4, s=28)  # k = 7
        np.testing.assert_allclose(
            np.tril(m.result("C")), np.tril(syrk_reference(a)), rtol=1e-10, atol=1e-12
        )


class TestAccounting:
    @pytest.mark.parametrize("n,mc,s", [(8, 2, 15), (27, 3, 15), (40, 5, 15), (61, 2, 21), (90, 3, 28)])
    def test_measured_equals_model(self, n, mc, s):
        _, _, stats = run_tbs(n, mc, s=s)
        pred = tbs_model(n, mc, s)
        assert stats.loads == pred.loads
        assert stats.stores == pred.stores

    def test_peak_exactly_fills_memory(self):
        # In the triangle-block regime TBS uses k(k-1)/2 + k = S elements.
        _, _, stats = run_tbs(27, 3, s=15)
        assert stats.peak_occupancy == 15

    def test_work_is_full_syrk(self):
        n, mc = 33, 4
        _, _, stats = run_tbs(n, mc)
        assert stats.mults == syrk_mults(n, mc, include_diagonal=True)

    def test_above_lower_bound(self):
        n, mc, s = 54, 6, 15
        _, _, stats = run_tbs(n, mc, s=s)
        assert stats.loads >= syrk_lower_bound(n, mc, s, form="exact")

    def test_c_loaded_exactly_once(self):
        n, mc = 47, 3
        _, _, stats = run_tbs(n, mc)
        assert stats.loads_by_matrix["C"] == n * (n + 1) // 2
        assert stats.stores_by_matrix["C"] == n * (n + 1) // 2

    def test_small_k_override(self):
        _, _, stats = run_tbs(30, 2, s=15, k=4)
        pred = tbs_model(30, 2, 15, k=4)
        assert stats.loads == pred.loads

    def test_k_too_large_for_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tbs(10, 2, s=15, k=6)  # 21 > 15

    def test_memory_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tbs(10, 2, s=1)


class TestOptimalityShape:
    def test_beats_ocs_in_regime(self):
        # Within the triangle-block regime TBS must move less A-data.
        n, mc, s = 60, 8, 15
        _, _, tbs_stats = run_tbs(n, mc, s=s)
        a = random_tall_matrix(n, mc, seed=0)
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        ocs_stats = ooc_syrk(m, "A", "C", range(n), range(mc))
        assert tbs_stats.loads < ocs_stats.loads
        assert tbs_stats.loads_by_matrix["A"] < ocs_stats.loads_by_matrix["A"]

    def test_a_traffic_ratio_approaches_k_minus_1_over_s(self):
        # Finite-S targets: TBS A-traffic ~ N^2 M / (k-1), OCS ~ N^2 M / s.
        # With S = 15: k-1 = 4, s = 3 -> ratio -> 4/3.
        n, mc, s = 600, 16, 15
        rows = range(n)
        m = TwoLevelMachine(s, strict=False, numerics=False)
        m.add_matrix("A", np.zeros((n, mc)))
        m.add_matrix("C", np.zeros((n, n)))
        t = tbs_syrk(m, "A", "C", rows, range(mc))
        m2 = TwoLevelMachine(s, strict=False, numerics=False)
        m2.add_matrix("A", np.zeros((n, mc)))
        m2.add_matrix("C", np.zeros((n, n)))
        o = ooc_syrk(m2, "A", "C", rows, range(mc))
        ratio = o.loads_by_matrix["A"] / t.loads_by_matrix["A"]
        assert 1.25 < ratio < 4 / 3 + 0.02

    def test_fallback_equals_ocs(self):
        # Below the applicability threshold TBS *is* OOC_SYRK.
        n, mc, s = 12, 3, 15
        _, _, stats = run_tbs(n, mc, s=s)
        pred = ooc_syrk_model(n, mc, s)
        assert stats.loads == pred.loads


class TestReport:
    def test_report_structure(self):
        rep = tbs_report(125, 3, 15)
        assert rep.k == 5
        assert rep.depth >= 2
        assert rep.levels[0]["mode"] == "triangle_blocks"
        assert rep.levels[-1]["mode"] == "ooc_syrk"

    def test_fallback_rows_bounded(self):
        rep = tbs_report(200, 4, 15)
        assert 0 <= rep.fallback_rows() <= 200 * rep.depth
