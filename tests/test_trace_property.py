"""Property-based cross-checks: vectorized replays vs the reference walkers.

Two generators feed the same invariant — the array engines must return
bit-identical ``loads`` / ``stores`` / ``distinct`` to the tuple-per-touch
reference paths at every capacity:

* *synthetic streams*: adversarial raw access sequences (arbitrary element
  IDs, write flags, op boundaries) built directly as
  :class:`~repro.trace.compiled.CompiledTrace` arrays, hammering the
  chunked engine's miss handling at tiny capacities;
* *recorded op streams*: genuine kernel schedules at random shapes, which
  additionally exercise the vectorized compilation itself against
  :func:`~repro.sched.schedule.access_sequence_reference`.

Hypothesis drives the synthetic generator when available; a seeded random
sweep covers the same space otherwise, so the suite does not depend on the
package.
"""

import numpy as np
import pytest

from repro import TwoLevelMachine
from repro.analysis.lru_replay import lru_replay_reference
from repro.baselines.ooc_syrk import ooc_syrk
from repro.core.tbs import tbs_syrk
from repro.graph.policies import belady_replay_reference
from repro.sched.schedule import (
    ComputeStep,
    Schedule,
    access_sequence,
    access_sequence_reference,
    record_schedule,
    replay_schedule,
)
from repro.trace.compiled import CompiledTrace, compile_trace
from repro.trace.io import load_schedule, load_trace, save_schedule, save_trace
from repro.trace.replay import belady_replay_trace, lru_replay_trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


def build_trace(ids, writes, op_sizes):
    ids = np.asarray(ids, dtype=np.int64)
    # densify IDs so key tables stay small
    _uniq, ids = np.unique(ids, return_inverse=True)
    ids = ids.astype(np.int64)
    n_elem = int(ids.max()) + 1 if ids.size else 0
    op_starts = np.zeros(len(op_sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(op_sizes, dtype=np.int64), out=op_starts[1:])
    return CompiledTrace(
        matrices=("M",),
        shapes={"M": (1, max(n_elem, 1))},
        elem_ids=ids,
        is_write=np.asarray(writes, dtype=bool),
        op_starts=op_starts,
        op_read_ends=op_starts[1:].copy(),
        key_matrix=np.zeros(n_elem, dtype=np.int32),
        key_flat=np.arange(n_elem, dtype=np.int64),
        ops=None,
    )


def assert_replays_match(trace, capacity):
    fast_lru = lru_replay_trace(trace, capacity)
    sim_lru = lru_replay_trace(trace, capacity, method="simulate")
    ref_lru = lru_replay_reference(trace, capacity)
    assert (fast_lru.loads, fast_lru.stores, fast_lru.distinct) == (
        ref_lru.loads, ref_lru.stores, ref_lru.distinct), ("lru", capacity)
    assert (sim_lru.loads, sim_lru.stores, sim_lru.evict_stores) == (
        ref_lru.loads, ref_lru.stores, ref_lru.evict_stores), ("lru-sim", capacity)
    assert fast_lru.evict_stores == ref_lru.evict_stores, ("lru-split", capacity)
    fast_min = belady_replay_trace(trace, capacity)
    ref_min = belady_replay_reference(trace, capacity)
    assert (fast_min.loads, fast_min.stores, fast_min.distinct) == (
        ref_min.loads, ref_min.stores, ref_min.distinct), ("belady", capacity)
    assert fast_min.loads <= fast_lru.loads


def random_stream(rng):
    n = int(rng.integers(1, 120))
    n_keys = int(rng.integers(1, max(2, n // 2) + 1))
    ids = rng.integers(0, n_keys, size=n)
    writes = rng.random(n) < float(rng.uniform(0.0, 0.8))
    # random op boundaries (including empty ops)
    n_ops = int(rng.integers(1, 6))
    cuts = np.sort(rng.integers(0, n + 1, size=n_ops - 1))
    op_sizes = np.diff(np.concatenate([[0], cuts, [n]]))
    return ids, writes, op_sizes


if HAVE_HYPOTHESIS:

    @st.composite
    def streams(draw):
        n = draw(st.integers(min_value=1, max_value=80))
        n_keys = draw(st.integers(min_value=1, max_value=max(1, n)))
        ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_keys - 1),
                min_size=n, max_size=n,
            )
        )
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        return ids, writes, [n]

    @settings(max_examples=60, deadline=None)
    @given(stream=streams(), capacity=st.integers(min_value=1, max_value=12))
    def test_replays_bit_identical_hypothesis(stream, capacity):
        ids, writes, op_sizes = stream
        assert_replays_match(build_trace(ids, writes, op_sizes), capacity)


def test_replays_bit_identical_seeded_sweep():
    rng = np.random.default_rng(1234)
    for _ in range(80):
        ids, writes, op_sizes = random_stream(rng)
        trace = build_trace(ids, writes, op_sizes)
        for capacity in (1, 2, 3, 8, 64):
            assert_replays_match(trace, capacity)


def test_recorded_streams_random_shapes():
    rng = np.random.default_rng(99)
    for _ in range(6):
        n = int(rng.integers(8, 30))
        mc = int(rng.integers(1, 5))
        s = int(rng.integers(7, 40))
        kernel = tbs_syrk if rng.random() < 0.5 else ooc_syrk
        m = TwoLevelMachine(s, strict=False, numerics=False)
        m.add_matrix("A", np.zeros((n, mc)))
        m.add_matrix("C", np.zeros((n, n)))
        sched = record_schedule(m, lambda: kernel(m, "A", "C", range(n), range(mc)))
        trace = compile_trace(sched)
        assert trace.to_access_sequence() == access_sequence_reference(sched)
        for capacity in (1, s, 4 * s):
            assert_replays_match(trace, capacity)


def assert_schedule_roundtrip(sched, path):
    """Save/load ``sched``; the container must preserve the access stream."""
    save_schedule(sched, path)
    loaded = load_schedule(path)
    assert loaded.shapes == sched.shapes
    assert loaded.counts() == sched.counts()
    assert loaded.io_volume() == sched.io_volume()
    assert access_sequence(loaded) == access_sequence(sched)
    return loaded


def test_zero_op_schedule_roundtrip(tmp_path):
    empty = Schedule(steps=[], shapes={"A": (2, 3)})
    loaded = assert_schedule_roundtrip(empty, tmp_path / "empty.npz")
    assert loaded.steps == []


def test_single_op_schedule_roundtrip(tmp_path):
    m = TwoLevelMachine(8, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((6, 2)))
    m.add_matrix("C", np.zeros((6, 6)))
    full = record_schedule(m, lambda: tbs_syrk(m, "A", "C", range(6), range(2)))
    compute = next(s for s in full.steps if isinstance(s, ComputeStep))
    single = Schedule(steps=[compute], shapes=dict(full.shapes))
    loaded = assert_schedule_roundtrip(single, tmp_path / "one.npz")
    assert loaded.counts() == {"load": 0, "evict": 0, "compute": 1}


def test_relaxed_reduction_schedule_roundtrip(tmp_path):
    from repro.graph.compare import record_case
    from repro.graph.dependency import DependencyGraph
    from repro.graph.rewriter import rewrite_schedule
    from repro.graph.search import search_order

    case = record_case("tbs", 10, 2, 8)
    graph = DependencyGraph.from_trace(case.trace)
    found = search_order(
        graph, 8, "anneal", iters=40, seed=1, relax_reductions=True
    )
    relaxed = rewrite_schedule(
        case.trace, 8, found.order, graph=graph, relax_reductions=True
    ).schedule
    loaded = assert_schedule_roundtrip(relaxed, tmp_path / "relaxed.npz")
    # The relaxed order reassociates FP sums, so it need not match the
    # recorded reference — but the *loaded* copy must replay to results
    # bit-identical to the in-memory schedule it round-tripped from.
    results = []
    for sched in (relaxed, loaded):
        m = case.make_machine()
        replay_schedule(sched, m)
        m.assert_empty()
        results.append(m.result("C"))
    assert np.array_equal(results[0], results[1])


def test_empty_trace_roundtrip(tmp_path):
    trace = build_trace([], [], [0])
    save_trace(trace, tmp_path / "empty.npz")
    loaded = load_trace(tmp_path / "empty.npz")
    assert loaded.n_accesses == 0
    assert lru_replay_trace(loaded, 3).loads == 0
    assert belady_replay_trace(loaded, 3).loads == 0


def test_npz_roundtrip_preserves_replays(tmp_path):
    rng = np.random.default_rng(5)
    for i in range(5):
        ids, writes, op_sizes = random_stream(rng)
        trace = build_trace(ids, writes, op_sizes)
        path = tmp_path / f"t{i}.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        for capacity in (1, 3, 17):
            a = lru_replay_trace(trace, capacity)
            b = lru_replay_trace(loaded, capacity)
            assert (a.loads, a.stores) == (b.loads, b.stores)
            a = belady_replay_trace(trace, capacity)
            b = belady_replay_trace(loaded, capacity)
            assert (a.loads, a.stores) == (b.loads, b.stores)
