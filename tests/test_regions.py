"""Tests for repro.machine.regions: shapes, orientation, merging."""

import numpy as np
import pytest

from repro.machine.regions import (
    Region,
    column_segment_region,
    lower_tile_region,
    merge_regions,
    row_segment_region,
    tile_region,
    triangle_block_region,
)


def unflatten(region: Region, ncols: int) -> set[tuple[int, int]]:
    return {(int(f) // ncols, int(f) % ncols) for f in region.flat}


class TestTileRegion:
    def test_size_and_content(self):
        r = tile_region("C", [1, 3], [0, 2], ncols=5)
        assert r.size == 4
        assert unflatten(r, 5) == {(1, 0), (1, 2), (3, 0), (3, 2)}

    def test_contiguous(self):
        r = tile_region("C", range(2), range(3), ncols=4)
        assert unflatten(r, 4) == {(i, j) for i in range(2) for j in range(3)}

    def test_flat_sorted_unique(self):
        r = tile_region("C", [3, 1], [2, 0], ncols=5)
        assert np.all(np.diff(r.flat) > 0)


class TestTriangleBlockRegion:
    def test_subdiagonal_orientation(self):
        r = triangle_block_region("C", [0, 2, 5], ncols=6)
        pairs = unflatten(r, 6)
        assert pairs == {(2, 0), (5, 0), (5, 2)}
        for i, j in pairs:
            assert i > j, "triangle blocks live strictly below the diagonal"

    @pytest.mark.parametrize("side", [2, 3, 5, 8])
    def test_size_formula(self, side):
        rows = np.arange(0, 3 * side, 3)
        r = triangle_block_region("C", rows, ncols=3 * side)
        assert r.size == side * (side - 1) // 2

    def test_scattered_rows(self):
        rows = [1, 4, 9, 10]
        r = triangle_block_region("C", rows, ncols=12)
        pairs = unflatten(r, 12)
        assert len(pairs) == 6
        assert all(i in rows and j in rows and i > j for i, j in pairs)

    def test_duplicate_rows_rejected(self):
        with pytest.raises(ValueError):
            triangle_block_region("C", [1, 1, 2], ncols=5)


class TestLowerTileRegion:
    def test_includes_diagonal_by_default(self):
        r = lower_tile_region("C", [2, 3, 4], ncols=6)
        pairs = unflatten(r, 6)
        assert (2, 2) in pairs and (4, 2) in pairs and (3, 4) not in pairs
        assert len(pairs) == 6  # 3*(3+1)/2

    def test_strict_excludes_diagonal(self):
        r = lower_tile_region("C", [2, 3, 4], ncols=6, strict=True)
        pairs = unflatten(r, 6)
        assert all(i > j for i, j in pairs)
        assert len(pairs) == 3


class TestSegments:
    def test_column_segment(self):
        r = column_segment_region("A", [0, 3, 7], 2, ncols=4)
        assert unflatten(r, 4) == {(0, 2), (3, 2), (7, 2)}

    def test_row_segment(self):
        r = row_segment_region("L", 5, [0, 1, 4], ncols=6)
        assert unflatten(r, 6) == {(5, 0), (5, 1), (5, 4)}

    def test_empty_segment(self):
        r = column_segment_region("A", [], 0, ncols=4)
        assert r.size == 0


class TestMergeRegions:
    def test_union_not_double_count(self):
        a = tile_region("C", [0, 1], [0, 1], ncols=4)
        b = tile_region("C", [1, 2], [1, 2], ncols=4)
        merged = merge_regions([a, b])
        assert len(merged) == 1
        assert merged[0].size == 7  # 4 + 4 - 1 overlap

    def test_multiple_matrices(self):
        a = tile_region("C", [0], [0], ncols=4)
        b = tile_region("A", [0], [0, 1], ncols=4)
        merged = merge_regions([a, b])
        names = {r.matrix for r in merged}
        assert names == {"A", "C"}

    def test_empty(self):
        assert merge_regions([]) == []


class TestRegionBasics:
    def test_len_and_repr(self):
        r = tile_region("C", [0, 1], [0, 1, 2], ncols=5)
        assert len(r) == 6
        assert "C" in repr(r) and "n=6" in repr(r)
