"""Tests for repro.utils.primes (Lemma 5.5 support machinery)."""

import math

import pytest

from repro.utils.primes import (
    coprime_count_in_primorial_interval,
    coprime_gap_statistics,
    euler_phi,
    is_coprime,
    is_coprime_with_range,
    largest_coprime_below,
    primes_up_to,
    primorial_up_to,
)


class TestPrimesUpTo:
    def test_small(self):
        assert primes_up_to(1) == []
        assert primes_up_to(2) == [2]
        assert primes_up_to(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_count_to_1000(self):
        assert len(primes_up_to(1000)) == 168  # pi(1000)

    def test_all_prime(self):
        for p in primes_up_to(500):
            assert all(p % d for d in range(2, int(math.isqrt(p)) + 1)), p


class TestPrimorial:
    @pytest.mark.parametrize(
        "n,q", [(1, 1), (2, 2), (3, 6), (4, 6), (5, 30), (6, 30), (7, 210), (10, 210), (13, 30030)]
    )
    def test_values(self, n, q):
        assert primorial_up_to(n) == q

    def test_algorithm4_constant(self):
        # For triangle side k, Algorithm 4 uses q = primorial(k-2).
        assert primorial_up_to(5 - 2) == 6  # k=5 (S=15): q = 2*3


class TestCoprime:
    def test_examples(self):
        assert is_coprime(35, 6)
        assert not is_coprime(9, 6)
        assert is_coprime(1, 100)

    def test_range_check_matches_primorial(self):
        # c coprime with [2, k-2] <=> gcd(c, primorial(k-2)) == 1
        for k in (4, 5, 6, 7, 9):
            q = primorial_up_to(k - 2)
            for c in range(1, 60):
                assert is_coprime_with_range(c, 2, k - 2) == is_coprime(c, q)

    def test_empty_range_vacuous(self):
        assert is_coprime_with_range(12, 2, 1)


class TestLargestCoprimeBelow:
    def test_examples(self):
        assert largest_coprime_below(30, 6) == 29
        assert largest_coprime_below(24, 6) == 23
        assert largest_coprime_below(25, 6) == 25
        assert largest_coprime_below(0, 6) == 0

    @pytest.mark.parametrize("q", [2, 6, 30, 210])
    @pytest.mark.parametrize("bound", [1, 7, 29, 100, 211])
    def test_is_maximal_and_coprime(self, q, bound):
        c = largest_coprime_below(bound, q)
        assert 1 <= c <= bound
        assert math.gcd(c, q) == 1
        for better in range(c + 1, bound + 1):
            assert math.gcd(better, q) != 1

    def test_existence_guarantee(self):
        # a*q + 1 is always coprime with q, so a value exists for bound >= 1.
        for q in (6, 30, 210, 2310):
            assert largest_coprime_below(1, q) == 1


class TestIntervalCounts:
    @pytest.mark.parametrize("limit,expected", [(2, 1), (3, 2), (5, 8), (7, 48)])
    def test_product_formula(self, limit, expected):
        assert coprime_count_in_primorial_interval(limit) == expected

    @pytest.mark.parametrize("limit", [2, 3, 5, 7])
    def test_matches_euler_phi_and_brute_force(self, limit):
        q = primorial_up_to(limit)
        expected = coprime_count_in_primorial_interval(limit)
        assert expected == euler_phi(q)
        # Exhaustive check on three consecutive primorial intervals.
        for a in (1, 2, 3):
            lo, hi = (a - 1) * q, a * q - 1
            count = sum(1 for x in range(lo, hi + 1) if math.gcd(x, q) == 1)
            assert count == expected


class TestEulerPhi:
    @pytest.mark.parametrize("n,phi", [(1, 1), (2, 1), (6, 2), (9, 6), (30, 8), (97, 96), (100, 40)])
    def test_values(self, n, phi):
        assert euler_phi(n) == phi

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            euler_phi(0)


class TestGapStatistics:
    def test_gaps_bounded_by_q(self):
        stats = coprime_gap_statistics(6, range(10, 200))
        assert stats["max"] <= 6
        assert stats["mean"] <= stats["max"]
        assert stats["count"] == 190

    def test_empty(self):
        stats = coprime_gap_statistics(6, [])
        assert stats["count"] == 0
