"""Tests for the element-granular red-blue pebble machines."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError, ResidencyError
from repro.machine.pebble import ExplicitPebbleMachine, LRUPebbleMachine


def tiny_lru(cap=4):
    pm = LRUPebbleMachine(cap)
    pm.add_matrix("A", np.array([[1.0, 2.0], [3.0, 4.0]]))
    pm.add_matrix("C", np.zeros((2, 2)))
    return pm


class TestLRU:
    def test_touch_loads_once_within_capacity(self):
        pm = tiny_lru(4)
        pm.touch([("A", 0, 0), ("A", 0, 1)])
        pm.touch([("A", 0, 0)])  # already resident: no extra load
        assert pm.loads == 2
        assert pm.occupancy == 2

    def test_lru_eviction_order(self):
        pm = tiny_lru(2)
        pm.touch([("A", 0, 0)])
        pm.touch([("A", 0, 1)])
        pm.touch([("A", 0, 0)])        # refresh 0,0 -> LRU victim is 0,1
        pm.touch([("A", 1, 0)])        # evicts ("A", 0, 1)
        assert ("A", 0, 1) not in pm.resident
        assert ("A", 0, 0) in pm.resident

    def test_dirty_writeback_counted(self):
        pm = tiny_lru(1)
        pm.touch([("C", 0, 0)], write=True)
        pm.touch([("C", 0, 1)], write=True)  # evicts dirty (0,0): 1 store
        assert pm.stores == 1
        pm.flush()
        assert pm.stores == 2

    def test_muladd_computes(self):
        pm = tiny_lru(4)
        pm.op_muladd(("C", 1, 0), ("A", 1, 0), ("A", 0, 0))
        pm.flush()
        assert pm.result("C")[1, 0] == pytest.approx(3.0 * 1.0)
        assert pm.mults == 1 and pm.flops == 2

    def test_div_and_sqrt(self):
        pm = tiny_lru(4)
        pm.op_sqrt(("A", 1, 1))
        pm.op_div(("A", 1, 0), ("A", 1, 1))
        pm.flush()
        assert pm.result("A")[1, 1] == pytest.approx(2.0)
        assert pm.result("A")[1, 0] == pytest.approx(1.5)

    def test_capacity_one_thrashes(self):
        pm = tiny_lru(3)  # exactly the 3 operands of one muladd
        pm.op_muladd(("C", 1, 0), ("A", 1, 0), ("A", 0, 0))
        pm.op_muladd(("C", 1, 0), ("A", 1, 1), ("A", 0, 1))
        # second op: C(1,0) was evicted? cap=3 and op touches 3 elems
        assert pm.loads >= 5

    def test_peak_occupancy(self):
        pm = tiny_lru(4)
        pm.touch([("A", 0, 0), ("A", 0, 1), ("A", 1, 0)])
        assert pm.peak_occupancy == 3

    def test_q_alias(self):
        pm = tiny_lru()
        pm.touch([("A", 0, 0)])
        assert pm.q == pm.loads == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUPebbleMachine(0)

    def test_duplicate_matrix_rejected(self):
        pm = tiny_lru()
        with pytest.raises(ConfigurationError):
            pm.add_matrix("A", np.zeros((1, 1)))


class TestExplicit:
    def make(self, cap=3):
        pm = ExplicitPebbleMachine(cap)
        pm.add_matrix("A", np.array([[4.0, 2.0], [3.0, 4.0]]))
        return pm

    def test_load_compute_evict(self):
        pm = self.make()
        pm.load(("A", 0, 0))
        pm.op_sqrt(("A", 0, 0))
        pm.evict(("A", 0, 0))  # dirty: auto writeback
        assert pm.result("A")[0, 0] == pytest.approx(2.0)
        assert pm.loads == 1 and pm.stores == 1

    def test_capacity_error(self):
        pm = self.make(cap=1)
        pm.load(("A", 0, 0))
        with pytest.raises(CapacityError):
            pm.load(("A", 0, 1))

    def test_redundant_load_rejected(self):
        pm = self.make()
        pm.load(("A", 0, 0))
        with pytest.raises(ResidencyError):
            pm.load(("A", 0, 0))

    def test_nonresident_compute_rejected(self):
        pm = self.make()
        with pytest.raises(ResidencyError):
            pm.op_sqrt(("A", 0, 0))

    def test_nonresident_evict_rejected(self):
        pm = self.make()
        with pytest.raises(ResidencyError):
            pm.evict(("A", 0, 0))

    def test_clean_evict_no_store(self):
        pm = self.make()
        pm.load(("A", 0, 0))
        pm.evict(("A", 0, 0))
        assert pm.stores == 0

    def test_explicit_writeback_override(self):
        pm = self.make()
        pm.load(("A", 0, 0))
        pm.evict(("A", 0, 0), writeback=True)
        assert pm.stores == 1

    def test_muladd_and_div(self):
        pm = self.make()
        for e in [("A", 1, 0), ("A", 0, 0), ("A", 0, 1)]:
            pm.load(e)
        pm.op_muladd(("A", 1, 0), ("A", 0, 0), ("A", 0, 1), sign=-1.0)
        assert pm.arrays["A"][1, 0] == pytest.approx(3.0 - 8.0)
        pm.op_div(("A", 1, 0), ("A", 0, 0))
        assert pm.arrays["A"][1, 0] == pytest.approx(-5.0 / 4.0)
