"""Tests for the Section 4 proof machinery: balanced solutions, P'/P'', Thm 4.1."""

import math

import pytest

from repro.core.balanced import (
    BalancedSolution,
    balanced_solution,
    balanced_solution_cost,
    check_rebalancing_dominates,
    enumerate_balanced_optimum,
    max_ops_bound,
    rebalance,
    rebalancing_slack,
    solve_p_doubleprime,
    syrk_oi_ceiling_from_bound,
)
from repro.core.triangle import sigma
from repro.errors import ConfigurationError
from repro.kernels.opsets import data_accessed


class TestBalancedSolution:
    def test_shape_identities(self):
        b = balanced_solution(10, 4)
        assert b.full_iterations == 2
        assert b.remainder == 2
        assert b.size() == 10

    def test_data_accessed_formula(self):
        b = balanced_solution(10, 4)
        assert b.data_accessed() == 4 + 2 * sigma(4) + sigma(2)

    def test_triples_materialization_consistent(self):
        for x, m in [(1, 1), (7, 3), (10, 4), (12, 6), (9, 9)]:
            b = balanced_solution(x, m)
            triples = b.triples()
            assert len(triples) == x
            assert data_accessed(triples) == b.data_accessed()

    def test_no_full_iterations(self):
        b = balanced_solution(2, 5)  # x < m: only the remainder iteration
        assert b.full_iterations == 0
        assert b.data_accessed() == 2 + sigma(2)
        assert data_accessed(b.triples()) == b.data_accessed()

    def test_cost_helper(self):
        assert balanced_solution_cost(10, 4) == balanced_solution(10, 4).data_accessed()

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            BalancedSolution(3, 0)
        with pytest.raises(ConfigurationError):
            BalancedSolution(-1, 2)


class TestRebalance:
    def test_assigns_max_restriction(self):
        b = {(1, 0, 0), (2, 0, 0), (2, 1, 0), (1, 0, 1)}
        bal = rebalance(b)
        assert bal.x == 4
        assert bal.m == 3  # iteration 0 has 3 ops

    def test_continuous_dominance_on_examples(self):
        examples = [
            {(1, 0, 0), (2, 0, 0), (2, 1, 0), (1, 0, 1)},
            {(5, 2, 0), (7, 2, 0), (7, 5, 1), (3, 1, 2), (9, 0, 2)},
            {(i, j, k) for i in range(4) for j in range(i) for k in range(3)},
        ]
        for b in examples:
            assert check_rebalancing_dominates(b)

    def test_integer_slack_counterexample_documented(self):
        # Restriction sizes (4,3,3): integer rebalancing exceeds the original.
        t4 = [(1, 0), (2, 0), (2, 1), (3, 0)]
        t3 = [(1, 0), (2, 0), (2, 1)]
        b = {(i, j, 0) for i, j in t4} | {(i, j, 1) for i, j in t3} | {(i, j, 2) for i, j in t3}
        assert rebalancing_slack(b) == 1
        assert check_rebalancing_dominates(b)  # continuous form still holds

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            rebalance([])


class TestPDoublePrime:
    def test_kkt_identities(self):
        for x in [1.0, 10.0, 100.0, 3000.0]:
            sol = solve_p_doubleprime(x)
            # K* I* = (I*-1)(I*-1/2)  (from the KKT analysis)
            assert sol.k_star * sol.i_star == pytest.approx((sol.i_star - 1) * (sol.i_star - 0.5))
            # constraint active at optimum
            assert sol.constraint_slack() == pytest.approx(0.0, abs=1e-9)
            # objective value identity
            assert sol.value == pytest.approx(sol.k_star * sol.i_star * (sol.i_star - 1) / 2)

    def test_closed_form_value(self):
        x = 48.0
        r = math.sqrt(1 + 6 * x)
        expected = (r - 1) ** 2 * (2 * r + 1) / 108
        assert solve_p_doubleprime(x).value == pytest.approx(expected)

    def test_bad_x(self):
        with pytest.raises(ConfigurationError):
            solve_p_doubleprime(-1.0)


class TestTheorem41:
    @pytest.mark.parametrize("x", [1, 3, 10, 30, 100, 450, 2000])
    def test_chain_enumerate_le_continuous_le_bound(self, x):
        enum = enumerate_balanced_optimum(x)
        cont = solve_p_doubleprime(float(x))
        bound = max_ops_bound(float(x))
        assert enum.value <= cont.value + 1e-9
        assert cont.value <= bound + 1e-9

    @pytest.mark.parametrize("x", [10, 100, 1000])
    def test_enumerated_solution_feasible(self, x):
        opt = enumerate_balanced_optimum(x)
        assert opt.i * (opt.i - 1) // 2 + opt.k * opt.i + opt.j <= x
        assert 0 <= opt.j <= opt.i
        assert opt.value == opt.k * opt.i * (opt.i - 1) // 2 + opt.j * (opt.j - 1) // 2

    def test_bound_tightness_improves_with_x(self):
        # The integer optimum approaches the continuous bound as X grows.
        small = enumerate_balanced_optimum(20).value / max_ops_bound(20.0)
        large = enumerate_balanced_optimum(5000).value / max_ops_bound(5000.0)
        assert large > small
        assert large > 0.9

    def test_x3s_yields_oi_ceiling(self):
        # Lemma 3.1 with X = 3S: rho <= bound(3S) / (2S) = sqrt(S/2).
        for s in (8, 50, 512):
            rho = max_ops_bound(3.0 * s) / (2.0 * s)
            assert rho == pytest.approx(math.sqrt(s / 2.0))
            assert syrk_oi_ceiling_from_bound(s) == pytest.approx(rho)

    def test_balanced_solutions_respect_bound(self):
        # Any balanced solution's size obeys Thm 4.1 against its own cost.
        for x in range(1, 200, 7):
            for m in range(1, x + 1, 5):
                b = balanced_solution(x, m)
                assert b.size() <= max_ops_bound(float(b.data_accessed())) + 1e-9

    def test_bad_x(self):
        with pytest.raises(ConfigurationError):
            max_ops_bound(-1.0)
        with pytest.raises(ConfigurationError):
            enumerate_balanced_optimum(-3)
