"""Tests for the order-search engine (repro.graph.search + objective)."""

import pytest

from repro.errors import ConfigurationError, ScheduleError
from repro.graph import (
    DependencyGraph,
    IncrementalObjective,
    LocalityScore,
    STRATEGIES,
    Worklist,
    anneal_search,
    argbest,
    beam_search,
    dependency_graph,
    element_op_lists,
    list_schedule,
    lookahead_search,
    order_cost,
    record_case,
    rewrite_schedule,
    search_order,
)
from repro.trace.replay import LruCursor, lru_replay_trace

N, MC, S = 26, 3, 15


@pytest.fixture(scope="module")
def tbs_case():
    return record_case("tbs", N, MC, S)


@pytest.fixture(scope="module")
def tbs_graph(tbs_case):
    return dependency_graph(tbs_case.trace)


@pytest.fixture(scope="module")
def chol_case():
    return record_case("chol", 16, 0, S)


@pytest.fixture(scope="module")
def chol_graph(chol_case):
    return dependency_graph(chol_case.trace)


class TestPrimitives:
    def test_argbest_all_zero_scores_picks_lowest_index(self):
        # The seed locality scheduler's tie-break leaned on a
        # ``best_score = -1`` sentinel; the explicit guard must pick the
        # lowest index when every candidate scores 0 (and when scores go
        # negative, where the old sentinel would have mis-ranked).
        assert argbest([5, 3, 9], lambda v: 0) == 3
        assert argbest([5, 3, 9], lambda v: -2) == 3
        assert argbest([], lambda v: 0) is None

    def test_locality_all_cold_emits_index_order(self, tbs_graph):
        # With window 0, nothing ever counts as recently touched: every
        # scoring round is all-zero and the schedule must degrade to the
        # original order rather than crash or mis-rank.
        result = list_schedule(tbs_graph, "locality", locality_window=0)
        assert result.order == list(range(len(tbs_graph)))

    def test_worklist_emit_and_clone(self, chol_graph):
        wl = Worklist(chol_graph)
        snapshot = wl.clone()
        first = min(wl.ready)
        wl.emit(first)
        assert first not in wl.ready
        assert first in snapshot.ready          # clone unaffected
        with pytest.raises(ScheduleError):
            wl.emit(first)                      # not ready twice

    def test_locality_score_clone_is_isolated(self, tbs_graph):
        scorer = LocalityScore(tbs_graph, window=4)
        scorer.emit(0)
        clone = scorer.clone()
        clone.emit(1)
        assert scorer.step == 1 and clone.step == 2


class TestObjective:
    def test_cursor_matches_batch_lru(self, tbs_case, tbs_graph):
        trace = tbs_case.trace
        cursor = LruCursor(trace, S)
        cursor.apply(range(trace.n_ops))
        assert cursor.loads == lru_replay_trace(trace, S).loads

    def test_cursor_snapshot_restore_roundtrip(self, tbs_case):
        trace = tbs_case.trace
        cursor = LruCursor(trace, S)
        cursor.apply(range(10))
        snap = cursor.snapshot()
        mid = cursor.loads
        cursor.apply(range(10, trace.n_ops))
        total = cursor.loads
        cursor.restore(snap)
        assert cursor.loads == mid
        cursor.apply(range(10, trace.n_ops))
        assert cursor.loads == total            # same suffix, same cost

    def test_peek_is_a_lower_bound_on_apply(self, tbs_case):
        trace = tbs_case.trace
        cursor = LruCursor(trace, S)
        exact = 0
        for i in range(min(40, trace.n_ops)):
            peeked = cursor.peek_op(i)
            applied = cursor.apply_op(i)
            assert applied >= peeked            # peek is optimistic
            exact += applied == peeked
        assert exact > 0                        # and usually exact

    def test_peek_underestimates_on_self_evicting_op(self):
        # The documented peek caveat: with capacity 2 and cache [a, b]
        # (a oldest), an op accessing [c, a] peeks 1 miss (only c), but
        # applying it evicts a to admit c and must re-load a — 2 loads.
        import numpy as np

        from repro.trace.compiled import CompiledTrace

        ids = np.array([0, 1, 2, 0], dtype=np.int64)  # ops: [a,b] then [c,a]
        starts = np.array([0, 2, 4], dtype=np.int64)
        trace = CompiledTrace(
            matrices=("M",), shapes={"M": (1, 3)},
            elem_ids=ids, is_write=np.zeros(4, dtype=bool),
            op_starts=starts, op_read_ends=starts[1:].copy(),
            key_matrix=np.zeros(3, dtype=np.int32),
            key_flat=np.arange(3, dtype=np.int64), ops=None,
        )
        cursor = LruCursor(trace, 2)
        cursor.apply_op(0)                      # cache: [a, b]
        assert cursor.peek_op(1) == 1
        assert cursor.apply_op(1) == 2          # c loads, a re-loads
        # the exact count still matches the batch engine
        assert cursor.loads == lru_replay_trace(trace, 2).loads

    def test_objective_candidates_report_exact_misses(self, tbs_graph):
        obj = IncrementalObjective(tbs_graph, S)
        emitted = []
        while not obj.done:
            cands = obj.candidates(4)
            for miss, v in cands:
                assert obj.peek(v) == miss
            obj.emit(cands[0][1])
            emitted.append(cands[0][1])
        # the accumulated objective is the exact LRU Q of the emitted order
        assert obj.cost == order_cost(tbs_graph.trace, emitted, S)

    def test_element_op_lists_cover_all_ops(self, tbs_case):
        trace = tbs_case.trace
        lists = element_op_lists(trace)
        assert len(lists) == trace.n_elements
        covered = set()
        for ops in lists:
            covered.update(ops)
        assert covered == set(range(trace.n_ops))

    def test_order_cost_policies(self, tbs_case):
        trace = tbs_case.trace
        identity = list(range(trace.n_ops))
        lru = order_cost(trace, identity, S)
        opt = order_cost(trace, identity, S, policy="belady")
        assert opt <= lru
        assert lru == lru_replay_trace(trace, S).loads
        with pytest.raises(ConfigurationError):
            order_cost(trace, identity, S, policy="fifo")


class TestStrategies:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("relax", [False, True])
    def test_orders_are_legal(self, tbs_graph, chol_graph, strategy, relax):
        for graph in (tbs_graph, chol_graph):
            result = search_order(
                graph, S, strategy, relax_reductions=relax,
                **({"iters": 60} if strategy == "anneal" else {}),
            )
            assert sorted(result.order) == list(range(len(graph)))
            assert graph.is_valid_order(result.order, relax_reductions=relax)
            assert result.cost == order_cost(graph.trace, result.order, S)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strict_orders_replay_bit_identically(self, tbs_case, tbs_graph, strategy):
        result = search_order(
            tbs_graph, S, strategy, relax_reductions=False,
            **({"iters": 60} if strategy == "anneal" else {}),
        )
        rewrite = rewrite_schedule(tbs_case.trace, S, result.order, graph=tbs_graph)
        assert tbs_case.check_exact(rewrite.schedule)

    def test_beam_deterministic_and_wider_is_no_worse(self, tbs_graph):
        a = beam_search(tbs_graph, S, width=2, relax_reductions=True)
        b = beam_search(tbs_graph, S, width=2, relax_reductions=True)
        assert a.order == b.order
        wide = beam_search(tbs_graph, S, width=6, relax_reductions=True)
        assert wide.cost <= a.cost + 50  # wider beams explore a superset-ish

    def test_lookahead_depth_zero_is_pure_greedy(self, tbs_graph):
        greedy = lookahead_search(tbs_graph, S, depth=0)
        assert greedy.evaluations == 0
        rolled = lookahead_search(tbs_graph, S, depth=3)
        assert rolled.evaluations > 0

    def test_anneal_never_worse_than_start(self, tbs_graph):
        start = list_schedule(tbs_graph, "original", relax_reductions=True).order
        start_cost = order_cost(tbs_graph.trace, start, S)
        result = anneal_search(
            tbs_graph, S, iters=150, seed=3, relax_reductions=True, start=start
        )
        assert result.cost <= start_cost        # best-seen is returned

    def test_anneal_seed_determinism(self, tbs_graph):
        a = anneal_search(tbs_graph, S, iters=80, seed=11)
        b = anneal_search(tbs_graph, S, iters=80, seed=11)
        assert a.order == b.order and a.cost == b.cost

    def test_anneal_accepts_start_heuristic_name(self, chol_graph):
        result = anneal_search(chol_graph, S, iters=40, start="depth-first",
                               relax_reductions=False)
        assert chol_graph.is_valid_order(result.order)
        with pytest.raises(ConfigurationError):
            anneal_search(chol_graph, S, iters=0, start="nope")

    def test_result_ops_follow_order(self, tbs_graph):
        result = search_order(tbs_graph, S, "beam")
        ops = result.ops()
        assert ops == [tbs_graph.nodes[i].op for i in result.order]

    def test_unknown_strategy(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            search_order(tbs_graph, S, "exhaustive")

    def test_bad_parameters(self, tbs_graph):
        with pytest.raises(ConfigurationError):
            beam_search(tbs_graph, S, width=0)
        with pytest.raises(ConfigurationError):
            lookahead_search(tbs_graph, S, breadth=0)
        with pytest.raises(ConfigurationError):
            anneal_search(tbs_graph, S, iters=-1)

    def test_graph_without_trace_is_rejected(self, tbs_graph):
        bare = DependencyGraph(tbs_graph.nodes)  # no trace attached
        with pytest.raises(ConfigurationError):
            search_order(bare, S, "beam")


class TestCompareIntegration:
    def test_search_rows_in_comparison(self, tbs_case):
        from repro.graph import compare_case

        comp = compare_case(
            tbs_case, ("original",), search_strategies=("beam",),
            relax_reductions=True,
            search_kwargs={"beam": {"width": 2}},
        )
        row = comp.row("search:beam")
        assert row.valid is True and row.exact is None  # relaxed: no bit check
        assert "search:beam" in comp.rewrites
        strict = compare_case(
            tbs_case, (), search_strategies=("anneal",),
            search_kwargs={"anneal": {"iters": 30}},
        )
        assert strict.row("search:anneal").exact is True
