"""Property-based checks for the serving layer (:mod:`repro.serve`).

Four invariants, driven by hypothesis when available and by seeded random
sweeps otherwise (mirroring ``test_trace_property.py``):

* **round trip** — any searched schedule filed in a
  :class:`~repro.serve.store.ScheduleStore` loads back and replays to
  bit-identical numerics, across every kernel the harness records;
* **cache law** — a :class:`~repro.serve.cache.ScheduleCache` driven by
  any request log never exceeds its bound and counts exactly the misses
  the array replay engines count on the log-as-trace (LRU ↔
  ``lru_replay_trace``, oracle ↔ ``belady_replay_trace``);
* **single flight** — any multiset of concurrent requests runs exactly
  one search per distinct key; every duplicate coalesces and every
  requester gets the identical object;
* **corruption tolerance** — any strict-prefix truncation or byte-level
  mangling of a stored object reads as a miss (``None``), never an
  exception.
"""

import asyncio
import functools
import os
import tempfile
import threading
import time

import numpy as np
import pytest

from repro.graph.compare import record_case
from repro.serve import (
    ScheduleCache,
    ScheduleKey,
    ScheduleService,
    ScheduleStore,
    log_to_trace,
)
from repro.trace.replay import belady_replay_trace, lru_replay_trace

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False


@functools.lru_cache(maxsize=None)
def cached_case(kernel, n, m, s):
    return record_case(kernel, n, m, s)


def assert_store_roundtrip(kernel, n, m, s):
    case = cached_case(kernel, n, m, s)
    key = ScheduleKey(kernel, n, m, s)
    with tempfile.TemporaryDirectory() as root:
        store = ScheduleStore(root)
        store.put(key, case.schedule)
        loaded = store.get(key)
    assert loaded is not None
    assert case.check_exact(loaded)


def assert_cache_matches_engines(log, capacity):
    trace = log_to_trace(log)
    lru = ScheduleCache.replay(log, capacity, "lru")
    oracle = ScheduleCache.replay(log, capacity, "oracle")
    assert len(lru) <= capacity and len(oracle) <= capacity
    assert lru.log == list(log) and oracle.log == list(log)
    assert lru.misses == lru_replay_trace(trace, capacity).loads
    assert oracle.misses == belady_replay_trace(trace, capacity).loads
    assert oracle.hits >= lru.hits


class CountingSearcher:
    """Slow fake searcher: counts calls, forces requests to overlap."""

    def __init__(self, schedule, delay=0.03):
        self.schedule = schedule
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, key):
        with self._lock:
            self.calls += 1
        time.sleep(self.delay)
        return self.schedule


def assert_single_flight(dup_counts):
    """``dup_counts[i]`` concurrent requests for key ``i`` → one search each."""
    schedule = cached_case("tbs", 6, 2, 8).schedule
    keys = [ScheduleKey("tbs", 6 + i, 2, 8) for i in range(len(dup_counts))]
    stream = [k for k, c in zip(keys, dup_counts) for _ in range(c)]
    searcher = CountingSearcher(schedule)
    with tempfile.TemporaryDirectory() as root:
        service = ScheduleService(ScheduleStore(root), ScheduleCache(8),
                                  searcher=searcher)

        async def herd():
            return await asyncio.gather(
                *[service.get_schedule(k) for k in stream]
            )

        results = asyncio.run(herd())
    assert searcher.calls == len(keys)
    assert service.searches == len(keys)
    assert service.coalesced == len(stream) - len(keys)
    by_key = {k.digest(): r for k, r in zip(stream, results)}
    for k, r in zip(stream, results):
        assert r is by_key[k.digest()]  # every duplicate got the same object


def assert_corruption_tolerated(mangle):
    """``mangle(bytes) -> bytes`` rewrites the object; get must not raise."""
    case = cached_case("tbs", 6, 2, 8)
    key = ScheduleKey("tbs", 6, 2, 8)
    with tempfile.TemporaryDirectory() as root:
        store = ScheduleStore(root)
        store.put(key, case.schedule)
        path = store.object_path(key)
        with open(path, "rb") as fh:
            raw = fh.read()
        with open(path, "wb") as fh:
            fh.write(mangle(raw))
        got = store.get(key)  # must never raise
        assert got is None or case.check_exact(got)
        store.put(key, case.schedule)  # a re-put always repairs the entry
        assert store.get(key) is not None


KERNELS = ("tbs", "ocs", "syr2k", "chol")

if HAVE_HYPOTHESIS:

    @settings(max_examples=8, deadline=None)
    @given(
        kernel=st.sampled_from(KERNELS),
        n=st.integers(min_value=6, max_value=12),
        m=st.integers(min_value=2, max_value=3),
        s=st.integers(min_value=8, max_value=16),
    )
    def test_store_roundtrip_hypothesis(kernel, n, m, s):
        assert_store_roundtrip(kernel, n, m, s)

    @settings(max_examples=40, deadline=None)
    @given(
        log=st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                     max_size=120),
        capacity=st.integers(min_value=1, max_value=12),
    )
    def test_cache_matches_engines_hypothesis(log, capacity):
        assert_cache_matches_engines([f"k{i}" for i in log], capacity)

    @settings(max_examples=6, deadline=None)
    @given(dup_counts=st.lists(st.integers(min_value=1, max_value=6),
                               min_size=1, max_size=4))
    def test_single_flight_hypothesis(dup_counts):
        assert_single_flight(dup_counts)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_corruption_tolerated_hypothesis(data):
        mode = data.draw(st.sampled_from(["truncate", "flip"]))
        if mode == "truncate":
            frac = data.draw(st.floats(min_value=0.0, max_value=0.999))
            mangle = lambda raw: raw[: int(len(raw) * frac)]
        else:
            seed = data.draw(st.integers(min_value=0, max_value=2**31))
            def mangle(raw, seed=seed):
                rng = np.random.default_rng(seed)
                buf = bytearray(raw)
                for pos in rng.integers(0, len(buf), size=8):
                    buf[pos] ^= 0xFF
                return bytes(buf)
        assert_corruption_tolerated(mangle)


def test_store_roundtrip_seeded_sweep():
    rng = np.random.default_rng(2022)
    for kernel in KERNELS:
        n = int(rng.integers(6, 13))
        assert_store_roundtrip(
            kernel, n, int(rng.integers(2, 4)), int(rng.integers(8, 17))
        )


def test_cache_matches_engines_seeded_sweep():
    rng = np.random.default_rng(7_11)
    for _ in range(30):
        n = int(rng.integers(1, 150))
        universe = int(rng.integers(1, 14))
        log = [f"k{i}" for i in rng.integers(0, universe, size=n)]
        assert_cache_matches_engines(log, int(rng.integers(1, 13)))


def test_single_flight_seeded_sweep():
    rng = np.random.default_rng(3)
    for _ in range(4):
        counts = [int(c) for c in rng.integers(1, 7, size=rng.integers(1, 5))]
        assert_single_flight(counts)


def test_corruption_tolerated_seeded_sweep():
    rng = np.random.default_rng(13)
    for _ in range(6):
        frac = float(rng.uniform(0.0, 0.999))
        assert_corruption_tolerated(lambda raw: raw[: int(len(raw) * frac)])
    for _ in range(6):
        seed = int(rng.integers(0, 2**31))

        def mangle(raw, seed=seed):
            r = np.random.default_rng(seed)
            buf = bytearray(raw)
            for pos in r.integers(0, len(buf), size=8):
                buf[pos] ^= 0xFF
            return bytes(buf)

        assert_corruption_tolerated(mangle)
