"""The docs can't rot: every fenced example in docs/*.md must execute.

Each markdown file is fed to :class:`doctest.DocTestParser` (which picks
up the ``>>>`` examples regardless of fencing) and run in a fresh
namespace — exactly what CI's docs job executes.  A second check pins the
coverage promise of docs/ARCHITECTURE.md: every ``src/repro`` subpackage
is referenced from at least one document.
"""

import doctest
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"
DOC_FILES = sorted(DOCS.glob("*.md"))


def test_docs_exist():
    names = {p.name for p in DOC_FILES}
    assert {"ARCHITECTURE.md", "SCHEDULING.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_examples_execute(path):
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        path.read_text(encoding="utf-8"), {}, path.name, str(path), 0
    )
    assert test.examples, f"{path.name} has no executable examples"
    runner = doctest.DocTestRunner(optionflags=doctest.NORMALIZE_WHITESPACE)
    runner.run(test)
    assert runner.failures == 0, (
        f"{runner.failures} of {runner.tries} doc examples failed in {path.name}"
    )


def test_every_subpackage_is_documented():
    corpus = "".join(p.read_text(encoding="utf-8") for p in DOC_FILES)
    packages = sorted(
        child.name
        for child in (ROOT / "src" / "repro").iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    )
    assert packages, "no subpackages found — wrong repository layout?"
    missing = [pkg for pkg in packages if f"repro.{pkg}" not in corpus]
    assert not missing, f"docs never mention: {', '.join(missing)}"
