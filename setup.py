"""Legacy setup shim for offline editable installs (see pyproject.toml note)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'I/O-Optimal Algorithms for Symmetric Linear Algebra "
        "Kernels' (SPAA 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
