"""In-process bounded cache of hot schedules — dogfooding our own policies.

This repository *ships* cache-replacement engines (the array LRU/Belady
replays of :mod:`repro.trace.replay`); the serving layer's memory tier
runs on the same semantics.  :class:`ScheduleCache` is a bounded
digest → schedule map with pluggable eviction:

``lru``
    evict the least-recently-accessed entry — exactly the recency rule
    of :func:`repro.trace.replay.lru_replay_trace`, pinned by the
    regression suite: a cache driven by any access log produces the
    same miss count at every capacity as the array LRU engine replaying
    that log as a one-element-per-op trace (:func:`log_to_trace`).
``oracle``
    Belady/MIN with the future handed over: constructed from a recorded
    request log, the cache replays *that* log and evicts the resident
    entry whose next use lies furthest in the future (never reused
    first).  Not a serving policy — an offline yardstick: replaying the
    same log under both modes measures how much hit rate LRU leaves on
    the table (benchmark E19), the paper's LRU-vs-OPT comparison turned
    on ourselves.

Every access is appended to :attr:`ScheduleCache.log`, so any live
cache's history can be re-fed to the trace engines or to an oracle
replay after the fact.  The bound is a hard invariant: ``len(cache) <=
capacity`` always, checked by the property suite.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..obs.probe import get_probe
from ..trace.compiled import CompiledTrace

#: Eviction policies :class:`ScheduleCache` accepts.
EVICTION_POLICIES = ("lru", "oracle")


def log_to_trace(log: Sequence[str]) -> CompiledTrace:
    """An access log as a one-read-per-op compiled trace.

    Each log entry (a digest string) becomes one op touching one element,
    read-only — the shape under which the array replay engines
    (:func:`~repro.trace.replay.lru_replay_trace`,
    :func:`~repro.trace.replay.belady_replay_trace`) count exactly the
    misses a digest-keyed cache of the same capacity takes on the same
    log.  The bridge the regression tests pin cache semantics across.
    """
    uniq: dict[str, int] = {}
    ids = np.fromiter(
        (uniq.setdefault(d, len(uniq)) for d in log), dtype=np.int64, count=len(log)
    )
    n, n_elem = len(log), max(len(uniq), 1)
    starts = np.arange(n + 1, dtype=np.int64)
    return CompiledTrace(
        matrices=("K",),
        shapes={"K": (1, n_elem)},
        elem_ids=ids,
        is_write=np.zeros(n, dtype=bool),
        op_starts=starts,
        op_read_ends=starts[1:].copy(),
        key_matrix=np.zeros(n_elem, dtype=np.int32),
        key_flat=np.arange(n_elem, dtype=np.int64),
        ops=None,
    )


class ScheduleCache:
    """A bounded digest → payload map with LRU or oracle eviction."""

    def __init__(
        self,
        capacity: int,
        policy: str = "lru",
        *,
        future: Sequence[str] | None = None,
    ):
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        if policy not in EVICTION_POLICIES:
            raise ConfigurationError(
                f"unknown eviction policy {policy!r}; "
                f"choose from {', '.join(EVICTION_POLICIES)}"
            )
        if (policy == "oracle") != (future is not None):
            raise ConfigurationError(
                "the oracle policy needs (exactly) the recorded future log"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self.log: list[str] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        if future is not None:
            # Belady needs next-use positions: chain each occurrence of a
            # digest to the next one, walking the recorded log backwards.
            self._future = list(future)
            self._cursor = 0
            self._next_use: list[int] = [len(future)] * len(future)
            last_seen: dict[str, int] = {}
            for i in range(len(future) - 1, -1, -1):
                self._next_use[i] = last_seen.get(future[i], len(future))
                last_seen[future[i]] = i
            self._resident_next: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- the access path ------------------------------------------------- #
    def _advance(self, digest: str) -> None:
        """Consume one position of the oracle's recorded log."""
        if self._cursor >= len(self._future) or self._future[self._cursor] != digest:
            raise ConfigurationError(
                "oracle cache replays its recorded log: expected "
                f"{self._future[self._cursor] if self._cursor < len(self._future) else '<end>'!r} "
                f"at position {self._cursor}, got {digest!r}"
            )
        if digest in self._resident_next:
            self._resident_next[digest] = self._next_use[self._cursor]
        self._cursor += 1

    def get(self, digest: str) -> Any | None:
        """The cached payload, refreshing recency; ``None`` on a miss.

        Every ``get`` is one access: it lands in :attr:`log` and, in
        oracle mode, consumes one position of the recorded future.  A
        miss does *not* insert — pair it with :meth:`put` (which, after
        a ``get`` miss, completes the classic miss-then-load shape the
        trace engines count as a single load).
        """
        self.log.append(digest)
        if self.policy == "oracle":
            self._advance(digest)
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, payload: Any) -> None:
        """Insert (or refresh) ``digest``, evicting down to the bound.

        ``put`` is the load completing a miss, not a second access: it
        does not touch :attr:`log` or the oracle cursor, so a
        ``get``/``put``-on-miss driver generates exactly one logged
        access per request — the contract the replay cross-checks assume.
        """
        if digest in self._entries:
            self._entries[digest] = payload
            self._entries.move_to_end(digest)
            return
        while len(self._entries) >= self.capacity:
            self._evict()
        self._entries[digest] = payload
        if self.policy == "oracle":
            # Next use of the *current* occurrence was recorded by the
            # get() that preceded this put (cursor already advanced).
            pos = self._cursor - 1
            if pos < 0 or self._future[pos] != digest:
                raise ConfigurationError(
                    "oracle cache: put() must follow its own get() miss"
                )
            self._resident_next[digest] = self._next_use[pos]

    def _evict(self) -> None:
        if self.policy == "lru":
            victim, _ = self._entries.popitem(last=False)
        else:
            victim = max(self._resident_next, key=lambda d: (self._resident_next[d], d))
            del self._entries[victim]
            del self._resident_next[victim]
        self.evictions += 1
        probe = get_probe()
        if probe.enabled:
            probe.count("serve.evictions")

    # -- offline replay -------------------------------------------------- #
    @classmethod
    def replay(
        cls, log: Sequence[str], capacity: int, policy: str = "lru"
    ) -> "ScheduleCache":
        """Drive a fresh cache through ``log`` with the get/put-on-miss shape.

        The offline harness of benchmark E19: feed one recorded request
        log to both policies at many capacities and read
        ``hits``/``misses``/``evictions`` off the returned cache.  Oracle
        mode gets the very log it replays as its future.
        """
        cache = cls(
            capacity, policy, future=list(log) if policy == "oracle" else None
        )
        for digest in log:
            if cache.get(digest) is None:
                cache.put(digest, digest)
        return cache
