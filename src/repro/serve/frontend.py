"""Asyncio schedule-serving front end: coalesce, serve, fall through.

:class:`ScheduleService` is the "millions of users" tier of the
pipeline: many concurrent ``get_schedule(key)`` requests resolve against
three layers, fastest first —

1. **memory** — a :class:`~repro.serve.cache.ScheduleCache` of hot
   schedules (LRU by default; hits return without touching the loop);
2. **in flight** — duplicate keys already being resolved attach to the
   existing fill future (*single-flight*): N concurrent requests for one
   cold key run **exactly one** search, all N get the same object, and
   the N−1 attachments count as ``serve.coalesced``;
3. **disk** — the content-addressed :class:`~repro.serve.store.ScheduleStore`
   (``serve.store_hits``); finally
4. **search** — a true miss (``serve.misses``) queues the key's searcher
   pipeline (:data:`SEARCHERS`, chosen by ``key.policy``) on a background
   worker: the :class:`repro.perf.pool.SearchPool` process pool when the
   service was built with ``workers > 0``, a thread otherwise.  The
   worker files the result in the store (atomic put), the front end
   promotes it to memory, and every coalesced waiter wakes with it.

Store and search work always runs in executors, so the event loop stays
free to accept (and coalesce) requests while a search is in flight —
that is what turns a thundering herd of identical cold requests into one
search plus N−1 futures.

Counters (``serve.{requests,hits,misses,coalesced,searches,store_hits,
evictions}`` plus ``serve.store.{puts,corrupt}``) report into the active
probe *and* into plain attributes on the service, so the CLI can print a
stats table without a recording probe installed.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable, Sequence

from ..errors import ConfigurationError
from ..obs.probe import get_probe, timed
from ..perf.pool import SearchPool, parallel_map
from ..sched.schedule import Schedule
from .cache import ScheduleCache
from .store import ScheduleKey, ScheduleStore

#: Annealing budgets of the searcher pipelines; serving-sized on purpose
#: (the store amortizes the search, so bigger budgets belong to offline
#: warming jobs that can afford them).
SEARCH_ITERS = 300
COSEARCH_ITERS = 200


def _case_graph(key: ScheduleKey):
    from ..graph.compare import record_case
    from ..graph.dependency import DependencyGraph

    case = record_case(key.kernel, key.n, key.m, key.s)
    return case, DependencyGraph.from_trace(case.trace)


def _seed_of(key: ScheduleKey) -> int:
    """Deterministic per-key RNG seed (the digest's leading 32 bits)."""
    return int(key.digest()[:8], 16)


def _search_heuristic(key: ScheduleKey) -> Schedule:
    """One-shot locality list schedule, dressed and validated."""
    from ..graph.rewriter import reschedule

    case, graph = _case_graph(key)
    return reschedule(case.trace, key.s, "locality", graph=graph).schedule


def _search_order(key: ScheduleKey) -> Schedule:
    """Annealed order search (relaxed reductions), dressed and validated."""
    from ..graph.rewriter import rewrite_schedule
    from ..graph.search import search_order

    case, graph = _case_graph(key)
    found = search_order(
        graph, key.s, "anneal",
        iters=SEARCH_ITERS, seed=_seed_of(key), relax_reductions=True,
    )
    return rewrite_schedule(
        case.trace, key.s, found.order, graph=graph, relax_reductions=True
    ).schedule


def _search_cosearch(key: ScheduleKey) -> Schedule:
    """Joint order × partition co-search; the winning *order* is stored.

    The persisted artifact is the explicit single-node stream of the
    winning order (the ``.npz`` schedule container has no owner column);
    re-partitioning a served order across ``key.p`` nodes is a cheap
    one-shot — the expensive joint walk is what the store amortizes.
    """
    from ..graph.rewriter import rewrite_schedule
    from ..parallel.cosearch import cosearch

    case, graph = _case_graph(key)
    res = cosearch(
        graph, key.p, key.s,
        iters=COSEARCH_ITERS, seed=_seed_of(key),
        alpha=key.alpha, beta=key.beta, relax_reductions=True,
    )
    return rewrite_schedule(
        case.trace, key.s, list(res.order), graph=graph, relax_reductions=True
    ).schedule


#: ``key.policy`` → searcher pipeline (key → searched, validated Schedule).
SEARCHERS: dict[str, Callable[[ScheduleKey], Schedule]] = {
    "heuristic": _search_heuristic,
    "search": _search_order,
    "cosearch": _search_cosearch,
}


def run_searcher(key: ScheduleKey) -> Schedule:
    """Run the searcher pipeline ``key.policy`` names."""
    searcher = SEARCHERS.get(key.policy)
    if searcher is None:
        raise ConfigurationError(
            f"unknown serving policy {key.policy!r}; "
            f"choose from {', '.join(SEARCHERS)}"
        )
    return searcher(key)


def _search_to_store(task: tuple[str, dict]) -> str:
    """Worker-side miss handler: search ``key``, file it, return the digest.

    Module-level and addressed by plain ``(root, key dict)`` tuples so it
    crosses process boundaries; the schedule itself never does — workers
    write through the store's atomic put and the parent reads back from
    disk, which doubles as an end-to-end container round-trip.
    """
    root, key_dict = task
    key = ScheduleKey.from_dict(key_dict)
    return ScheduleStore(root).put(key, run_searcher(key))


def warm_store(
    store: ScheduleStore,
    keys: Iterable[ScheduleKey],
    *,
    jobs: int = 1,
    force: bool = False,
) -> list[ScheduleKey]:
    """Search-and-file every missing key; returns the keys actually searched.

    The offline batch path (``python -m repro serve warm``): misses fan
    out over :func:`repro.perf.pool.parallel_map` — one searcher run per
    worker task, results landing in the store via atomic puts, so a
    crashed warm run leaves only whole entries.  ``force=True`` re-searches
    keys already present (e.g. after a searcher budget change).
    """
    todo = [k for k in keys if force or k not in store]
    parallel_map(_search_to_store, [(store.root, k.as_dict()) for k in todo], jobs=jobs)
    probe = get_probe()
    if probe.enabled and todo:
        probe.count("serve.searches", len(todo))
    return todo


class ScheduleService:
    """The async front end over one store + one in-process cache.

    ``searcher`` overrides the per-key :data:`SEARCHERS` dispatch with
    one callable (test seam; runs on a thread).  ``workers > 0`` sends
    named-policy searches to a :class:`~repro.perf.pool.SearchPool`
    process pool instead of a thread — the pool is created lazily and
    must be released with :meth:`close` (or ``async with``).
    """

    def __init__(
        self,
        store: ScheduleStore,
        cache: ScheduleCache | None = None,
        *,
        searcher: Callable[[ScheduleKey], Schedule] | None = None,
        workers: int = 0,
        verify_store: bool = False,
    ):
        self.store = store
        self.cache = cache
        self.searcher = searcher
        #: statically certify every schedule fetched from disk before
        #: serving it (see :meth:`ScheduleStore.get`); an invalid object
        #: is a miss and the fall-through search repairs it.
        self.verify_store = verify_store
        self._pool = SearchPool(workers) if workers > 0 else None
        self._inflight: dict[str, asyncio.Future] = {}
        self.requests = 0
        self.hits = 0
        self.store_hits = 0
        self.misses = 0
        self.coalesced = 0
        self.searches = 0

    async def __aenter__(self) -> "ScheduleService":
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()

    def _count(self, stat: str, probe_name: str) -> None:
        setattr(self, stat, getattr(self, stat) + 1)
        probe = get_probe()
        if probe.enabled:
            probe.count(probe_name)

    # -- the serving path ------------------------------------------------ #
    async def get_schedule(self, key: ScheduleKey) -> Schedule:
        """Resolve ``key``: memory → in-flight → disk → searched."""
        digest = key.digest()
        self._count("requests", "serve.requests")
        if self.cache is not None:
            hit = self.cache.get(digest)
            if hit is not None:
                self._count("hits", "serve.hits")
                return hit
        existing = self._inflight.get(digest)
        if existing is not None and not existing.done():
            self._count("coalesced", "serve.coalesced")
            return await asyncio.shield(existing)
        # Single flight: the fill runs as its own task so a cancelled
        # requester never kills the search its coalesced peers wait on.
        task = asyncio.get_running_loop().create_task(self._fill(key, digest))
        self._inflight[digest] = task
        return await asyncio.shield(task)

    def _store_get(self, key: ScheduleKey) -> Schedule | None:
        return self.store.get(key, verify=self.verify_store)

    async def _fill(self, key: ScheduleKey, digest: str) -> Schedule:
        loop = asyncio.get_running_loop()
        try:
            schedule = await loop.run_in_executor(None, self._store_get, key)
            if schedule is not None:
                self._count("store_hits", "serve.store_hits")
            else:
                self._count("misses", "serve.misses")
                with timed("serve.search"):
                    schedule = await self._search(key, loop)
                self._count("searches", "serve.searches")
            if self.cache is not None:
                self.cache.put(digest, schedule)
            return schedule
        finally:
            self._inflight.pop(digest, None)

    async def _search(self, key: ScheduleKey, loop) -> Schedule:
        if self.searcher is not None:
            schedule = await loop.run_in_executor(None, self.searcher, key)
            await loop.run_in_executor(None, self.store.put, key, schedule)
            return schedule
        if self._pool is not None:
            # The worker files the schedule itself (atomic put); only the
            # digest crosses the process boundary, never the object graph.
            future = self._pool.submit(
                _search_to_store, (self.store.root, key.as_dict())
            )
            await asyncio.wrap_future(future)
        else:
            await loop.run_in_executor(
                None, _search_to_store, (self.store.root, key.as_dict())
            )
        schedule = await loop.run_in_executor(None, self._store_get, key)
        if schedule is None:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"search for {key} completed but left no readable store entry"
            )
        return schedule

    # -- reporting ------------------------------------------------------- #
    def stats_snapshot(self) -> dict:
        """The service's own counters (probe-independent) as one dict."""
        snap = {
            "requests": self.requests,
            "hits": self.hits,
            "store_hits": self.store_hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "searches": self.searches,
        }
        if self.cache is not None:
            snap["cache_entries"] = len(self.cache)
            snap["cache_evictions"] = self.cache.evictions
        return snap
