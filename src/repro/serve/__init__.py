"""Schedule-serving layer: content-addressed store, hot cache, async front end.

The production framing of the whole pipeline (docs/SERVING.md): schedules
cost a search to produce but are keyed by a tiny request tuple, so serving
is three tiers of memoization —

* :mod:`repro.serve.store` — :class:`ScheduleKey` (the canonical tuple +
  SHA-256 content address) and :class:`ScheduleStore` (atomic ``.npz``
  objects + advisory manifest, corruption-tolerant reads);
* :mod:`repro.serve.cache` — :class:`ScheduleCache`, a bounded in-process
  map running our *own* replacement policies (LRU, and a Belady oracle
  replayable from a recorded request log — dogfooding the paper's
  LRU-vs-OPT analysis on our serving tier);
* :mod:`repro.serve.frontend` — :class:`ScheduleService`, the asyncio
  front end that coalesces duplicate in-flight keys (single-flight),
  serves memory hits at memory speed, falls through to disk, and queues
  true misses to a :mod:`repro.perf` search-worker pool; plus
  :func:`warm_store`, the offline batch warmer behind
  ``python -m repro serve warm``.

Benchmark E19 (``benchmarks/bench_e19_serve.py``) measures the tiers:
warm-hit vs cold-search latency, hit rate vs cache size under a zipf
request stream, and the LRU-vs-oracle eviction gap on one log.
"""

from .cache import EVICTION_POLICIES, ScheduleCache, log_to_trace
from .frontend import SEARCHERS, ScheduleService, run_searcher, warm_store
from .store import ScheduleKey, ScheduleStore

__all__ = [
    "EVICTION_POLICIES",
    "SEARCHERS",
    "ScheduleCache",
    "ScheduleKey",
    "ScheduleService",
    "ScheduleStore",
    "log_to_trace",
    "run_searcher",
    "warm_store",
]
