"""Content-addressed on-disk schedule store.

Schedules are expensive to produce (a single E16-sized refinement runs
~14k ledger evaluations) but fully determined by a tiny request tuple —
``(kernel, n, m, s, p, policy, alpha, beta)``.  :class:`ScheduleKey`
canonicalizes that tuple into a stable JSON form and hashes it
(SHA-256); :class:`ScheduleStore` files the searched schedule under the
hash, layered over the existing ``.npz`` containers of
:mod:`repro.trace.io`:

* ``root/objects/<hh>/<digest>.npz`` — one schedule container per key,
  sharded by the first two hex digits.  Writes are atomic end to end:
  :func:`repro.trace.io.save_schedule` itself goes through a sibling
  temp file + ``os.replace``, so an interrupted ``put`` can never leave
  a torn object at a digest path.
* ``root/manifest.json`` — a versioned index (digest → key dict + size)
  for listing and stats.  The manifest is *advisory*: ``get`` computes
  the digest straight from the key and never consults it, so a stale,
  torn or deleted manifest degrades listing only, never serving.
  :meth:`ScheduleStore.rescan` rebuilds it from the objects on disk
  (orphans — objects a concurrent writer filed after losing the
  manifest race — reappear with their key recovered from the object's
  own sidecar record inside the manifest entry when known, else as
  key-less digests).

Reads are corruption-tolerant by contract: a truncated, overwritten or
otherwise unreadable object is *a miss*, never an exception —
:meth:`ScheduleStore.get` quarantines nothing and raises nothing, it
reports ``serve.store.corrupt`` and returns ``None`` so the front end
falls through to a fresh search that overwrites the bad object.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigurationError
from ..obs.probe import get_probe, timed
from ..sched.schedule import Schedule
from ..trace.io import load_schedule, save_schedule

MANIFEST_VERSION = 1
MANIFEST_KIND = "repro.serve.manifest"


@dataclass(frozen=True, order=True)
class ScheduleKey:
    """The canonical request tuple a served schedule is keyed by.

    ``policy`` names the searcher pipeline that produces the schedule
    (``heuristic`` / ``search`` / ``cosearch`` — see
    :data:`repro.serve.frontend.SEARCHERS`), and is part of the hash:
    the same kernel shape served under two policies is two entries.
    ``alpha``/``beta`` are the latency-model constants the ``cosearch``
    policy optimizes under; they are normalized to floats so ``1`` and
    ``1.0`` address the same object.
    """

    kernel: str
    n: int
    m: int
    s: int
    p: int = 1
    policy: str = "heuristic"
    alpha: float = 1.0
    beta: float = 1.0

    def __post_init__(self):
        if self.n < 1 or self.m < 1 or self.s < 1 or self.p < 1:
            raise ConfigurationError(f"key dimensions must be >= 1: {self}")
        # Normalize numeric types so equal tuples hash equally regardless
        # of how the caller spelled them (1 vs 1.0, numpy ints, ...).
        object.__setattr__(self, "n", int(self.n))
        object.__setattr__(self, "m", int(self.m))
        object.__setattr__(self, "s", int(self.s))
        object.__setattr__(self, "p", int(self.p))
        object.__setattr__(self, "alpha", float(self.alpha))
        object.__setattr__(self, "beta", float(self.beta))

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel, "n": self.n, "m": self.m, "s": self.s,
            "p": self.p, "policy": self.policy,
            "alpha": self.alpha, "beta": self.beta,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScheduleKey":
        return cls(**d)

    def canonical(self) -> str:
        """The stable serialized form the digest is computed over."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Content address: SHA-256 hex of the canonical form."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()


class ScheduleStore:
    """A directory of searched schedules, addressed by key digest."""

    def __init__(self, root: str | os.PathLike):
        self.root = os.fspath(root)
        self._objects = os.path.join(self.root, "objects")
        self._manifest_path = os.path.join(self.root, "manifest.json")
        os.makedirs(self._objects, exist_ok=True)

    # -- paths ----------------------------------------------------------- #
    def object_path(self, key: ScheduleKey | str) -> str:
        digest = key if isinstance(key, str) else key.digest()
        return os.path.join(self._objects, digest[:2], f"{digest}.npz")

    # -- manifest -------------------------------------------------------- #
    def _read_manifest(self) -> dict:
        """The manifest's entries dict; tolerant of absence and corruption."""
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(doc, dict) or doc.get("kind") != MANIFEST_KIND:
            return {}
        if doc.get("version") != MANIFEST_VERSION:
            return {}
        entries = doc.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_manifest(self, entries: dict) -> None:
        doc = {"kind": MANIFEST_KIND, "version": MANIFEST_VERSION, "entries": entries}
        tmp = f"{self._manifest_path}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
            os.replace(tmp, self._manifest_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def rescan(self) -> dict:
        """Reconcile the manifest with the objects actually on disk.

        Entries whose object vanished are dropped; objects the manifest
        never heard of (a concurrent writer lost the read-modify-write
        race) are re-adopted with ``key: null`` — the digest still serves,
        only the listing loses the pretty key.  Returns the entries dict.
        """
        entries = self._read_manifest()
        on_disk = {}
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".npz") and ".tmp" not in name:
                    digest = name[: -len(".npz")]
                    on_disk[digest] = os.path.getsize(os.path.join(shard_dir, name))
        merged = {
            digest: {
                "key": entries.get(digest, {}).get("key"),
                "bytes": size,
            }
            for digest, size in on_disk.items()
        }
        self._write_manifest(merged)
        return merged

    # -- serving --------------------------------------------------------- #
    def put(self, key: ScheduleKey, schedule: Schedule) -> str:
        """File ``schedule`` under ``key``'s digest; returns the digest.

        The object write is atomic (temp + ``os.replace`` inside
        :func:`~repro.trace.io.save_schedule`); the manifest update is a
        read-modify-write and may lose a race against a concurrent
        writer — by design recoverable via :meth:`rescan`, and invisible
        to ``get``.
        """
        digest = key.digest()
        path = self.object_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with timed("serve.store.put"):
            save_schedule(schedule, path)
            entries = self._read_manifest()
            entries[digest] = {
                "key": key.as_dict(),
                "bytes": os.path.getsize(path),
            }
            self._write_manifest(entries)
        probe = get_probe()
        if probe.enabled:
            probe.count("serve.store.puts")
        return digest

    def get(self, key: ScheduleKey, *, verify: bool = False) -> Schedule | None:
        """The stored schedule for ``key``, or ``None`` (missing/corrupt).

        Never raises on a bad object: any failure to open, parse or
        reconstruct the container counts as ``serve.store.corrupt`` and
        reads as a miss, so the caller's fall-through search repairs the
        entry with its next ``put``.

        With ``verify=True`` the loaded schedule is additionally *certified*
        statically (:func:`repro.check.certify.certify_schedule` at the
        key's capacity — a linear pass, not a replay) before being served:
        a corrupt-but-parseable object (a tampered stream, a wrong-capacity
        write) counts ``serve.store.invalid`` and reads as a miss too.
        """
        path = self.object_path(key)
        if not os.path.exists(path):
            return None
        with timed("serve.store.get"):
            try:
                schedule = load_schedule(path)
            except Exception:
                probe = get_probe()
                if probe.enabled:
                    probe.count("serve.store.corrupt")
                return None
        if verify:
            from ..check.certify import certify_schedule

            with timed("serve.store.verify"):
                certificate = certify_schedule(schedule, key.s)
            if not certificate.ok:
                probe = get_probe()
                if probe.enabled:
                    probe.count("serve.store.invalid")
                return None
        return schedule

    def __contains__(self, key: ScheduleKey) -> bool:
        return os.path.exists(self.object_path(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def digests(self) -> Iterator[str]:
        """Digests of every object currently on disk (manifest-free)."""
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".npz") and ".tmp" not in name:
                    yield name[: -len(".npz")]

    def keys(self) -> list[ScheduleKey]:
        """Every key the (reconciled) manifest knows; orphans are skipped."""
        out = []
        for entry in self.rescan().values():
            if entry.get("key") is not None:
                out.append(ScheduleKey.from_dict(entry["key"]))
        return sorted(out)

    def stats(self) -> dict:
        """Reconciled store statistics (entries, bytes, per-kernel counts)."""
        entries = self.rescan()
        per_kernel: dict[str, int] = {}
        per_policy: dict[str, int] = {}
        for entry in entries.values():
            k = entry.get("key") or {}
            per_kernel[k.get("kernel", "?")] = per_kernel.get(k.get("kernel", "?"), 0) + 1
            per_policy[k.get("policy", "?")] = per_policy.get(k.get("policy", "?"), 0) + 1
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(e["bytes"] for e in entries.values()),
            "per_kernel": dict(sorted(per_kernel.items())),
            "per_policy": dict(sorted(per_policy.items())),
        }
