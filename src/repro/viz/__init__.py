"""ASCII renderers for the paper's structural figures (1, 2 and 3)."""

from .ascii import CharGrid
from .figures import (
    render_zones_and_blocks,
    render_indexing_positions,
    render_tbs_layout,
    render_lbc_iteration,
)

__all__ = [
    "CharGrid",
    "render_zones_and_blocks",
    "render_indexing_positions",
    "render_tbs_layout",
    "render_lbc_iteration",
]
