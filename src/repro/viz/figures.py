"""Text renderings of the paper's Figures 1–3 (experiment E5 & E6 visuals).

* :func:`render_zones_and_blocks` — Figure 1: the ``k(k-1)/2`` square zones
  of the result matrix, with selected triangle blocks overlaid (each block
  places exactly one element per zone);
* :func:`render_indexing_positions` — Figure 2 (left): the position
  ``f_{i,j}(u)`` of a block's row within each zone-row;
* :func:`render_tbs_layout` — Figure 2 (right): which part of ``C`` is
  computed by triangle blocks, recursion, and the OOC_SYRK strip;
* :func:`render_lbc_iteration` — Figure 3: the three panels LBC touches at
  iteration ``i`` (OOC_CHOL / OOC_TRSM / TBS).

Rendered from the *actual* partition objects, so the figures are witnesses
of the implementation, not drawings.
"""

from __future__ import annotations

from ..core.partition import TBSPartition, plan_partition
from ..errors import ConfigurationError
from .ascii import CharGrid

_BLOCK_CHARS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def render_zones_and_blocks(
    part: TBSPartition, blocks: list[tuple[int, int]] | None = None, rulers: bool = True
) -> str:
    """Figure 1: square zones (shaded by zone) + chosen triangle blocks.

    ``blocks`` is a list of ``(i, j)`` block ids to overlay (letters);
    defaults to the first two.  Zone interiors are drawn with ``-`` / ``=``
    alternating so zone boundaries are visible; the strict upper triangle
    stays blank.
    """
    n = part.covered
    grid = CharGrid(n, n, fill=" ")
    # Shade the inter-group zones (strictly below the block-diagonal groups).
    for u in range(part.k):
        for v in range(u):
            ch = "-" if (u + v) % 2 == 0 else "="
            grid.fill_rect(u * part.c, (u + 1) * part.c, v * part.c, (v + 1) * part.c, ch)
    # Diagonal (triangular) zones: recursion territory.
    for u in range(part.k):
        base = u * part.c
        for r in range(part.c):
            for c2 in range(r):
                grid.put(base + r, base + c2, "+")
    if blocks is None:
        blocks = [(0, 0), (1, 0)][: max(1, min(2, part.c))]
    for which, (bi, bj) in enumerate(blocks):
        ch = _BLOCK_CHARS[which % len(_BLOCK_CHARS)]
        rows = sorted(int(r) for r in part.block_rows(bi, bj))
        for a_idx, r in enumerate(rows):
            for rp in rows[:a_idx]:
                grid.put(r, rp, ch)
    return grid.render(rulers=rulers)


def render_indexing_positions(part: TBSPartition, i: int, j: int) -> str:
    """Figure 2 (left): one line per zone-row ``u`` with the block's position."""
    lines = [f"block (i={i}, j={j}) of a ({part.c}, {part.k}) cyclic indexing family:"]
    for u in range(part.k):
        pos = part.family.position(i, j, u)
        cells = ["."] * part.c
        cells[pos] = "*"
        lines.append(f"  u={u}: [" + "".join(cells) + f"]  f({u}) = {pos}")
    return "\n".join(lines)


def render_tbs_layout(n: int, k: int, rulers: bool = False) -> str:
    """Figure 2 (right): triangle blocks / recursion / OOC_SYRK strip regions.

    ``T`` marks elements covered by triangle blocks (square zones), ``r``
    the recursive diagonal zones, ``s`` the leftover OOC_SYRK strip, and
    ``F`` everything when the partition is infeasible (full fallback).
    """
    part = plan_partition(n, k)
    grid = CharGrid(n, n, fill=" ")
    if part is None:
        for r in range(n):
            for c2 in range(r + 1):
                grid.put(r, c2, "F")
        return grid.render(rulers=rulers)
    ck = part.covered
    for r in range(n):
        for c2 in range(r + 1):
            if r >= ck:
                grid.put(r, c2, "s")
            elif (r // part.c) == (c2 // part.c):
                grid.put(r, c2, "r")
            else:
                grid.put(r, c2, "T")
    return grid.render(rulers=rulers)


def render_lbc_iteration(n: int, b: int, i: int, rulers: bool = False) -> str:
    """Figure 3: the panels LBC touches at iteration ``i``.

    ``C`` = OOC_CHOL diagonal block, ``t`` = OOC_TRSM panel, ``S`` = TBS
    trailing downdate, ``L`` = already-final factor columns, `` `` = upper.
    """
    if b < 1 or n % b != 0:
        raise ConfigurationError(f"b={b} must divide n={n}")
    if not 0 <= i < n // b:
        raise ConfigurationError(f"iteration {i} out of range for {n // b} blocks")
    grid = CharGrid(n, n, fill=" ")
    lo, hi = i * b, (i + 1) * b
    for r in range(n):
        for c2 in range(r + 1):
            if c2 < lo:
                grid.put(r, c2, "L")
            elif r < hi and c2 >= lo:
                grid.put(r, c2, "C")
            elif lo <= c2 < hi:
                grid.put(r, c2, "t")
            else:
                grid.put(r, c2, "S")
    return grid.render(rulers=rulers)
