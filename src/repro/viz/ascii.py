"""A tiny character-grid canvas for rendering matrix diagrams in text.

The paper's figures are structural (which element belongs to which block /
zone / panel), so a character per matrix element is a faithful rendering.
``CharGrid`` keeps bounds-checked cells plus optional row/column rulers.
"""

from __future__ import annotations


class CharGrid:
    """A rows x cols grid of single characters with simple drawing helpers."""

    def __init__(self, rows: int, cols: int, fill: str = "."):
        if rows < 0 or cols < 0:
            raise ValueError(f"grid dims must be >= 0, got {rows} x {cols}")
        if len(fill) != 1:
            raise ValueError("fill must be a single character")
        self.rows = rows
        self.cols = cols
        self._cells = [[fill] * cols for _ in range(rows)]

    def put(self, r: int, c: int, ch: str) -> None:
        """Set one cell (single character; bounds-checked)."""
        if len(ch) != 1:
            raise ValueError("cell value must be a single character")
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"({r}, {c}) outside {self.rows} x {self.cols} grid")
        self._cells[r][c] = ch

    def get(self, r: int, c: int) -> str:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"({r}, {c}) outside {self.rows} x {self.cols} grid")
        return self._cells[r][c]

    def fill_rect(self, r0: int, r1: int, c0: int, c1: int, ch: str) -> None:
        """Fill the half-open rectangle [r0, r1) x [c0, c1)."""
        for r in range(r0, r1):
            for c in range(c0, c1):
                self.put(r, c, ch)

    def render(self, rulers: bool = False) -> str:
        """Render as newline-joined text, optionally with mod-10 rulers."""
        lines = []
        if rulers:
            header = "   " + "".join(str(c % 10) for c in range(self.cols))
            lines.append(header)
        for r, row in enumerate(self._cells):
            prefix = f"{r:>2} " if rulers else ""
            lines.append(prefix + "".join(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
