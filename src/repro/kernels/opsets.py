"""Operation sets 𝒮 and 𝒞 and the data-access functional of Proposition 3.4.

The paper describes each (multiply-add) operation by a triple ``(i, j, k)``:

* SYRK:      ``𝒮 = {(i,j,k) : 1 <= j < i <= N, 1 <= k <= M}``,
  computing ``C[i,j] += A[i,k] * A[j,k]``;
* Cholesky:  ``𝒞 = {(i,j,k) : 1 <= k < j < i <= N}``,
  computing ``A[i,j] -= A[i,k] * A[j,k]``.

(We use 0-based triples internally; counts are unaffected.)

For a subcomputation ``B`` (any subset of triples), Proposition 3.4 gives
the number of distinct data elements it touches::

    D(B) = | U_k B|_k |  +  sum_k | tau(B|_k) |

where ``B|_k`` is the restriction to iteration ``k`` (the set of ``(i,j)``
pairs) and ``tau(U) = { i : exists j, (i,j) in U or (j,i) in U }`` is the
*symmetric footprint* (Definition 3.3) — the row indices of ``A`` needed at
iteration ``k``, counting ``A[i,k]`` and the symmetric use ``A[j,k]`` once.
The first term counts distinct ``C`` elements, the second the ``A`` traffic.

Theorem 4.1 bounds ``|B| <= sqrt(2)/(3 sqrt(3)) * D(B)^{3/2}`` for any
``B ⊆ 𝒮``; the property-based tests exercise exactly this inequality using
this module's ``data_accessed``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

Triple = tuple[int, int, int]


def syrk_opset_size(n: int, m: int) -> int:
    """``|𝒮| = N(N-1)/2 * M`` (strictly subdiagonal pairs only)."""
    return n * (n - 1) // 2 * m


def cholesky_update_count(n: int) -> int:
    """``|𝒞| = N(N-1)(N-2)/6`` (triples ``i > j > k``)."""
    return n * (n - 1) * (n - 2) // 6


def iter_syrk_ops(n: int, m: int) -> Iterator[Triple]:
    """All of 𝒮 for an ``N x M`` input, 0-based, loop order of Algorithm 1."""
    for i in range(n):
        for j in range(i):
            for k in range(m):
                yield (i, j, k)


def iter_cholesky_updates(n: int) -> Iterator[Triple]:
    """All of 𝒞 for an ``N x N`` input, 0-based, loop order of Algorithm 2."""
    for k in range(n):
        for i in range(k + 1, n):
            for j in range(k + 1, i):
                yield (i, j, k)


def restriction(b: Iterable[Triple], k: int) -> set[tuple[int, int]]:
    """``B|_k``: the ``(i, j)`` pairs of ``B`` at iteration ``k`` (Def. 3.2)."""
    return {(i, j) for (i, j, kk) in b if kk == k}


def symmetric_footprint(u: Iterable[tuple[int, int]]) -> set[int]:
    """``tau(U)``: indices appearing as either coordinate (Def. 3.3)."""
    out: set[int] = set()
    for i, j in u:
        out.add(i)
        out.add(j)
    return out


def data_accessed(b: Iterable[Triple]) -> int:
    """``D(B)`` of Proposition 3.4: distinct elements touched by ``B``.

    >>> data_accessed([(1, 0, 0), (1, 0, 1)])   # one C element, two A columns
    5
    """
    by_k: dict[int, set[tuple[int, int]]] = {}
    c_elems: set[tuple[int, int]] = set()
    for i, j, k in b:
        by_k.setdefault(k, set()).add((i, j))
        c_elems.add((i, j))
    a_traffic = sum(len(symmetric_footprint(pairs)) for pairs in by_k.values())
    return len(c_elems) + a_traffic


def data_accessed_no_symmetry(b: Iterable[Triple]) -> int:
    """D(B) if the symmetry of ``A`` uses were *not* exploited.

    Counts ``A[i,k]`` and ``A[j,k]`` as distinct loads the way the prior
    bounds implicitly do (each iteration needs the i-footprint plus the
    j-footprint separately).  Used to quantify the gap the paper closes.
    """
    by_k: dict[int, set[tuple[int, int]]] = {}
    c_elems: set[tuple[int, int]] = set()
    for i, j, k in b:
        by_k.setdefault(k, set()).add((i, j))
        c_elems.add((i, j))
    a_traffic = 0
    for pairs in by_k.values():
        rows = {i for i, _ in pairs}
        cols = {j for _, j in pairs}
        a_traffic += len(rows) + len(cols)
    return len(c_elems) + a_traffic
