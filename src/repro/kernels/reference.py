"""In-memory reference kernels: the oracles every schedule is verified against.

Two styles per kernel:

* a vectorized NumPy implementation (``*_reference``) used for end-to-end
  verification of the out-of-core schedules, and
* a literal element-loop transcription of the paper's Algorithm 1 / 2
  (``*_element_loops``) used to pin down the exact operation sets 𝒮 and 𝒞
  and to drive the pebble-game machine.

The blocked schedules and the element loops must agree to ~1e-12: they
perform the same floating-point operations in different orders, and the
test suite checks this on well-conditioned random inputs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, VerificationError
from ..utils.checks import check_matrix, check_square


def syrk_reference(a: np.ndarray, c: np.ndarray | None = None, sign: float = 1.0) -> np.ndarray:
    """Lower-triangular SYRK: returns ``C`` with ``C += sign * tril(A Aᵀ)``.

    Only the lower triangle (including the diagonal) is updated; the strict
    upper triangle of the result equals that of the input ``C`` (or zero),
    matching Algorithm 1, which never references it.
    """
    a = check_matrix("A", a)
    n = a.shape[0]
    out = np.zeros((n, n)) if c is None else check_square("C", c).copy()
    out += sign * np.tril(a @ a.T)
    return out


def syrk_element_loops(a: np.ndarray, c: np.ndarray | None = None, sign: float = 1.0) -> np.ndarray:
    """Algorithm 1 verbatim (three nested loops, lower triangle incl. diagonal)."""
    a = check_matrix("A", a)
    n, m = a.shape
    out = np.zeros((n, n)) if c is None else check_square("C", c).copy()
    for i in range(n):
        for j in range(i + 1):
            for k in range(m):
                out[i, j] += sign * a[i, k] * a[j, k]
    return out


def cholesky_lower_in_place(a: np.ndarray) -> np.ndarray:
    """In-place lower Cholesky of a square array whose lower triangle holds A.

    Column-based, vectorized; touches only the lower triangle (the strict
    upper triangle may hold garbage/NaN poison and is left untouched).
    Raises :class:`VerificationError` on a non-positive pivot.
    """
    n = a.shape[0]
    if a.shape[1] != n:
        raise ConfigurationError(f"cholesky needs a square array, got {a.shape}")
    for k in range(n):
        pivot = a[k, k]
        if not pivot > 0:
            raise VerificationError(f"non-positive pivot {pivot!r} at column {k}")
        a[k, k] = np.sqrt(pivot)
        if k + 1 < n:
            a[k + 1 :, k] /= a[k, k]
            # Trailing update, lower triangle only, one column at a time so
            # no upper-triangle element is ever read or written.
            col = a[k + 1 :, k]
            for j in range(k + 1, n):
                a[j:, j] -= col[j - k - 1 :] * col[j - k - 1]
    return a


def cholesky_reference(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of an SPD matrix (fresh array, upper zeroed)."""
    a = check_square("A", a)
    work = np.tril(a).copy()
    # Mirror the lower triangle so our in-place routine sees what it expects.
    cholesky_lower_in_place(work)
    return np.tril(work)


def cholesky_element_loops(a: np.ndarray) -> np.ndarray:
    """Algorithm 2 verbatim: in-place element-wise Cholesky (returns a copy)."""
    a = check_square("A", a)
    out = a.copy()
    n = out.shape[0]
    for k in range(n):
        out[k, k] = np.sqrt(out[k, k])
        for i in range(k + 1, n):
            out[i, k] = out[i, k] / out[k, k]
            for j in range(k + 1, i + 1):
                out[i, j] -= out[i, k] * out[j, k]
    # Algorithm 2 only defines the lower triangle; zero the rest for comparison.
    return np.tril(out)


def trsm_right_lower_transpose(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``X Lᵀ = B`` for X (``L`` lower triangular, ``B`` is ``m x n``).

    This is the TRSM variant LBC uses: the panel below a factored diagonal
    block is ``A[I1, I0] <- A[I1, I0] · L⁻ᵀ``.
    """
    l = check_square("L", l)
    b = check_matrix("B", b)
    if b.shape[1] != l.shape[0]:
        raise ConfigurationError(f"B has {b.shape[1]} columns, L is {l.shape[0]} x {l.shape[0]}")
    from scipy.linalg import solve_triangular

    # X Lᵀ = B  <=>  L Xᵀ = Bᵀ
    return solve_triangular(np.tril(l), b.T, lower=True).T


def trsm_element_loops(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-loop TRSM ``X Lᵀ = B`` (column-by-column forward substitution)."""
    l = check_square("L", l)
    out = check_matrix("B", b).copy()
    n = l.shape[0]
    for t in range(n):
        for u in range(t):
            out[:, t] -= out[:, u] * l[t, u]
        out[:, t] /= l[t, t]
    return out


def gemm_reference(a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, sign: float = 1.0) -> np.ndarray:
    """Plain dense ``C += sign * A B``."""
    a = check_matrix("A", a)
    b = check_matrix("B", b)
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"inner dims mismatch: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1])) if c is None else check_matrix("C", c).copy()
    out += sign * (a @ b)
    return out


def lu_nopivot_in_place(a: np.ndarray) -> np.ndarray:
    """In-place Doolittle LU without pivoting (L unit-lower below, U upper).

    Intended for strictly diagonally dominant inputs, where no pivoting is
    needed; raises :class:`VerificationError` on a zero pivot.
    """
    n = a.shape[0]
    if a.shape[1] != n:
        raise ConfigurationError(f"LU needs a square array, got {a.shape}")
    for k in range(n):
        pivot = a[k, k]
        if pivot == 0:
            raise VerificationError(f"zero pivot at column {k}")
        a[k + 1 :, k] /= pivot
        if k + 1 < n:
            a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return a


def lu_nopivot_reference(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LU factors ``(L, U)`` with unit-lower ``L`` (fresh arrays)."""
    a = check_square("A", a)
    work = a.copy()
    lu_nopivot_in_place(work)
    l = np.tril(work, -1) + np.eye(a.shape[0])
    u = np.triu(work)
    return l, u
