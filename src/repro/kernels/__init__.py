"""In-memory reference kernels, op-set combinatorics, and flop conventions.

``reference`` holds the NumPy oracles every schedule is verified against;
``opsets`` implements the paper's operation sets 𝒮 (SYRK) and 𝒞 (Cholesky
updates) together with the data-access functional ``D(B)`` of Proposition
3.4; ``flops`` centralizes work-counting conventions.
"""

from .reference import (
    syrk_reference,
    cholesky_reference,
    cholesky_lower_in_place,
    cholesky_element_loops,
    syrk_element_loops,
    trsm_right_lower_transpose,
    trsm_element_loops,
    gemm_reference,
    lu_nopivot_reference,
    lu_nopivot_in_place,
)
from .opsets import (
    syrk_opset_size,
    cholesky_update_count,
    iter_syrk_ops,
    iter_cholesky_updates,
    restriction,
    symmetric_footprint,
    data_accessed,
)
from .flops import (
    syrk_mults,
    syrk_flops,
    cholesky_mults,
    cholesky_flops,
    gemm_mults,
    gemm_flops,
    trsm_mults,
    trsm_flops,
    lu_mults,
    lu_flops,
)

__all__ = [
    "syrk_reference",
    "cholesky_reference",
    "cholesky_lower_in_place",
    "cholesky_element_loops",
    "syrk_element_loops",
    "trsm_right_lower_transpose",
    "trsm_element_loops",
    "gemm_reference",
    "lu_nopivot_reference",
    "lu_nopivot_in_place",
    "syrk_opset_size",
    "cholesky_update_count",
    "iter_syrk_ops",
    "iter_cholesky_updates",
    "restriction",
    "symmetric_footprint",
    "data_accessed",
    "syrk_mults",
    "syrk_flops",
    "cholesky_mults",
    "cholesky_flops",
    "gemm_mults",
    "gemm_flops",
    "trsm_mults",
    "trsm_flops",
    "lu_mults",
    "lu_flops",
]
