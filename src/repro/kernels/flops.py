"""Work-counting conventions, shared by blocked ops and element-level loops.

Convention (matches the paper's operation sets): a multiply-add counts as
1 *mult* and 2 *flops*; a division as 1 mult / 1 flop; a square root as
0 mults / 1 flop.  The paper's operational-intensity results are stated
per multiplication (max ``sqrt(S/2)`` for symmetric kernels) and per flop
"when also counting the addition operations" (max ``sqrt(2S)``); tracking
both lets :mod:`repro.analysis.oi` reproduce either form.
"""

from __future__ import annotations


def syrk_mults(n: int, m: int, include_diagonal: bool = True) -> int:
    """Multiplies of SYRK on the lower triangle (Algorithm 1).

    ``N(N+1)/2 * M`` including the diagonal (what the algorithms compute);
    ``N(N-1)/2 * M`` excluding it (the paper's bound-relevant set 𝒮).
    """
    pairs = n * (n + 1) // 2 if include_diagonal else n * (n - 1) // 2
    return pairs * m


def syrk_flops(n: int, m: int, include_diagonal: bool = True) -> int:
    """Flops of SYRK (2 per multiply-add)."""
    return 2 * syrk_mults(n, m, include_diagonal)


def cholesky_mults(n: int) -> int:
    """Multiplies (incl. divisions) of an ``n x n`` Cholesky (Algorithm 2).

    Algorithm 2's update loop runs ``j = k+1 .. i`` *inclusive*, so updates
    (including the diagonal ones ``j == i``) number ``(n^3 - n)/6``; add
    ``n(n-1)/2`` divisions.  (The paper's bound set 𝒞 keeps only the strict
    ``i > j`` updates — that count is :func:`cholesky_update_mults`.)
    """
    return (n**3 - n) // 6 + n * (n - 1) // 2


def cholesky_update_mults(n: int) -> int:
    """Update multiplies of the paper's set 𝒞 only: ``n(n-1)(n-2)/6``."""
    return n * (n - 1) * (n - 2) // 6


def cholesky_flops(n: int) -> int:
    """Flops of Cholesky: 2 per update (incl. diagonal updates), 1 per
    division, 1 per sqrt."""
    return 2 * ((n**3 - n) // 6) + n * (n - 1) // 2 + n


def gemm_mults(n: int, m: int, k: int) -> int:
    """Multiplies of ``C (n x m) += A (n x k) B (k x m)``."""
    return n * m * k


def gemm_flops(n: int, m: int, k: int) -> int:
    return 2 * gemm_mults(n, m, k)


def trsm_mults(n: int, m: int) -> int:
    """Multiplies of ``X Lᵀ = B`` with ``L`` ``n x n`` lower, ``B`` ``m x n``.

    Per row of ``B``: ``n(n-1)/2`` update multiplies + ``n`` divisions.
    """
    return m * (n * (n - 1) // 2 + n)


def trsm_flops(n: int, m: int) -> int:
    return m * (2 * (n * (n - 1) // 2) + n)


def lu_mults(n: int) -> int:
    """Multiplies of an ``n x n`` LU without pivoting.

    Update multiplies ``n(n-1)(2n-1)/6`` ... computed exactly as
    ``sum_k (n-k-1)^2`` plus ``sum_k (n-k-1)`` divisions.
    """
    updates = sum((n - k - 1) ** 2 for k in range(n))
    divisions = n * (n - 1) // 2
    return updates + divisions


def lu_flops(n: int) -> int:
    updates = sum((n - k - 1) ** 2 for k in range(n))
    divisions = n * (n - 1) // 2
    return 2 * updates + divisions
