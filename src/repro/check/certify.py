"""Static memory certifier for recorded schedules.

:func:`certify_schedule` proves (or refutes) the two-level model's memory
invariants from the load/evict stream alone — no machine, no replay, not
even the per-step bitmap walk of :func:`repro.sched.validate.validate_schedule`.
The whole schedule is flattened into one event table (element id, event
code, step position), sorted once by element, and every rule becomes a
vectorized predicate over *adjacent events of the same element*:

* ``LOAD`` after a resident event        -> RPS102 (double load)
* ``USE``/``WRITE`` after a non-resident -> RPS101 (use before load)
* ``EVICT`` after a non-resident         -> RPS103 (evict without load)
* ``EVICT`` directly after ``LOAD``      -> RPS201 (dead evict, warning)
* writeback with no write since load     -> RPS202 (store of clean, warning)

Peak residency is then *exact* arithmetic: +1 at every fresh load, -1 at
every resident evict, cumulated in step order — the first position whose
running occupancy exceeds ``capacity`` is RPS104, and a non-empty final
residency set is RPS105.  On schedules free of RPS101–RPS103 errors the
stream semantics and the replay semantics coincide, so the certificate's
verdict and counters agree with ``validate_schedule`` (pinned by
``tests/test_check.py``) at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.regions import Region
from ..obs.probe import get_probe, timed
from ..sched.schedule import ComputeStep, EvictStep, LoadStep, Schedule
from .findings import ERROR, Finding, sort_findings

# Event codes.  Resident-making/keeping events are <= WRITE; the sentinel
# marks "no previous event" (element starts non-resident).
_LOAD, _USE, _WRITE, _EVICT, _EVICT_WB, _ABSENT = 0, 1, 2, 3, 4, 5


@dataclass
class Certificate:
    """The result of one static certification pass."""

    findings: list[Finding] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff no error-severity finding was produced."""
        return not any(f.severity == ERROR for f in self.findings)


def certify_schedule(
    schedule: Schedule,
    capacity: int,
    *,
    allow_redundant_loads: bool = False,
    require_empty_end: bool = True,
) -> Certificate:
    """Statically certify ``schedule`` against capacity ``capacity``.

    Returns a :class:`Certificate` whose ``findings`` list every violation
    (it does not stop at the first, unlike ``validate_schedule``) and whose
    ``stats`` carry the same ``loads``/``stores``/``peak_occupancy``
    counters the dynamic validator returns.
    """
    with timed("check.certify"):
        cert = _certify(
            schedule,
            capacity,
            allow_redundant_loads=allow_redundant_loads,
            require_empty_end=require_empty_end,
        )
    probe = get_probe()
    if probe.enabled:
        probe.count("check.certify.runs")
        probe.count("check.certify.steps", cert.stats.get("n_steps", 0))
        probe.count("check.certify.findings", len(cert.findings))
    return cert


def _certify(
    schedule: Schedule,
    capacity: int,
    *,
    allow_redundant_loads: bool,
    require_empty_end: bool,
) -> Certificate:
    shapes = schedule.shapes
    stride = max((r * c for r, c in shapes.values()), default=0) + 1
    mat_index: dict[str, int] = {}
    matrices: list[str] = []
    findings: list[Finding] = []
    unknown_seen: set[str] = set()

    parts: list[np.ndarray] = []
    part_code: list[int] = []
    part_pos: list[int] = []

    def add(region: Region, code: int, pos: int) -> bool:
        mi = mat_index.get(region.matrix)
        if mi is None:
            if region.matrix not in shapes:
                if region.matrix not in unknown_seen:
                    unknown_seen.add(region.matrix)
                    findings.append(
                        Finding(
                            code="RPS106",
                            message=f"step references unknown matrix {region.matrix!r}",
                            op_index=pos,
                            context={"matrix": region.matrix},
                        )
                    )
                return False
            mi = len(matrices)
            mat_index[region.matrix] = mi
            matrices.append(region.matrix)
        parts.append(region.flat + mi * stride)
        part_code.append(code)
        part_pos.append(pos)
        return True

    n_steps = len(schedule.steps)
    for pos, step in enumerate(schedule.steps):
        if isinstance(step, LoadStep):
            add(step.region, _LOAD, pos)
        elif isinstance(step, EvictStep):
            add(step.region, _EVICT_WB if step.writeback else _EVICT, pos)
        elif isinstance(step, ComputeStep):
            writes = list(step.op.writes())
            for region in step.op.reads():
                # an accumulator read is subsumed by its write event
                # (same residency requirement, and WRITE also marks dirty)
                if not any(region is w for w in writes):
                    add(region, _USE, pos)
            for region in writes:
                add(region, _WRITE, pos)

    stats = {"loads": 0, "stores": 0, "peak_occupancy": 0, "n_steps": n_steps}
    if not parts:
        return Certificate(findings=sort_findings(findings), stats=stats)

    sizes = np.fromiter((p.size for p in parts), dtype=np.int64, count=len(parts))
    gid = np.concatenate(parts)
    if len(matrices) * stride <= np.iinfo(np.int32).max:
        gid = gid.astype(np.int32, copy=False)  # halves sort/gather traffic
    code = np.repeat(np.asarray(part_code, dtype=np.int8), sizes)
    pos_ = np.repeat(np.asarray(part_pos, dtype=np.int32), sizes)

    # Per-element event chains: stable sort by element id keeps step order
    # inside each chain, so "previous event of the same element" is just
    # the previous row (or the ABSENT sentinel at a chain head).
    order = np.argsort(gid, kind="stable")
    gid, code, pos_ = gid[order], code[order], pos_[order]
    first = np.empty(gid.size, dtype=bool)
    first[0] = True
    first[1:] = gid[1:] != gid[:-1]
    prev = np.empty_like(code)
    prev[0] = _ABSENT
    prev[1:] = code[:-1]
    prev[first] = _ABSENT

    prev_in = prev <= _WRITE
    is_load = code == _LOAD
    is_touch = (code == _USE) | (code == _WRITE)
    is_evict = code >= _EVICT

    stats["loads"] = int(is_load.sum())
    stats["stores"] = int((code == _EVICT_WB).sum())

    def report(mask: np.ndarray, fcode: str, fmt) -> None:
        if not mask.any():
            return
        at = np.unique(pos_[mask])
        hits = np.flatnonzero(mask)
        hit_pos = pos_[hits]
        for p in at.tolist():
            sel = hits[hit_pos == p]
            g = int(gid[sel[0]])
            matrix, flat = matrices[g // stride], g % stride
            findings.append(
                Finding(
                    code=fcode,
                    message=fmt(int(sel.size), matrix),
                    op_index=int(p),
                    context={
                        "elements": int(sel.size),
                        "example": [matrix, int(flat)],
                    },
                )
            )

    if not allow_redundant_loads:
        report(
            is_load & prev_in,
            "RPS102",
            lambda n, m: f"redundant load of {n} resident element(s) of {m!r}",
        )
    report(
        is_touch & ~prev_in,
        "RPS101",
        lambda n, m: f"compute touches {n} non-resident element(s) of {m!r}",
    )
    report(
        is_evict & ~prev_in,
        "RPS103",
        lambda n, m: f"evict of {n} non-resident element(s) of {m!r}",
    )
    report(
        is_evict & (prev == _LOAD),
        "RPS201",
        lambda n, m: f"dead evict: {n} element(s) of {m!r} loaded but never touched",
    )

    # Store-of-clean: a writeback evict whose element saw no WRITE since
    # its most recent LOAD.  One *global* cummax suffices: rows are in
    # chain-major order, so the most recent LOAD/WRITE row before a
    # writeback is the writeback's own chain's whenever the chain has one
    # — and the ``prev_in`` guard keeps chains that don't (their heads are
    # already RPS101/RPS103 errors) out of this warning.  Encoding the
    # event in the mark's low bit turns "write after load?" into a parity
    # test, all in int32.
    idx_dtype = np.int32 if gid.size < 2**30 else np.int64
    idx2 = np.arange(gid.size, dtype=idx_dtype) << 1
    is_write = code == _WRITE
    marks = np.where(is_load | is_write, idx2 + is_write, 0)
    dirty = (np.maximum.accumulate(marks) & 1).astype(bool)
    report(
        (code == _EVICT_WB) & prev_in & ~dirty,
        "RPS202",
        lambda n, m: f"writeback of {n} clean element(s) of {m!r} (no write since load)",
    )

    # Exact occupancy: fresh loads enter, resident evicts leave; everything
    # erroneous (double loads, phantom evicts) is already flagged above and
    # charged conservatively (a double load occupies nothing new).
    delta = np.bincount(
        pos_[is_load & ~prev_in], minlength=n_steps
    ) - np.bincount(pos_[is_evict & prev_in], minlength=n_steps)
    occ = np.cumsum(delta)
    peak = int(occ.max(initial=0))
    stats["peak_occupancy"] = peak
    over = occ > capacity
    if over.any():
        p = int(np.argmax(over))
        findings.append(
            Finding(
                code="RPS104",
                message=(
                    f"load pushes occupancy to {int(occ[p])} beyond "
                    f"capacity {capacity}"
                ),
                op_index=p,
                context={"occupancy": int(occ[p]), "capacity": capacity, "peak": peak},
            )
        )

    if require_empty_end:
        last = np.empty(gid.size, dtype=bool)
        last[-1] = True
        last[:-1] = first[1:]
        residual = int((last & (code <= _WRITE)).sum())
        if residual:
            g = int(gid[np.flatnonzero(last & (code <= _WRITE))[0]])
            findings.append(
                Finding(
                    code="RPS105",
                    message=(
                        f"fast memory not empty at end of schedule "
                        f"({residual} resident)"
                    ),
                    op_index=n_steps - 1,
                    context={
                        "resident": residual,
                        "example": [matrices[g // stride], int(g % stride)],
                    },
                )
            )

    return Certificate(findings=sort_findings(findings), stats=stats)
