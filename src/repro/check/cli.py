"""``python -m repro check`` — the static analysis entry point.

Three modes, one finding model:

* **artifact mode** — certify a saved ``.npz`` schedule (``check path.npz
  --capacity S``), a store object (``--store ROOT --digest HEX``), every
  store object (``--store ROOT --all``), or a freshly recorded kernel
  (``--kernel tbs --n 40 --m 6 --s 15``).  With ``--p`` the kernel mode
  additionally partitions the dependence DAG and runs the cross-shard
  race detector plus the conservation checks.
* **lint mode** — ``check --lint src [more paths]`` runs the repo-invariant
  lint pass; any finding fails the run (the CI gate).
* ``--format json`` emits one machine-readable document instead of tables.

Exit status: 0 when no error-severity finding was produced (lint mode is
stricter: any finding at all fails), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import json
from typing import Any

from ..utils.fmt import Table, banner
from .certify import Certificate, certify_schedule
from .conservation import check_conservation
from .findings import CODES, Finding, has_errors, sort_findings
from .races import check_races


def add_check_parser(sub) -> None:
    """Register the ``check`` subparser on the CLI's subparsers object."""
    p = sub.add_parser(
        "check",
        help="static analysis: schedule certifier, race detector, repo lints",
    )
    p.add_argument("artifact", nargs="?", default=None,
                   help="a saved .npz schedule to certify")
    p.add_argument("--capacity", type=int, default=None,
                   help="fast-memory capacity S to certify against "
                        "(required for artifact paths; store objects "
                        "default to their key's S)")
    p.add_argument("--store", default=None, metavar="ROOT",
                   help="certify objects of a serve store")
    p.add_argument("--digest", default=None, metavar="HEX",
                   help="one store object (with --store)")
    p.add_argument("--all", action="store_true",
                   help="every keyed store object (with --store)")
    p.add_argument("--kernel", default=None,
                   help="record + certify a kernel case (tbs/ocs/syr2k/chol)")
    p.add_argument("--n", type=int, default=40)
    p.add_argument("--m", type=int, default=6)
    p.add_argument("--s", type=int, default=15)
    p.add_argument("--p", type=int, default=1,
                   help="with --kernel: also partition across p shards and "
                        "run the race detector + conservation checks")
    p.add_argument("--partitioner", default="owner-computes",
                   choices=["level-greedy", "locality", "owner-computes"])
    p.add_argument("--relax", action="store_true",
                   help="treat commuting reductions as reorderable "
                        "(race-checks the relaxed happens-before)")
    p.add_argument("--lint", nargs="+", default=None, metavar="PATH",
                   help="lint mode: check .py files under PATH(s)")
    p.add_argument("--format", choices=["table", "json"], default="table")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="write the run report (check.* counters) as JSON")


def _emit(mode: str, findings: list[Finding], stats: dict[str, Any],
          fmt: str, ok: bool) -> None:
    if fmt == "json":
        print(json.dumps({
            "mode": mode,
            "ok": ok,
            "findings": [f.as_dict() for f in findings],
            "stats": stats,
        }, indent=2))
        return
    if findings:
        t = Table(["code", "severity", "where", "message"])
        for f in findings:
            t.add_row([f.code, f.severity, f.where, f.message])
        print(t.render())
    summary = ", ".join(f"{k}={v}" for k, v in stats.items())
    verdict = "OK" if ok else "FAIL"
    print(f"{verdict}: {len(findings)} finding(s)" + (f" [{summary}]" if summary else ""))


def _cert_rows(label: str, cert: Certificate) -> dict[str, Any]:
    stats = dict(cert.stats)
    stats["target"] = label
    return stats


def cmd_check(args) -> int:
    fmt = args.format

    # ---- lint mode ----------------------------------------------------
    if args.lint is not None:
        from .lint import lint_paths

        findings = lint_paths(args.lint)
        _emit("lint", findings, {"paths": len(args.lint)}, fmt,
              ok=not findings)
        return 1 if findings else 0

    findings: list[Finding] = []
    stats: dict[str, Any] = {}

    # ---- store mode ---------------------------------------------------
    if args.store is not None:
        from ..serve.store import ScheduleStore

        store = ScheduleStore(args.store)
        by_digest = {key.digest(): key for key in store.keys()}
        if args.digest:
            targets = [args.digest]
        elif args.all:
            targets = sorted(by_digest)
        else:
            print("check --store needs --digest or --all")
            return 2
        certified = 0
        for digest in targets:
            key = by_digest.get(digest)
            capacity = args.capacity if args.capacity else (key.s if key else None)
            if capacity is None:
                print(f"skipping {digest[:12]}: no key in the manifest and "
                      f"no --capacity")
                continue
            schedule = store.get(key) if key else None
            if schedule is None:
                findings.append(Finding(
                    code="RPS107", message=f"store object {digest[:12]} is "
                    f"unreadable or missing", context={"digest": digest},
                ))
                continue
            cert = certify_schedule(schedule, capacity)
            findings.extend(
                Finding(code=f.code, message=f"[{digest[:12]}] {f.message}",
                        severity=f.severity, op_index=f.op_index,
                        context=dict(f.context, digest=digest))
                for f in cert.findings
            )
            certified += 1
        stats = {"objects": certified}
        ok = not has_errors(findings)
        if fmt == "table":
            print(banner(f"check store: {args.store} ({certified} object(s))"))
        _emit("store", sort_findings(findings), stats, fmt, ok)
        return 0 if ok else 1

    # ---- artifact mode ------------------------------------------------
    if args.artifact is not None:
        from ..trace.io import file_kind, load_schedule

        if file_kind(args.artifact) != "schedule":
            print(f"{args.artifact}: the certifier needs a schedule file "
                  f"(with explicit loads/evicts), not a trace")
            return 2
        if args.capacity is None:
            print("check ARTIFACT needs --capacity S")
            return 2
        schedule = load_schedule(args.artifact)
        cert = certify_schedule(schedule, args.capacity)
        if fmt == "table":
            print(banner(f"check schedule: {args.artifact} (S={args.capacity})"))
        _emit("artifact", cert.findings, _cert_rows(args.artifact, cert),
              fmt, cert.ok)
        return 0 if cert.ok else 1

    # ---- kernel mode --------------------------------------------------
    if args.kernel is None:
        print("check needs an artifact path, --store, --kernel or --lint "
              "(see python -m repro check --help)")
        return 2

    from ..graph.compare import record_case
    from ..graph.dependency import DependencyGraph

    case = record_case(args.kernel, args.n, args.m, args.s)
    cert = certify_schedule(case.schedule, case.capacity)
    findings = list(cert.findings)
    stats = _cert_rows(f"{args.kernel} n={args.n}", cert)

    if args.p > 1:
        from ..parallel.executor import partition_graph

        graph = DependencyGraph.from_trace(case.trace)
        owner = partition_graph(graph, args.p, args.partitioner)
        findings.extend(check_races(
            graph, owner, relax_reductions=args.relax))
        findings.extend(check_conservation(
            graph, owner,
            exclusive_writer=args.partitioner == "owner-computes"))
        stats["p"] = args.p
        stats["partitioner"] = args.partitioner

    ok = not has_errors(findings)
    if fmt == "table":
        mode = f"{args.kernel} n={args.n} m={args.m} s={args.s}"
        if args.p > 1:
            mode += f" p={args.p} ({args.partitioner})"
        print(banner(f"check kernel: {mode}"))
    _emit("kernel", sort_findings(findings), stats, fmt, ok)
    return 0 if ok else 1


def describe_codes() -> Table:
    """The finding-code catalog as a rendered table (used by docs)."""
    t = Table(["code", "severity", "meaning"])
    for code, (severity, title) in sorted(CODES.items()):
        t.add_row([code, severity, title])
    return t
