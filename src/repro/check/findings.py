"""The shared finding model every static check reports through.

A :class:`Finding` is one diagnostic: a stable flake8-style code, a
severity, a location (either an ``op_index`` into a schedule/op order, or
a ``file``/``line`` pair for codebase lints), a human-readable message and
a small ``context`` mapping with the machine-readable details (element
counts, example keys, shard ids, ...).

The module is deliberately dependency-free — ``sched.validate``,
``parallel.executor`` and ``serve.store`` all attach findings to their
errors, so nothing here may import back into the engine layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

ERROR = "error"
WARNING = "warning"

#: code -> (severity, short title).  The catalog is the documentation
#: contract: docs/CHECKS.md lists exactly these codes, and the CLI prints
#: the title next to each finding.
CODES: dict[str, tuple[str, str]] = {
    # stream / memory certifier (sched-level)
    "RPS101": (ERROR, "use of a non-resident element"),
    "RPS102": (ERROR, "redundant load of a resident element"),
    "RPS103": (ERROR, "evict of a non-resident element"),
    "RPS104": (ERROR, "peak residency exceeds capacity"),
    "RPS105": (ERROR, "fast memory not empty at end of schedule"),
    "RPS106": (ERROR, "step references an unknown matrix"),
    "RPS107": (ERROR, "artifact unreadable or missing"),
    "RPS201": (WARNING, "dead evict (loaded but never touched)"),
    "RPS202": (WARNING, "store of a clean element (writeback without write)"),
    # cross-shard race detector (graph-level)
    "RPR101": (ERROR, "execution order violates a dependence edge"),
    "RPR102": (ERROR, "cross-shard RAW pair left unordered"),
    "RPR103": (WARNING, "cross-shard WAR pair left unordered"),
    "RPR104": (WARNING, "cross-shard WAW pair left unordered"),
    "RPR105": (ERROR, "commuting reduction class split across shards unordered"),
    # conservation checks (partition-level)
    "RPC101": (ERROR, "transfer accounting asymmetric"),
    "RPC102": (ERROR, "receives below the distinct-footprint floor"),
    "RPC103": (ERROR, "exclusive-writer violation"),
    # codebase lints (repo-level)
    "RPL100": (ERROR, "file does not parse"),
    "RPL101": (ERROR, "raw artifact write outside the atomic io layer"),
    "RPL102": (ERROR, "probe counter name missing from the taxonomy"),
    "RPL103": (ERROR, "unseeded RNG construction outside utils/rng.py"),
    "RPL104": (ERROR, "time.perf_counter outside obs/ and benchmarks/"),
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a static check."""

    code: str
    message: str
    severity: str = ""
    op_index: int | None = None
    file: str | None = None
    line: int | None = None
    context: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.severity:
            sev = CODES.get(self.code, (ERROR, ""))[0]
            object.__setattr__(self, "severity", sev)

    @property
    def title(self) -> str:
        """The catalog title for this finding's code."""
        return CODES.get(self.code, (ERROR, "unknown code"))[1]

    @property
    def where(self) -> str:
        """Human-readable location: ``op 42``, ``path.py:17`` or ``-``."""
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line is not None else self.file
        if self.op_index is not None:
            return f"op {self.op_index}"
        return "-"

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready representation (used by ``--format json``)."""
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.op_index is not None:
            out["op_index"] = self.op_index
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        if self.context:
            out["context"] = dict(self.context)
        return out

    def __str__(self) -> str:
        return f"{self.code} [{self.severity}] {self.where}: {self.message}"


def has_errors(findings: Iterable[Finding]) -> bool:
    """True iff any finding in the iterable is error-severity."""
    return any(f.severity == ERROR for f in findings)


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Stable order for reporting: by location, then code."""

    def keyfn(f: Finding) -> tuple:
        return (
            f.file or "",
            f.line if f.line is not None else -1,
            f.op_index if f.op_index is not None else 1 << 60,
            f.code,
        )

    return sorted(findings, key=keyfn)
