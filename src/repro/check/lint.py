"""Repo-invariant lints: ``ast``-based, flake8-style codes.

Each rule encodes an invariant the repository has already paid a bug (or
a whole PR) for:

* **RPL101** — no raw artifact writes (``open(..., "w"/"wb"/...)``,
  ``np.savez*``) outside the atomic io layer.  PR 9's consistency story
  is temp-sibling + ``os.replace`` everywhere; a raw write reintroduces
  the torn-file class.  A write is exempt inside ``trace/io.py`` or when
  its enclosing function also calls ``os.replace`` (i.e. it *is* an
  atomic writer).
* **RPL102** — literal probe counter names must appear in the
  OBSERVABILITY.md taxonomy.  Undocumented counters silently rot the
  report format.  Dynamically built names (f-strings, variables) are
  skipped — only string literals are checked.
* **RPL103** — no unseeded RNG construction (``default_rng()``,
  ``random.Random()``) and no global-state RNG calls
  (``np.random.rand`` etc.) outside ``utils/rng.py``.  Reproducibility
  is a tier-1 test invariant.
* **RPL104** — no ``time.perf_counter`` outside ``obs/`` and
  ``benchmarks/``.  Ad-hoc timing belongs behind the probe layer
  (``repro.obs.timed``), which records iff a probe listens.

``lint_paths`` walks ``.py`` files and returns :class:`Finding`\\ s with
``file``/``line`` locations; ``python -m repro check --lint src`` is the
CI entry point.
"""

from __future__ import annotations

import ast
import os
import re
from pathlib import Path
from typing import Iterable, Sequence

from ..obs.probe import get_probe, timed
from .findings import Finding, sort_findings

_WRITE_MODE = re.compile(r"[wax+]")
_COUNTER_NAME = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")
_TAXONOMY_TOKEN = re.compile(
    r"\b[a-z][a-z0-9_]*(?:\.(?:\{[^{}.]+\}|<[a-z_]+>|[a-z][a-z0-9_]*))+"
)

#: numpy.random / random module-level functions that mutate global RNG state.
_GLOBAL_NP_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "standard_normal", "uniform", "seed",
}
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed",
}


def parse_taxonomy(text: str) -> list[tuple[str, ...]]:
    """Extract counter-name patterns from OBSERVABILITY.md prose.

    A pattern is a tuple of segments; a segment is a literal, ``*`` (from a
    ``<placeholder>``) or expanded from a ``{a,b,c}`` alternative group.
    """
    patterns: set[tuple[str, ...]] = set()
    for token in _TAXONOMY_TOKEN.findall(text):
        segment_choices: list[list[str]] = []
        for seg in token.split("."):
            if seg.startswith("{") and seg.endswith("}"):
                segment_choices.append([s.strip() for s in seg[1:-1].split(",")])
            elif seg.startswith("<") and seg.endswith(">"):
                segment_choices.append(["*"])
            else:
                segment_choices.append([seg])
        combos: list[tuple[str, ...]] = [()]
        for choices in segment_choices:
            combos = [c + (s,) for c in combos for s in choices]
        patterns.update(combos)
    return sorted(patterns)


def counter_documented(name: str, patterns: Sequence[tuple[str, ...]]) -> bool:
    """Does ``name`` match any taxonomy pattern (``*`` = one segment)?"""
    segs = tuple(name.split("."))
    for pat in patterns:
        if len(pat) == len(segs) and all(
            p == "*" or p == s for p, s in zip(pat, segs)
        ):
            return True
    return False


def find_taxonomy(start: "Path | str") -> Path | None:
    """Walk upward from ``start`` for ``docs/OBSERVABILITY.md``."""
    node = Path(start).resolve()
    if node.is_file():
        node = node.parent
    for parent in [node, *node.parents]:
        candidate = parent / "docs" / "OBSERVABILITY.md"
        if candidate.is_file():
            return candidate
    return None


class _FileLint(ast.NodeVisitor):
    def __init__(self, filename: str, parts: tuple[str, ...], counters) -> None:
        self.filename = filename
        self.parts = parts
        self.counters = counters
        self.findings: list[Finding] = []
        self._func_stack: list[ast.AST] = []
        self._atomic_cache: dict[int, bool] = {}
        self._perf_aliases: set[str] = set()
        self._rng_aliases: set[str] = set()
        self.in_io_layer = filename.replace(os.sep, "/").endswith("trace/io.py")
        self.in_rng_module = filename.replace(os.sep, "/").endswith("utils/rng.py")
        self.timing_exempt = bool({"obs", "benchmarks"} & set(parts))

    # -- helpers ---------------------------------------------------------
    def _flag(self, code: str, line: int, message: str, **context) -> None:
        self.findings.append(
            Finding(code=code, message=message, file=self.filename, line=line,
                    context=context)
        )

    def _enclosing_is_atomic(self) -> bool:
        """Does any enclosing function also call ``os.replace``?"""
        for fn in self._func_stack:
            key = id(fn)
            if key not in self._atomic_cache:
                self._atomic_cache[key] = any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "replace"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == "os"
                    for sub in ast.walk(fn)
                )
            if self._atomic_cache[key]:
                return True
        return False

    # -- structure -------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "time" and alias.name.startswith("perf_counter"):
                self._perf_aliases.add(bound)
            if node.module in ("numpy.random", "random") and alias.name in (
                "default_rng", "Random", "RandomState"
            ):
                self._rng_aliases.add(bound)
        self.generic_visit(node)

    # -- rules -----------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self.timing_exempt
            and node.attr.startswith("perf_counter")
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
        ):
            self._flag(
                "RPL104", node.lineno,
                "time.perf_counter outside obs/ and benchmarks/ — "
                "use repro.obs.timed",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if not self.timing_exempt and node.id in self._perf_aliases:
            self._flag(
                "RPL104", node.lineno,
                "time.perf_counter outside obs/ and benchmarks/ — "
                "use repro.obs.timed",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_raw_write(node)
        self._check_counter_name(node)
        if not self.in_rng_module:
            self._check_rng(node)
        self.generic_visit(node)

    def _check_raw_write(self, node: ast.Call) -> None:
        if self.in_io_layer:
            return
        fn = node.func
        is_savez = (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("savez", "savez_compressed")
            and isinstance(fn.value, ast.Name)
            and fn.value.id in ("np", "numpy")
        )
        is_write_open = False
        if (isinstance(fn, ast.Name) and fn.id == "open") or (
            isinstance(fn, ast.Attribute) and fn.attr == "open"
        ):
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and _WRITE_MODE.search(mode.value)
            ):
                is_write_open = True
        if not (is_savez or is_write_open):
            return
        if self._enclosing_is_atomic():
            return
        what = "np.savez" if is_savez else "open(..., write mode)"
        self._flag(
            "RPL101", node.lineno,
            f"raw artifact write via {what} outside trace/io.py — "
            f"use the atomic temp+os.replace writers",
        )

    def _check_counter_name(self, node: ast.Call) -> None:
        if self.counters is None:
            return
        fn = node.func
        if not (isinstance(fn, ast.Attribute) and fn.attr == "count"):
            return
        if "probe" not in ast.unparse(fn.value).lower():
            return
        if not node.args:
            return
        arg = node.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return  # dynamically built names are out of scope
        name = arg.value
        if not _COUNTER_NAME.match(name):
            return
        if not counter_documented(name, self.counters):
            self._flag(
                "RPL102", node.lineno,
                f"probe counter {name!r} is not in the OBSERVABILITY.md "
                f"taxonomy",
                counter=name,
            )

    def _check_rng(self, node: ast.Call) -> None:
        fn = node.func
        line = node.lineno
        if isinstance(fn, ast.Attribute):
            if fn.attr == "default_rng" and not node.args and not node.keywords:
                self._flag(
                    "RPL103", line,
                    "unseeded default_rng() outside utils/rng.py",
                )
                return
            if (
                fn.attr in ("Random", "RandomState")
                and not node.args
                and not node.keywords
            ):
                self._flag(
                    "RPL103", line,
                    f"unseeded {fn.attr}() outside utils/rng.py",
                )
                return
            # Global-state RNG: np.random.<fn>(...) / random.<fn>(...)
            value = fn.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and fn.attr in _GLOBAL_NP_RANDOM
            ):
                self._flag(
                    "RPL103", line,
                    f"global np.random.{fn.attr} outside utils/rng.py",
                )
            elif (
                isinstance(value, ast.Name)
                and value.id == "random"
                and fn.attr in _GLOBAL_RANDOM
            ):
                self._flag(
                    "RPL103", line,
                    f"global random.{fn.attr} outside utils/rng.py",
                )
        elif isinstance(fn, ast.Name) and fn.id in self._rng_aliases:
            if not node.args and not node.keywords:
                self._flag(
                    "RPL103", line,
                    f"unseeded {fn.id}() outside utils/rng.py",
                )


def lint_source(
    source: str,
    filename: str,
    *,
    counters: Sequence[tuple[str, ...]] | None = None,
) -> list[Finding]:
    """Lint one module's source text (unit-test entry point)."""
    norm = filename.replace(os.sep, "/")
    parts = tuple(norm.split("/"))
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                code="RPL100",
                severity="error",
                message=f"syntax error: {exc.msg}",
                file=filename,
                line=exc.lineno or 1,
            )
        ]
    visitor = _FileLint(filename, parts, counters)
    visitor.visit(tree)
    return visitor.findings


def iter_python_files(paths: Iterable[str | os.PathLike]) -> list[Path]:
    """All ``.py`` files under ``paths`` (skipping caches), sorted."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(
                f
                for f in path.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
    return sorted(set(files))


def lint_paths(
    paths: Iterable[str | os.PathLike],
    *,
    taxonomy_path: str | os.PathLike | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns all findings."""
    files = iter_python_files(paths)
    counters = None
    taxonomy = Path(taxonomy_path) if taxonomy_path else (
        find_taxonomy(files[0]) if files else None
    )
    if taxonomy is not None and taxonomy.is_file():
        counters = parse_taxonomy(taxonomy.read_text(encoding="utf-8"))
    findings: list[Finding] = []
    with timed("check.lint"):
        for path in files:
            rel = os.path.relpath(path)
            findings.extend(
                lint_source(path.read_text(encoding="utf-8"), rel, counters=counters)
            )
    probe = get_probe()
    if probe.enabled:
        probe.count("check.lint.files", len(files))
        probe.count("check.lint.findings", len(findings))
    return sort_findings(findings)
