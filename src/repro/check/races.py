"""Cross-shard race detection via vector clocks over the dependence DAG.

Given a dependency graph, an ``owner`` map (op -> shard) and an execution
order, :func:`check_races` rebuilds the happens-before relation a real
p-node execution would have:

* **program order** — ops on the same shard execute in their order
  positions, so consecutive same-shard ops are ordered;
* **transfer edges** — every cross-shard *data-carrying* edge (RAW always;
  reduction edges unless ``relax_reductions``) implies a send/receive
  pair, which synchronizes the two shards.

Each op gets a vector clock over the p shards (the classic FastTrack-style
construction, vectorized per op): the clock joins the previous same-shard
op's clock with every synchronizing predecessor's, then ticks its own
shard component.  ``u`` happened-before ``v`` iff ``VC[v][owner[u]] >=
tick(u)``.  Any dependence pair left unordered under that relation is a
race:

* same-shard (or any) edge whose endpoints appear inverted in the
  execution order                                      -> RPR101
* cross-shard RAW pair not covered by a transfer        -> RPR102
* cross-shard WAR / WAW pair with no ordering path      -> RPR103 / RPR104
* two members of one commuting-reduction class placed on different shards
  with no ordering either way under ``relax_reductions`` -> RPR105
  (the partial sums can never be combined deterministically)

By default the transfer set is derived from the graph itself (every
cross-shard data edge is assumed shipped, which is exactly what
``parallel.executor`` charges); pass an explicit ``transfers`` list to
audit a concrete transfer plan — a dropped transfer then surfaces as the
RPR102 it causes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..graph.dependency import DependencyGraph
from ..obs.probe import get_probe, timed
from .findings import Finding, sort_findings


def check_races(
    graph: DependencyGraph,
    owner: Sequence[int],
    *,
    order: Sequence[int] | None = None,
    relax_reductions: bool = False,
    transfers: Iterable[tuple[int, int]] | None = None,
) -> list[Finding]:
    """Flag every dependence pair the (order, owner) placement leaves unordered."""
    with timed("check.races"):
        findings = _check_races(
            graph,
            owner,
            order=order,
            relax_reductions=relax_reductions,
            transfers=transfers,
        )
    probe = get_probe()
    if probe.enabled:
        probe.count("check.races.runs")
        probe.count("check.races.findings", len(findings))
    return findings


def _check_races(
    graph: DependencyGraph,
    owner: Sequence[int],
    *,
    order: Sequence[int] | None,
    relax_reductions: bool,
    transfers: Iterable[tuple[int, int]] | None,
) -> list[Finding]:
    n = len(graph)
    if len(owner) != n:
        raise ValueError(f"owner has {len(owner)} entries for {n} ops")
    p = (max(owner) + 1) if n else 1

    if order is None:
        order = range(n)
    pos = np.empty(n, dtype=np.int64)
    pos[np.asarray(list(order), dtype=np.int64)] = np.arange(n, dtype=np.int64)

    findings: list[Finding] = []

    # 1. Execution order must respect every kept dependence edge (reduction
    #    edges are exempt only when relaxed).
    for u, v, kinds in graph.edges():
        if relax_reductions and kinds == {"reduction"}:
            continue
        if pos[u] > pos[v]:
            findings.append(
                Finding(
                    code="RPR101",
                    message=(
                        f"op {v} ({graph.nodes[v].op.name}) runs at position "
                        f"{int(pos[v])} before its {'/'.join(sorted(kinds))} "
                        f"predecessor op {u} at position {int(pos[u])}"
                    ),
                    op_index=v,
                    context={
                        "pred": u,
                        "kinds": sorted(kinds),
                        "positions": [int(pos[u]), int(pos[v])],
                    },
                )
            )

    # 2. Synchronization set: which predecessor edges carry data (and hence
    #    a transfer when cut).  An explicit transfer plan overrides the
    #    derived all-data-edges-shipped default for *cross-shard* pairs.
    def is_sync_kind(kinds: frozenset[str]) -> bool:
        if "raw" in kinds:
            return True
        return "reduction" in kinds and not relax_reductions

    explicit = None if transfers is None else {(u, v) for u, v in transfers}

    def synchronizes(u: int, v: int, kinds: frozenset[str]) -> bool:
        if not is_sync_kind(kinds):
            return False
        if owner[u] == owner[v]:
            return True  # program order carries it; no transfer needed
        return explicit is None or (u, v) in explicit

    # 3. Vector clocks, one sweep in execution order.
    clock = np.zeros((n, p), dtype=np.int64)
    tick_of = np.zeros(n, dtype=np.int64)
    shard_tick = [0] * p
    last_on_shard = [-1] * p
    for v in np.argsort(pos, kind="stable").tolist():
        q = owner[v]
        prev = last_on_shard[q]
        vc = clock[prev].copy() if prev >= 0 else np.zeros(p, dtype=np.int64)
        for u, kinds in graph.preds[v].items():
            if pos[u] < pos[v] and owner[u] != q and synchronizes(u, v, kinds):
                np.maximum(vc, clock[u], out=vc)
        shard_tick[q] += 1
        vc[q] = shard_tick[q]
        clock[v] = vc
        tick_of[v] = shard_tick[q]
        last_on_shard[q] = v

    def ordered(u: int, v: int) -> bool:
        """u happened-before v (assumes pos[u] < pos[v] was checked)."""
        return bool(clock[v, owner[u]] >= tick_of[u])

    # 4. Cross-shard dependence pairs must be covered by happens-before.
    race_code = {"raw": "RPR102", "war": "RPR103", "waw": "RPR104"}
    n_edges = 0
    for u, v, kinds in graph.edges():
        n_edges += 1
        if owner[u] == owner[v] or pos[u] > pos[v]:
            continue  # same shard: program order; inverted: already RPR101
        if relax_reductions and kinds == {"reduction"}:
            continue  # handled per reduction class below
        if ordered(u, v):
            continue
        for kind in ("raw", "war", "waw"):
            if kind in kinds:
                findings.append(
                    Finding(
                        code=race_code[kind],
                        message=(
                            f"cross-shard {kind.upper()} pair op {u} (shard "
                            f"{owner[u]}) -> op {v} (shard {owner[v]}) has no "
                            f"happens-before path"
                        ),
                        op_index=v,
                        context={"pred": u, "shards": [owner[u], owner[v]]},
                    )
                )

    # 5. Relaxed commuting reductions: a class split across shards is only
    #    legal if *some* ordering still combines the partial sums — i.e.
    #    every cross-shard member pair must be ordered one way or the other.
    if relax_reductions:
        for members in graph.reduction_classes():
            shards = {owner[u] for u in members}
            if len(shards) < 2:
                continue
            racy = None
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    if owner[u] == owner[v]:
                        continue
                    a, b = (u, v) if pos[u] < pos[v] else (v, u)
                    if not ordered(a, b):
                        racy = (u, v)
                        break
                if racy:
                    break
            if racy:
                findings.append(
                    Finding(
                        code="RPR105",
                        message=(
                            f"commuting reduction class of {len(members)} ops "
                            f"split across shards {sorted(shards)} with "
                            f"unordered members (e.g. ops {racy[0]} and "
                            f"{racy[1]}) under relax_reductions"
                        ),
                        op_index=int(racy[1]),
                        context={
                            "class_size": len(members),
                            "shards": sorted(shards),
                            "example": [int(racy[0]), int(racy[1])],
                        },
                    )
                )

    probe = get_probe()
    if probe.enabled:
        probe.count("check.races.edges", n_edges)
    return sort_findings(findings)
