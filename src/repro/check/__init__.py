"""Static analysis over schedules, partitions and the repository itself.

``repro.check`` proves the invariants the rest of the repo establishes
dynamically — in one linear pass, without replaying anything:

* :mod:`~repro.check.certify` — the memory certifier: peak residency <= S,
  load-before-use, double-load, dead-evict, evict-without-load and
  store-of-clean, all from the load/evict stream alone.
* :mod:`~repro.check.races` — the cross-shard race detector: vector-clock
  happens-before from shard program order + transfer edges; flags every
  RAW/WAR/WAW pair (and relax-split commuting reductions) left unordered.
* :mod:`~repro.check.conservation` — transfer symmetry, the per-shard
  receive floor and the owner-computes exclusive-writer rule, re-derived
  statically from the dependence graph.
* :mod:`~repro.check.lint` — repo-invariant lints (atomic writes, probe
  counter taxonomy, seeded RNGs, no stray ``perf_counter``).
* :mod:`~repro.check.findings` — the shared :class:`Finding` model every
  check (and ``sched.validate`` / ``parallel.executor``) reports through.

CLI: ``python -m repro check`` (see :mod:`repro.check.cli`).
"""

# Exports resolve lazily (PEP 562): ``sched.validate`` and the executor
# import ``repro.check.findings`` at module load, and the analyzers here
# import ``sched``/``graph`` right back — eager re-exports would close
# that cycle during package init.
_EXPORTS = {
    "Certificate": "certify",
    "certify_schedule": "certify",
    "check_conservation": "conservation",
    "check_summary": "conservation",
    "derived_transfer_totals": "conservation",
    "CODES": "findings",
    "ERROR": "findings",
    "WARNING": "findings",
    "Finding": "findings",
    "has_errors": "findings",
    "sort_findings": "findings",
    "counter_documented": "lint",
    "lint_paths": "lint",
    "lint_source": "lint",
    "parse_taxonomy": "lint",
    "check_races": "races",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "CODES",
    "Certificate",
    "ERROR",
    "Finding",
    "WARNING",
    "certify_schedule",
    "check_conservation",
    "check_races",
    "check_summary",
    "counter_documented",
    "derived_transfer_totals",
    "has_errors",
    "lint_paths",
    "lint_source",
    "parse_taxonomy",
    "sort_findings",
]
