"""Static conservation checks over a partitioned dependence graph.

``parallel.executor`` asserts these mid-replay (and only the one global
transfer symmetry); here the same invariants are *re-derived* from the
graph + owner map alone, so any executor summary — or any externally
produced tally — can be audited after the fact:

* **RPC101** transfer symmetry: every element sent is received, globally
  and per shard pair; a supplied per-shard tally must match the flows the
  cut actually implies.
* **RPC102** receives >= the distinct-footprint floor: a shard touching k
  distinct elements cannot have charged fewer than k loads (the §2.2
  loads-as-receives equivalence is a lower bound per shard).
* **RPC103** owner-computes exclusive writer: no element is written from
  two shards.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.dependency import DependencyGraph
from ..obs.probe import get_probe, timed
from .findings import Finding, sort_findings


def derived_transfer_totals(
    graph: DependencyGraph, owner: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Per-shard (transfer_in, transfer_out) element totals implied by the cut."""
    p = (max(owner) + 1) if len(owner) else 1
    into = [0] * p
    out = [0] * p
    for (src, dst), elems in graph.cut_transfers(owner).items():
        out[src] += len(elems)
        into[dst] += len(elems)
    return into, out


def check_conservation(
    graph: DependencyGraph,
    owner: Sequence[int],
    *,
    transfer_in: Sequence[int] | None = None,
    transfer_out: Sequence[int] | None = None,
    recv: Sequence[int] | None = None,
    exclusive_writer: bool = False,
) -> list[Finding]:
    """Audit reported tallies (or just the placement) against the graph.

    ``transfer_in``/``transfer_out``/``recv`` are optional per-shard
    tallies as an executor run reports them; omitted tallies skip their
    checks.  ``exclusive_writer=True`` additionally enforces the
    owner-computes single-writer discipline.
    """
    with timed("check.conservation"):
        findings = _check(
            graph,
            owner,
            transfer_in=transfer_in,
            transfer_out=transfer_out,
            recv=recv,
            exclusive_writer=exclusive_writer,
        )
    probe = get_probe()
    if probe.enabled:
        probe.count("check.conservation.runs")
        probe.count("check.conservation.findings", len(findings))
    return findings


def _check(
    graph: DependencyGraph,
    owner: Sequence[int],
    *,
    transfer_in: Sequence[int] | None,
    transfer_out: Sequence[int] | None,
    recv: Sequence[int] | None,
    exclusive_writer: bool,
) -> list[Finding]:
    findings: list[Finding] = []
    derived_in, derived_out = derived_transfer_totals(graph, owner)

    if transfer_in is not None and transfer_out is not None:
        total_in, total_out = sum(transfer_in), sum(transfer_out)
        if total_in != total_out:
            findings.append(
                Finding(
                    code="RPC101",
                    message=(
                        f"transfer accounting asymmetric: {total_in} received "
                        f"vs {total_out} sent"
                    ),
                    context={"received": total_in, "sent": total_out},
                )
            )
        for q, (rep_i, rep_o) in enumerate(zip(transfer_in, transfer_out)):
            if (int(rep_i), int(rep_o)) != (derived_in[q], derived_out[q]):
                findings.append(
                    Finding(
                        code="RPC101",
                        message=(
                            f"shard {q}: reported transfers in/out "
                            f"{int(rep_i)}/{int(rep_o)} != derived "
                            f"{derived_in[q]}/{derived_out[q]}"
                        ),
                        context={
                            "shard": q,
                            "reported": [int(rep_i), int(rep_o)],
                            "derived": [derived_in[q], derived_out[q]],
                        },
                    )
                )

    if recv is not None:
        p = len(recv)
        touched: list[set[int]] = [set() for _ in range(p)]
        for v, node in enumerate(graph.nodes):
            touched[owner[v]].update(node.touched_keys())
        for q in range(p):
            floor = len(touched[q])
            if int(recv[q]) < floor:
                findings.append(
                    Finding(
                        code="RPC102",
                        message=(
                            f"shard {q}: {int(recv[q])} receives charged below "
                            f"its distinct-footprint floor {floor}"
                        ),
                        context={"shard": q, "recv": int(recv[q]), "floor": floor},
                    )
                )

    if exclusive_writer:
        writers: dict[int, int] = {}
        shared: dict[int, set[int]] = {}
        for v, node in enumerate(graph.nodes):
            q = owner[v]
            for key in node.write_keys:
                prev = writers.setdefault(key, q)
                if prev != q:
                    shared.setdefault(key, {prev}).add(q)
        if shared:
            key, shards = next(iter(sorted(shared.items())))
            findings.append(
                Finding(
                    code="RPC103",
                    message=(
                        f"{len(shared)} element(s) written from multiple "
                        f"shards under owner-computes (e.g. element {key} "
                        f"from shards {sorted(shards)})"
                    ),
                    context={
                        "elements": len(shared),
                        "example": [int(key), sorted(shards)],
                    },
                )
            )

    return sort_findings(findings)


def check_summary(graph: DependencyGraph, summary, *, exclusive_writer: bool | None = None) -> list[Finding]:
    """Audit a :class:`~repro.parallel.executor.ExecutorSummary` statically."""
    owner = list(summary.owner)
    if exclusive_writer is None:
        exclusive_writer = getattr(summary, "partitioner", "") == "owner-computes"
    return check_conservation(
        graph,
        owner,
        transfer_in=[s.transfer_in for s in summary.shards],
        transfer_out=[s.transfer_out for s in summary.shards],
        recv=[s.recv for s in summary.shards],
        exclusive_writer=exclusive_writer,
    )
