"""Run-configuration objects and library-wide defaults.

The paper's machine model has a single parameter: the fast-memory capacity
``S`` (in matrix *elements*).  Algorithms derive their internal shapes from
``S``:

* element-level TBS uses the largest triangle side ``k`` with
  ``k(k+1)/2 <= S`` (one triangle block of ``C`` plus one ``k``-vector of
  ``A`` exactly fill the memory, Section 5.1.1 of the paper);
* tiled TBS uses tile side ``b`` and tile-triangle side ``k`` with
  ``b^2 * k(k-1)/2 + k*b <= S`` (Section 5.1.4);
* the Bereux one-tile baselines use square tiles of side ``s`` with
  ``s^2 + 2s <= S`` (one tile plus two streamed length-``s`` vectors).

:class:`MachineConfig` bundles the capacity with simulator options;
helper functions compute the derived shape parameters (and are unit-tested
against the inequalities above).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .errors import ConfigurationError

#: Default RNG seed used across examples/benches so results are reproducible.
DEFAULT_SEED = 20220711  # SPAA'22 began July 11, 2022.

#: Comparison tolerance for numeric verification against NumPy references.
VERIFY_RTOL = 1e-10
VERIFY_ATOL = 1e-10


@dataclass(frozen=True)
class MachineConfig:
    """Configuration of the simulated two-level machine.

    Parameters
    ----------
    capacity:
        Fast memory size ``S`` in elements.  Must be positive.
    strict:
        If True (default), the machine keeps a NaN-poisoned shadow copy of
        resident data and computations operate on the shadow; omitted loads
        or writebacks then corrupt results detectably.  If False, compute
        ops operate directly on slow-memory arrays (faster; residency and
        capacity are still enforced and I/O still counted).
    allow_redundant_loads:
        If False (default), loading an already-resident element raises
        :class:`repro.errors.RedundantLoadError`.
    record_events:
        If True, the tracker keeps a full per-operation event log (memory
        heavy; meant for small debugging runs and the figure renderers).
    """

    capacity: int
    strict: bool = True
    allow_redundant_loads: bool = False
    record_events: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"capacity S must be positive, got {self.capacity}")


def triangle_side_for_memory(S: int) -> int:
    """Largest ``k`` with ``k(k+1)/2 <= S`` (element-level TBS, Section 5.1.1).

    The memory must fit a triangle block of ``C`` with side ``k``
    (``k(k-1)/2`` elements) plus a ``k``-vector of ``A``, i.e. ``k(k+1)/2``
    elements in total.

    >>> triangle_side_for_memory(15)
    5
    >>> triangle_side_for_memory(14)
    4
    """
    if S < 1:
        raise ConfigurationError(f"S must be >= 1, got {S}")
    # Solve k(k+1)/2 <= S  <=>  k <= (sqrt(8S+1)-1)/2.
    k = int((math.isqrt(8 * S + 1) - 1) // 2)
    # Guard against isqrt flooring interactions.
    while (k + 1) * (k + 2) // 2 <= S:
        k += 1
    while k * (k + 1) // 2 > S:
        k -= 1
    return k


def square_tile_side_for_memory(S: int) -> int:
    """Largest ``s`` with ``s^2 + 2s <= S`` (one-tile narrow-block baselines).

    The Bereux one-tile algorithms keep one ``s x s`` tile of the output
    resident plus two streamed length-``s`` vectors.

    >>> square_tile_side_for_memory(15)
    3
    >>> square_tile_side_for_memory(8)
    2
    """
    if S < 3:
        raise ConfigurationError(f"S must be >= 3 for a 1x1 tile plus two vectors, got {S}")
    s = int(math.isqrt(S))
    while s * s + 2 * s > S:
        s -= 1
    if s < 1:
        raise ConfigurationError(f"S={S} cannot fit any square tile with streaming vectors")
    return s


def tiled_tbs_shape_for_memory(S: int, k: int) -> int:
    """Largest tile side ``b`` with ``b^2 * k(k-1)/2 + k*b <= S`` (Section 5.1.4).

    ``k`` is the side of the triangle *of tiles*; memory holds ``k(k-1)/2``
    tiles of ``b x b`` elements plus one streamed column of ``k`` length-``b``
    segments of ``A``.
    """
    if k < 2:
        raise ConfigurationError(f"tile-triangle side k must be >= 2, got {k}")
    tri = k * (k - 1) // 2
    if S < tri + k:
        raise ConfigurationError(
            f"S={S} too small for k={k} (needs >= {tri + k} for b=1)"
        )
    b = int(math.isqrt(max(1, S // tri)))
    while b * b * tri + k * b > S:
        b -= 1
    while (b + 1) * (b + 1) * tri + k * (b + 1) <= S:
        b += 1
    if b < 1:
        raise ConfigurationError(f"S={S}, k={k}: no feasible tile side")
    return b


def lbc_block_size(N: int) -> int:
    """The paper's choice ``b = sqrt(N)`` for LBC, rounded to a divisor of N.

    Theorem 5.7's analysis takes ``b = sqrt(N)``; any ``b = Theta(sqrt(N))``
    gives the same leading term.  We return the divisor of ``N`` closest to
    ``sqrt(N)`` so that the algorithm's ``b | N`` assumption holds exactly.
    """
    if N < 1:
        raise ConfigurationError(f"N must be positive, got {N}")
    target = math.sqrt(N)
    best = 1
    for d in range(1, N + 1):
        if d * d > N:
            break
        if N % d == 0:
            for cand in (d, N // d):
                if abs(cand - target) < abs(best - target):
                    best = cand
    return best
