"""Provenance stamps: who produced this artifact, from what, with what.

Benchmark JSONs and run reports outlive the working tree that produced
them; without a stamp two payloads with different numbers cannot be told
apart ("different commit?  different numpy?  different machine?").
:func:`provenance_stamp` answers all of it in one dict every writer embeds
under the ``"provenance"`` key: schema version, git SHA (plus a dirty
flag), host, platform, python/numpy versions, and a UTC timestamp.

Everything is gathered defensively — a missing ``git`` binary or a
non-repository checkout yields ``None`` fields, never an exception — so
stamping can be unconditional.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

#: Version of the provenance block itself (bump on incompatible changes).
SCHEMA_VERSION = 1


def git_revision(cwd: "str | Path | None" = None) -> "tuple[str | None, bool | None]":
    """``(sha, dirty)`` of the repository at ``cwd``; ``(None, None)`` outside one."""
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


def provenance_stamp(extra: "dict[str, Any] | None" = None) -> dict[str, Any]:
    """The provenance block every saved artifact carries.

    ``extra`` entries are merged on top (they may not override the
    standard keys — a stamp that lies about its git SHA is worse than no
    stamp).
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    sha, dirty = git_revision()
    stamp: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "git_sha": sha,
        "git_dirty": dirty,
        "host": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy_version,
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if extra:
        for key, value in extra.items():
            if key in stamp:
                raise ValueError(f"extra provenance key {key!r} shadows a standard field")
            stamp[key] = value
    return stamp
