"""Iteration-level telemetry of the search engines.

The three search drivers (simulated annealing, the greedy partition
refiner, beam search) return a final cost and a handful of counters;
whether the run *plateaued* or was *still descending* — the question the
ROADMAP raises about the measured refined/bound ratios — needs the full
trajectory.  Two column-oriented series cover every engine:

* :class:`AnnealSeries` — one row per Metropolis iteration:
  ``(iter, temp, cost, best, accepted)``.  Produced by
  :func:`repro.graph.search.anneal_minimize` and therefore shared by both
  of its drivers (:func:`repro.graph.search.anneal_search` over compute
  orders, :func:`repro.parallel.refine.refine_partition` over shard
  assignments);
* :class:`RoundSeries` — one row per improvement round:
  ``(round, best)``.  Produced by the greedy refiner (one row per accepted
  move) and by beam search (best accumulated cost per emitted position).

Both serialize to plain dicts of lists (``as_dict`` / ``from_dict`` /
:func:`series_from_dict`), land in run reports as attachments, and render
as ASCII curves (:func:`repro.obs.report.render_series`).  Recording is
append-only and touches no RNG, so a recorded run is bit-identical to an
unrecorded one — pinned by the invariance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class AnnealSeries:
    """Per-iteration ``(iter, temp, cost, best, accepted)`` of one Metropolis run.

    ``cost`` is the accepted (current) cost after the iteration, ``best``
    the lowest cost accepted so far (seeded with the starting cost) —
    ``bests`` is therefore non-increasing and its tail tells plateau from
    descent at a glance.
    """

    label: str = ""
    iters: list[int] = field(default_factory=list)
    temps: list[float] = field(default_factory=list)
    costs: list[float] = field(default_factory=list)
    bests: list[float] = field(default_factory=list)
    accepted: list[bool] = field(default_factory=list)

    def add(self, i: int, temp: float, cost: float, best: float, was_accepted: bool) -> None:
        self.iters.append(int(i))
        self.temps.append(float(temp))
        self.costs.append(float(cost))
        self.bests.append(float(best))
        self.accepted.append(bool(was_accepted))

    def __len__(self) -> int:
        return len(self.iters)

    @property
    def improvement(self) -> float:
        """Best-cost drop over the run (0.0 for an empty series)."""
        if not self.bests:
            return 0.0
        return self.bests[0] - self.bests[-1]

    def plateau_length(self) -> int:
        """Trailing iterations during which ``best`` did not improve."""
        if not self.bests:
            return 0
        final = self.bests[-1]
        run = 0
        for b in reversed(self.bests):
            if b != final:
                break
            run += 1
        return run

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "anneal",
            "label": self.label,
            "iter": list(self.iters),
            "temp": list(self.temps),
            "cost": list(self.costs),
            "best": list(self.bests),
            "accepted": list(self.accepted),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "AnnealSeries":
        return cls(
            label=d.get("label", ""),
            iters=[int(i) for i in d.get("iter", [])],
            temps=[float(t) for t in d.get("temp", [])],
            costs=[float(c) for c in d.get("cost", [])],
            bests=[float(b) for b in d.get("best", [])],
            accepted=[bool(a) for a in d.get("accepted", [])],
        )


@dataclass
class RoundSeries:
    """Per-round ``(round, best)`` trace of a monotone-improvement engine."""

    label: str = ""
    engine: str = ""
    rounds: list[int] = field(default_factory=list)
    bests: list[float] = field(default_factory=list)

    def add(self, r: int, best: float) -> None:
        self.rounds.append(int(r))
        self.bests.append(float(best))

    def __len__(self) -> int:
        return len(self.rounds)

    @property
    def improvement(self) -> float:
        """Best-cost drop over the run (0.0 for an empty series)."""
        if not self.bests:
            return 0.0
        return self.bests[0] - self.bests[-1]

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "rounds",
            "label": self.label,
            "engine": self.engine,
            "round": list(self.rounds),
            "best": list(self.bests),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RoundSeries":
        return cls(
            label=d.get("label", ""),
            engine=d.get("engine", ""),
            rounds=[int(r) for r in d.get("round", [])],
            bests=[float(b) for b in d.get("best", [])],
        )


def series_from_dict(d: dict[str, Any]) -> "AnnealSeries | RoundSeries":
    """Rebuild a serialized series from its ``as_dict`` form (by ``kind``)."""
    kind = d.get("kind")
    if kind == "anneal":
        return AnnealSeries.from_dict(d)
    if kind == "rounds":
        return RoundSeries.from_dict(d)
    raise ValueError(f"unknown series kind {kind!r}; expected 'anneal' or 'rounds'")
