"""Chrome trace-event / Perfetto export of simulated parallel executions.

The makespan model (:mod:`repro.parallel.makespan`) computes a start and
finish time for every op on every node; this module renders that schedule
in the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
which both ``chrome://tracing`` and `ui.perfetto.dev
<https://ui.perfetto.dev>`_ open directly:

* one *track* (thread) per node, one complete event (``ph: "X"``) per op,
  named ``<op.name>#<index>`` and carrying the op's mults in ``args``;
* one *flow* arrow (``ph: "s"`` → ``ph: "f"``) per cross-node
  data-carrying dependence edge, from the producer's finish on its node's
  track to the consumer's start on the destination track, carrying the
  transferred element count — the cut made visible.

Timestamps are the model's own units (op weights — mults by default — plus
``alpha + beta * elements`` edge latencies); the viewer labels them as
microseconds, which is harmless: the *shape* of the timeline (which node
idles, which transfer chains serialize the critical path) is the point.

The exported document is a JSON object (``{"traceEvents": [...]}``), the
variant of the format that allows extra top-level keys — the export adds
``"provenance"`` (:func:`repro.obs.provenance.provenance_stamp`) and a
``"meta"`` block (p, makespan, floors), which viewers ignore and the
artifact schema check requires.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Any

from .provenance import provenance_stamp

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from ..graph.dependency import DependencyGraph
    from ..parallel.makespan import MakespanResult


def timeline_events(
    graph: "DependencyGraph",
    span: "MakespanResult",
    *,
    relax_reductions: bool = False,
) -> list[dict[str, Any]]:
    """The trace-event list of one scored ``(owner, order)`` pair.

    ``span`` must carry the per-op arrays (``start``/``finish``/``node``)
    a :func:`~repro.parallel.makespan.makespan_model` call returns;
    ``relax_reductions`` must match the call that produced it so the flow
    arrows traverse the same effective edge set the model charged.
    """
    n = len(graph)
    if len(span.start) != n or len(span.node) != n:
        raise ValueError(
            f"span carries {len(span.start)} per-op times for {n} graph ops; "
            "score the same graph with makespan_model first"
        )
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"simulated fleet (p={span.p})"},
        }
    ]
    for q in range(span.p):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": q,
                "args": {"name": f"node {q}"},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": q,
                "args": {"sort_index": q},
            }
        )
    for v in range(n):
        op = graph.nodes[v].op
        events.append(
            {
                "name": f"{op.name}#{v}",
                "cat": "op",
                "ph": "X",
                "ts": span.start[v],
                "dur": span.finish[v] - span.start[v],
                "pid": 0,
                "tid": span.node[v],
                "args": {"op": v, "mults": int(op.mults)},
            }
        )
    flow_id = 0
    for v in range(n):
        for u in graph.effective_preds(v, relax_reductions=relax_reductions):
            if span.node[u] == span.node[v]:
                continue
            elems = graph.edge_flow(u, v, frozenset(graph.preds[v][u]))
            if not elems:
                continue  # WAR/WAW-only cross edges move no data
            flow_id += 1
            common = {
                "name": "transfer",
                "cat": "transfer",
                "id": flow_id,
                "pid": 0,
                "args": {"src_op": u, "dst_op": v, "elements": len(elems)},
            }
            events.append(
                {**common, "ph": "s", "ts": span.finish[u], "tid": span.node[u]}
            )
            events.append(
                {**common, "ph": "f", "bp": "e", "ts": span.start[v], "tid": span.node[v]}
            )
    return events


def export_timeline(
    graph: "DependencyGraph",
    span: "MakespanResult",
    path_or_file: "str | IO[str]",
    *,
    relax_reductions: bool = False,
    label: str = "",
) -> dict[str, Any]:
    """Write the Perfetto-openable JSON document; returns it as a dict."""
    doc = {
        "traceEvents": timeline_events(
            graph, span, relax_reductions=relax_reductions
        ),
        "displayTimeUnit": "ms",
        "meta": {
            "label": label,
            "p": span.p,
            "alpha": span.alpha,
            "beta": span.beta,
            "makespan": span.makespan,
            "critical_path": span.critical_path,
            "max_busy": span.max_busy,
            "n_ops": len(graph),
        },
        "provenance": provenance_stamp(),
    }
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        from ..utils.atomic import atomic_write_json

        atomic_write_json(path_or_file, doc, indent=None)
    return doc
