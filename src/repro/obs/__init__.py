"""Run-trace observability: probes, convergence telemetry, timelines, reports.

Every claim this reproduction makes is a number — I/O volumes against the
paper's lower bounds, makespans, search costs — and this package makes the
pipeline that produces those numbers inspectable without perturbing it:

* :mod:`repro.obs.probe` — a structured event recorder (counters, timers,
  nested spans, series) behind a process-global handle.  The default is a
  zero-overhead null recorder, so instrumented call sites cost nothing
  unless a run opts in (``probe_scope()``, or ``--report`` on the CLI);
* :mod:`repro.obs.convergence` — iteration-level series of the search
  engines (annealing temperature/cost/best traces, per-round best-cost
  traces of the greedy refiner and beam search), the data that separates
  "the search plateaued" from "it was still descending";
* :mod:`repro.obs.timeline` — Chrome trace-event / Perfetto export of a
  simulated parallel execution (one track per node, flow arrows for
  cross-node transfers), viewable at ``ui.perfetto.dev``;
* :mod:`repro.obs.provenance` — the stamp (git SHA, host, interpreter and
  numpy versions, schema version) every saved artifact carries so bench
  JSONs stay comparable across PRs;
* :mod:`repro.obs.report` — the run-report aggregator: one JSON document
  per instrumented run (provenance + phase wall-times + engine counters +
  convergence series) with an ASCII rendering
  (``python -m repro report saved.json``).
"""

from .convergence import AnnealSeries, RoundSeries, series_from_dict
from .probe import (
    NULL_PROBE,
    NullProbe,
    RecordingProbe,
    Timer,
    get_probe,
    probe_scope,
    set_probe,
    timed,
)
from .provenance import SCHEMA_VERSION, provenance_stamp
from .report import (
    REPORT_SCHEMA,
    build_report,
    load_report,
    render_report,
    render_series,
    save_report,
)
from .timeline import export_timeline, timeline_events

__all__ = [
    "AnnealSeries",
    "RoundSeries",
    "series_from_dict",
    "NULL_PROBE",
    "NullProbe",
    "RecordingProbe",
    "Timer",
    "get_probe",
    "probe_scope",
    "set_probe",
    "timed",
    "SCHEMA_VERSION",
    "provenance_stamp",
    "REPORT_SCHEMA",
    "build_report",
    "load_report",
    "render_report",
    "render_series",
    "save_report",
    "export_timeline",
    "timeline_events",
]
