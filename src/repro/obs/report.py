"""Run reports: one JSON document per instrumented run, plus ASCII rendering.

A report is the durable form of everything a :class:`~repro.obs.probe.
RecordingProbe` observed during one command: provenance, phase wall-times
(timers and nested spans), engine counters (replay misses/evictions,
search evaluations, refinement moves), and the convergence series the
engines attached.  ``python -m repro search/parallel --report r.json``
writes one; ``python -m repro report r.json`` pretty-prints any saved
report — tables via :mod:`repro.utils.fmt`, convergence curves as
character grids via :mod:`repro.viz.ascii`.

Schema (``"repro.report/v1"``)::

    {
      "schema": "repro.report/v1",
      "command": "parallel",              # the CLI command (or test label)
      "params": {...},                    # the run's parameters, verbatim
      "provenance": {...},               # repro.obs.provenance stamp
      "timers": {name: {"total": s, "calls": n}},
      "counters": {name: number},
      "spans": [{"name", "start", "end", "depth"}],
      "series": {name: [row, ...]},
      "attachments": {name: {...}}        # convergence series as_dict()s
    }
"""

from __future__ import annotations

import json
from typing import IO, Any

from ..utils.atomic import atomic_write_json
from ..utils.fmt import Table, banner, format_float
from ..viz.ascii import CharGrid
from .probe import RecordingProbe
from .provenance import provenance_stamp

#: Schema tag every report carries; bump on incompatible layout changes.
REPORT_SCHEMA = "repro.report/v1"


def build_report(
    probe: RecordingProbe,
    *,
    command: str = "",
    params: "dict[str, Any] | None" = None,
) -> dict[str, Any]:
    """Aggregate one probe into the report document (JSON-able dict)."""
    snapshot = probe.snapshot()
    return {
        "schema": REPORT_SCHEMA,
        "command": command,
        "params": dict(params or {}),
        "provenance": provenance_stamp(),
        **snapshot,
    }


def save_report(report: dict[str, Any], path_or_file: "str | IO[str]") -> None:
    """Write a report document as indented JSON (atomically for real paths)."""
    if hasattr(path_or_file, "write"):
        json.dump(report, path_or_file, indent=2)
    else:
        atomic_write_json(path_or_file, report, indent=2)


def load_report(path_or_file: "str | IO[str]") -> dict[str, Any]:
    """Read a report document back, checking the schema tag."""
    if hasattr(path_or_file, "read"):
        report = json.load(path_or_file)
    else:
        with open(path_or_file, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    schema = report.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"not a run report: schema {schema!r} (expected {REPORT_SCHEMA!r})"
        )
    return report


def render_series(
    values: "list[float]", *, width: int = 64, height: int = 8
) -> str:
    """An ASCII cost-vs-iteration curve on a :class:`CharGrid`.

    Columns sample the series uniformly (every value lands on a column
    when the series is shorter than ``width``); rows span [min, max] with
    the extrema printed on the flanking ruler lines.
    """
    if not values:
        return "(empty series)"
    width = max(2, min(width, max(2, len(values))))
    lo, hi = min(values), max(values)
    grid = CharGrid(height, width, fill=".")
    for c in range(width):
        i = c * (len(values) - 1) // (width - 1)
        v = values[i]
        r = 0 if hi == lo else round((hi - v) / (hi - lo) * (height - 1))
        grid.put(int(r), c, "*")
    return (
        f"max {format_float(hi, 6)}\n"
        + grid.render()
        + f"\nmin {format_float(lo, 6)}  ({len(values)} points)"
    )


def _render_attachment(name: str, payload: dict[str, Any]) -> str:
    kind = payload.get("kind")
    lines = [f"-- {name}" + (f"  [{payload.get('label')}]" if payload.get("label") else "")]
    if kind == "anneal":
        bests = payload.get("best", [])
        accepted = sum(1 for a in payload.get("accepted", []) if a)
        lines.append(
            f"anneal: {len(bests)} iterations, {accepted} accepted, "
            f"best {format_float(bests[0], 6)} -> {format_float(bests[-1], 6)}"
            if bests else "anneal: empty series"
        )
        if bests:
            lines.append(render_series(bests))
    elif kind == "rounds":
        bests = payload.get("best", [])
        engine = payload.get("engine", "rounds")
        lines.append(
            f"{engine}: {len(bests)} rounds, "
            f"best {format_float(bests[0], 6)} -> {format_float(bests[-1], 6)}"
            if bests else f"{engine}: empty series"
        )
        if bests:
            lines.append(render_series(bests))
    else:
        lines.append(json.dumps(payload)[:200])
    return "\n".join(lines)


def render_report(report: dict[str, Any]) -> str:
    """The full ASCII rendering of a report document."""
    out: list[str] = [banner(f"run report: {report.get('command') or '(unnamed)'}")]
    params = report.get("params") or {}
    if params:
        out.append("params: " + ", ".join(f"{k}={v}" for k, v in params.items()))
    prov = report.get("provenance") or {}
    if prov:
        sha = prov.get("git_sha") or "?"
        dirty = "+dirty" if prov.get("git_dirty") else ""
        out.append(
            f"provenance: {str(sha)[:12]}{dirty} on {prov.get('host', '?')} "
            f"(python {prov.get('python', '?')}, numpy {prov.get('numpy', '?')}, "
            f"{prov.get('timestamp_utc', '?')})"
        )
    timers = report.get("timers") or {}
    if timers:
        t = Table(["phase", "total sec", "calls"], title="phase wall-times")
        for name in sorted(timers, key=lambda k: -timers[k]["total"]):
            rec = timers[name]
            t.add_row([name, f"{rec['total']:.3f}", int(rec["calls"])])
        out.append(t.render())
    counters = report.get("counters") or {}
    if counters:
        t = Table(["counter", "value"], title="engine counters")
        for name in sorted(counters):
            value = counters[name]
            t.add_row([name, f"{int(value):,}" if float(value).is_integer() else f"{value:g}"])
        out.append(t.render())
    for name, payload in (report.get("attachments") or {}).items():
        if isinstance(payload, dict):
            out.append(_render_attachment(name, payload))
    series = report.get("series") or {}
    if series:
        out.append(
            "series: " + ", ".join(f"{k} ({len(v)} rows)" for k, v in series.items())
        )
    return "\n\n".join(out)
