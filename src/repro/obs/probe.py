"""Structured run-time probes: counters, timers, nested spans, series.

The engines of this library (cache replays, order search, partition
refinement, the sharded executor) each know interesting things mid-run —
eviction counts, proposal acceptance, per-phase wall time — that their
return values deliberately compress away.  A *probe* is the side channel
those call sites report into:

* ``count(name, n)`` — monotone counters (``"replay.lru.misses"``);
* ``timer(name)`` — a context manager accumulating wall time per name
  (phase timings; the CLI's ``sec`` columns read the same measurement);
* ``span(name)`` — nested named intervals relative to the probe's epoch
  (a coarse flame view of one command);
* ``emit(series, **fields)`` — append one row to a named series;
* ``attach(name, payload)`` — hang a whole structured artifact (e.g. a
  :class:`~repro.obs.convergence.AnnealSeries`) on the run, deduplicating
  names so repeated engine invocations never overwrite each other.

One probe is active per process (:func:`get_probe` / :func:`set_probe`),
so instrumented call sites stay one-liners and never thread a recorder
through ten layers of signatures.  The default :class:`NullProbe` ignores
everything; its ``enabled`` flag is ``False`` so hot loops can skip even
the aggregation that would feed it.  Recording changes no result anywhere:
the invariance tests pin that search, refinement and replay outputs are
bit-identical with the probe on and off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator


class Timer:
    """Measure one wall-clock interval; report it to ``probe`` on exit.

    The measurement always happens (callers read ``elapsed`` for display —
    the CLI's ``sec`` columns), only the recording is conditional: pass
    ``probe=None`` to measure without recording.
    """

    __slots__ = ("name", "probe", "elapsed", "_t0")

    def __init__(self, name: str, probe: "RecordingProbe | None" = None):
        self.name = name
        self.probe = probe
        self.elapsed = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.elapsed = time.perf_counter() - self._t0
        if self.probe is not None:
            self.probe.record_timer(self.name, self.elapsed)
        return False


class NullProbe:
    """The zero-overhead default: every hook is a no-op.

    ``enabled`` is ``False``, so engines can guard their aggregation with
    one attribute read and pay nothing when nobody is listening.
    """

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        pass

    def emit(self, series: str, **fields) -> None:
        pass

    def attach(self, name: str, payload: Any) -> str:
        return name

    def record_timer(self, name: str, elapsed: float) -> None:
        pass

    def timer(self, name: str) -> Timer:
        return Timer(name, None)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        yield None


class RecordingProbe:
    """In-memory recorder behind the probe interface.

    Everything lands in plain dict/list attributes (``counters``,
    ``timers``, ``spans``, ``series``, ``attachments``) and
    :meth:`snapshot` renders the whole state as one JSON-able dict — the
    payload :func:`repro.obs.report.build_report` aggregates.
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.counters: dict[str, float] = {}
        self.timers: dict[str, dict[str, float]] = {}
        self.spans: list[dict[str, Any]] = []
        self.series: dict[str, list[dict[str, Any]]] = {}
        self.attachments: dict[str, Any] = {}
        self._depth = 0

    # -- hooks ----------------------------------------------------------- #
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def emit(self, series: str, **fields) -> None:
        self.series.setdefault(series, []).append(fields)

    def attach(self, name: str, payload: Any) -> str:
        """Store ``payload`` under ``name``; dedup to ``name#2``, ``#3``, …"""
        key, k = name, 2
        while key in self.attachments:
            key = f"{name}#{k}"
            k += 1
        self.attachments[key] = payload
        return key

    def record_timer(self, name: str, elapsed: float) -> None:
        t = self.timers.setdefault(name, {"total": 0.0, "calls": 0})
        t["total"] += elapsed
        t["calls"] += 1

    def timer(self, name: str) -> Timer:
        return Timer(name, self)

    @contextmanager
    def span(self, name: str) -> Iterator[dict[str, Any]]:
        """A nested named interval; start/end are seconds since the epoch."""
        rec: dict[str, Any] = {
            "name": name,
            "start": time.perf_counter() - self.epoch,
            "end": None,
            "depth": self._depth,
        }
        self.spans.append(rec)
        self._depth += 1
        try:
            yield rec
        finally:
            self._depth -= 1
            rec["end"] = time.perf_counter() - self.epoch

    # -- export ---------------------------------------------------------- #
    def snapshot(self) -> dict[str, Any]:
        """The probe's state as one JSON-able dict.

        Attachments exposing ``as_dict()`` (the convergence series) are
        converted; everything else is included verbatim.
        """
        attachments = {
            key: payload.as_dict() if hasattr(payload, "as_dict") else payload
            for key, payload in self.attachments.items()
        }
        return {
            "counters": dict(self.counters),
            "timers": {k: dict(v) for k, v in self.timers.items()},
            "spans": [dict(s) for s in self.spans],
            "series": {k: [dict(r) for r in v] for k, v in self.series.items()},
            "attachments": attachments,
        }


#: The shared no-op instance; ``get_probe()`` returns it by default.
NULL_PROBE = NullProbe()

_active: NullProbe | RecordingProbe = NULL_PROBE


def get_probe() -> "NullProbe | RecordingProbe":
    """The process-global probe (the null recorder unless a run opted in)."""
    return _active


def set_probe(probe: "NullProbe | RecordingProbe | None") -> "NullProbe | RecordingProbe":
    """Install ``probe`` (``None`` restores the null recorder); returns the old one."""
    global _active
    previous = _active
    _active = NULL_PROBE if probe is None else probe
    return previous


@contextmanager
def probe_scope(
    probe: "RecordingProbe | None" = None,
) -> Iterator["RecordingProbe"]:
    """Install a recording probe for one ``with`` block, then restore.

    The instrumentation entry point of the CLI's ``--report`` flag and the
    tests: everything executed inside the block reports into the yielded
    probe; the previously active probe comes back afterwards even on error.
    """
    probe = RecordingProbe() if probe is None else probe
    previous = set_probe(probe)
    try:
        yield probe
    finally:
        set_probe(previous)


def timed(name: str) -> Timer:
    """A :class:`Timer` bound to the active probe (measuring either way).

    ``with timed("search:beam") as t: …`` then read ``t.elapsed`` — the
    one code path behind both the CLI's ``sec`` columns and the report's
    phase wall-times.
    """
    probe = get_probe()
    return Timer(name, probe if probe.enabled else None)
