"""Regenerate explicit load/evict streams for a (re)ordered op sequence.

The dependency layer deals in *compute* orders only; to run one on a
:class:`~repro.machine.machine.TwoLevelMachine` (or validate it against the
model's rules) it must be dressed back up as a full
:class:`~repro.sched.schedule.Schedule` with explicit
:class:`~repro.sched.schedule.LoadStep` / :class:`~repro.sched.schedule.EvictStep`
traffic.  :func:`rewrite_ops` does this with the canonical optimal policy
for a fixed order:

* **load on demand** — before each compute, load exactly the op's
  non-resident elements (grouped into one region per matrix);
* **evict by furthest next use** — under capacity pressure, evict the
  resident elements whose next use (at op granularity) is furthest away,
  dead elements first; Belady's MIN rule, so the generated stream's load
  volume is the floor for that compute order at that capacity;
* **lazy writeback** — an evicted element is written back iff some executed
  op wrote it since it was (re)loaded; everything still resident at the end
  is flushed, so the stream satisfies the validator's empty-end rule.

:func:`reschedule` is the end-to-end pipeline: dependency graph → list
scheduler → rewrite → :func:`~repro.sched.validate.validate_schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScheduleError
from ..machine.regions import Region
from ..sched.ops import ComputeOp
from ..sched.schedule import ComputeStep, EvictStep, LoadStep, Schedule, Step
from ..sched.validate import validate_schedule
from .dependency import DependencyGraph, dependency_graph
from .policies import NEVER
from .scheduler import ListScheduleResult, list_schedule


@dataclass
class RewriteResult:
    """A rewritten schedule plus the order and I/O volume that produced it."""

    schedule: Schedule
    order: list[int]
    heuristic: str
    loads: int
    stores: int
    summary: dict[str, int]

    @property
    def io_volume(self) -> int:
        return self.loads + self.stores


def _op_keys(op: ComputeOp) -> tuple[list[tuple[str, int]], set[tuple[str, int]]]:
    """(deduped touched keys in region order, write-key set) for one op."""
    writes = {(r.matrix, int(i)) for r in op.writes() for i in r.flat}
    touched: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()
    for region in list(op.reads()) + list(op.writes()):
        for i in region.flat:
            key = (region.matrix, int(i))
            if key not in seen:
                seen.add(key)
                touched.append(key)
    return touched, writes


def _grouped_regions(keys, dirty_of=None):
    """Group element keys into one region per matrix (and dirty flag if given)."""
    groups: dict = {}
    for key in keys:
        matrix, flat = key
        gk = matrix if dirty_of is None else (matrix, dirty_of[key])
        groups.setdefault(gk, []).append(flat)
    for gk in sorted(groups, key=str):
        flats = np.array(sorted(groups[gk]), dtype=np.int64)
        yield gk, flats


def rewrite_ops(
    ops: list[ComputeOp],
    shapes: dict[str, tuple[int, int]],
    capacity: int,
) -> Schedule:
    """Dress an op sequence up as an explicit schedule (see module docstring)."""
    per_op = [_op_keys(op) for op in ops]

    # Op-granularity next-use oracle: positions[key] lists the ops touching
    # the element; pointers advance monotonically as the stream is emitted.
    positions: dict[tuple[str, int], list[int]] = {}
    for p, (touched, _writes) in enumerate(per_op):
        for key in touched:
            positions.setdefault(key, []).append(p)
    pointer: dict[tuple[str, int], int] = {key: 0 for key in positions}

    def next_use(key: tuple[str, int], p: int) -> int:
        pos_list = positions[key]
        i = pointer[key]
        while i < len(pos_list) and pos_list[i] <= p:
            i += 1
        pointer[key] = i
        return pos_list[i] if i < len(pos_list) else NEVER

    steps: list[Step] = []
    resident: dict[tuple[str, int], bool] = {}  # key -> dirty

    for p, (op, (touched, writes)) in enumerate(zip(ops, per_op)):
        if len(touched) > capacity:
            raise ScheduleError(
                f"op {p} ({op.name!r}) touches {len(touched)} elements; "
                f"cannot fit capacity {capacity}"
            )
        touched_set = set(touched)
        missing = [key for key in touched if key not in resident]
        overflow = len(resident) + len(missing) - capacity
        if overflow > 0:
            candidates = [key for key in resident if key not in touched_set]
            candidates.sort(key=lambda key: (-next_use(key, p), key))
            victims = candidates[:overflow]
            for (matrix, dirty), flats in _grouped_regions(
                victims, dirty_of=resident
            ):
                steps.append(EvictStep(Region(matrix, flats), writeback=dirty))
            for key in victims:
                del resident[key]
        for matrix, flats in _grouped_regions(missing):
            steps.append(LoadStep(Region(matrix, flats)))
        for key in missing:
            resident[key] = False
        steps.append(ComputeStep(op))
        for key in writes:
            resident[key] = True

    for (matrix, dirty), flats in _grouped_regions(list(resident), dirty_of=resident):
        steps.append(EvictStep(Region(matrix, flats), writeback=dirty))
    return Schedule(steps=steps, shapes=dict(shapes))


def rewrite_schedule(
    schedule: Schedule,
    capacity: int,
    order: list[int] | None = None,
    *,
    graph: DependencyGraph | None = None,
    relax_reductions: bool = False,
) -> RewriteResult:
    """Rewrite ``schedule``'s compute ops (optionally re-ordered) into an
    explicit stream, and validate it against the model's rules."""
    ops = [s.op for s in schedule.steps if isinstance(s, ComputeStep)]
    if order is None:
        order = list(range(len(ops)))
    if sorted(order) != list(range(len(ops))):
        raise ScheduleError(
            f"order must be a permutation of 0..{len(ops) - 1} ({len(order)} entries given)"
        )
    if graph is not None and not graph.is_valid_order(order, relax_reductions=relax_reductions):
        raise ScheduleError("order violates the dependency graph")
    reordered = [ops[i] for i in order]
    new = rewrite_ops(reordered, schedule.shapes, capacity)
    summary = validate_schedule(new, capacity)
    loads, stores = new.io_volume()
    return RewriteResult(
        schedule=new,
        order=list(order),
        heuristic="explicit",
        loads=loads,
        stores=stores,
        summary=summary,
    )


def reschedule(
    schedule: Schedule,
    capacity: int,
    heuristic: str = "locality",
    *,
    relax_reductions: bool = False,
    graph: DependencyGraph | None = None,
) -> RewriteResult:
    """End-to-end: extract the DAG, list-schedule it, rewrite, validate."""
    if graph is None:
        graph = dependency_graph(schedule)
    listed: ListScheduleResult = list_schedule(
        graph, heuristic, relax_reductions=relax_reductions
    )
    result = rewrite_schedule(
        schedule, capacity, listed.order, graph=graph, relax_reductions=relax_reductions
    )
    result.heuristic = heuristic
    return result
