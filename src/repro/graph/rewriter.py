"""Regenerate explicit load/evict streams for a (re)ordered op sequence.

The dependency layer deals in *compute* orders only; to run one on a
:class:`~repro.machine.machine.TwoLevelMachine` (or validate it against the
model's rules) it must be dressed back up as a full
:class:`~repro.sched.schedule.Schedule` with explicit
:class:`~repro.sched.schedule.LoadStep` / :class:`~repro.sched.schedule.EvictStep`
traffic.  :func:`rewrite_ops` does this with the canonical optimal policy
for a fixed order:

* **load on demand** — before each compute, load exactly the op's
  non-resident elements (grouped into one region per matrix);
* **evict by furthest next use** — under capacity pressure, evict the
  resident elements whose next use (at op granularity) is furthest away,
  dead elements first; Belady's MIN rule, so the generated stream's load
  volume is the floor for that compute order at that capacity;
* **lazy writeback** — an evicted element is written back iff some executed
  op wrote it since it was (re)loaded; everything still resident at the end
  is flushed, so the stream satisfies the validator's empty-end rule.

The rewrite core runs on the compiled trace IR
(:class:`~repro.trace.compiled.CompiledTrace`): per-op touched/write sets
are vectorized slices over interned element IDs, residency and dirtiness
are flat bool arrays, and the op-granularity next-use oracle is a CSR walk
over one argsort of the access stream — no per-element tuples or dicts.
Reordering reuses the interning (:meth:`CompiledTrace.reorder`), so sweeps
over many orders of one recorded trace stay cheap.

:func:`reschedule` is the end-to-end pipeline: dependency graph → list
scheduler → rewrite → :func:`~repro.sched.validate.validate_schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScheduleError
from ..machine.regions import Region
from ..sched.ops import ComputeOp
from ..sched.schedule import ComputeStep, EvictStep, LoadStep, Schedule, Step
from ..sched.validate import validate_schedule
from ..trace.compiled import CompiledTrace, compile_trace
from .dependency import DependencyGraph, dependency_graph
from .policies import NEVER
from .scheduler import ListScheduleResult, list_schedule


@dataclass
class RewriteResult:
    """A rewritten schedule plus the order and I/O volume that produced it."""

    schedule: Schedule
    order: list[int]
    heuristic: str
    loads: int
    stores: int
    summary: dict[str, int]

    @property
    def io_volume(self) -> int:
        return self.loads + self.stores


class _OpNextUse:
    """Op-granularity next-use oracle over a compiled trace (CSR + pointers).

    ``positions`` holds, for every element, the sorted op indices touching
    it (one argsort of the access stream, duplicates kept — the pointer
    walk skips them).  Pointers only ever advance, as in the original
    dict-of-lists implementation, because queries come with monotonically
    increasing op positions.
    """

    def __init__(self, trace: CompiledTrace):
        acc_ops = np.repeat(
            np.arange(trace.n_ops, dtype=np.int64), np.diff(trace.op_starts)
        )
        order = np.argsort(trace.elem_ids, kind="stable")
        self.ops_sorted = acc_ops[order]
        counts = np.bincount(trace.elem_ids, minlength=trace.n_elements)
        self.starts = np.zeros(trace.n_elements + 1, dtype=np.int64)
        np.cumsum(counts, out=self.starts[1:])
        self.ptr = self.starts[:-1].copy()

    def next_use(self, elem: int, p: int) -> int:
        """First op position > ``p`` touching ``elem``, else ``NEVER``."""
        i = int(self.ptr[elem])
        end = int(self.starts[elem + 1])
        ops_sorted = self.ops_sorted
        while i < end and ops_sorted[i] <= p:
            i += 1
        self.ptr[elem] = i
        return int(ops_sorted[i]) if i < end else NEVER


def _emit_regions(
    steps: list[Step],
    elems: list[int],
    trace: CompiledTrace,
    dirty: np.ndarray | None,
) -> None:
    """Append one Load/Evict step per (matrix[, dirty]) group of ``elems``."""
    if not elems:
        return
    arr = np.asarray(elems, dtype=np.int64)
    mats = trace.key_matrix[arr]
    flags = (
        dirty[arr].astype(np.int8) if dirty is not None else np.zeros(arr.size, np.int8)
    )
    for mi in np.unique(mats):
        name = trace.matrices[int(mi)]
        for wb in (0, 1):
            group = arr[(mats == mi) & (flags == wb)]
            if not group.size:
                continue
            region = Region(name, np.sort(trace.key_flat[group]))
            if dirty is None:
                steps.append(LoadStep(region))
            else:
                steps.append(EvictStep(region, writeback=bool(wb)))


def rewrite_trace(trace: CompiledTrace, capacity: int) -> Schedule:
    """Dress a compiled trace up as an explicit schedule (module docstring).

    The trace must carry its op objects (compiled in-process).
    """
    if trace.ops is None:
        raise ScheduleError("cannot rewrite a trace without op objects")
    ops = trace.ops
    ids, flags = trace.elem_ids, trace.is_write
    starts = trace.op_starts
    oracle = _OpNextUse(trace)

    resident = np.zeros(trace.n_elements, dtype=bool)
    resident_set: set[int] = set()  # same contents; O(capacity) iteration
    dirty = np.zeros(trace.n_elements, dtype=bool)
    touched_mask = np.zeros(trace.n_elements, dtype=bool)
    steps: list[Step] = []

    for p, op in enumerate(ops):
        s, e = int(starts[p]), int(starts[p + 1])
        sl = ids[s:e]
        # Touched elements in first-occurrence (region) order, as the
        # original tuple walker produced them.
        _u, first_idx = np.unique(sl, return_index=True)
        touched = sl[np.sort(first_idx)]
        writes = np.unique(sl[flags[s:e]])
        if touched.size > capacity:
            raise ScheduleError(
                f"op {p} ({op.name!r}) touches {touched.size} elements; "
                f"cannot fit capacity {capacity}"
            )
        missing = touched[~resident[touched]]
        overflow = len(resident_set) + int(missing.size) - capacity
        if overflow > 0:
            touched_mask[touched] = True
            candidates = [elem for elem in resident_set if not touched_mask[elem]]
            touched_mask[touched] = False
            candidates.sort(key=lambda elem: (-oracle.next_use(elem, p), elem))
            victims = candidates[:overflow]
            _emit_regions(steps, victims, trace, dirty)
            varr = np.asarray(victims, dtype=np.int64)
            resident[varr] = False
            dirty[varr] = False
            resident_set.difference_update(victims)
        if missing.size:
            _emit_regions(steps, missing.tolist(), trace, None)
            resident[missing] = True
            resident_set.update(missing.tolist())
        steps.append(ComputeStep(op))
        dirty[writes] = True

    leftovers = np.flatnonzero(resident).tolist()
    _emit_regions(steps, leftovers, trace, dirty)
    return Schedule(steps=steps, shapes=dict(trace.shapes))


def rewrite_ops(
    ops: list[ComputeOp],
    shapes: dict[str, tuple[int, int]],
    capacity: int,
) -> Schedule:
    """Compatibility wrapper: compile ``ops`` and :func:`rewrite_trace`."""
    trace = compile_trace(ops, shapes=dict(shapes))
    return rewrite_trace(trace, capacity)


def rewrite_schedule(
    schedule: Schedule | CompiledTrace,
    capacity: int,
    order: list[int] | None = None,
    *,
    graph: DependencyGraph | None = None,
    relax_reductions: bool = False,
) -> RewriteResult:
    """Rewrite ``schedule``'s compute ops (optionally re-ordered) into an
    explicit stream, and validate it against the model's rules.

    Accepts a recorded schedule or an already-compiled trace; a graph built
    by :func:`~repro.graph.dependency.dependency_graph` carries its trace,
    so the end-to-end pipeline compiles exactly once.
    """
    trace = compile_trace(schedule)
    n_ops = trace.n_ops
    if order is None:
        order = list(range(n_ops))
    if sorted(order) != list(range(n_ops)):
        raise ScheduleError(
            f"order must be a permutation of 0..{n_ops - 1} ({len(order)} entries given)"
        )
    if graph is not None and not graph.is_valid_order(order, relax_reductions=relax_reductions):
        raise ScheduleError("order violates the dependency graph")
    reordered = trace if order == list(range(n_ops)) else trace.reorder(order)
    new = rewrite_trace(reordered, capacity)
    summary = validate_schedule(new, capacity)
    loads, stores = new.io_volume()
    return RewriteResult(
        schedule=new,
        order=list(order),
        heuristic="explicit",
        loads=loads,
        stores=stores,
        summary=summary,
    )


def reschedule(
    schedule: Schedule | CompiledTrace,
    capacity: int,
    heuristic: str = "locality",
    *,
    relax_reductions: bool = False,
    graph: DependencyGraph | None = None,
) -> RewriteResult:
    """End-to-end: extract the DAG, list-schedule it, rewrite, validate."""
    if graph is None:
        graph = dependency_graph(schedule)
    trace = graph.trace if graph.trace is not None else compile_trace(schedule)
    listed: ListScheduleResult = list_schedule(
        graph, heuristic, relax_reductions=relax_reductions
    )
    result = rewrite_schedule(
        trace, capacity, listed.order, graph=graph, relax_reductions=relax_reductions
    )
    result.heuristic = heuristic
    return result
