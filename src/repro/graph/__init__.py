"""Dependency-graph scheduling engine over recorded op streams.

This subsystem turns a flat recorded :class:`~repro.sched.schedule.Schedule`
into an optimization surface:

* :mod:`repro.graph.dependency` — extract the RAW/WAR/WAW partial order of
  the compute ops (commuting ``+=`` accumulations form relaxable reduction
  classes);
* :mod:`repro.graph.scheduler` — a worklist list scheduler with pluggable
  priority heuristics that emits alternative legal total orders, plus the
  reusable primitives (ready frontier, locality scorer) the search engine
  builds on;
* :mod:`repro.graph.objective` — incremental I/O objectives: exact
  per-candidate miss counts from cache-coupled candidate proposal, and
  whole-order costs via trace reordering;
* :mod:`repro.graph.search` — the order-search engine: beam search,
  lookahead greedy and simulated annealing over reduction-class
  interleavings, behind ``python -m repro search`` and benchmark E15;
* :mod:`repro.graph.policies` — Belady/MIN optimal-replacement replay, the
  per-order I/O floor complementing :mod:`repro.analysis.lru_replay`;
* :mod:`repro.graph.rewriter` — regenerate explicit load/evict streams
  (load-on-demand, evict-by-furthest-next-use) for any legal order, validate
  them, and replay them with bit-identical numerics;
* :mod:`repro.graph.compare` — the record→analyze→reschedule harness behind
  ``python -m repro graph`` and benchmark E12.

The exposed task DAG is also the abstraction the parallel layer will build
on: its antichains are exactly the op sets a multi-node schedule may run
concurrently.
"""

from .dependency import (
    COMMUTING_ACCUMULATIONS,
    DependencyGraph,
    OpNode,
    dependency_graph,
    is_commuting_accumulation,
)
from .policies import (
    BeladyReplayResult,
    access_sequence,
    belady_replay,
    belady_replay_reference,
    replacement_gap,
)
from .rewriter import (
    RewriteResult,
    reschedule,
    rewrite_ops,
    rewrite_schedule,
    rewrite_trace,
)
from .scheduler import (
    HEURISTICS,
    ListScheduleResult,
    LocalityScore,
    Worklist,
    argbest,
    list_schedule,
)
from .objective import IncrementalObjective, element_op_lists, order_cost
from .search import (
    STRATEGIES,
    AnnealStats,
    SearchResult,
    anneal_minimize,
    anneal_search,
    beam_search,
    lookahead_search,
    search_order,
)
from .compare import (
    CASES,
    Comparison,
    ComparisonRow,
    RecordedCase,
    compare_case,
    record_case,
)

__all__ = [
    "COMMUTING_ACCUMULATIONS",
    "DependencyGraph",
    "OpNode",
    "dependency_graph",
    "is_commuting_accumulation",
    "BeladyReplayResult",
    "access_sequence",
    "belady_replay",
    "belady_replay_reference",
    "replacement_gap",
    "RewriteResult",
    "reschedule",
    "rewrite_ops",
    "rewrite_schedule",
    "rewrite_trace",
    "HEURISTICS",
    "ListScheduleResult",
    "LocalityScore",
    "Worklist",
    "argbest",
    "list_schedule",
    "IncrementalObjective",
    "element_op_lists",
    "order_cost",
    "STRATEGIES",
    "AnnealStats",
    "SearchResult",
    "anneal_minimize",
    "anneal_search",
    "beam_search",
    "lookahead_search",
    "search_order",
    "CASES",
    "Comparison",
    "ComparisonRow",
    "RecordedCase",
    "compare_case",
    "record_case",
]
