"""Worklist list scheduling over a :class:`~repro.graph.dependency.DependencyGraph`.

The scheduler emits compute ops one at a time: a worklist holds every node
whose (effective) dependences are all resolved, a pluggable priority
heuristic picks the next node, and emitting a node releases its successors
whose dependence count drops to zero — the classic list-scheduling loop, in
the style of trace re-schedulers like PyPy's vectorizer.

Heuristics (``HEURISTICS``):

``"original"``     lowest original index first — reproduces the recorded
                   order exactly (the identity schedule, and the proof that
                   the DAG admits it);
``"depth-first"``  most recently released first (LIFO): chase one dependence
                   chain to completion before starting the next, the order
                   that keeps a reduction's accumulator hot;
``"locality"``     among ready nodes, prefer the one whose operand elements
                   were touched most recently (a greedy min-next-reuse-
                   distance rule): reuse what is still in fast memory before
                   moving on;
``"fan-out"``      most effective successors first: release as much of the
                   DAG as possible early (a span-reduction order, useful as
                   a parallel-frontier baseline).

Every heuristic breaks ties by original index, so schedules are
deterministic and replayable.

The building blocks are exposed as reusable primitives so the order-search
engine (:mod:`repro.graph.search`) can drive the same machinery
incrementally: :class:`Worklist` is the copyable ready-frontier state of a
scheduling pass, :class:`LocalityScore` is the locality heuristic's scoring
state, and :func:`argbest` is the shared max-score/lowest-index selection
rule.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import ConfigurationError, ScheduleError
from ..sched.ops import ComputeOp
from .dependency import DependencyGraph

HEURISTICS = ("original", "depth-first", "locality", "fan-out")


def argbest(candidates: Iterable[int], score: Callable[[int], float]) -> int | None:
    """The candidate with the *highest* score, ties broken by lowest index.

    The selection rule every greedy pass in this package shares.  The
    guard is explicit — the first candidate wins outright — so the rule
    never compares a node against an absent ``best`` (the seed locality
    scheduler leaned on a ``best_score = -1`` sentinel to dodge that
    comparison, which silently broke for score functions that can go
    negative).  Returns ``None`` only for an empty candidate set.
    """
    best: int | None = None
    best_score = 0.0
    for v in candidates:
        s = score(v)
        if best is None or s > best_score or (s == best_score and v < best):
            best, best_score = v, s
    return best


class Worklist:
    """The copyable ready-frontier state of a list-scheduling pass.

    Tracks per-node unresolved dependence counts and the set of ready
    nodes under one ``relax_reductions`` setting.  :meth:`emit` retires a
    ready node and returns the successors it released — the one state
    transition every scheduling loop (greedy, beam, lookahead rollout)
    shares.  :meth:`clone` is cheap (one list copy + one set copy), which
    is what makes beam expansion and lookahead rollouts affordable.
    """

    __slots__ = ("graph", "relax_reductions", "indeg", "ready")

    def __init__(self, graph: DependencyGraph, *, relax_reductions: bool = False):
        self.graph = graph
        self.relax_reductions = relax_reductions
        self.indeg = graph.indegrees(relax_reductions=relax_reductions)
        self.ready = {v for v in range(len(graph)) if self.indeg[v] == 0}

    def __len__(self) -> int:
        return len(self.ready)

    def emit(self, v: int) -> list[int]:
        """Retire ready node ``v``; returns the newly released successors."""
        if v not in self.ready:
            raise ScheduleError(f"node {v} is not ready")
        self.ready.discard(v)
        released = []
        indeg = self.indeg
        for w in self.graph.effective_succs(v, relax_reductions=self.relax_reductions):
            indeg[w] -= 1
            if indeg[w] == 0:
                released.append(w)
        self.ready.update(released)
        return released

    def clone(self) -> "Worklist":
        other = object.__new__(Worklist)
        other.graph = self.graph
        other.relax_reductions = self.relax_reductions
        other.indeg = self.indeg.copy()
        other.ready = self.ready.copy()
        return other


class LocalityScore:
    """The locality heuristic's scoring state as a standalone primitive.

    Scores a node by how many of its elements were touched within the
    last ``window`` emitted ops — a greedy min-next-reuse-distance rule.
    :meth:`emit` advances the clock; :meth:`clone` lets rollouts score
    hypothetical futures without disturbing the live state.
    """

    __slots__ = ("graph", "window", "last_touch", "step")

    def __init__(self, graph: DependencyGraph, window: int = 4):
        self.graph = graph
        self.window = window
        self.last_touch: dict[int, int] = {}
        self.step = 0

    def score(self, v: int) -> int:
        floor = self.step - self.window
        last_touch = self.last_touch
        score = 0
        for key in self.graph.nodes[v].touched_keys():
            if last_touch.get(key, -(10 ** 9)) >= floor:
                score += 1
        return score

    def emit(self, v: int) -> None:
        step = self.step
        for key in self.graph.nodes[v].touched_keys():
            self.last_touch[key] = step
        self.step = step + 1

    def clone(self) -> "LocalityScore":
        other = object.__new__(LocalityScore)
        other.graph = self.graph
        other.window = self.window
        other.last_touch = self.last_touch.copy()
        other.step = self.step
        return other


@dataclass
class ListScheduleResult:
    """A legal total order produced by :func:`list_schedule`."""

    graph: DependencyGraph
    heuristic: str
    relax_reductions: bool
    order: list[int] = field(default_factory=list)

    def ops(self) -> list[ComputeOp]:
        """The compute ops in emitted order."""
        return [self.graph.nodes[i].op for i in self.order]

    @property
    def is_identity(self) -> bool:
        return self.order == list(range(len(self.graph)))


def _schedule_by_priority(
    graph: DependencyGraph,
    indeg: list[int],
    priority,
    relax: bool,
) -> list[int]:
    """Generic heap-driven worklist: smallest ``priority(node)`` first."""
    heap = [(priority(v), v) for v in range(len(graph)) if indeg[v] == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        _, v = heapq.heappop(heap)
        order.append(v)
        for w in graph.effective_succs(v, relax_reductions=relax):
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(heap, (priority(w), w))
    return order


def _schedule_depth_first(graph: DependencyGraph, indeg: list[int], relax: bool) -> list[int]:
    # LIFO worklist: successors released by the last emitted node are
    # scheduled next (pushed in reverse index order so the lowest-index
    # chain is chased first).
    stack = sorted((v for v in range(len(graph)) if indeg[v] == 0), reverse=True)
    order: list[int] = []
    while stack:
        v = stack.pop()
        order.append(v)
        released = []
        for w in graph.effective_succs(v, relax_reductions=relax):
            indeg[w] -= 1
            if indeg[w] == 0:
                released.append(w)
        stack.extend(sorted(released, reverse=True))
    return order


def _schedule_locality(
    graph: DependencyGraph,
    worklist: Worklist,
    window: int,
) -> list[int]:
    # Greedy reuse-distance rule: score each ready node by how many of its
    # elements were touched within the last ``window`` emitted ops, pick the
    # max (ties: original index, via argbest's explicit guard — an all-zero
    # scoring round must still pick the lowest ready index, not trip over an
    # unset best).  O(ready x op-footprint) per emission — fine at trace
    # scale, and worth it: this is the heuristic that rediscovers blocked
    # orders from the bare DAG.
    scorer = LocalityScore(graph, window)
    order: list[int] = []
    while worklist.ready:
        best = argbest(worklist.ready, scorer.score)
        worklist.emit(best)
        scorer.emit(best)
        order.append(best)
    return order


def list_schedule(
    graph: DependencyGraph,
    heuristic: str = "original",
    *,
    relax_reductions: bool = False,
    locality_window: int = 4,
) -> ListScheduleResult:
    """Emit a legal total order of ``graph`` under the chosen heuristic.

    With ``relax_reductions=True`` edges that carry only the ``"reduction"``
    kind are ignored, enlarging the legal order space at the cost of
    bit-exactness (results then match only up to FP reassociation).
    """
    if heuristic not in HEURISTICS:
        raise ConfigurationError(
            f"unknown heuristic {heuristic!r}; choose from {', '.join(HEURISTICS)}"
        )
    if heuristic == "locality":
        worklist = Worklist(graph, relax_reductions=relax_reductions)
        order = _schedule_locality(graph, worklist, locality_window)
    else:
        indeg = graph.indegrees(relax_reductions=relax_reductions)
        if heuristic == "original":
            order = _schedule_by_priority(graph, indeg, lambda v: v, relax_reductions)
        elif heuristic == "depth-first":
            order = _schedule_depth_first(graph, indeg, relax_reductions)
        else:  # fan-out
            fanout = [len(graph.effective_succs(v, relax_reductions=relax_reductions)) for v in range(len(graph))]
            order = _schedule_by_priority(graph, indeg, lambda v: (-fanout[v], v), relax_reductions)
    if len(order) != len(graph):
        raise ScheduleError(
            f"list scheduler emitted {len(order)} of {len(graph)} nodes — dependence cycle"
        )
    return ListScheduleResult(
        graph=graph, heuristic=heuristic, relax_reductions=relax_reductions, order=order
    )
