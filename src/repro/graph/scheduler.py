"""Worklist list scheduling over a :class:`~repro.graph.dependency.DependencyGraph`.

The scheduler emits compute ops one at a time: a worklist holds every node
whose (effective) dependences are all resolved, a pluggable priority
heuristic picks the next node, and emitting a node releases its successors
whose dependence count drops to zero — the classic list-scheduling loop, in
the style of trace re-schedulers like PyPy's vectorizer.

Heuristics (``HEURISTICS``):

``"original"``     lowest original index first — reproduces the recorded
                   order exactly (the identity schedule, and the proof that
                   the DAG admits it);
``"depth-first"``  most recently released first (LIFO): chase one dependence
                   chain to completion before starting the next, the order
                   that keeps a reduction's accumulator hot;
``"locality"``     among ready nodes, prefer the one whose operand elements
                   were touched most recently (a greedy min-next-reuse-
                   distance rule): reuse what is still in fast memory before
                   moving on;
``"fan-out"``      most effective successors first: release as much of the
                   DAG as possible early (a span-reduction order, useful as
                   a parallel-frontier baseline).

Every heuristic breaks ties by original index, so schedules are
deterministic and replayable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import ConfigurationError, ScheduleError
from ..sched.ops import ComputeOp
from .dependency import DependencyGraph

HEURISTICS = ("original", "depth-first", "locality", "fan-out")


@dataclass
class ListScheduleResult:
    """A legal total order produced by :func:`list_schedule`."""

    graph: DependencyGraph
    heuristic: str
    relax_reductions: bool
    order: list[int] = field(default_factory=list)

    def ops(self) -> list[ComputeOp]:
        """The compute ops in emitted order."""
        return [self.graph.nodes[i].op for i in self.order]

    @property
    def is_identity(self) -> bool:
        return self.order == list(range(len(self.graph)))


def _schedule_by_priority(
    graph: DependencyGraph,
    indeg: list[int],
    priority,
    relax: bool,
) -> list[int]:
    """Generic heap-driven worklist: smallest ``priority(node)`` first."""
    heap = [(priority(v), v) for v in range(len(graph)) if indeg[v] == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        _, v = heapq.heappop(heap)
        order.append(v)
        for w in graph.effective_succs(v, relax_reductions=relax):
            indeg[w] -= 1
            if indeg[w] == 0:
                heapq.heappush(heap, (priority(w), w))
    return order


def _schedule_depth_first(graph: DependencyGraph, indeg: list[int], relax: bool) -> list[int]:
    # LIFO worklist: successors released by the last emitted node are
    # scheduled next (pushed in reverse index order so the lowest-index
    # chain is chased first).
    stack = sorted((v for v in range(len(graph)) if indeg[v] == 0), reverse=True)
    order: list[int] = []
    while stack:
        v = stack.pop()
        order.append(v)
        released = []
        for w in graph.effective_succs(v, relax_reductions=relax):
            indeg[w] -= 1
            if indeg[w] == 0:
                released.append(w)
        stack.extend(sorted(released, reverse=True))
    return order


def _schedule_locality(
    graph: DependencyGraph,
    indeg: list[int],
    relax: bool,
    window: int,
) -> list[int]:
    # Greedy reuse-distance rule: score each ready node by how many of its
    # elements were touched within the last ``window`` emitted ops, pick the
    # max (ties: original index).  O(ready x op-footprint) per emission —
    # fine at trace scale, and worth it: this is the heuristic that
    # rediscovers blocked orders from the bare DAG.
    ready = sorted(v for v in range(len(graph)) if indeg[v] == 0)
    last_touch: dict[tuple[str, int], int] = {}
    order: list[int] = []
    step = 0
    while ready:
        floor = step - window
        best = None
        best_score = -1
        for v in ready:
            score = 0
            for key in graph.nodes[v].touched_keys():
                if last_touch.get(key, -10 ** 9) >= floor:
                    score += 1
            if score > best_score or (score == best_score and v < best):
                best, best_score = v, score
        ready.remove(best)
        order.append(best)
        for key in graph.nodes[best].touched_keys():
            last_touch[key] = step
        step += 1
        for w in graph.effective_succs(best, relax_reductions=relax):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
    return order


def list_schedule(
    graph: DependencyGraph,
    heuristic: str = "original",
    *,
    relax_reductions: bool = False,
    locality_window: int = 4,
) -> ListScheduleResult:
    """Emit a legal total order of ``graph`` under the chosen heuristic.

    With ``relax_reductions=True`` edges that carry only the ``"reduction"``
    kind are ignored, enlarging the legal order space at the cost of
    bit-exactness (results then match only up to FP reassociation).
    """
    if heuristic not in HEURISTICS:
        raise ConfigurationError(
            f"unknown heuristic {heuristic!r}; choose from {', '.join(HEURISTICS)}"
        )
    indeg = graph.indegrees(relax_reductions=relax_reductions)
    if heuristic == "original":
        order = _schedule_by_priority(graph, indeg, lambda v: v, relax_reductions)
    elif heuristic == "depth-first":
        order = _schedule_depth_first(graph, indeg, relax_reductions)
    elif heuristic == "locality":
        order = _schedule_locality(graph, indeg, relax_reductions, locality_window)
    else:  # fan-out
        fanout = [len(graph.effective_succs(v, relax_reductions=relax_reductions)) for v in range(len(graph))]
        order = _schedule_by_priority(graph, indeg, lambda v: (-fanout[v], v), relax_reductions)
    if len(order) != len(graph):
        raise ScheduleError(
            f"list scheduler emitted {len(order)} of {len(graph)} nodes — dependence cycle"
        )
    return ListScheduleResult(
        graph=graph, heuristic=heuristic, relax_reductions=relax_reductions, order=order
    )
