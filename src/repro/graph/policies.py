"""Belady/MIN optimal-replacement replay: the per-order I/O floor.

:func:`~repro.analysis.lru_replay.lru_replay` answers "what does this op
*order* cost under hardware-style LRU replacement?".  This module answers
the complementary question: what is the *best possible* cost of that order
under any replacement policy?  Belady's MIN rule — on a miss, evict the
resident element whose next use is furthest in the future — is optimal for
a fixed access sequence and capacity, so ``belady_replay`` gives the
per-order floor that separates "this order is intrinsically expensive" from
"LRU is just managing it badly".

Both replays walk the *same* element access sequence
(:func:`~repro.sched.schedule.access_sequence`), so their load counts are
directly comparable: for every schedule and capacity,
``belady_replay(s, c).loads <= lru_replay(s, c).loads``.
"""

from __future__ import annotations

import heapq

from ..analysis.lru_replay import LruReplayResult, lru_replay
from ..errors import ConfigurationError
from ..sched.ops import ComputeOp
from ..sched.schedule import Schedule, access_sequence

__all__ = ["NEVER", "BeladyReplayResult", "access_sequence", "belady_replay", "replacement_gap"]

#: Sentinel next-use position for "never used again".
NEVER = 1 << 62


class BeladyReplayResult(LruReplayResult):
    """Outcome of replaying an op order under MIN-optimal replacement.

    Same shape and conventions as the LRU result (loads, stores,
    n_accesses, distinct, ``q``, ``miss_rate``) — the policies differ, the
    accounting does not.
    """


def belady_replay(schedule: Schedule | list[ComputeOp], capacity: int) -> BeladyReplayResult:
    """Replay the compute ops of ``schedule`` under Belady's MIN policy.

    On a miss with a full cache, the resident element with the furthest next
    use is evicted (clean victims preferred among equally-distant ones, so
    stores are not inflated).  Dirty evictions and the final flush count as
    stores, exactly as in the LRU replay.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    seq = access_sequence(schedule)

    # next_use[i]: position of the next access to seq[i]'s key, else NEVER.
    next_use = [NEVER] * len(seq)
    last_pos: dict[tuple[str, int], int] = {}
    for i in range(len(seq) - 1, -1, -1):
        key = seq[i][0]
        next_use[i] = last_pos.get(key, NEVER)
        last_pos[key] = i

    cache: dict[tuple[str, int], bool] = {}          # key -> dirty
    cur_next: dict[tuple[str, int], int] = {}        # key -> its next use
    heap: list[tuple[int, int, tuple[str, int]]] = []  # (-next_use, dirty, key), lazy
    loads = stores = 0

    for pos, (key, write) in enumerate(seq):
        if key in cache:
            cache[key] = cache[key] or write
        else:
            while len(cache) >= capacity:
                nu, _dirty_hint, victim = heapq.heappop(heap)
                if victim in cache and cur_next.get(victim) == -nu:
                    dirty = cache.pop(victim)
                    del cur_next[victim]
                    if dirty:
                        stores += 1
            cache[key] = write
            loads += 1
        cur_next[key] = next_use[pos]
        heapq.heappush(heap, (-next_use[pos], 0 if not cache[key] else 1, key))

    stores += sum(1 for dirty in cache.values() if dirty)
    return BeladyReplayResult(
        capacity=capacity,
        loads=loads,
        stores=stores,
        n_accesses=len(seq),
        distinct=len(last_pos),
    )


def replacement_gap(schedule: Schedule, capacity: int) -> float:
    """``Q_LRU / Q_MIN`` at equal capacity: how much LRU leaves on the table.

    1.0 means the order is so cache-friendly that LRU is already optimal;
    large values mean the order genuinely needs clairvoyant replacement.
    """
    opt = belady_replay(schedule, capacity).loads
    if opt <= 0:
        return 1.0
    return lru_replay(schedule, capacity).loads / opt
