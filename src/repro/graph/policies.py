"""Belady/MIN optimal-replacement replay: the per-order I/O floor.

:func:`~repro.analysis.lru_replay.lru_replay` answers "what does this op
*order* cost under hardware-style LRU replacement?".  This module answers
the complementary question: what is the *best possible* cost of that order
under any replacement policy?  Belady's MIN rule — on a miss, evict the
resident element whose next use is furthest in the future — is optimal for
a fixed access sequence and capacity, so ``belady_replay`` gives the
per-order floor that separates "this order is intrinsically expensive" from
"LRU is just managing it badly".

The default :func:`belady_replay` runs on the compiled trace IR
(:mod:`repro.trace`): next-use positions come from one vectorized pass and
the replay is the chunked array engine.  The original tuple/heap walker
survives as :func:`belady_replay_reference` — with one repair.  The seed
version pushed heap entries carrying a *dirty hint captured at push time*
and never checked it again, so the documented tie-break ("clean victims
preferred among equally-distant ones") silently depended on every
dirty-bit change coinciding with a fresh push.  The reference now treats a
stale hint like a stale next-use: an entry is valid only if *both* its
next-use and its dirty bit match the live cache state, and every state
change pushes a fresh entry.  The regression scenario (an equally-distant
clean/dirty pair at eviction time) is pinned in the test suite via the
``evict_stores`` counter: preferring the dirty victim turns a deferrable
final-flush store into an eviction-time writeback.

Both replays walk the *same* element access sequence as the LRU replay,
so their load counts are directly comparable: for every schedule and
capacity, ``belady_replay(s, c).loads <= lru_replay(s, c).loads``.
"""

from __future__ import annotations

import heapq

from ..errors import ConfigurationError
from ..sched.ops import ComputeOp
from ..sched.schedule import Schedule, access_sequence, access_sequence_reference
from ..trace.compiled import CompiledTrace, compile_trace
from ..trace.replay import BeladyReplayResult, belady_replay_trace

__all__ = [
    "NEVER",
    "BeladyReplayResult",
    "access_sequence",
    "belady_replay",
    "belady_replay_reference",
    "replacement_gap",
]

#: Sentinel next-use position for "never used again".
NEVER = 1 << 62


def belady_replay(
    schedule: Schedule | list[ComputeOp] | CompiledTrace, capacity: int
) -> BeladyReplayResult:
    """Replay the compute ops of ``schedule`` under Belady's MIN policy.

    Accepts a schedule, a bare op list, or an already-compiled
    :class:`~repro.trace.compiled.CompiledTrace`.  On a miss with a full
    cache, the resident element with the furthest next use is evicted
    (clean victims preferred among equally-distant ones, so eviction-time
    stores are not inflated).  Dirty evictions and the final flush count as
    stores, exactly as in the LRU replay.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    return belady_replay_trace(compile_trace(schedule), capacity)


def belady_replay_reference(
    schedule: Schedule | list[ComputeOp] | CompiledTrace, capacity: int
) -> BeladyReplayResult:
    """The original tuple/heap MIN walker (cross-check path), tie-break fixed.

    Heap entries are ``(-next_use, dirty, key)`` with lazy invalidation: an
    entry is alive only while both its next-use position *and* its dirty
    bit match the live cache state, and every access (the only place either
    can change) pushes a fresh entry.  Next-use positions are unique, so
    ties are only possible among never-used-again residents, where the
    dirty bit makes the heap prefer clean victims with live information
    instead of a push-time snapshot.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if isinstance(schedule, CompiledTrace):
        seq = schedule.to_access_sequence()
    else:
        seq = access_sequence_reference(schedule)

    # next_use[i]: position of the next access to seq[i]'s key, else NEVER.
    next_use = [NEVER] * len(seq)
    last_pos: dict[tuple[str, int], int] = {}
    for i in range(len(seq) - 1, -1, -1):
        key = seq[i][0]
        next_use[i] = last_pos.get(key, NEVER)
        last_pos[key] = i

    cache: dict[tuple[str, int], bool] = {}          # key -> dirty
    cur_next: dict[tuple[str, int], int] = {}        # key -> its next use
    heap: list[tuple[int, int, tuple[str, int]]] = []  # (-next_use, dirty, key), lazy
    loads = evict_stores = 0

    for pos, (key, write) in enumerate(seq):
        if key in cache:
            cache[key] = cache[key] or write
        else:
            while len(cache) >= capacity:
                nu, dirty_hint, victim = heapq.heappop(heap)
                if (
                    victim in cache
                    and cur_next.get(victim) == -nu
                    and cache[victim] == bool(dirty_hint)
                ):
                    dirty = cache.pop(victim)
                    del cur_next[victim]
                    if dirty:
                        evict_stores += 1
            cache[key] = write
            loads += 1
        cur_next[key] = next_use[pos]
        heapq.heappush(heap, (-next_use[pos], 1 if cache[key] else 0, key))

    flush = sum(1 for dirty in cache.values() if dirty)
    return BeladyReplayResult(
        capacity=capacity,
        loads=loads,
        stores=evict_stores + flush,
        n_accesses=len(seq),
        distinct=len(last_pos),
        evict_stores=evict_stores,
    )


def replacement_gap(schedule: Schedule | CompiledTrace, capacity: int) -> float:
    """``Q_LRU / Q_MIN`` at equal capacity: how much LRU leaves on the table.

    1.0 means the order is so cache-friendly that LRU is already optimal;
    large values mean the order genuinely needs clairvoyant replacement.
    """
    from ..analysis.lru_replay import lru_replay

    trace = compile_trace(schedule)
    opt = belady_replay(trace, capacity).loads
    if opt <= 0:
        return 1.0
    return lru_replay(trace, capacity).loads / opt
