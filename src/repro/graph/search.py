"""Search over legal compute orders: beam, lookahead greedy, annealing.

The one-shot worklist heuristics (:mod:`repro.graph.scheduler`) close part
of the explicit-vs-Belady gap; this module closes more of it by actually
*searching* the order space the dependency graph exposes.  Three
strategies, one contract — give me a :class:`DependencyGraph` built from a
compiled trace and a capacity, get back a legal total order plus the LRU
load count that scored it:

``beam_search``
    Keep the ``width`` best partial orders; each step, every surviving
    order is extended with its ``expand`` most promising ready ops
    (incremental miss counts from
    :class:`~repro.graph.objective.IncrementalObjective`) and the joint
    frontier is pruned by accumulated cost — which is always the exact
    LRU load count of the partial order.  One-shot greedy is the
    ``width=1, expand=1`` corner.

``lookahead_search``
    Greedy with rollouts: each candidate next op is evaluated by emitting
    it on a cloned state and rolling the cheapest-miss rule ``depth``
    further steps on the trace-level cursor — the op that leads to the
    cheapest near future wins, not the op that is cheapest right now
    (which is blind to the eviction damage it causes).

``anneal_search``
    Simulated annealing over reduction-class interleavings: the
    neighborhood reverses or rotates short segments of the current order
    (the moves that re-interleave commuting ``+=`` chains when reduction
    edges are relaxed), legality is re-checked against the graph for
    every proposal, and candidate costs are LRU replays of the reordered
    trace — re-costed from the nearest mid-stream cache checkpoint
    (:meth:`~repro.trace.replay.LruCursor.snapshot`), never recompiled.

The annealer's Metropolis move/accept loop is factored out as
:func:`anneal_minimize` — a state-agnostic harness (propose/commit
callbacks, geometric cooling, caller-owned best tracking) that the
transfer-aware partition refiner (:mod:`repro.parallel.refine`) drives
over shard assignments with the exact same accept rule.

Every strategy can narrate itself: ``record_convergence=True`` (or an
enabled :mod:`repro.obs.probe`) attaches iteration-level telemetry to the
result — the annealer's ``(iter, temp, cost, best, accepted)`` series,
beam search's per-position best-cost trace — without touching any RNG, so
recorded and unrecorded runs return bit-identical orders.

Every strategy is deterministic given its parameters (annealing takes a
seed) and every returned order is validated against the graph before it
leaves this module.  Downstream, a returned order is dressed into an
explicit, validated schedule exactly like a heuristic order
(:func:`repro.graph.rewriter.rewrite_schedule`), so search results flow
through the same record→analyze→reschedule harness, CLI and benches.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError, ScheduleError
from ..obs.convergence import AnnealSeries, RoundSeries
from ..obs.probe import get_probe
from ..sched.ops import ComputeOp
from ..trace.replay import LruCursor
from .dependency import DependencyGraph
from .objective import IncrementalObjective, order_cost
from .scheduler import HEURISTICS, list_schedule

#: Search strategies, in the order the CLI and benches report them.
STRATEGIES = ("beam", "lookahead", "anneal")


# --------------------------------------------------------------------- #
# the shared move/accept loop
# --------------------------------------------------------------------- #

@dataclass
class AnnealStats:
    """Counters of one :func:`anneal_minimize` run."""

    iters: int = 0
    evaluations: int = 0  # proposals that were costed
    accepted: int = 0
    skipped: int = 0      # proposals dropped before costing (no-op/illegal)

    @property
    def acceptance_rate(self) -> float:
        """Accepted share of the *costed* proposals (0.0 when none were).

        Skipped (no-op/illegal) proposals never reached the accept rule,
        so they are excluded — this is the Metropolis acceptance rate the
        cooling schedule is usually tuned against.
        """
        if self.evaluations == 0:
            return 0.0
        return self.accepted / self.evaluations


def anneal_minimize(
    cost: float,
    step: "Callable[[random.Random], tuple[float, Callable[[], None]] | None]",
    *,
    iters: int,
    rng: random.Random,
    t_start: float = 1.5,
    t_end: float = 0.05,
    series: "AnnealSeries | None" = None,
) -> tuple[float, AnnealStats]:
    """The Metropolis move/accept loop shared by every annealer here.

    One proposal per iteration: ``step(rng)`` either returns
    ``(candidate_cost, commit)`` — calling ``commit()`` applies the move to
    the caller's state — or ``None`` for a no-op/illegal proposal (the
    temperature still cools, matching a rejected move).  The loop owns
    cooling (geometric from ``t_start`` to ``t_end``; a single iteration
    runs entirely at ``t_start`` — the ``iters=1`` schedule has no second
    temperature to cool toward) and the accept rule (downhill always;
    uphill with probability ``exp(-dc / temp)``); the caller owns every
    piece of state, including best-seen tracking (do it inside
    ``commit``).  :func:`anneal_search` drives it over compute orders;
    :func:`repro.parallel.refine.refine_partition` drives the same loop
    over shard assignments.  Returns the final accepted cost and the
    proposal counters.

    ``series`` opts into per-iteration convergence telemetry: one
    ``(iter, temp, cost, best, accepted)`` row per iteration, where
    ``best`` is the lowest accepted cost so far (seeded with the starting
    cost).  Recording touches no RNG state, so a recorded run is
    bit-identical to an unrecorded one.
    """
    stats = AnnealStats()
    cooling = 1.0 if iters <= 1 else (t_end / t_start) ** (1.0 / (iters - 1))
    temp = t_start
    best = cost
    for _ in range(iters):
        stats.iters += 1
        proposal = step(rng)
        if proposal is None:
            stats.skipped += 1
            if series is not None:
                series.add(stats.iters - 1, temp, cost, best, False)
            temp *= cooling
            continue
        cand, commit = proposal
        stats.evaluations += 1
        dc = cand - cost
        took = dc <= 0 or rng.random() < math.exp(-dc / temp)
        if took:
            commit()
            cost = cand
            stats.accepted += 1
            if cost < best:
                best = cost
        if series is not None:
            series.add(stats.iters - 1, temp, cost, best, took)
        temp *= cooling
    return cost, stats


@dataclass
class SearchResult:
    """A legal total order found by one search strategy, plus its score."""

    graph: DependencyGraph
    strategy: str
    relax_reductions: bool
    capacity: int
    order: list[int] = field(default_factory=list)
    #: LRU loads of ``order`` at ``capacity`` — the search objective, not
    #: the rewrite volume (measure that with ``rewrite_schedule``).
    cost: int = 0
    #: candidate evaluations the strategy performed (expansions, rollouts
    #: or annealing proposals) — the search-effort axis of the benches.
    evaluations: int = 0
    params: dict = field(default_factory=dict)
    #: convergence telemetry (an :class:`~repro.obs.convergence.AnnealSeries`
    #: or :class:`~repro.obs.convergence.RoundSeries`) when the run was
    #: recorded — ``record_convergence=True`` or an enabled probe; else None.
    convergence: "AnnealSeries | RoundSeries | None" = None

    def ops(self) -> list[ComputeOp]:
        """The compute ops in searched order."""
        return [self.graph.nodes[i].op for i in self.order]

    @property
    def is_identity(self) -> bool:
        return self.order == list(range(len(self.graph)))


def _finish(
    graph: DependencyGraph,
    strategy: str,
    relax: bool,
    capacity: int,
    order: list[int],
    cost: int,
    evaluations: int,
    params: dict,
    convergence: "AnnealSeries | RoundSeries | None" = None,
) -> SearchResult:
    if len(order) != len(graph):
        raise ScheduleError(
            f"{strategy} search emitted {len(order)} of {len(graph)} nodes"
        )
    if not graph.is_valid_order(order, relax_reductions=relax):
        raise ScheduleError(f"{strategy} search produced an illegal order")
    probe = get_probe()
    if probe.enabled:
        probe.count(f"search.{strategy}.runs")
        probe.count(f"search.{strategy}.evaluations", evaluations)
        if convergence is not None:
            probe.attach(f"convergence.search.{strategy}", convergence)
    return SearchResult(
        graph=graph,
        strategy=strategy,
        relax_reductions=relax,
        capacity=capacity,
        order=order,
        cost=cost,
        evaluations=evaluations,
        params=params,
        convergence=convergence,
    )


# --------------------------------------------------------------------- #
# beam search
# --------------------------------------------------------------------- #

def beam_search(
    graph: DependencyGraph,
    capacity: int,
    *,
    width: int = 4,
    expand: int = 3,
    relax_reductions: bool = False,
    record_convergence: bool = False,
) -> SearchResult:
    """Top-``width`` partial orders, scored by incremental LRU loads.

    All surviving partial orders have emitted the same number of ops, so
    accumulated cost is directly comparable across the beam.  Orders are
    stored as parent-linked tails (cloning a growing list per child would
    be quadratic); ties break toward the lower op index everywhere, so
    the result is deterministic.

    With ``record_convergence=True`` (or an enabled probe) the result
    carries a :class:`~repro.obs.convergence.RoundSeries` of the beam
    head's accumulated cost per emitted position.
    """
    if width < 1 or expand < 1:
        raise ConfigurationError("beam width and expand must be >= 1")
    n = len(graph)
    series = None
    if record_convergence or get_probe().enabled:
        series = RoundSeries(label=f"beam width={width}", engine="beam")
    root = IncrementalObjective(graph, capacity, relax_reductions=relax_reductions)
    beams: list[tuple[IncrementalObjective, tuple | None]] = [(root, None)]
    evaluations = 0
    for step in range(n):
        children: list[tuple[int, int, IncrementalObjective, tuple]] = []
        for obj, tail in beams:
            for _miss, v in obj.candidates(expand):
                child = obj.clone()
                child.emit(v)
                evaluations += 1
                children.append((child.cost, v, child, (v, tail)))
        if not children:
            raise ScheduleError("beam search stalled — dependence cycle")
        children.sort(key=lambda c: (c[0], c[1]))
        beams = [(c[2], c[3]) for c in children[:width]]
        if series is not None:
            series.add(step, beams[0][0].cost)
    best_obj, best_tail = min(beams, key=lambda b: b[0].cost)
    order: list[int] = []
    while best_tail is not None:
        v, best_tail = best_tail
        order.append(v)
    order.reverse()
    return _finish(
        graph, "beam", relax_reductions, capacity, order, best_obj.cost,
        evaluations, {"width": width, "expand": expand}, series,
    )


# --------------------------------------------------------------------- #
# lookahead greedy
# --------------------------------------------------------------------- #

def lookahead_search(
    graph: DependencyGraph,
    capacity: int,
    *,
    depth: int = 4,
    breadth: int = 4,
    relax_reductions: bool = False,
) -> SearchResult:
    """Greedy with ``depth``-step rollouts of the cheapest-miss rule.

    For each of the ``breadth`` most promising ready ops, emit it on a
    cloned state, roll the greedy rule ``depth`` further ops on the
    suffix cursor, and commit the op whose rollout accumulated the fewest
    loads (ties: fewer immediate misses, then lower index).
    """
    if depth < 0 or breadth < 1:
        raise ConfigurationError("lookahead depth must be >= 0, breadth >= 1")
    obj = IncrementalObjective(graph, capacity, relax_reductions=relax_reductions)
    order: list[int] = []
    evaluations = 0
    while not obj.done:
        cands = obj.candidates(breadth)
        if len(cands) == 1 or depth == 0 or cands[0][0] < cands[1][0]:
            # A strict immediate winner needs no rollout: deferring
            # mandatory expensive ops always looks cheap at a fixed
            # horizon, so the rollout only arbitrates ties (of the
            # optimistic miss ranking — a deliberate heuristic cut).
            choice = cands[0][1]
        else:
            best_key = None
            choice = cands[0][1]
            tie_miss = cands[0][0]
            for miss, v in cands:
                if miss > tie_miss:
                    break  # cands are sorted: only the tied head competes
                sim = obj.clone()
                sim.emit(v)
                for _ in range(depth):
                    nxt = sim.candidates(1)
                    if not nxt:
                        break
                    sim.emit(nxt[0][1])
                evaluations += 1
                key = (sim.cost, v)
                if best_key is None or key < best_key:
                    best_key, choice = key, v
        obj.emit(choice)
        order.append(choice)
    return _finish(
        graph, "lookahead", relax_reductions, capacity, order, obj.cost,
        evaluations, {"depth": depth, "breadth": breadth},
    )


# --------------------------------------------------------------------- #
# simulated annealing over segment interleavings
# --------------------------------------------------------------------- #

def _start_order(graph: DependencyGraph, start, relax: bool) -> list[int]:
    if start is None:
        # The cheap heuristics; callers with time to spare pass a
        # locality/beam/lookahead order in explicitly.
        return list_schedule(graph, "original", relax_reductions=relax).order
    if isinstance(start, str):
        if start not in HEURISTICS:
            raise ConfigurationError(
                f"unknown start heuristic {start!r}; choose from {', '.join(HEURISTICS)}"
            )
        return list_schedule(graph, start, relax_reductions=relax).order
    return list(start)


#: Deterministic starting-temperature multipliers of a multi-chain anneal
#: portfolio, cycled by chain index.  Chain 0 always runs the caller's
#: exact ``(seed, t_start)`` — the classic serial run — so the best-of
#: merge is never worse than a single chain by construction.
_CHAIN_TEMP_LADDER = (1.0, 0.5, 2.0, 0.25, 4.0)


def reduction_class_of(graph: DependencyGraph) -> list[int]:
    """Per-op reduction-class index (``-1`` for ops in no class).

    The dense lookup the segment-aware move generator keys on; shared by
    :func:`anneal_search` and the joint co-search layer
    (:mod:`repro.parallel.cosearch`).
    """
    class_of = [-1] * len(graph)
    for ci, members in enumerate(graph.reduction_classes()):
        for v in members:
            class_of[v] = ci
    return class_of


def propose_segment_move(
    order: list[int],
    class_of: list[int],
    rng: random.Random,
    *,
    max_segment: int = 12,
) -> tuple[int, int, list[int]]:
    """One order move: ``(window start, window end, new segment)``.

    The reduction-class-aware neighborhood shared by every order annealer
    here and by the joint co-search: most proposals pick the contiguous
    run of same-class ops around a random position and reverse it, rotate
    it, or swap it with the following run; the rest reverse/rotate a
    generic window of at most ``max_segment`` ops.  Needs ``len(order) >=
    2``; the proposal may be a no-op (callers compare against the current
    window) and is *not* legality-checked — that stays with the caller,
    which owns the graph.
    """
    n = len(order)

    def class_run(p: int) -> tuple[int, int]:
        """Maximal run of same-class ops around position ``p`` (may be p,p+1)."""
        ci = class_of[order[p]]
        i = p
        while i > 0 and class_of[order[i - 1]] == ci:
            i -= 1
        j = p + 1
        while j < n and class_of[order[j]] == ci:
            j += 1
        return i, j

    if rng.random() < 0.6:
        p = rng.randrange(n)
        if class_of[order[p]] >= 0:
            i, j = class_run(p)
            if j - i >= 2:
                seg = order[i:j]
                kind = rng.random()
                if kind < 0.5:
                    return i, j, seg[::-1]
                if kind < 0.75:
                    r = rng.randrange(1, len(seg))
                    return i, j, seg[r:] + seg[:r]
                if j < n:  # swap this run with the one after it
                    _, k = class_run(j)
                    return i, k, order[j:k] + seg
    i = rng.randrange(0, n - 1)
    j = min(n, i + rng.randrange(2, max_segment + 1))
    seg = order[i:j]
    if rng.random() < 0.5:
        return i, j, seg[::-1]
    r = rng.randrange(1, len(seg))
    return i, j, seg[r:] + seg[:r]


def _anneal_chain(
    graph: DependencyGraph,
    capacity: int,
    iters: int,
    seed: int,
    relax_reductions: bool,
    order: list[int],
    max_segment: int,
    t_start: float,
    t_end: float,
    want_series: bool,
):
    """One Metropolis chain over orders, from a fixed start.

    Returns ``(best_order, best_cost, evaluations, chain_params, series)``
    — a plain tuple (no graph inside) so portfolio chains can run in
    worker processes and pickle their results back cheaply.  The cold
    re-cost cross-check of the winner runs in-chain, so a drifted
    checkpoint replay fails loudly wherever the chain ran.
    """
    trace = graph.trace
    n = len(graph)
    order = list(order)
    rng = random.Random(seed)
    chain_params: dict = {"accepted": 0, "illegal": 0}

    series = None
    if want_series:
        series = AnnealSeries(label=f"anneal iters={iters} seed={seed}")

    if n < 3 or iters == 0:
        cost = order_cost(trace, order, capacity)
        return order, cost, 0, chain_params, series

    # LRU checkpoints every `interval` ops of the *current* order:
    # snaps[j] is the cache state before position j*interval, so a move
    # whose leftmost change is at position i re-costs only order[i0:]
    # with i0 = (i // interval) * interval.
    interval = max(8, n // 64)
    cursor = LruCursor(trace, capacity)
    snaps: list[tuple[int, tuple[int, ...]]] = [cursor.snapshot()]  # cold start

    def replay_from(j0: int, candidate: list[int]) -> tuple[int, list]:
        cursor.restore(snaps[j0])
        new_snaps = []
        for j in range(j0 * interval, n, interval):
            new_snaps.append(cursor.snapshot())
            cursor.apply(candidate[j : j + interval])
        return cursor.loads, new_snaps

    cur_cost, snaps = replay_from(0, order)
    # replay_from(0, ...) rebuilds every snapshot, so snaps is complete.
    best_order, best_cost = list(order), cur_cost

    # Reduction-class membership drives the segment-aware moves; the
    # neighborhood itself is the shared :func:`propose_segment_move`.
    class_of = reduction_class_of(graph)

    def step(_rng: random.Random):
        # the proposer draws from the same rng the loop drives.
        i, j, segment = propose_segment_move(
            order, class_of, rng, max_segment=max_segment
        )
        if segment == order[i:j]:
            return None
        candidate = order[:i] + segment + order[j:]
        if not graph.is_valid_order(candidate, relax_reductions=relax_reductions):
            chain_params["illegal"] += 1
            return None
        j0 = i // interval
        cand_cost, new_snaps = replay_from(j0, candidate)

        def commit() -> None:
            nonlocal order, best_order, best_cost
            order = candidate
            snaps[j0:] = new_snaps
            if cand_cost < best_cost:
                best_order, best_cost = list(candidate), cand_cost

        return cand_cost, commit

    cur_cost, stats = anneal_minimize(
        cur_cost, step, iters=iters, rng=rng, t_start=t_start, t_end=t_end,
        series=series,
    )
    chain_params["accepted"] = stats.accepted
    chain_params["acceptance_rate"] = stats.acceptance_rate

    # Ground-truth re-cost of the winner on the reordered trace (shared
    # interning, no recompilation): the checkpointed suffix replays must
    # agree with a cold full replay.
    final_cost = order_cost(trace, best_order, capacity)
    if final_cost != best_cost:
        raise ScheduleError(
            f"annealing checkpoint replay drifted: {best_cost} != {final_cost}"
        )
    return best_order, final_cost, stats.evaluations, chain_params, series


def _anneal_chain_task(task):
    """Module-level (picklable) wrapper: one portfolio chain per worker."""
    return _anneal_chain(*task)


def anneal_search(
    graph: DependencyGraph,
    capacity: int,
    *,
    iters: int = 800,
    seed: int = 0,
    relax_reductions: bool = False,
    start: "str | list[int] | None" = None,
    max_segment: int = 12,
    t_start: float = 1.5,
    t_end: float = 0.05,
    record_convergence: bool = False,
    chains: int = 1,
    jobs: int = 1,
) -> SearchResult:
    """Simulated annealing over reduction-class interleavings.

    The neighborhood is built around the commuting ``+=`` segments: most
    proposals pick the contiguous run of same-reduction-class ops around
    a random position and reverse it, rotate it, or swap it with the
    following run (reversing a chain lets its tail meet the next chain's
    head — the zigzag that shares operand columns across chain
    boundaries; swapping runs re-chooses which chains are neighbors).
    The rest are generic reversals/rotations of windows of at most
    ``max_segment`` ops.  Every proposal is legality-checked against the
    graph — under ``relax_reductions=False`` (the default, matching the
    other strategies) in-chain reversals are rejected and the walk
    explores only bit-exact chain permutations; pass
    ``relax_reductions=True`` to open the interleaving space the
    neighborhood is designed for — and costed by replaying only the
    order suffix the move changed, from the nearest cached LRU
    checkpoint.  Cooling is geometric from
    ``t_start`` to ``t_end``; the best order ever seen is returned,
    re-costed from cold as a cross-check.

    ``chains > 1`` runs a portfolio of independent Metropolis chains from
    the same start order: chain 0 is exactly the classic serial run
    (caller's ``seed`` and ``t_start``); chain ``k`` draws its seed from
    :func:`repro.perf.pool.task_seed` (disjoint RNG streams) and scales
    ``t_start`` by the deterministic ladder :data:`_CHAIN_TEMP_LADDER`.
    The merge takes the minimum by ``(cost, chain_index)`` — deterministic
    and never worse than the single-chain result.  ``jobs > 1`` fans the
    chains out over worker processes; the merged result is bit-identical
    for any ``jobs`` (the serial reduction order *is* chain-index order).

    With ``record_convergence=True`` (or an enabled probe) the result
    carries the per-iteration ``(iter, temp, cost, best, accepted)``
    :class:`~repro.obs.convergence.AnnealSeries` of the winning chain —
    recording never touches the RNG, so the returned order is bit-identical
    either way.
    """
    if iters < 0:
        raise ConfigurationError(f"iters must be >= 0, got {iters}")
    if chains < 1:
        raise ConfigurationError(f"chains must be >= 1, got {chains}")
    if graph.trace is None:
        raise ConfigurationError(
            "order search needs the graph's compiled trace; build the "
            "graph with DependencyGraph.from_trace/from_schedule"
        )
    order = _start_order(graph, start, relax_reductions)
    want_series = record_convergence or get_probe().enabled
    params = {"iters": iters, "seed": seed, "max_segment": max_segment}

    if chains == 1:
        best_order, best_cost, evaluations, chain_params, series = _anneal_chain(
            graph, capacity, iters, seed, relax_reductions, order,
            max_segment, t_start, t_end, want_series,
        )
        params.update(chain_params)
        return _finish(
            graph, "anneal", relax_reductions, capacity, best_order, best_cost,
            evaluations, params, series,
        )

    from ..perf.pool import parallel_map, task_seed

    ladder = _CHAIN_TEMP_LADDER
    chain_seeds = [task_seed(seed, k) for k in range(chains)]
    chain_t_starts = [t_start * ladder[k % len(ladder)] for k in range(chains)]
    tasks = [
        (
            graph, capacity, iters, chain_seeds[k], relax_reductions, order,
            max_segment, chain_t_starts[k], t_end, want_series,
        )
        for k in range(chains)
    ]
    outcomes = parallel_map(_anneal_chain_task, tasks, jobs=jobs)
    winner = min(range(chains), key=lambda k: (outcomes[k][1], k))
    best_order, best_cost, _, chain_params, series = outcomes[winner]
    params.update(chain_params)
    params.update(
        chains=chains, jobs=jobs, winner_chain=winner,
        chain_costs=[outcomes[k][1] for k in range(chains)],
    )
    return _finish(
        graph, "anneal", relax_reductions, capacity, best_order, best_cost,
        sum(outcomes[k][2] for k in range(chains)), params, series,
    )


# --------------------------------------------------------------------- #
# dispatcher
# --------------------------------------------------------------------- #

def search_order(
    graph: DependencyGraph,
    capacity: int,
    strategy: str,
    **kwargs,
) -> SearchResult:
    """Run one search ``strategy`` (:data:`STRATEGIES`) over ``graph``."""
    if strategy == "beam":
        return beam_search(graph, capacity, **kwargs)
    if strategy == "lookahead":
        return lookahead_search(graph, capacity, **kwargs)
    if strategy == "anneal":
        return anneal_search(graph, capacity, **kwargs)
    raise ConfigurationError(
        f"unknown strategy {strategy!r}; choose from {', '.join(STRATEGIES)}"
    )
