"""Dependency graphs over recorded compute-op streams.

A recorded :class:`~repro.sched.schedule.Schedule` fixes one total order of
compute ops, but the paper's central observation (shared with Kwasniewski
et al.'s parallel-optimality work) is that I/O volume is a property of the
*order*, and many orders are legal.  :class:`DependencyGraph` extracts the
partial order actually imposed by the data: element-granular RAW / WAR /
WAW dependences derived from :class:`~repro.machine.regions.Region` overlap.
Extraction runs over the compiled trace IR
(:class:`~repro.trace.compiled.CompiledTrace`): per-element last-writer /
reader state is tracked by interned integer element IDs, not per-key
``(matrix, flat)`` tuples, and each node's access sets come from one
vectorized slice of the trace.

Commuting accumulations get special treatment.  Every ``+=`` update op in
this library (:class:`~repro.sched.ops.OuterColsUpdate`,
:class:`~repro.sched.ops.TriangleUpdate`,
:class:`~repro.sched.ops.TriangleCrossUpdate`,
:class:`~repro.sched.ops.GemmOuterUpdate`) adds an input-independent
contribution into its output region, so two such ops targeting overlapping
elements commute *algebraically* — they form a reduction class, not a chain
of hard WAW hazards.  The graph records the original accumulation order as
``"reduction"`` edges (a chain per element).  Kept, any topological order
reproduces the original per-element summation order and therefore the
original result bit for bit; dropped (``relax_reductions=True``), the legal
order space grows and results are equal only up to floating-point
reassociation.

Edge kinds:

``"raw"``        true dependence (producer before consumer);
``"war"``        anti dependence (reader before overwriter/accumulator);
``"waw"``        output dependence between non-commuting writers;
``"reduction"``  original order of commuting accumulations into a shared
                 element (relaxable).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sched.ops import (
    ComputeOp,
    GemmOuterUpdate,
    OuterColsUpdate,
    TriangleCrossUpdate,
    TriangleUpdate,
)
from ..sched.schedule import Schedule
from ..trace.compiled import CompiledTrace, compile_trace
from ..utils.unionfind import DisjointSets

#: Op types whose writes are pure ``+=`` accumulations of contributions that
#: do not depend on the accumulator's current value.  Any two of these
#: commute on shared output elements (up to FP reassociation).
COMMUTING_ACCUMULATIONS: tuple[type, ...] = (
    OuterColsUpdate,
    TriangleUpdate,
    TriangleCrossUpdate,
    GemmOuterUpdate,
)


def is_commuting_accumulation(op: ComputeOp) -> bool:
    """Is ``op`` a pure additive update (reorderable within its class)?"""
    return isinstance(op, COMMUTING_ACCUMULATIONS)


@dataclass
class OpNode:
    """One compute op of the stream, with its element-granular access sets.

    Element sets are *interned element IDs* of the compiled trace the graph
    was built from (:attr:`DependencyGraph.trace`) — dense ints, not
    ``(matrix, flat)`` tuples.  Decode one with
    :meth:`~repro.trace.compiled.CompiledTrace.key_of` when a human-readable
    key is needed.
    """

    index: int
    op: ComputeOp
    #: element IDs the op truly reads as *input*.  For a commuting
    #: accumulation the accumulated output region is excluded (its read of
    #: the running sum is what the reduction edges model); for every other
    #: op reads are taken verbatim.
    input_keys: frozenset[int] = field(repr=False, default=frozenset())
    #: element IDs the op writes.
    write_keys: frozenset[int] = field(repr=False, default=frozenset())

    @property
    def is_accumulation(self) -> bool:
        return is_commuting_accumulation(self.op)

    def touched_keys(self) -> frozenset[int]:
        """All elements the op touches (inputs plus outputs)."""
        return self.input_keys | self.write_keys


class DependencyGraph:
    """The data-dependence partial order of a schedule's compute ops."""

    def __init__(self, nodes: list[OpNode], trace: CompiledTrace | None = None):
        self.nodes = nodes
        #: the compiled trace the node element IDs refer to.
        self.trace = trace
        # succs[u] / preds[v]: neighbor -> set of edge kinds.
        self.succs: list[dict[int, set[str]]] = [dict() for _ in nodes]
        self.preds: list[dict[int, set[str]]] = [dict() for _ in nodes]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "DependencyGraph":
        """Extract the dependence DAG from a schedule's compute steps.

        Loads and evicts are ignored: they are an artifact of one explicit
        memory-management strategy, and the whole point of the graph layer
        is to re-derive them (see :mod:`repro.graph.rewriter`).
        """
        return cls.from_trace(compile_trace(schedule))

    @classmethod
    def from_trace(cls, trace: CompiledTrace) -> "DependencyGraph":
        """Extract the dependence DAG from a compiled trace.

        The trace must still carry its op objects (``trace.ops``): replays
        only need the arrays, but dependence analysis needs the op types to
        classify commuting accumulations, and downstream rescheduling needs
        the ops themselves.
        """
        if trace.ops is None:
            raise ConfigurationError(
                "trace has no op objects (loaded from disk?); dependence "
                "extraction needs a trace compiled in-process from a "
                "Schedule or op list"
            )
        nodes: list[OpNode] = []
        ids, flags = trace.elem_ids, trace.is_write
        starts, read_ends = trace.op_starts, trace.op_read_ends
        for i, op in enumerate(trace.ops):
            s, e = int(starts[i]), int(starts[i + 1])
            sl = ids[s:e]
            writes = np.unique(sl[flags[s:e]])
            reads = np.unique(ids[s : int(read_ends[i])])
            if is_commuting_accumulation(op):
                inputs = np.setdiff1d(reads, writes, assume_unique=True)
            else:
                inputs = reads
            nodes.append(
                OpNode(
                    index=i,
                    op=op,
                    input_keys=frozenset(inputs.tolist()),
                    write_keys=frozenset(writes.tolist()),
                )
            )
        graph = cls(nodes, trace=trace)
        graph._build_edges()
        return graph

    def _add_edge(self, u: int, v: int, kind: str) -> None:
        if u == v:
            return
        self.succs[u].setdefault(v, set()).add(kind)
        self.preds[v].setdefault(u, set()).add(kind)

    def _build_edges(self) -> None:
        # Per-element dependence state (keyed by interned element ID),
        # cleared by sequential (non-commuting) writes: the last sequential
        # writer, the commuting accumulators since, and the input-readers
        # since the last write of any kind.
        last_seq: dict[int, int] = {}
        accs: dict[int, list[int]] = {}
        readers: dict[int, list[int]] = {}

        for node in self.nodes:
            v = node.index
            for key in node.input_keys:
                if key in last_seq:
                    self._add_edge(last_seq[key], v, "raw")
                # A true read needs *every* accumulation so far: partial sums
                # are meaningless, so each contributes a RAW edge.
                for u in accs.get(key, ()):
                    self._add_edge(u, v, "raw")
                readers.setdefault(key, []).append(v)
            if node.is_accumulation:
                for key in node.write_keys:
                    if key in last_seq:
                        self._add_edge(last_seq[key], v, "raw")
                    for u in readers.get(key, ()):
                        self._add_edge(u, v, "war")
                    chain = accs.setdefault(key, [])
                    if chain:
                        self._add_edge(chain[-1], v, "reduction")
                    chain.append(v)
            else:
                for key in node.write_keys:
                    for u in readers.get(key, ()):
                        self._add_edge(u, v, "war")
                    if key in last_seq:
                        self._add_edge(last_seq[key], v, "waw")
                    for u in accs.get(key, ()):
                        # Accumulations must finish before an overwrite.
                        self._add_edge(u, v, "waw")
                    last_seq[key] = v
                    accs.pop(key, None)
                    readers.pop(key, None)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.nodes)

    def edges(self) -> list[tuple[int, int, frozenset[str]]]:
        """All edges as ``(u, v, kinds)`` triples, u emitted before v."""
        return [
            (u, v, frozenset(kinds))
            for u in range(len(self.nodes))
            for v, kinds in sorted(self.succs[u].items())
        ]

    def edge_counts(self) -> dict[str, int]:
        """Number of edges carrying each dependence kind."""
        out = {"raw": 0, "war": 0, "waw": 0, "reduction": 0}
        for _u, _v, kinds in self.edges():
            for k in kinds:
                out[k] += 1
        return out

    def effective_preds(self, v: int, *, relax_reductions: bool = False) -> list[int]:
        """Predecessors of ``v``, optionally dropping reduction-only edges."""
        if not relax_reductions:
            return list(self.preds[v])
        return [u for u, kinds in self.preds[v].items() if kinds != {"reduction"}]

    def effective_succs(self, u: int, *, relax_reductions: bool = False) -> list[int]:
        if not relax_reductions:
            return list(self.succs[u])
        return [v for v, kinds in self.succs[u].items() if kinds != {"reduction"}]

    def indegrees(self, *, relax_reductions: bool = False) -> list[int]:
        return [
            len(self.effective_preds(v, relax_reductions=relax_reductions))
            for v in range(len(self.nodes))
        ]

    def depths(self) -> list[int]:
        """Longest-path depth of each node from the DAG sources (edges kept)."""
        depth = [0] * len(self.nodes)
        for v in range(len(self.nodes)):  # original order is topological
            for u in self.preds[v]:
                depth[v] = max(depth[v], depth[u] + 1)
        return depth

    def critical_path_length(self) -> int:
        """Deprecated: longest chain length in *nodes* (the unweighted span).

        This counts ops, not work: comparing it against compute volumes
        (mults) is a unit error — the footgun the docs have warned about
        since the makespan model landed.  Use :meth:`critical_path_cost`
        instead: no argument for the same op count, per-op mults for a
        span in the unit of the fleet metrics.
        """
        warnings.warn(
            "critical_path_length() counts ops, not work; use "
            "critical_path_cost() (unit weights, same value) or "
            "critical_path_cost(mults) (work-weighted span)",
            DeprecationWarning,
            stacklevel=2,
        )
        return int(self.critical_path_cost())

    def critical_path_cost(self, weights: "Sequence[float] | None" = None) -> float:
        """Longest weighted chain — the span in the unit of ``weights``.

        ``weights[v]`` is the cost of op ``v`` (the fleet metrics use
        mults); the returned value is the maximum over all dependence
        chains of the summed weights, i.e. the runtime floor of any
        schedule on unboundedly many nodes with free communication.
        ``weights=None`` means unit weights: the chain length in ops, the
        value the deprecated :meth:`critical_path_length` reported.
        """
        if weights is None:
            weights = [1.0] * len(self.nodes)
        elif len(weights) != len(self.nodes):
            raise ConfigurationError(
                f"weights has {len(weights)} entries for {len(self.nodes)} ops"
            )
        cost = [0.0] * len(self.nodes)
        best = 0.0
        for v in range(len(self.nodes)):  # original order is topological
            c = 0.0
            for u in self.preds[v]:
                if cost[u] > c:
                    c = cost[u]
            cost[v] = c + weights[v]
            if cost[v] > best:
                best = cost[v]
        return best

    def is_valid_order(self, order: list[int], *, relax_reductions: bool = False) -> bool:
        """Does ``order`` (a permutation of node indices) respect the DAG?"""
        if sorted(order) != list(range(len(self.nodes))):
            return False
        position = {v: i for i, v in enumerate(order)}
        for v in range(len(self.nodes)):
            for u in self.effective_preds(v, relax_reductions=relax_reductions):
                if position[u] >= position[v]:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # shard analysis (the parallel executor's cut accounting)
    # ------------------------------------------------------------------ #
    def cut_edges(
        self, owner: "Sequence[int]", *, kinds: frozenset[str] | None = None
    ) -> list[tuple[int, int, frozenset[str]]]:
        """Edges whose endpoints are owned by different shards.

        ``owner[v]`` is the shard (node) index of op ``v`` — the assignment a
        partitioner of :mod:`repro.parallel.executor` produced.  With
        ``kinds`` given, only edges carrying at least one of those kinds are
        returned.
        """
        if len(owner) != len(self.nodes):
            raise ConfigurationError(
                f"owner has {len(owner)} entries for {len(self.nodes)} ops"
            )
        out = []
        for u, v, ks in self.edges():
            if owner[u] != owner[v] and (kinds is None or ks & kinds):
                out.append((u, v, ks))
        return out

    def cut_transfers(
        self,
        owner: "Sequence[int]",
        *,
        cut: list[tuple[int, int, frozenset[str]]] | None = None,
    ) -> dict[tuple[int, int], set[int]]:
        """Element IDs that must move between shards under ``owner``.

        For every cross-shard edge that carries a true data flow, the
        elements the producer wrote and the consumer needs form an explicit
        network transfer (the §2.2 equivalence charges same-shard flows to
        the node's own loads; cross-shard flows are node-to-node sends):

        * ``"raw"`` edges carry the producer's writes the consumer reads
          (for a commuting accumulation, the accumulator elements it updates);
        * ``"reduction"`` edges carry the shared accumulator elements — a
          split reduction class must combine partial sums across shards.

        WAR/WAW-only edges move no data (they are ordering constraints).
        Returns ``(src_shard, dst_shard) -> element IDs``; an element is
        counted once per (producer shard, consumer shard) pair, matching a
        model where each shard forwards its latest version once.

        Pass an already-computed :meth:`cut_edges` list as ``cut`` to avoid
        a second walk over the full edge set.
        """
        if cut is None:
            cut = self.cut_edges(owner, kinds=frozenset({"raw", "reduction"}))
        flows: dict[tuple[int, int], set[int]] = {}
        for u, v, ks in cut:
            shared = self.edge_flow(u, v, ks)
            if shared:
                flows.setdefault((owner[u], owner[v]), set()).update(shared)
        return flows

    def edge_flow(self, u: int, v: int, kinds: frozenset[str]) -> frozenset[int]:
        """Element IDs edge ``(u, v)`` carries when its endpoints are split.

        The per-edge kernel of :meth:`cut_transfers` (same RAW/reduction
        rules), exposed so incremental consumers — the transfer-aware
        partition refiner's ledger, the makespan model's edge latencies —
        can precompute one flow set per edge instead of re-walking the
        whole cut.  WAR/WAW-only edges carry no data (empty set).
        """
        if not kinds & {"raw", "reduction"}:
            return frozenset()
        nu, nv = self.nodes[u], self.nodes[v]
        if "raw" in kinds:
            needed = nv.input_keys | (nv.write_keys if nv.is_accumulation else frozenset())
        else:  # reduction-only: the shared accumulator itself
            needed = nv.write_keys
        return nu.write_keys & needed

    def reduction_classes(self) -> list[list[int]]:
        """Maximal groups of accumulations linked by reduction-only edges.

        Two accumulations land in the same class when a chain of edges whose
        kinds are exactly ``{"reduction"}`` connects them — i.e. the group of
        ops that commute with each other once reductions are relaxed.
        """
        sets = DisjointSets(len(self.nodes))
        for u, v, kinds in self.edges():
            if kinds == {"reduction"}:
                sets.union(u, v)
        groups = sets.groups()
        return sorted((g for g in groups.values() if len(g) > 1), key=lambda g: g[0])

    def topological_order(self, *, relax_reductions: bool = False) -> list[int]:
        """A canonical (original-index-first) topological order."""
        from .scheduler import list_schedule  # local import: avoid cycle

        return list_schedule(self, heuristic="original", relax_reductions=relax_reductions).order


def dependency_graph(schedule: Schedule | CompiledTrace) -> DependencyGraph:
    """Convenience: :meth:`DependencyGraph.from_schedule` / ``from_trace``."""
    if isinstance(schedule, CompiledTrace):
        return DependencyGraph.from_trace(schedule)
    if not isinstance(schedule, Schedule):
        raise ConfigurationError(f"expected a Schedule, got {type(schedule).__name__}")
    return DependencyGraph.from_schedule(schedule)
