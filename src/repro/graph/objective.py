"""Incremental I/O objectives for searching over legal compute orders.

Every strategy in :mod:`repro.graph.search` asks the same two questions
thousands of times: *what would emitting this op cost right now?* and
*which ready ops are even worth considering?*  This module answers both on
top of the trace layer's incremental hooks:

* :class:`IncrementalObjective` wraps a
  :class:`~repro.trace.replay.LruCursor` (element-level LRU at the target
  capacity) plus a :class:`~repro.graph.scheduler.Worklist`, so a search
  state is one cheap-to-clone object whose accumulated ``cost`` is exactly
  the LRU load count of the partial order emitted so far;
* :func:`element_op_lists` inverts the trace (element ID → ops touching
  it), and :meth:`IncrementalObjective.candidates` uses it to propose only
  the ready ops *coupled to the current cache contents* — each proposal
  comes with its miss count for free (footprint size minus resident
  overlap; an optimistic lower bound, see
  :meth:`~repro.trace.replay.LruCursor.peek_op`), so ranking candidates
  costs one counter sweep instead of a cache probe per
  (candidate, element) pair;
* :func:`order_cost` evaluates a complete candidate order by replaying the
  reordered trace (:meth:`~repro.trace.compiled.CompiledTrace.reorder`
  shares the element interning, so no recompilation happens per
  candidate) — the annealing loop's ground-truth objective.

The objective is LRU load volume, not the rewrite's furthest-next-use
volume: LRU is what can be maintained incrementally in O(footprint) per
op, and the two track each other closely enough to rank orders (the bench
re-measures every winning order with the validated explicit rewrite).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..obs.probe import get_probe
from ..trace.compiled import CompiledTrace
from ..trace.replay import (
    LruCursor,
    belady_replay_trace,
    lru_replay_trace,
    op_element_sets,
)
from .dependency import DependencyGraph
from .scheduler import Worklist


def element_op_lists(trace: CompiledTrace) -> list[list[int]]:
    """Element ID → sorted op indices touching it (deduplicated, cached).

    The coupling index behind candidate proposal: the ops worth
    considering next are exactly the ops sharing an element with the
    current cache contents, and this is the map from residents to them.
    """
    cached = trace._replay_cache.get("element_op_lists")
    if cached is None:
        acc_ops = np.repeat(
            np.arange(trace.n_ops, dtype=np.int64), np.diff(trace.op_starts)
        )
        # Dedup (element, op) pairs so each op appears once per element it
        # touches — resident-overlap counters stay exact counts.
        pairs = np.unique(trace.elem_ids * np.int64(trace.n_ops) + acc_ops)
        elems = pairs // trace.n_ops
        ops = pairs % trace.n_ops
        bounds = np.searchsorted(elems, np.arange(trace.n_elements + 1))
        ops_l = ops.tolist()
        cached = [
            ops_l[bounds[e] : bounds[e + 1]] for e in range(trace.n_elements)
        ]
        trace._replay_cache["element_op_lists"] = cached
    return cached


class IncrementalObjective:
    """One search state: ready frontier + cache state + cost so far.

    Clones share the immutable per-trace indexes (footprints, coupling
    lists); only the worklist and the LRU cursor are copied, so beam
    expansion and lookahead rollouts pay O(n_ops + capacity) per clone.
    """

    __slots__ = ("graph", "trace", "worklist", "cursor", "sizes", "elem_ops")

    def __init__(
        self,
        graph: DependencyGraph,
        capacity: int,
        *,
        relax_reductions: bool = False,
    ):
        if graph.trace is None:
            raise ConfigurationError(
                "order search needs the graph's compiled trace; build the "
                "graph with DependencyGraph.from_trace/from_schedule"
            )
        self.graph = graph
        self.trace = graph.trace
        self.worklist = Worklist(graph, relax_reductions=relax_reductions)
        self.cursor = LruCursor(self.trace, capacity)
        self.sizes = [len(s) for s in op_element_sets(self.trace)]
        self.elem_ops = element_op_lists(self.trace)

    @property
    def cost(self) -> int:
        """LRU loads of the partial order emitted so far."""
        return self.cursor.loads

    @property
    def done(self) -> bool:
        return not self.worklist.ready

    def peek(self, v: int) -> int:
        """Loads emitting ``v`` would cost from the current cache state."""
        return self.cursor.peek_op(v)

    def emit(self, v: int) -> int:
        """Emit ready node ``v``; returns the loads it actually cost."""
        self.worklist.emit(v)
        return self.cursor.apply_op(v)

    def clone(self) -> "IncrementalObjective":
        other = object.__new__(IncrementalObjective)
        other.graph = self.graph
        other.trace = self.trace
        other.worklist = self.worklist.clone()
        other.cursor = self.cursor.clone()
        other.sizes = self.sizes
        other.elem_ops = self.elem_ops
        return other

    def candidates(self, limit: int, *, cold: int = 2) -> list[tuple[int, int]]:
        """Up to ``limit`` ready nodes as ``(miss_count, node)``, best first.

        Proposals are the ready ops sharing at least one element with the
        cache contents (their miss count falls out of the overlap counter:
        footprint size minus resident hits), plus the ``cold`` lowest-index
        ready nodes so a search can always open a fresh dependence chain.
        Sorted by (miss count, index).  Counts match :meth:`peek` — an
        optimistic lower bound on what :meth:`emit` will charge (exact
        unless the op evicts part of its own footprint mid-op); they rank
        candidates, while accumulated ``cost`` stays exact.
        """
        ready = self.worklist.ready
        if not ready:
            return []
        overlap: dict[int, int] = {}
        elem_ops = self.elem_ops
        for e in self.cursor._cache:
            for o in elem_ops[e]:
                if o in ready:
                    overlap[o] = overlap.get(o, 0) + 1
        sizes = self.sizes
        out = [(sizes[v] - ov, v) for v, ov in overlap.items()]
        if cold and len(out) < len(ready):
            seen = set(overlap)
            for v in sorted(ready):
                if v not in seen:
                    out.append((sizes[v], v))
                    cold -= 1
                    if not cold:
                        break
        out.sort()
        return out[:limit]


def order_cost(
    trace: CompiledTrace,
    order: "list[int]",
    capacity: int,
    *,
    policy: str = "lru",
) -> int:
    """Q (loads) of a complete candidate order at ``capacity``.

    Reorders the compiled trace in place of recompiling (shared element
    interning) and replays it under ``policy`` (``"lru"`` — the search
    objective — or ``"belady"`` for the per-order floor).
    """
    if policy not in ("lru", "belady"):
        raise ConfigurationError(f"unknown policy {policy!r}; use 'lru' or 'belady'")
    probe = get_probe()
    if probe.enabled:
        probe.count("search.order_costs")
    reordered = trace.reorder(order)
    if policy == "belady":
        return belady_replay_trace(reordered, capacity).loads
    return lru_replay_trace(reordered, capacity, method="simulate").loads
