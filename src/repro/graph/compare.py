"""Record→analyze→reschedule harness shared by the CLI, bench and tests.

One :class:`RecordedCase` bundles everything the graph layer needs to reason
about a kernel run: the recorded schedule, the capacity it ran at, its
explicit I/O volume, the relevant lower bound, a factory for fresh machines
holding the *same* input values (for numeric replay checks), and the
original results to compare against.

:func:`compare_case` produces the full comparison for one case: explicit
volume, LRU and Belady replays of the original order, a validated,
numerically-checked rewrite per scheduling heuristic, and — when asked —
per search strategy (``search:beam`` / ``search:lookahead`` /
``search:anneal`` rows, each order found by :mod:`repro.graph.search` and
dressed into an explicit stream by the same rewriter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..analysis.lru_replay import lru_replay
from ..baselines.ooc_chol import ooc_chol
from ..baselines.ooc_syrk import ooc_syrk
from ..core.bounds import cholesky_lower_bound, syrk_lower_bound
from ..core.syr2k import syr2k_lower_bound, tbs_syr2k
from ..core.tbs import tbs_syrk
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..sched.schedule import Schedule, record_schedule, replay_schedule
from ..trace.compiled import CompiledTrace, compile_trace
from ..utils.rng import random_spd_matrix, random_tall_matrix
from .dependency import DependencyGraph
from .policies import belady_replay
from .rewriter import RewriteResult, reschedule, rewrite_schedule
from .scheduler import HEURISTICS
from .search import SearchResult, search_order

#: Kernels the harness can record (name -> human description).
CASES = {
    "tbs": "TBS SYRK (Algorithm 4)",
    "ocs": "OOC_SYRK (Bereux square tiles)",
    "syr2k": "TBS SYR2K extension",
    "chol": "OOC_CHOL (left-looking Cholesky)",
}


@dataclass
class RecordedCase:
    """A recorded kernel run plus everything needed to replay/compare it."""

    name: str
    schedule: Schedule
    capacity: int
    explicit_loads: int
    explicit_stores: int
    lower_bound: float
    make_machine: Callable[[], TwoLevelMachine]
    result_names: list[str]
    reference: dict[str, np.ndarray]
    _trace: CompiledTrace | None = None

    @property
    def trace(self) -> CompiledTrace:
        """The schedule's compiled trace IR (compiled once, lazily)."""
        if self._trace is None:
            self._trace = compile_trace(self.schedule)
        return self._trace

    def check_exact(self, rewritten: Schedule) -> bool:
        """Replay ``rewritten`` on a fresh machine; results bit-identical?"""
        m = self.make_machine()
        replay_schedule(rewritten, m)
        m.assert_empty()
        return all(
            np.array_equal(m.result(name), self.reference[name])
            for name in self.result_names
        )


def record_case(name: str, n: int, mcols: int, s: int, seed: int = 0) -> RecordedCase:
    """Run one kernel with numerics on, recording its schedule."""
    if name in ("tbs", "ocs"):
        a = random_tall_matrix(n, mcols, seed=seed)

        def make_machine() -> TwoLevelMachine:
            m = TwoLevelMachine(s)
            m.add_matrix("A", a)
            m.add_matrix("C", np.zeros((n, n)))
            return m

        fn = tbs_syrk if name == "tbs" else ooc_syrk
        m = make_machine()
        schedule = record_schedule(m, lambda: fn(m, "A", "C", range(n), range(mcols)))
        bound = syrk_lower_bound(n, mcols, s, form="exact")
        results = ["C"]
    elif name == "syr2k":
        a = random_tall_matrix(n, mcols, seed=seed)
        b = random_tall_matrix(n, mcols, seed=seed + 1)

        def make_machine() -> TwoLevelMachine:
            m = TwoLevelMachine(s)
            m.add_matrix("A", a)
            m.add_matrix("B", b)
            m.add_matrix("C", np.zeros((n, n)))
            return m

        m = make_machine()
        schedule = record_schedule(
            m, lambda: tbs_syr2k(m, "A", "B", "C", range(n), range(mcols))
        )
        bound = syr2k_lower_bound(n, mcols, s, form="exact")
        results = ["C"]
    elif name == "chol":
        spd = random_spd_matrix(n, seed=seed)

        def make_machine() -> TwoLevelMachine:
            m = TwoLevelMachine(s)
            m.add_matrix("A", spd.copy())
            return m

        m = make_machine()
        schedule = record_schedule(m, lambda: ooc_chol(m, "A", range(n)))
        bound = cholesky_lower_bound(n, s, form="exact")
        results = ["A"]
    else:
        raise ConfigurationError(f"unknown case {name!r}; choose from {', '.join(CASES)}")

    m.assert_empty()
    return RecordedCase(
        name=name,
        schedule=schedule,
        capacity=s,
        explicit_loads=m.stats.loads,
        explicit_stores=m.stats.stores,
        lower_bound=bound,
        make_machine=make_machine,
        result_names=results,
        reference={r: m.result(r).copy() for r in results},
    )


def sweep_case(
    case: RecordedCase,
    capacities,
    *,
    policies: tuple[str, ...] = ("lru", "belady"),
    method: str = "distance",
    jobs: int = 1,
):
    """Replay one recorded case at many capacities under each policy.

    Returns ``{policy: [replay results, in capacity order]}`` via
    :func:`repro.trace.replay.sweep_replay_trace` — the one-pass engines
    by default (``method="distance"``: cached reuse distances for LRU,
    one grouped OPT stack pass for Belady), with ``jobs`` sharding the
    capacity list over worker processes.  The resource-augmentation
    harness behind ``python -m repro trace replay --capacity a,b,c``
    and benchmark E17.
    """
    from ..trace.replay import sweep_replay_trace

    return {
        policy: sweep_replay_trace(
            case.trace, capacities, policy=policy, method=method, jobs=jobs
        )
        for policy in policies
    }


def searched_orders(
    graph: DependencyGraph,
    capacity: int,
    strategies: tuple[str, ...],
    *,
    relax_reductions: bool = False,
    search_kwargs: dict | None = None,
) -> "dict[str, SearchResult]":
    """Run each named search strategy; ``{"search:<name>": SearchResult}``.

    The labeled-order producer shared by :func:`compare_case` (which
    dresses each order into an explicit stream) and the joint co-search's
    seed portfolio (:mod:`repro.parallel.cosearch`, which pairs each order
    with every partitioner).  ``search_kwargs`` maps a strategy name to
    extra keyword arguments; ``relax_reductions`` is the per-strategy
    default, overridable per strategy through ``search_kwargs``.
    """
    found: dict[str, SearchResult] = {}
    for strategy in strategies:
        kwargs = dict((search_kwargs or {}).get(strategy, {}))
        kwargs.setdefault("relax_reductions", relax_reductions)
        found[f"search:{strategy}"] = search_order(graph, capacity, strategy, **kwargs)
    return found


@dataclass
class ComparisonRow:
    """One line of the E12 table: an order/policy pair and its volume."""

    label: str
    loads: int
    stores: int
    valid: bool | None = None   # None: not an explicit stream (pure replay)
    exact: bool | None = None   # None: numerics not applicable/checked


@dataclass
class Comparison:
    """Everything :func:`compare_case` measures for one recorded case."""

    case: RecordedCase
    graph: DependencyGraph
    rows: list[ComparisonRow] = field(default_factory=list)
    rewrites: dict[str, RewriteResult] = field(default_factory=dict)

    def row(self, label: str) -> ComparisonRow:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)


def compare_case(
    case: RecordedCase,
    heuristics: tuple[str, ...] = HEURISTICS,
    *,
    check_numerics: bool = True,
    search_strategies: tuple[str, ...] = (),
    relax_reductions: bool = False,
    search_kwargs: dict | None = None,
) -> Comparison:
    """Explicit vs LRU vs Belady vs rescheduled/searched volumes for one case.

    The schedule is compiled to the trace IR exactly once; the DAG
    extraction, both replays, every rewrite and every search consume the
    same :class:`~repro.trace.compiled.CompiledTrace`.  ``search_strategies``
    names strategies of :mod:`repro.graph.search` to run after the
    heuristics (rows ``search:<strategy>``); ``relax_reductions`` applies
    to the searches only (heuristic rows stay bit-exact), and relaxed
    search rows skip the bit-exactness check (results are then equal only
    up to FP reassociation — ``exact`` stays ``None``).  ``search_kwargs``
    maps a strategy name to extra keyword arguments for it.
    """
    trace = case.trace
    graph = DependencyGraph.from_trace(trace)
    comp = Comparison(case=case, graph=graph)
    comp.rows.append(
        ComparisonRow("explicit", case.explicit_loads, case.explicit_stores, valid=True, exact=True)
    )
    lru = lru_replay(trace, case.capacity)
    comp.rows.append(ComparisonRow("lru", lru.loads, lru.stores))
    opt = belady_replay(trace, case.capacity)
    comp.rows.append(ComparisonRow("belady", opt.loads, opt.stores))
    for heuristic in heuristics:
        rewrite = reschedule(trace, case.capacity, heuristic, graph=graph)
        exact = case.check_exact(rewrite.schedule) if check_numerics else None
        comp.rewrites[heuristic] = rewrite
        comp.rows.append(
            ComparisonRow(
                f"reschedule:{heuristic}",
                rewrite.loads,
                rewrite.stores,
                valid=True,  # reschedule() already ran validate_schedule
                exact=exact,
            )
        )
    for label, found in searched_orders(
        graph, case.capacity, tuple(search_strategies),
        relax_reductions=relax_reductions, search_kwargs=search_kwargs,
    ).items():
        rewrite = rewrite_schedule(
            trace, case.capacity, found.order, graph=graph,
            relax_reductions=found.relax_reductions,
        )
        rewrite.heuristic = label
        exact = (
            case.check_exact(rewrite.schedule)
            if check_numerics and not found.relax_reductions
            else None
        )
        comp.rewrites[label] = rewrite
        comp.rows.append(
            ComparisonRow(label, rewrite.loads, rewrite.stores, valid=True, exact=exact)
        )
    return comp
