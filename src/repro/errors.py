"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  The machine simulator raises *typed* errors for
each way a schedule can be illegal in the two-level memory model of the
paper; tests assert on these types (failure-injection suite).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or machine was configured with invalid parameters.

    Examples: a fast memory too small for the requested tile size, a block
    size that does not satisfy an algorithm's divisibility requirement, or a
    non-positive matrix dimension.
    """


class MachineError(ReproError):
    """Base class for errors raised by the two-level machine simulator."""


class CapacityError(MachineError):
    """A load would exceed the fast memory capacity ``S``.

    The two-level model *forbids* holding more than ``S`` elements in fast
    memory; any schedule triggering this error is invalid in the model.
    """

    def __init__(self, requested: int, occupancy: int, capacity: int):
        self.requested = int(requested)
        self.occupancy = int(occupancy)
        self.capacity = int(capacity)
        super().__init__(
            f"load of {requested} element(s) would raise occupancy "
            f"{occupancy} -> {occupancy + requested} beyond capacity S={capacity}"
        )


class ResidencyError(MachineError):
    """A compute op touched (or an evict removed) non-resident data.

    In the model all operands of a computation must be in fast memory; the
    executor checks every declared read/write region before applying an op.
    """


class RedundantLoadError(MachineError):
    """A load targeted elements that are already resident.

    Reloading resident data is *legal* in the model (it just wastes I/O) but
    none of the schedules in this library should ever do it, so the machine
    treats it as a bug by default.  Pass ``allow_redundant_loads=True`` to
    :class:`repro.machine.machine.TwoLevelMachine` to tolerate it (the wasted
    traffic is then counted normally).
    """


class WritebackError(MachineError):
    """An evict dropped dirty data without writeback, or wrote back clean data
    in a context where the schedule declared it would not."""


class ScheduleError(ReproError):
    """An op stream is structurally invalid (machine-independent check).

    Raised by :mod:`repro.sched.validate`, e.g. for an op whose read regions
    were never loaded, or an evict of a region that is not resident at that
    point of the stream.

    Carries the structured :class:`repro.check.findings.Finding` behind the
    message (when the raiser produced one) as ``finding``, so the CLI and
    tests can report *which* op broke *which* invariant without parsing
    the message text.
    """

    def __init__(self, message: str, *, finding=None):
        super().__init__(message)
        self.finding = finding


class VerificationError(ReproError):
    """A numeric result failed verification against the reference kernel."""
