"""Seeded synthetic matrix generators.

The paper's experiments need no external data: SYRK takes any tall ``N x M``
matrix, Cholesky any symmetric positive definite matrix.  We generate both
from a seeded :class:`numpy.random.Generator` so every test, example and
bench is exactly reproducible.  SPD matrices are built as ``G Gᵀ + delta*I``
with ``delta`` scaled to guarantee a comfortably positive spectrum (the
schedules must not be numerically fragile, because strict-mode verification
compares against NumPy to 1e-10).
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_SEED


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def random_tall_matrix(n: int, m: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """An ``n x m`` standard-normal matrix (the SYRK input ``A``)."""
    return _rng(seed).standard_normal((n, m))


def random_spd_matrix(n: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """A well-conditioned ``n x n`` symmetric positive definite matrix.

    Built as ``G Gᵀ / n + I`` with ``G`` standard normal: eigenvalues are
    ``>= 1`` with high probability, keeping Cholesky pivots far from zero so
    that element-wise and blocked factorizations agree to tight tolerance.
    """
    g = _rng(seed).standard_normal((n, n))
    a = g @ g.T / max(n, 1) + np.eye(n)
    return (a + a.T) / 2.0


def random_diag_dominant_matrix(n: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """A strictly diagonally dominant ``n x n`` matrix (safe for LU without pivoting)."""
    rng = _rng(seed)
    a = rng.standard_normal((n, n))
    a[np.arange(n), np.arange(n)] = np.abs(a).sum(axis=1) + 1.0
    return a


def random_lower_triangular(
    n: int, seed: int | np.random.Generator | None = None, unit_diagonal: bool = False
) -> np.ndarray:
    """A well-conditioned lower-triangular ``n x n`` matrix (TRSM input ``L``).

    The diagonal is pushed away from zero (``|l_ii| >= 1``) so triangular
    solves stay well conditioned.
    """
    rng = _rng(seed)
    l = np.tril(rng.standard_normal((n, n)))
    d = np.arange(n)
    if unit_diagonal:
        l[d, d] = 1.0
    else:
        l[d, d] = np.sign(l[d, d]) * (np.abs(l[d, d]) + 1.0)
        l[d, d] = np.where(l[d, d] == 0.0, 1.0, l[d, d])
    return l
