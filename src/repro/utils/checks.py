"""Argument-validation helpers.

Raising :class:`repro.errors.ConfigurationError` early with a precise message
keeps the simulator's own errors (capacity/residency violations) meaningful:
if an algorithm reaches the machine with nonsense dimensions we want to fail
here, not three layers down.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def check_positive(name: str, value: int) -> int:
    """Validate that an integer parameter is >= 1 and return it as int."""
    iv = int(value)
    if iv != value or iv < 1:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return iv


def check_nonnegative(name: str, value: int) -> int:
    """Validate that an integer parameter is >= 0 and return it as int."""
    iv = int(value)
    if iv != value or iv < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return iv


def check_matrix(name: str, a: np.ndarray) -> np.ndarray:
    """Validate a 2-D float array and return it as float64 (no copy if possible)."""
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_square(name: str, a: np.ndarray) -> np.ndarray:
    """Validate a square 2-D float array."""
    arr = check_matrix(name, a)
    if arr.shape[0] != arr.shape[1]:
        raise ConfigurationError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_divides(name: str, divisor: int, dividend: int) -> None:
    """Validate ``divisor | dividend`` (LBC's ``b | N`` requirement)."""
    if dividend % divisor != 0:
        raise ConfigurationError(f"{name}: {divisor} does not divide {dividend}")
