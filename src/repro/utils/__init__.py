"""Shared low-level utilities: primes/coprimality, index intervals, seeded
matrix generators, ASCII table formatting, and argument checking."""

from .primes import (
    primes_up_to,
    primorial_up_to,
    is_coprime,
    largest_coprime_below,
    coprime_count_in_primorial_interval,
    coprime_gap_statistics,
)
from .intervals import (
    block_starts,
    block_ranges,
    split_indices,
    contiguous_runs,
)
from .rng import (
    random_tall_matrix,
    random_spd_matrix,
    random_diag_dominant_matrix,
    random_lower_triangular,
)
from .fmt import Table, format_float, format_ratio
from .checks import check_positive, check_matrix, check_square

__all__ = [
    "primes_up_to",
    "primorial_up_to",
    "is_coprime",
    "largest_coprime_below",
    "coprime_count_in_primorial_interval",
    "coprime_gap_statistics",
    "block_starts",
    "block_ranges",
    "split_indices",
    "contiguous_runs",
    "random_tall_matrix",
    "random_spd_matrix",
    "random_diag_dominant_matrix",
    "random_lower_triangular",
    "Table",
    "format_float",
    "format_ratio",
    "check_positive",
    "check_matrix",
    "check_square",
]
