"""A minimal disjoint-set forest (union-find) with path halving.

Shared by :meth:`repro.graph.dependency.DependencyGraph.reduction_classes`
(grouping accumulations linked by reduction-only edges) and the executor's
owner-computes partitioner (grouping ops that share written elements), so
the merge structure lives in exactly one place.
"""

from __future__ import annotations


class DisjointSets:
    """Union-find over the integers ``0 .. n-1``."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing ``a`` and ``b`` (``b``'s root wins)."""
        self.parent[self.find(a)] = self.find(b)

    def groups(self) -> dict[int, list[int]]:
        """``root -> members`` (members in ascending order)."""
        out: dict[int, list[int]] = {}
        for x in range(len(self.parent)):
            out.setdefault(self.find(x), []).append(x)
        return out
