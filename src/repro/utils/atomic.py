"""Atomic text/JSON file writes: temp sibling + ``os.replace``.

The same discipline ``trace/io.py`` applies to ``.npz`` containers,
for the repository's JSON artifacts (run reports, timelines, bench
payloads, store stats): serialize fully, write to a same-directory temp
file, then rename over the destination.  A reader can never observe a
torn file, and a crash mid-write leaves the previous version intact —
the lint rule RPL101 (``repro.check.lint``) enforces that every artifact
writer goes through here or ``trace/io.py``.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any


def atomic_write_text(path: str | os.PathLike, text: str, *, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp sibling + ``os.replace``)."""
    dest = os.fspath(path)
    tmp = f"{dest}.{os.getpid()}.{threading.get_ident()}.tmp"
    try:
        with open(tmp, "w", encoding=encoding) as fh:
            fh.write(text)
        os.replace(tmp, dest)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def atomic_write_json(path: str | os.PathLike, payload: Any, *, indent: int | None = 2) -> None:
    """Serialize ``payload`` fully, then write it atomically.

    Serialization happens before any byte reaches disk, so a payload that
    does not serialize leaves the destination untouched too.
    """
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
