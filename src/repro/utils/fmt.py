"""ASCII table/report formatting shared by benches, examples and EXPERIMENTS.md.

Everything in this library reports results as plain-text tables (the
environment has no plotting stack, and the paper's figures are structural
diagrams anyway).  :class:`Table` renders aligned monospace tables with
per-column formatting; helper formatters render floats and ratios the way
the experiment write-ups expect (fixed significant digits, ``x`` suffix for
ratios).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence


def format_float(x: float, digits: int = 4) -> str:
    """Fixed-significant-digit float rendering: ``format_float(0.70712) == '0.7071'``."""
    if x == 0:
        return "0"
    return f"{x:.{digits}g}"


def format_ratio(x: float, digits: int = 3) -> str:
    """Ratio rendering with an ``x`` suffix: ``format_ratio(1.4139) == '1.414x'``."""
    return f"{x:.{digits}f}x"


def format_int(x: int) -> str:
    """Thousands-separated integer rendering."""
    return f"{int(x):,}"


@dataclass
class Table:
    """A minimal aligned-text table builder.

    >>> t = Table(["alg", "Q"])
    >>> t.add_row(["TBS", 1234])
    >>> t.add_row(["OCS", 1750])
    >>> print(t.render())
    alg  Q
    ---  ----
    TBS  1234
    OCS  1750
    """

    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str | None = None

    def add_row(self, values: Iterable[Any], formats: Sequence[Callable[[Any], str]] | None = None) -> None:
        vals = list(values)
        if len(vals) != len(self.headers):
            raise ValueError(f"row has {len(vals)} cells, table has {len(self.headers)} columns")
        if formats is not None:
            if len(formats) != len(vals):
                raise ValueError("formats length must match row length")
            self.rows.append([fmt(v) for fmt, v in zip(formats, vals)])
        else:
            self.rows.append([v if isinstance(v, str) else str(v) for v in vals])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)).rstrip())
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def banner(text: str, width: int = 72, char: str = "=") -> str:
    """A centred section banner used by the example scripts."""
    text = f" {text} "
    if len(text) >= width:
        return text.strip()
    pad = width - len(text)
    left = pad // 2
    right = pad - left
    return char * left + text + char * right
