"""Integer index-interval helpers used to tile matrices.

All algorithms in the library address submatrices with *global* integer index
arrays so they can operate in place on sub-blocks of a larger backing matrix
(LBC hands TBS the trailing submatrix, TBS recurses into diagonal zones).
These helpers cut ``[lo, hi)`` ranges into blocks and manipulate index
arrays.  They are deliberately tiny and heavily unit-tested: every schedule's
region arithmetic rests on them.
"""

from __future__ import annotations

import numpy as np


def block_starts(lo: int, hi: int, size: int) -> list[int]:
    """Start offsets of consecutive ``size``-wide blocks covering ``[lo, hi)``.

    The final block may be short.

    >>> block_starts(0, 10, 4)
    [0, 4, 8]
    >>> block_starts(3, 3, 4)
    []
    """
    if size <= 0:
        raise ValueError(f"block size must be positive, got {size}")
    if hi < lo:
        raise ValueError(f"empty-range bounds reversed: [{lo}, {hi})")
    return list(range(lo, hi, size))


def block_ranges(lo: int, hi: int, size: int) -> list[tuple[int, int]]:
    """Half-open ``(start, stop)`` pairs of blocks covering ``[lo, hi)``.

    >>> block_ranges(0, 10, 4)
    [(0, 4), (4, 8), (8, 10)]
    """
    return [(s, min(s + size, hi)) for s in block_starts(lo, hi, size)]


def split_indices(indices: np.ndarray, size: int) -> list[np.ndarray]:
    """Split an index array into consecutive chunks of at most ``size``.

    >>> [list(c) for c in split_indices(np.arange(5), 2)]
    [[0, 1], [2, 3], [4]]
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    indices = np.asarray(indices, dtype=np.int64)
    return [indices[s : s + size] for s in range(0, len(indices), size)]


def contiguous_runs(indices: np.ndarray) -> list[tuple[int, int]]:
    """Decompose a sorted index array into maximal half-open runs.

    Useful for compact printing of regions and for fast slicing when a
    region happens to be contiguous.

    >>> contiguous_runs(np.array([0, 1, 2, 5, 6, 9]))
    [(0, 3), (5, 7), (9, 10)]
    >>> contiguous_runs(np.array([], dtype=np.int64))
    []
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        return []
    if np.any(np.diff(indices) <= 0):
        raise ValueError("indices must be strictly increasing")
    breaks = np.nonzero(np.diff(indices) != 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [indices.size - 1]))
    return [(int(indices[a]), int(indices[b]) + 1) for a, b in zip(starts, stops)]


def as_index_array(x) -> np.ndarray:
    """Coerce ``x`` (range, list, slice-free array) to an int64 index array."""
    arr = np.asarray(list(x) if isinstance(x, range) else x, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"index arrays must be 1-D, got shape {arr.shape}")
    return arr


def is_strictly_increasing(arr: np.ndarray) -> bool:
    """True iff the 1-D array is strictly increasing (thus duplicate-free)."""
    arr = np.asarray(arr)
    return bool(np.all(np.diff(arr) > 0)) if arr.size > 1 else True
