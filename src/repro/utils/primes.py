"""Prime and coprimality utilities backing Lemma 5.5 of the paper.

The TBS algorithm needs, for triangle side ``k``, a zone size ``c`` that is
coprime with every integer in ``[2, k-2]`` — equivalently, coprime with the
primorial ``q = prod(p prime, p <= k-2)`` (Definition 5.4 / Lemma 5.5).  The
algorithm picks the largest such ``c`` below ``N/k``; the paper bounds the
gap ``g = N/k - c`` by ``q`` and notes (via Example 1.5 of Friedlander &
Iwaniec, *Opera de cribro*) that each primorial interval
``[(a-1)q, aq - 1]`` contains exactly ``prod(p - 1)`` integers coprime with
``q``, so in practice the gap is tiny.  Experiment E5 measures exactly that.
"""

from __future__ import annotations

import math
from typing import Iterable


def primes_up_to(n: int) -> list[int]:
    """All primes ``p <= n`` via a simple sieve of Eratosthenes.

    >>> primes_up_to(10)
    [2, 3, 5, 7]
    >>> primes_up_to(1)
    []
    """
    if n < 2:
        return []
    sieve = bytearray([1]) * (n + 1)
    sieve[0] = sieve[1] = 0
    for p in range(2, math.isqrt(n) + 1):
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(sieve[p * p :: p]))
    return [i for i in range(2, n + 1) if sieve[i]]


def primorial_up_to(n: int) -> int:
    """The primorial ``q = prod(p prime, p <= n)``; ``1`` when ``n < 2``.

    This is the constant ``q`` of Algorithm 4: for triangle side ``k`` the
    algorithm uses ``primorial_up_to(k - 2)``.

    >>> primorial_up_to(4)
    6
    >>> primorial_up_to(6)
    30
    >>> primorial_up_to(1)
    1
    """
    q = 1
    for p in primes_up_to(n):
        q *= p
    return q


def is_coprime(a: int, b: int) -> bool:
    """True iff ``gcd(a, b) == 1``.

    >>> is_coprime(35, 6)
    True
    >>> is_coprime(9, 6)
    False
    """
    return math.gcd(a, b) == 1


def is_coprime_with_range(c: int, lo: int, hi: int) -> bool:
    """True iff ``c`` is coprime with every integer in ``[lo, hi]`` inclusive.

    Lemma 5.5 requires ``c`` coprime with all of ``[2, k-2]``.  An empty
    range (``hi < lo``) is vacuously satisfied.
    """
    return all(math.gcd(c, d) == 1 for d in range(lo, hi + 1))


def largest_coprime_below(bound: int, q: int) -> int:
    """Largest integer ``c <= bound`` with ``gcd(c, q) == 1``; ``0`` if none.

    Algorithm 4 calls this with ``bound = floor(N / k)`` and the primorial
    ``q``.  Since ``a*q + 1`` is coprime with ``q`` for every ``a >= 0``,
    a coprime value exists whenever ``bound >= 1``.

    >>> largest_coprime_below(30, 6)
    29
    >>> largest_coprime_below(24, 6)
    23
    >>> largest_coprime_below(1, 6)
    1
    """
    if bound < 1:
        return 0
    for c in range(bound, 0, -1):
        if math.gcd(c, q) == 1:
            return c
    return 0


def coprime_count_in_primorial_interval(q_limit: int) -> int:
    """Exact count of integers coprime with ``q`` in any interval of length ``q``.

    For ``q = primorial_up_to(q_limit)``, every interval
    ``[(a-1)q, aq - 1]`` contains exactly ``prod_{p <= q_limit} (p - 1)``
    integers coprime with ``q`` (Euler totient of ``q``; the paper cites the
    sieve form of this fact).  Returns that product.

    >>> coprime_count_in_primorial_interval(3)   # q = 6; {1, 5} mod 6
    2
    >>> coprime_count_in_primorial_interval(5)   # q = 30; phi(30) = 8
    8
    """
    out = 1
    for p in primes_up_to(q_limit):
        out *= p - 1
    return out


def coprime_gap_statistics(q: int, bounds: Iterable[int]) -> dict[str, float]:
    """Statistics of the gap ``bound - largest_coprime_below(bound, q)``.

    Used by experiment E5 to show the pessimism of the worst-case bound
    ``g <= q`` (the paper: "in practice, one can expect the value of g to be
    much lower than q").

    Returns a dict with keys ``max``, ``mean``, ``q`` and ``count``.
    """
    gaps = []
    for b in bounds:
        c = largest_coprime_below(b, q)
        gaps.append(b - c)
    if not gaps:
        return {"max": 0.0, "mean": 0.0, "q": float(q), "count": 0.0}
    return {
        "max": float(max(gaps)),
        "mean": float(sum(gaps)) / len(gaps),
        "q": float(q),
        "count": float(len(gaps)),
    }


def euler_phi(n: int) -> int:
    """Euler's totient function (used to cross-check interval counts).

    >>> euler_phi(30)
    8
    >>> euler_phi(1)
    1
    """
    if n < 1:
        raise ValueError(f"euler_phi needs n >= 1, got {n}")
    out = n
    m = n
    for p in primes_up_to(math.isqrt(n)):
        if m % p == 0:
            out -= out // p
            while m % p == 0:
                m //= p
    if m > 1:
        out -= out // m
    return out
