"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``      run the quickstart comparison (TBS vs OOC_SYRK vs bound)
``figures``   print the paper's Figures 1-3 rendered from live objects
``sweep``     run a SYRK or Cholesky sweep and print the experiment table
``constants`` print the before/after constants table and the convergence
              tables computed from the exact models
``replay``    strip a recorded schedule's explicit loads/evicts and replay
              its op order under element-granular LRU
``graph``     extract the dependency DAG of a recorded schedule, re-schedule
              it under the worklist heuristics, and compare I/O volumes
              (explicit vs LRU vs Belady vs rescheduled vs lower bound)
``search``    search the space of legal compute orders (beam search,
              lookahead greedy, simulated annealing over reduction-class
              interleavings) and compare the found orders' I/O against the
              one-shot heuristics and the Belady floor
``trace``     compile a recorded schedule to the array trace IR, save/load
              it as ``.npz``, and run the vectorized LRU/Belady replays
              (``trace compile`` / ``trace replay`` / ``trace info``)
``parallel``  shard a recorded schedule's task DAG across P simulated nodes
              (partitioners: level-greedy / locality / owner-computes) and
              report per-node receive volumes against the parallel
              per-node lower bounds, plus a mults-weighted makespan per
              row; ``--refine`` additionally runs the transfer-aware
              partition refiner on each partitioner's assignment
``cosearch``  jointly search op order *and* op ownership as one annealing
              walk (:mod:`repro.parallel.cosearch`): a portfolio of
              {partitioner} × {order} seeds, one unified latency
              objective (makespan + β·bottleneck I/O), never worse than
              the best measured seed
``serve``     the schedule-serving layer (:mod:`repro.serve`): ``serve
              warm`` batch-searches a key grid into a content-addressed
              on-disk store (atomic ``.npz`` objects, ``--jobs`` fans
              the searches over worker processes), ``serve query`` runs
              a zipf-ish synthetic request stream through the asyncio
              front end (in-process LRU over the store, duplicate
              in-flight keys coalesced to one search) and prints the
              hit/miss/coalesce counters plus warm-vs-cold latencies,
              ``serve stats`` prints (or ``--json``-exports, provenance-
              stamped) the reconciled store statistics
``report``    pretty-print a saved run report (provenance, phase
              wall-times, engine counters, convergence curves)
``check``     static analysis (:mod:`repro.check`): certify a saved or
              freshly recorded schedule (peak <= S, stream legality)
              without replaying it, race-check a partitioned DAG
              (vector-clock happens-before), audit a serve store
              (``--store ... --all``), or lint the repository's own
              sources against its invariants (``--lint src``)

``search --chains K --jobs N`` anneals K independent chains (a temperature
portfolio merged by best cost) across N worker processes, ``parallel
--jobs N`` fans the per-partitioner refines out the same way, ``cosearch
--jobs N`` fans its portfolio chains, and ``trace replay --jobs N`` shards
its capacity sweep — all default to serial and are bit-identical at any
job count (see :mod:`repro.perf`).

The ``search``, ``parallel`` and ``cosearch`` commands accept ``--report
PATH`` (write the run's probe state — provenance, timers, counters,
convergence series — as a ``repro.report/v1`` JSON document) and
``--timeline PATH`` (export the best row's simulated schedule as a Chrome
trace-event JSON that ``chrome://tracing`` and ui.perfetto.dev open
directly).

Examples
--------
::

    python -m repro demo
    python -m repro figures --n 27 --k 5
    python -m repro sweep syrk --s 15 --m 8 --ns 60 120 240
    python -m repro sweep cholesky --s 15 --ns 96 144
    python -m repro constants
    python -m repro replay --s 15 --n 40 --m 6
    python -m repro graph --kernel tbs --n 40 --m 6 --s 15
    python -m repro search --kernel tbs --n 40 --m 6 --s 15 --strategy beam anneal --relax
    python -m repro trace compile --kernel tbs --n 120 --m 6 --s 15 -o tbs.npz
    python -m repro trace replay tbs.npz --capacity 15 30 --policy both
    python -m repro trace info tbs.npz
    python -m repro parallel --kernel tbs --n 40 --m 6 --s 15 --p 1 4 16
    python -m repro parallel --kernel tbs --n 40 --m 6 --s 15 --p 4 --refine greedy
    python -m repro parallel --kernel tbs --n 120 --m 6 --s 15 --p 4 --refine anneal \\
        --report run.json --timeline run_trace.json
    python -m repro cosearch --kernel tbs --n 60 --m 6 --s 15 --p 4 --iters 400
    python -m repro serve warm --store sched_store --kernel tbs --ns 40 60 --s 15
    python -m repro serve query --store sched_store --kernel tbs --ns 40 60 --s 15 \\
        --requests 64 --cache-size 4
    python -m repro serve stats --store sched_store --json serve_stats.json
    python -m repro report run.json
    python -m repro check --kernel tbs --n 40 --m 6 --s 15 --p 4
    python -m repro check --store sched_store --all
    python -m repro check --lint src
"""

from __future__ import annotations

import argparse
import math
import sys

from .analysis.sweep import run_cholesky_once, run_syrk_once
from .config import lbc_block_size
from .core.bounds import literature_bounds_table
from .graph.compare import CASES
from .graph.scheduler import HEURISTICS
from .graph.search import STRATEGIES
from .obs.probe import probe_scope, timed
from .parallel.executor import PARTITIONERS, POLICIES
from .parallel.refine import REFINE_STRATEGIES
from .utils.fmt import Table, banner, format_float, format_int


def _cmd_demo(_args: argparse.Namespace) -> int:
    import numpy as np

    from . import TwoLevelMachine, ooc_syrk, syrk_lower_bound, tbs_syrk
    from .utils.rng import random_tall_matrix

    n, mcols, s = 60, 8, 15
    a = random_tall_matrix(n, mcols)
    print(banner("repro demo: I/O-optimal SYRK"))
    rows = []
    for name, fn in (("TBS", tbs_syrk), ("OOC_SYRK", ooc_syrk)):
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        stats = fn(m, "A", "C", range(n), range(mcols))
        m.assert_empty()
        err = np.max(np.abs(np.tril(m.result("C")) - np.tril(a @ a.T)))
        rows.append((name, stats.loads, err))
    t = Table(["schedule", "Q", "max error vs NumPy"])
    t.add_row(["lower bound", f"{syrk_lower_bound(n, mcols, s, form='exact'):,.0f}", "-"])
    for name, q, err in rows:
        t.add_row([name, format_int(q), f"{err:.2e}"])
    print(t.render())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .core.partition import plan_partition
    from .viz.figures import (
        render_indexing_positions,
        render_lbc_iteration,
        render_tbs_layout,
        render_zones_and_blocks,
    )

    part = plan_partition(args.n, args.k)
    if part is None:
        print(f"n={args.n}, k={args.k}: triangle blocks not applicable (OOC_SYRK fallback)")
        print(render_tbs_layout(args.n, args.k))
        return 0
    print(banner(f"Figure 1 (n={args.n}, k={args.k}, c={part.c})"))
    print(render_zones_and_blocks(part, blocks=[(0, 0), (1, 0)]))
    print()
    print(banner("Figure 2 left"))
    print(render_indexing_positions(part, min(2, part.c - 1), min(3, part.c - 1)))
    print()
    print(banner("Figure 2 right"))
    print(render_tbs_layout(args.n, args.k))
    print()
    print(banner("Figure 3 (N=12, b=3, i=1)"))
    print(render_lbc_iteration(12, 3, 1))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.kernel == "syrk":
        t = Table(["N", "alg", "Q", "A-loads", "== model", "Q/bound"])
        for n in args.ns:
            for alg in ("tbs", "ocs"):
                row = run_syrk_once(alg, n, args.m, args.s)
                t.add_row(
                    [n, alg, format_int(row.loads), format_int(row.a_loads),
                     str(row.loads == row.model_loads), f"{row.ratio_to_bound:.3f}"]
                )
    else:
        t = Table(["N", "alg", "Q", "== model", "Q/bound"])
        for n in args.ns:
            for alg in ("lbc", "occ"):
                kw = {"b": lbc_block_size(n)} if alg == "lbc" else {}
                row = run_cholesky_once(alg, n, args.s, **kw)
                t.add_row(
                    [n, alg, format_int(row.loads), str(row.loads == row.model_loads),
                     f"{row.ratio_to_bound:.3f}"]
                )
    print(t.render())
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .analysis.lru_replay import lru_replay
    from .graph.compare import record_case

    print(banner(f"LRU replay vs explicit control (S={args.s})"))
    t = Table(
        ["schedule", "explicit Q", "explicit stores", "LRU Q", "LRU stores", "LRU/explicit"]
    )
    for kernel in ("tbs", "ocs"):
        case = record_case(kernel, args.n, args.m, args.s)
        r = lru_replay(case.schedule, args.s)
        t.add_row(
            [kernel.upper(), format_int(case.explicit_loads), format_int(case.explicit_stores),
             format_int(r.loads), format_int(r.stores),
             f"{r.loads / case.explicit_loads:.3f}"]
        )
    print(t.render())
    print("\nLRU at equal capacity stays close to the explicit volume: the paper's")
    print("advantage lives in the order of computations, not the eviction decisions.")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from .graph.compare import compare_case, record_case

    heuristics = tuple(args.heuristics) if args.heuristics else HEURISTICS
    case = record_case(args.kernel, args.n, args.m, args.s)
    comp = compare_case(case, heuristics, check_numerics=not args.no_numerics)
    g = comp.graph
    counts = g.edge_counts()
    print(banner(f"dependency graph: {args.kernel} n={args.n} m={args.m} S={args.s}"))
    print(
        f"{len(g)} compute ops; edges: {counts['raw']} RAW, {counts['war']} WAR, "
        f"{counts['waw']} WAW, {counts['reduction']} reduction; "
        f"critical path {int(g.critical_path_cost())} ops; "
        f"{len(g.reduction_classes())} reduction classes"
    )
    t = Table(["order / policy", "Q (loads)", "stores", "Q/bound", "legal", "bit-exact"])
    for row in comp.rows:
        t.add_row(
            [row.label, format_int(row.loads), format_int(row.stores),
             f"{row.loads / case.lower_bound:.3f}",
             "-" if row.valid is None else str(row.valid),
             "-" if row.exact is None else str(row.exact)]
        )
    print(t.render())
    print("\n'belady' is the per-order floor (MIN replacement); 'reschedule:*' rows are")
    print("legal reorderings dressed with load-on-demand / evict-by-furthest-next-use.")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.lru_replay import lru_replay
    from .graph.compare import record_case
    from .graph.dependency import DependencyGraph
    from .graph.policies import belady_replay
    from .graph.rewriter import reschedule, rewrite_schedule
    from .graph.search import search_order
    from .sched.schedule import replay_schedule

    def max_error(schedule) -> float:
        m = case.make_machine()
        replay_schedule(schedule, m)
        m.assert_empty()
        return max(
            float(np.max(np.abs(m.result(name) - case.reference[name])))
            for name in case.result_names
        )

    strategies = tuple(args.strategy) if args.strategy else STRATEGIES
    case = record_case(args.kernel, args.n, args.m, args.s)
    graph = DependencyGraph.from_trace(case.trace)
    print(banner(
        f"order search: {args.kernel} n={args.n} m={args.m} S={args.s} "
        f"relax_reductions={args.relax}"
    ))
    print(
        f"{len(graph)} compute ops, {len(graph.reduction_classes())} reduction "
        f"classes, critical path {int(graph.critical_path_cost())} ops"
    )
    opt = belady_replay(case.trace, args.s)
    lru = lru_replay(case.trace, args.s)
    t = Table(["order / policy", "Q (loads)", "Q/belady", "Q/bound", "max |err|", "sec"])
    t.add_row(["explicit", format_int(case.explicit_loads),
               f"{case.explicit_loads / opt.loads:.3f}",
               f"{case.explicit_loads / case.lower_bound:.3f}", f"{0.0:.2e}", "-"])
    t.add_row(["lru", format_int(lru.loads), f"{lru.loads / opt.loads:.3f}",
               f"{lru.loads / case.lower_bound:.3f}", "-", "-"])
    t.add_row(["belady (floor)", format_int(opt.loads), "1.000",
               f"{opt.loads / case.lower_bound:.3f}", "-", "-"])
    best_heur = None
    for heuristic in args.heuristics:
        with timed(f"search.heuristic.{heuristic}") as tm:
            rr = reschedule(case.trace, args.s, heuristic, graph=graph,
                            relax_reductions=args.relax)
        best_heur = min(best_heur, rr.loads) if best_heur is not None else rr.loads
        t.add_row([f"heuristic:{heuristic}", format_int(rr.loads),
                   f"{rr.loads / opt.loads:.3f}",
                   f"{rr.loads / case.lower_bound:.3f}",
                   f"{max_error(rr.schedule):.2e}", f"{tm.elapsed:.2f}"])
    kwargs = {"anneal": {"iters": args.iters, "seed": args.seed,
                         "chains": args.chains, "jobs": args.jobs},
              "beam": {"width": args.width},
              "lookahead": {"depth": args.depth}}
    best_search = None
    best_order = None
    for strategy in strategies:
        with timed(f"search.strategy.{strategy}") as tm:
            found = search_order(graph, args.s, strategy,
                                 relax_reductions=args.relax, **kwargs[strategy])
            rw = rewrite_schedule(case.trace, args.s, found.order, graph=graph,
                                  relax_reductions=args.relax)
        if best_search is None or rw.loads < best_search:
            best_search, best_order = rw.loads, (strategy, found.order)
        t.add_row([f"search:{strategy}", format_int(rw.loads),
                   f"{rw.loads / opt.loads:.3f}",
                   f"{rw.loads / case.lower_bound:.3f}",
                   f"{max_error(rw.schedule):.2e}", f"{tm.elapsed:.2f}"])
    print(t.render())
    if args.timeline and best_order is not None:
        from .obs.timeline import export_timeline
        from .parallel.makespan import makespan_model

        strategy, order = best_order
        span = makespan_model(graph, [0] * len(graph), order=list(order),
                              relax_reductions=args.relax)
        export_timeline(graph, span, args.timeline,
                        relax_reductions=args.relax,
                        label=f"search:{strategy} {args.kernel} n={args.n}")
        print(f"timeline written to {args.timeline}")
    if best_heur is not None and best_search is not None:
        verdict = "beats" if best_search < best_heur else "matches" if best_search == best_heur else "trails"
        print(f"\nbest searched order {verdict} the best one-shot heuristic: "
              f"{best_search:,} vs {best_heur:,} loads "
              f"(Belady floor of the recorded order: {opt.loads:,})")
    print("'max |err|' compares a fresh replay against the recorded reference —")
    print("0.00e+00 means bit-identical; relaxed orders differ by FP reassociation.")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis.lru_replay import lru_replay_reference
    from .graph.compare import record_case
    from .graph.policies import belady_replay_reference
    from .trace import (
        compile_trace,
        file_kind,
        load_schedule,
        load_trace,
        save_schedule,
        save_trace,
    )
    from .trace.replay import sweep_replay_trace

    def describe(trace, origin: str) -> None:
        shapes = ", ".join(f"{n}{list(s)}" for n, s in trace.shapes.items())
        print(
            f"{origin}: {trace.n_ops} ops, {trace.n_accesses} element touches, "
            f"{trace.n_elements} distinct elements; matrices: {shapes}"
        )

    if args.trace_command == "compile":
        case = record_case(args.kernel, args.n, args.m, args.s)
        trace = case.trace
        describe(trace, f"{args.kernel} n={args.n} m={args.m} S={args.s}")
        save_trace(trace, args.out)
        import os

        print(f"trace written to {args.out} ({os.path.getsize(args.out):,} bytes)")
        if args.schedule_out:
            save_schedule(case.schedule, args.schedule_out)
            print(
                f"full schedule written to {args.schedule_out} "
                f"({os.path.getsize(args.schedule_out):,} bytes)"
            )
        return 0

    if args.trace_command == "info":
        kind = file_kind(args.path)
        if kind == "schedule":
            schedule = load_schedule(args.path)
            counts = schedule.counts()
            loads, stores = schedule.io_volume()
            print(
                f"schedule container: {counts['load']} loads, {counts['evict']} "
                f"evicts, {counts['compute']} computes; I/O {loads} loads / "
                f"{stores} stores (elements)"
            )
            describe(compile_trace(schedule), "compiled")
        else:
            describe(load_trace(args.path), "trace container")
        return 0

    # replay
    kind = file_kind(args.path)
    if kind == "schedule":
        trace = compile_trace(load_schedule(args.path))
    else:
        trace = load_trace(args.path)
    describe(trace, args.path)
    policies = ("lru", "belady") if args.policy == "both" else (args.policy,)
    t = Table(["capacity", "policy", "Q (loads)", "stores", "miss rate", "sweep sec"])
    for policy in policies:
        # One sweep per policy: a single reuse-distance (LRU) or grouped
        # OPT-stack (Belady) pass answers every capacity, with --jobs
        # sharding the counting across worker processes.
        with timed(f"trace.replay.{policy}") as tm:
            results = sweep_replay_trace(
                trace, args.capacity, policy=policy, jobs=args.jobs
            )
        for i, (capacity, r) in enumerate(zip(args.capacity, results)):
            t.add_row(
                [capacity, policy, format_int(r.loads), format_int(r.stores),
                 f"{r.miss_rate:.4f}", f"{tm.elapsed:.3f}" if i == 0 else '"']
            )
            if args.check:
                ref_fn = (
                    lru_replay_reference if policy == "lru" else belady_replay_reference
                )
                ref = ref_fn(trace, capacity)
                ok = (ref.loads, ref.stores) == (r.loads, r.stores)
                if not ok:
                    print(
                        f"MISMATCH at capacity {capacity} ({policy}): "
                        f"vectorized {r.loads}/{r.stores} vs reference "
                        f"{ref.loads}/{ref.stores}"
                    )
                    return 1
    print(t.render())
    if args.check:
        print("reference cross-check: all counts identical")
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    from .core.bounds import (
        parallel_cholesky_lower_bound_per_node,
        parallel_syrk_lower_bound_per_node,
    )
    from .graph.compare import record_case
    from .graph.dependency import DependencyGraph
    from .parallel.executor import execute_graph
    from .parallel.refine import refine_partitions

    def bound_for(p: int) -> float | None:
        if args.kernel in ("tbs", "ocs"):
            return parallel_syrk_lower_bound_per_node(args.n, args.m, p, args.s)
        if args.kernel == "chol":
            return parallel_cholesky_lower_bound_per_node(args.n, p, args.s)
        return None  # syr2k: no dedicated per-node closed form yet

    partitioners = tuple(args.partitioners) if args.partitioners else PARTITIONERS
    with timed("parallel.record"):
        case = record_case(args.kernel, args.n, args.m, args.s)
        graph = DependencyGraph.from_trace(case.trace)
    mults = [float(node.op.mults) for node in graph.nodes]
    print(banner(
        f"sharded DAG executor: {args.kernel} n={args.n} m={args.m} "
        f"S={args.s} policy={args.policy}"
    ))
    print(
        f"{len(graph)} compute ops, critical path "
        f"{int(graph.critical_path_cost())} ops "
        f"({int(graph.critical_path_cost(mults)):,} mults weighted); "
        f"single-node explicit Q = {case.explicit_loads:,}"
    )
    t = Table(
        ["P", "partitioner", "max recv", "recv+xfer", "xfer", "max xfer out",
         "cut", "imbalance", "peak<=S", "recv/bound", "makespan"]
    )

    best: "tuple | None" = None  # (summary, label) of the lowest makespan

    def add_row(p: int, label: str, summ) -> None:
        nonlocal best
        bound = bound_for(p)
        ratio = f"{summ.max_recv / bound:.3f}" if bound and bound > 0 else "-"
        t.add_row(
            [p, label,
             format_int(summ.max_recv), format_int(summ.max_recv_incl_transfers),
             format_int(summ.total_transfer), format_int(summ.max_transfer_out),
             format_int(summ.cut_edge_count),
             f"{summ.compute_imbalance:.3f}", str(summ.peak_ok), ratio,
             format_int(int(summ.makespan))]
        )
        if summ.p > 1 and (best is None or summ.makespan < best[0].makespan):
            best = (summ, label)

    for p in args.p:
        # Every partitioner degenerates to the same trivial assignment at
        # P = 1; run and print it once.
        parts = partitioners if p > 1 else partitioners[:1]
        summs = [
            execute_graph(
                case.schedule, p, args.s, partitioner=part, policy=args.policy,
                graph=graph, alpha=args.alpha, beta=args.beta,
            )
            for part in parts
        ]
        refined_rows: list = [None] * len(parts)
        if args.refine and p > 1:
            # All partitioner seeds refine as one batch; --jobs fans the
            # independent searches out over worker processes (seed index i
            # draws the disjoint stream task_seed(--seed, i)).
            with timed(f"parallel.refine.{args.refine}"):
                refined_rows = refine_partitions(
                    graph, [list(s.owner) for s in summs], p, args.s,
                    jobs=args.jobs, seed=args.seed, strategy=args.refine,
                    # judge never-worse under the matching counting policy
                    # (lru for --policy lru, the belady floor otherwise)
                    eval_policy="lru" if args.policy == "lru" else "belady",
                )
        for part, summ, refined in zip(parts, summs, refined_rows):
            add_row(p, part if p > 1 else "(any)", summ)
            if refined is not None:
                summ = execute_graph(
                    case.schedule, p, args.s, owner=refined.owner,
                    policy=args.policy, graph=graph,
                    partitioner_label=f"{part}+refine",
                    alpha=args.alpha, beta=args.beta,
                )
                add_row(p, f"{part}+refine", summ)
    print(t.render())
    if args.timeline:
        from .obs.timeline import export_timeline

        summ, label = best if best is not None else (summ, "(any)")
        export_timeline(
            graph, summ.makespan_result, args.timeline,
            label=f"{args.kernel} n={args.n} S={args.s} p={summ.p} {label}",
        )
        print(f"timeline written to {args.timeline} "
              f"(best row: p={summ.p} {label}, makespan {int(summ.makespan):,})")
    print("\n'recv' counts each node's loads (receives, §2.2 equivalence); 'xfer' is")
    print("the cross-shard slice of it carried by cut RAW/reduction edges (global")
    print("in == out, asserted), 'max xfer out' the busiest sender's share, and")
    print("'recv+xfer' the per-node sum — the quantity `--refine` minimizes.")
    print("'makespan' is the weighted latency model (per-op cost = mults, per-cross-")
    print(f"edge cost = {args.alpha:g} + {args.beta:g}*elements); critical path is printed in both units.")
    return 0


def _cmd_cosearch(args: argparse.Namespace) -> int:
    from .graph.compare import record_case
    from .graph.dependency import DependencyGraph
    from .parallel.cosearch import cosearch
    from .parallel.makespan import makespan_model

    relax = not args.no_relax
    with timed("cosearch.record"):
        case = record_case(args.kernel, args.n, args.m, args.s)
        graph = DependencyGraph.from_trace(case.trace)
    mults = [float(node.op.mults) for node in graph.nodes]
    total_mults = sum(mults)
    print(banner(
        f"joint order x partition co-search: {args.kernel} "
        f"n={args.n} m={args.m} S={args.s}"
    ))
    print(
        f"{len(graph)} compute ops, {len(graph.reduction_classes())} reduction "
        f"classes; critical path {int(graph.critical_path_cost(mults)):,} mults"
    )
    t = Table(
        ["P", "schedule", "makespan", "max io", "J", "vs seed", "x work/P"]
    )
    best: "tuple | None" = None  # (result, p) with the lowest makespan, p > 1

    for p in args.p:
        with timed(f"cosearch.p{p}"):
            res = cosearch(
                graph, p, args.s, iters=args.iters, seed=args.seed,
                jobs=args.jobs, alpha=args.alpha, beta=args.beta,
                relax_reductions=relax,
                search_kwargs={
                    "anneal": {"iters": args.search_iters, "seed": args.seed}
                },
            )
        seed_label = min(res.seed_costs, key=lambda k: res.seed_costs[k])
        t.add_row(
            [p, f"best seed: {seed_label}", "-", "-",
             format_int(int(res.seed_cost)), "-", "-"]
        )
        gain = (
            (1.0 - res.cost / res.seed_cost) * 100.0 if res.seed_cost else 0.0
        )
        work_floor = total_mults / p if p else 0.0
        t.add_row(
            [p, "co-search" + (" (reverted)" if res.reverted else ""),
             format_int(int(res.makespan)),
             format_int(res.measured.bottleneck_io),
             format_int(int(res.cost)), f"-{gain:.1f}%",
             f"{res.makespan / work_floor:.3f}" if work_floor else "-"]
        )
        if p > 1 and (best is None or res.makespan < best[0].makespan):
            best = (res, p)
    print(t.render())
    if args.timeline:
        from .obs.timeline import export_timeline

        res, p = best if best is not None else (res, args.p[-1])
        span = makespan_model(
            graph, list(res.owner), p=p, order=res.order, alpha=args.alpha,
            beta=args.beta, relax_reductions=relax,
        )
        export_timeline(
            graph, span, args.timeline,
            label=f"{args.kernel} n={args.n} S={args.s} p={p} cosearch",
        )
        print(f"timeline written to {args.timeline} "
              f"(p={p}, makespan {int(span.makespan):,})")
    print("\n'J' is the unified objective: latency-model makespan (per-op cost =")
    print(f"mults, per-cross-edge cost = {args.alpha:g} + {args.beta:g}*elements) plus "
          f"{args.beta:g} x the bottleneck")
    print("node's (LRU shard loads + incoming transfers).  'best seed' is the")
    print("measured best of the {partitioner} x {order} portfolio — the decoupled")
    print("pipelines the joint walk must beat; the co-search row is never worse.")
    if relax:
        print("Reduction classes relaxed: results equal up to FP reassociation.")
    return 0


def _serve_keys(args: argparse.Namespace) -> list:
    from .serve import ScheduleKey

    return [
        ScheduleKey(
            args.kernel, n, args.m, args.s, p=args.p, policy=args.policy,
            alpha=args.alpha, beta=args.beta,
        )
        for n in args.ns
    ]


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .serve import ScheduleCache, ScheduleService, ScheduleStore, warm_store

    store = ScheduleStore(args.store)

    if args.serve_command == "warm":
        keys = _serve_keys(args)
        print(banner(f"serve warm: {len(keys)} keys -> {args.store}"))
        with timed("serve.warm") as tm:
            searched = warm_store(store, keys, jobs=args.jobs, force=args.force)
        t = Table(["key", "digest", "action"])
        for key in keys:
            t.add_row(
                [key.canonical(), key.digest()[:12],
                 "searched" if key in searched else "already stored"]
            )
        print(t.render())
        print(f"{len(searched)} searched, {len(keys) - len(searched)} already "
              f"present ({tm.elapsed:.2f}s, --jobs {args.jobs})")
        return 0

    if args.serve_command == "stats":
        stats = store.stats()
        print(banner(f"serve stats: {args.store}"))
        t = Table(["entries", "bytes", "per kernel", "per policy"])
        t.add_row(
            [stats["entries"], format_int(stats["bytes"]),
             json.dumps(stats["per_kernel"]), json.dumps(stats["per_policy"])]
        )
        print(t.render())
        if args.json:
            from .obs.provenance import provenance_stamp

            payload = {
                "experiment": "serve_stats",
                "provenance": provenance_stamp(),
                "rows": [stats],
            }
            from .utils.atomic import atomic_write_json

            atomic_write_json(args.json, payload, indent=2)
            print(f"stats written to {args.json}")
        return 0

    # query: a zipf-ish synthetic request stream through the front end
    import random

    keys = _serve_keys(args)
    rng = random.Random(args.seed)
    weights = [1.0 / (rank + 1) ** args.zipf for rank in range(len(keys))]
    stream = rng.choices(keys, weights=weights, k=args.requests)
    cache = ScheduleCache(args.cache_size)
    print(banner(
        f"serve query: {args.requests} requests over {len(keys)} keys "
        f"(zipf a={args.zipf}, cache {args.cache_size}, batch {args.batch})"
    ))

    async def run_stream(service):
        latencies = []

        async def one(key):
            with timed("serve.request") as tm:
                await service.get_schedule(key)
            latencies.append(tm.elapsed)

        # Waves of --batch concurrent requests: duplicates inside a wave
        # are what the single-flight path coalesces.
        for i in range(0, len(stream), args.batch):
            await asyncio.gather(*map(one, stream[i:i + args.batch]))
        return latencies

    with probe_scope() as probe:
        service = ScheduleService(store, cache, workers=args.workers)
        try:
            latencies = asyncio.run(run_stream(service))
        finally:
            service.close()
    snap = service.stats_snapshot()
    t = Table(["requests", "mem hits", "store hits", "searches", "coalesced",
               "evictions", "hit rate"])
    t.add_row(
        [snap["requests"], snap["hits"], snap["store_hits"], snap["searches"],
         snap["coalesced"], snap["cache_evictions"],
         f"{cache.hit_rate:.3f}"]
    )
    print(t.render())
    search_t = probe.timers.get("serve.search")
    warm = sorted(latencies)[len(latencies) // 2]
    print(f"p50 request latency {warm * 1e6:.0f} us over the stream")
    if search_t and search_t["calls"]:
        cold = search_t["total"] / search_t["calls"]
        print(f"mean cold search {cold * 1e3:.1f} ms x {int(search_t['calls'])}; "
              f"a memory hit is ~{cold / max(warm, 1e-9):,.0f}x faster at p50")
    print("\n'coalesced' counts requests that attached to an in-flight search for")
    print("the same key (single flight: N concurrent duplicates -> 1 search).")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.report import load_report, render_report

    print(render_report(load_report(args.path)))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check.cli import cmd_check

    return cmd_check(args)


def _cmd_constants(_args: argparse.Namespace) -> int:
    print(banner("the paper's four contributions"))
    t = Table(["kernel", "quantity", "before", "after", "paper source"])
    for row in literature_bounds_table():
        t.add_row(
            [row["kernel"], row["quantity"], format_float(row["before"]),
             format_float(row["after"]), row["after_source"]]
        )
    print(t.render())
    print(f"\nsqrt(2) = {math.sqrt(2):.6f}; see benchmarks/ for measured convergence.")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart comparison")

    p_fig = sub.add_parser("figures", help="render the paper's figures")
    p_fig.add_argument("--n", type=int, default=27)
    p_fig.add_argument("--k", type=int, default=5)

    p_sweep = sub.add_parser("sweep", help="run a volume sweep")
    p_sweep.add_argument("kernel", choices=["syrk", "cholesky"])
    p_sweep.add_argument("--s", type=int, default=15)
    p_sweep.add_argument("--m", type=int, default=8)
    p_sweep.add_argument("--ns", type=int, nargs="+", default=[60, 120])

    sub.add_parser("constants", help="print the constants tables")

    p_replay = sub.add_parser("replay", help="LRU-replay a recorded op order")
    p_replay.add_argument("--s", type=int, default=15)
    p_replay.add_argument("--n", type=int, default=40)
    p_replay.add_argument("--m", type=int, default=6)

    p_graph = sub.add_parser("graph", help="dependency-DAG rescheduling report")
    p_graph.add_argument("--kernel", choices=sorted(CASES), default="tbs")
    p_graph.add_argument("--n", type=int, default=40)
    p_graph.add_argument("--m", type=int, default=6)
    p_graph.add_argument("--s", type=int, default=15)
    p_graph.add_argument("--heuristics", nargs="+", default=None, choices=list(HEURISTICS))
    p_graph.add_argument("--no-numerics", action="store_true",
                         help="skip the bit-exact replay check (faster)")

    p_search = sub.add_parser("search", help="order-search engine report")
    p_search.add_argument("--kernel", choices=sorted(CASES), default="tbs")
    p_search.add_argument("--n", type=int, default=40)
    p_search.add_argument("--m", type=int, default=6)
    p_search.add_argument("--s", type=int, default=15)
    p_search.add_argument("--strategy", nargs="+", default=None,
                          choices=list(STRATEGIES),
                          help="strategies to run (default: all three)")
    p_search.add_argument("--heuristics", nargs="+", default=["locality"],
                          choices=list(HEURISTICS),
                          help="one-shot baselines to print alongside")
    p_search.add_argument("--relax", action="store_true",
                          help="relax commuting reductions (orders then match "
                               "the reference only up to FP reassociation)")
    p_search.add_argument("--width", type=int, default=4, help="beam width")
    p_search.add_argument("--depth", type=int, default=4, help="lookahead depth")
    p_search.add_argument("--iters", type=int, default=800, help="annealing iterations")
    p_search.add_argument("--seed", type=int, default=0, help="annealing seed")
    p_search.add_argument("--chains", type=int, default=1,
                          help="independent annealing chains (portfolio; "
                               "chain 0 reproduces --chains 1 bit for bit)")
    p_search.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the chain fan-out")
    p_search.add_argument("--report", default=None, metavar="PATH",
                          help="write the run report (provenance, timers, "
                               "counters, convergence series) as JSON")
    p_search.add_argument("--timeline", default=None, metavar="PATH",
                          help="export the best searched order as a Chrome "
                               "trace-event JSON (single-node timeline)")

    p_trace = sub.add_parser("trace", help="compiled trace IR: compile/replay/info")
    tsub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tc = tsub.add_parser("compile", help="record a kernel and save its trace")
    p_tc.add_argument("--kernel", choices=sorted(CASES), default="tbs")
    p_tc.add_argument("--n", type=int, default=40)
    p_tc.add_argument("--m", type=int, default=6)
    p_tc.add_argument("--s", type=int, default=15)
    p_tc.add_argument("-o", "--out", required=True, help="output .npz path")
    p_tc.add_argument("--schedule-out", default=None,
                      help="also save the full schedule (reconstructible ops)")
    p_tr = tsub.add_parser("replay", help="array-based LRU/Belady replay of a saved trace")
    p_tr.add_argument("path", help="trace or schedule .npz")
    p_tr.add_argument("--capacity", type=int, nargs="+", required=True)
    p_tr.add_argument("--policy", choices=["lru", "belady", "both"], default="both")
    p_tr.add_argument("--check", action="store_true",
                      help="cross-check against the reference walkers")
    p_tr.add_argument("--jobs", type=int, default=1,
                      help="worker processes sharding the capacity sweep")
    p_ti = tsub.add_parser("info", help="summarize a saved trace/schedule")
    p_ti.add_argument("path")

    p_par = sub.add_parser("parallel", help="sharded task-DAG executor report")
    p_par.add_argument("--kernel", choices=sorted(CASES), default="tbs")
    p_par.add_argument("--n", type=int, default=40)
    p_par.add_argument("--m", type=int, default=6)
    p_par.add_argument("--s", type=int, default=15)
    p_par.add_argument("--p", type=int, nargs="+", default=[1, 4, 16])
    p_par.add_argument("--partitioners", nargs="+", default=None,
                       choices=list(PARTITIONERS))
    p_par.add_argument("--policy", choices=[p for p in POLICIES if p != "explicit"],
                       default="rewrite")
    p_par.add_argument("--refine", nargs="?", const="greedy", default=None,
                       choices=list(REFINE_STRATEGIES),
                       help="also refine each partitioner's assignment "
                            "(transfer-aware local search) and print the row")
    p_par.add_argument("--seed", type=int, default=0,
                       help="seed for the refinement annealer")
    p_par.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the multi-seed refine fan-out")
    p_par.add_argument("--alpha", type=float, default=1.0,
                       help="per-cross-edge latency constant of the makespan model")
    p_par.add_argument("--beta", type=float, default=1.0,
                       help="per-transferred-element latency of the makespan model")
    p_par.add_argument("--report", default=None, metavar="PATH",
                       help="write the run report (provenance, timers, "
                            "counters, convergence series) as JSON")
    p_par.add_argument("--timeline", default=None, metavar="PATH",
                       help="export the lowest-makespan row as a Chrome "
                            "trace-event JSON (one track per node, transfers "
                            "as flow arrows)")

    p_cos = sub.add_parser(
        "cosearch", help="joint order x partition co-search report"
    )
    p_cos.add_argument("--kernel", choices=sorted(CASES), default="tbs")
    p_cos.add_argument("--n", type=int, default=40)
    p_cos.add_argument("--m", type=int, default=6)
    p_cos.add_argument("--s", type=int, default=15)
    p_cos.add_argument("--p", type=int, nargs="+", default=[4])
    p_cos.add_argument("--iters", type=int, default=600,
                       help="annealing steps per co-search chain")
    p_cos.add_argument("--search-iters", type=int, default=200,
                       help="annealing steps for the order-search seeds")
    p_cos.add_argument("--seed", type=int, default=0,
                       help="base RNG seed (chain k gets a derived stream)")
    p_cos.add_argument("--jobs", type=int, default=1,
                       help="worker processes fanning the portfolio chains")
    p_cos.add_argument("--alpha", type=float, default=1.0,
                       help="per-cross-edge latency constant of the makespan model")
    p_cos.add_argument("--beta", type=float, default=1.0,
                       help="per-transferred-element latency of the makespan model")
    p_cos.add_argument("--no-relax", action="store_true",
                       help="keep reduction chains in recorded order "
                            "(bit-exact numerics, smaller move space)")
    p_cos.add_argument("--report", default=None, metavar="PATH",
                       help="write the run report (provenance, timers, "
                            "counters, convergence series) as JSON")
    p_cos.add_argument("--timeline", default=None, metavar="PATH",
                       help="export the winning schedule of the lowest-"
                            "makespan P as a Chrome trace-event JSON")

    p_srv = sub.add_parser("serve", help="schedule-serving layer: warm/query/stats")
    ssub = p_srv.add_subparsers(dest="serve_command", required=True)

    def serve_key_args(sp):
        sp.add_argument("--store", required=True, help="store root directory")
        sp.add_argument("--kernel", choices=sorted(CASES), default="tbs")
        sp.add_argument("--ns", type=int, nargs="+", default=[40],
                        help="one key per N (the rest of the tuple is shared)")
        sp.add_argument("--m", type=int, default=6)
        sp.add_argument("--s", type=int, default=15)
        sp.add_argument("--p", type=int, default=1)
        sp.add_argument("--policy", choices=["heuristic", "search", "cosearch"],
                        default="heuristic", help="searcher pipeline (part of the key)")
        sp.add_argument("--alpha", type=float, default=1.0)
        sp.add_argument("--beta", type=float, default=1.0)

    p_sw = ssub.add_parser("warm", help="batch-search a key grid into the store")
    serve_key_args(p_sw)
    p_sw.add_argument("--jobs", type=int, default=1,
                      help="worker processes fanning the searches")
    p_sw.add_argument("--force", action="store_true",
                      help="re-search keys already present")
    p_sq = ssub.add_parser("query", help="run a synthetic request stream")
    serve_key_args(p_sq)
    p_sq.add_argument("--requests", type=int, default=64)
    p_sq.add_argument("--cache-size", type=int, default=4,
                      help="in-process LRU capacity (schedules)")
    p_sq.add_argument("--zipf", type=float, default=1.1,
                      help="zipf exponent of the key popularity ranking")
    p_sq.add_argument("--batch", type=int, default=16,
                      help="concurrent requests per wave (coalescing window)")
    p_sq.add_argument("--seed", type=int, default=0)
    p_sq.add_argument("--workers", type=int, default=0,
                      help="search-worker processes (0: search on a thread)")
    p_ss = ssub.add_parser("stats", help="reconciled store statistics")
    p_ss.add_argument("--store", required=True, help="store root directory")
    p_ss.add_argument("--json", default=None, metavar="PATH",
                      help="also write the stats as a provenance-stamped JSON")

    p_rep = sub.add_parser("report", help="pretty-print a saved run report")
    p_rep.add_argument("path", help="a --report JSON written by search/parallel")

    from .check.cli import add_check_parser

    add_check_parser(sub)

    args = parser.parse_args(argv)
    handler = {
        "demo": _cmd_demo,
        "figures": _cmd_figures,
        "sweep": _cmd_sweep,
        "constants": _cmd_constants,
        "replay": _cmd_replay,
        "graph": _cmd_graph,
        "search": _cmd_search,
        "trace": _cmd_trace,
        "parallel": _cmd_parallel,
        "cosearch": _cmd_cosearch,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "check": _cmd_check,
    }[args.command]
    report_path = getattr(args, "report", None)
    if not report_path:
        return handler(args)
    # --report: run the whole command under a recording probe, then save
    # everything it observed as one provenance-stamped JSON document.
    from .obs.report import build_report, save_report

    with probe_scope() as probe:
        rc = handler(args)
    params = {
        k: v for k, v in vars(args).items() if k not in ("command", "report")
    }
    save_report(
        build_report(probe, command=args.command, params=params), report_path
    )
    print(f"report written to {report_path}")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
