"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``      run the quickstart comparison (TBS vs OOC_SYRK vs bound)
``figures``   print the paper's Figures 1-3 rendered from live objects
``sweep``     run a SYRK or Cholesky sweep and print the experiment table
``constants`` print the before/after constants table and the convergence
              tables computed from the exact models

Examples
--------
::

    python -m repro demo
    python -m repro figures --n 27 --k 5
    python -m repro sweep syrk --s 15 --m 8 --ns 60 120 240
    python -m repro sweep cholesky --s 15 --ns 96 144
    python -m repro constants
"""

from __future__ import annotations

import argparse
import math
import sys

from .analysis.sweep import run_cholesky_once, run_syrk_once
from .config import lbc_block_size
from .core.bounds import literature_bounds_table
from .utils.fmt import Table, banner, format_float, format_int


def _cmd_demo(_args: argparse.Namespace) -> int:
    import numpy as np

    from . import TwoLevelMachine, ooc_syrk, syrk_lower_bound, tbs_syrk
    from .utils.rng import random_tall_matrix

    n, mcols, s = 60, 8, 15
    a = random_tall_matrix(n, mcols)
    print(banner("repro demo: I/O-optimal SYRK"))
    rows = []
    for name, fn in (("TBS", tbs_syrk), ("OOC_SYRK", ooc_syrk)):
        m = TwoLevelMachine(s)
        m.add_matrix("A", a)
        m.add_matrix("C", np.zeros((n, n)))
        stats = fn(m, "A", "C", range(n), range(mcols))
        m.assert_empty()
        err = np.max(np.abs(np.tril(m.result("C")) - np.tril(a @ a.T)))
        rows.append((name, stats.loads, err))
    t = Table(["schedule", "Q", "max error vs NumPy"])
    t.add_row(["lower bound", f"{syrk_lower_bound(n, mcols, s, form='exact'):,.0f}", "-"])
    for name, q, err in rows:
        t.add_row([name, format_int(q), f"{err:.2e}"])
    print(t.render())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .core.partition import plan_partition
    from .viz.figures import (
        render_indexing_positions,
        render_lbc_iteration,
        render_tbs_layout,
        render_zones_and_blocks,
    )

    part = plan_partition(args.n, args.k)
    if part is None:
        print(f"n={args.n}, k={args.k}: triangle blocks not applicable (OOC_SYRK fallback)")
        print(render_tbs_layout(args.n, args.k))
        return 0
    print(banner(f"Figure 1 (n={args.n}, k={args.k}, c={part.c})"))
    print(render_zones_and_blocks(part, blocks=[(0, 0), (1, 0)]))
    print()
    print(banner("Figure 2 left"))
    print(render_indexing_positions(part, min(2, part.c - 1), min(3, part.c - 1)))
    print()
    print(banner("Figure 2 right"))
    print(render_tbs_layout(args.n, args.k))
    print()
    print(banner("Figure 3 (N=12, b=3, i=1)"))
    print(render_lbc_iteration(12, 3, 1))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.kernel == "syrk":
        t = Table(["N", "alg", "Q", "A-loads", "== model", "Q/bound"])
        for n in args.ns:
            for alg in ("tbs", "ocs"):
                row = run_syrk_once(alg, n, args.m, args.s)
                t.add_row(
                    [n, alg, format_int(row.loads), format_int(row.a_loads),
                     str(row.loads == row.model_loads), f"{row.ratio_to_bound:.3f}"]
                )
    else:
        t = Table(["N", "alg", "Q", "== model", "Q/bound"])
        for n in args.ns:
            for alg in ("lbc", "occ"):
                kw = {"b": lbc_block_size(n)} if alg == "lbc" else {}
                row = run_cholesky_once(alg, n, args.s, **kw)
                t.add_row(
                    [n, alg, format_int(row.loads), str(row.loads == row.model_loads),
                     f"{row.ratio_to_bound:.3f}"]
                )
    print(t.render())
    return 0


def _cmd_constants(_args: argparse.Namespace) -> int:
    print(banner("the paper's four contributions"))
    t = Table(["kernel", "quantity", "before", "after", "paper source"])
    for row in literature_bounds_table():
        t.add_row(
            [row["kernel"], row["quantity"], format_float(row["before"]),
             format_float(row["after"]), row["after_source"]]
        )
    print(t.render())
    print(f"\nsqrt(2) = {math.sqrt(2):.6f}; see benchmarks/ for measured convergence.")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart comparison")

    p_fig = sub.add_parser("figures", help="render the paper's figures")
    p_fig.add_argument("--n", type=int, default=27)
    p_fig.add_argument("--k", type=int, default=5)

    p_sweep = sub.add_parser("sweep", help="run a volume sweep")
    p_sweep.add_argument("kernel", choices=["syrk", "cholesky"])
    p_sweep.add_argument("--s", type=int, default=15)
    p_sweep.add_argument("--m", type=int, default=8)
    p_sweep.add_argument("--ns", type=int, nargs="+", default=[60, 120])

    sub.add_parser("constants", help="print the constants tables")

    args = parser.parse_args(argv)
    return {
        "demo": _cmd_demo,
        "figures": _cmd_figures,
        "sweep": _cmd_sweep,
        "constants": _cmd_constants,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
