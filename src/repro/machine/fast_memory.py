"""Fast memory: residency tracking, capacity enforcement, NaN-poisoned shadow.

The fast memory never stores "the data" as a separate buffer pool; instead it
tracks, per matrix, a boolean residency mask over the flat element space,
plus (in strict mode) a full-shape *shadow* array that holds the fast-memory
copy of resident elements and ``NaN`` everywhere else.

The NaN poison is the library's strongest correctness weapon: a compute op
that reads an element the schedule forgot to load pulls NaN into the result,
and since every schedule's final output is compared against a NumPy
reference, the omission cannot go unnoticed.  Likewise an omitted writeback
leaves the slow array stale and fails verification.

Capacity is enforced on every load: occupancy is the total number of
resident elements across all matrices, and a load pushing it beyond ``S``
raises :class:`~repro.errors.CapacityError` *before* mutating any state.
"""

from __future__ import annotations

import numpy as np

from ..errors import CapacityError, RedundantLoadError, ResidencyError
from .regions import Region
from .slow_memory import SlowMemory


class FastMemory:
    """Residency masks + optional strict shadow for a set of named matrices."""

    def __init__(self, capacity: int, strict: bool = True, allow_redundant_loads: bool = False):
        self.capacity = int(capacity)
        self.strict = bool(strict)
        self.allow_redundant_loads = bool(allow_redundant_loads)
        self.occupancy = 0
        self.peak_occupancy = 0
        self._masks: dict[str, np.ndarray] = {}
        self._shadows: dict[str, np.ndarray] = {}

    def attach(self, name: str, shape: tuple[int, int]) -> None:
        """Create residency state for a newly registered matrix."""
        n = int(shape[0]) * int(shape[1])
        self._masks[name] = np.zeros(n, dtype=bool)
        if self.strict:
            shadow = np.full(shape, np.nan, dtype=np.float64)
            self._shadows[name] = shadow

    def mask(self, name: str) -> np.ndarray:
        return self._masks[name]

    def shadow(self, name: str) -> np.ndarray:
        """The strict-mode shadow array (full shape, NaN-poisoned)."""
        return self._shadows[name]

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def load(self, region: Region, slow: SlowMemory) -> int:
        """Bring ``region`` into fast memory; returns the element count loaded.

        Raises :class:`CapacityError` if occupancy would exceed capacity and
        :class:`RedundantLoadError` if any element is already resident (and
        redundant loads are disallowed).
        """
        mask = self._masks[region.matrix]
        idx = region.flat
        n = idx.size
        if n == 0:
            return 0
        already = mask[idx]
        if already.any():
            if not self.allow_redundant_loads:
                raise RedundantLoadError(
                    f"load of {region!r}: {int(already.sum())} element(s) already resident"
                )
            idx = idx[~already]
            n = idx.size
            if n == 0:
                return int(region.flat.size)  # all redundant: traffic still counted by caller
        if self.occupancy + n > self.capacity:
            raise CapacityError(n, self.occupancy, self.capacity)
        mask[idx] = True
        self.occupancy += n
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        if self.strict:
            shadow = self._shadows[region.matrix].ravel()
            shadow[idx] = slow.array(region.matrix).ravel()[idx]
        # Redundant loads (when allowed) still move region.size elements.
        return int(region.flat.size)

    def evict(self, region: Region, slow: SlowMemory, writeback: bool) -> int:
        """Drop ``region`` from fast memory; returns elements written back.

        Raises :class:`ResidencyError` if any element is not resident.
        With ``writeback=True`` (and strict mode) the shadow values are
        copied to slow memory before the poison is restored.
        """
        mask = self._masks[region.matrix]
        idx = region.flat
        if idx.size == 0:
            return 0
        resident = mask[idx]
        if not resident.all():
            raise ResidencyError(
                f"evict of {region!r}: {int((~resident).sum())} element(s) not resident"
            )
        if self.strict:
            shadow = self._shadows[region.matrix].ravel()
            if writeback:
                slow.array(region.matrix).ravel()[idx] = shadow[idx]
            shadow[idx] = np.nan
        elif writeback:
            pass  # non-strict mode computes in place in slow memory already
        mask[idx] = False
        self.occupancy -= int(idx.size)
        return int(idx.size) if writeback else 0

    def assert_resident(self, region: Region) -> None:
        """Raise :class:`ResidencyError` unless every element of ``region`` is resident."""
        mask = self._masks[region.matrix]
        resident = mask[region.flat]
        if not resident.all():
            missing = int((~resident).sum())
            raise ResidencyError(
                f"compute touches {missing} non-resident element(s) of {region.matrix!r}"
            )

    def is_resident(self, region: Region) -> bool:
        mask = self._masks[region.matrix]
        return bool(mask[region.flat].all()) if region.flat.size else True

    def resident_count(self, name: str | None = None) -> int:
        """Resident elements of one matrix (or total occupancy if ``name is None``)."""
        if name is None:
            return self.occupancy
        return int(self._masks[name].sum())

    def flush_all(self, slow: SlowMemory, writeback: bool = False) -> int:
        """Evict everything (used at teardown / between independent phases)."""
        written = 0
        for name, mask in self._masks.items():
            idx = np.nonzero(mask)[0]
            if idx.size:
                written += self.evict(Region(name, idx), slow, writeback)
        return written
