"""Slow memory: the unbounded backing store of named matrices.

In the two-level model the slow memory holds all data initially and receives
results via explicit writebacks.  Here it is a dictionary of named float64
NumPy arrays.  The arrays handed in are *copied* so that callers keep their
originals for verification (the whole point of the library is to compare the
machine's final state against a NumPy reference computed from the original).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..utils.checks import check_matrix


class SlowMemory:
    """Named float64 matrices, copied on entry, addressed by flat index."""

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def add(self, name: str, array: np.ndarray) -> None:
        """Register ``array`` (copied, as C-contiguous float64) under ``name``."""
        if name in self._arrays:
            raise ConfigurationError(f"matrix {name!r} already registered")
        arr = check_matrix(name, array)
        self._arrays[name] = np.ascontiguousarray(arr, dtype=np.float64).copy()

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def names(self) -> list[str]:
        """Registered matrix names, in insertion order."""
        return list(self._arrays)

    def array(self, name: str) -> np.ndarray:
        """The backing array (mutable; writebacks land here)."""
        try:
            return self._arrays[name]
        except KeyError:
            raise ConfigurationError(f"unknown matrix {name!r}") from None

    def shape(self, name: str) -> tuple[int, int]:
        return self.array(name).shape  # type: ignore[return-value]

    def ncols(self, name: str) -> int:
        """Column count, i.e. the row stride used for flat region indices."""
        return int(self.array(name).shape[1])

    def total_elements(self) -> int:
        """Total element count across all matrices (sanity/reporting)."""
        return int(sum(a.size for a in self._arrays.values()))
