"""I/O accounting: the numbers every experiment in this reproduction reports.

:class:`IOStats` counts, per matrix and in total:

* ``loads``  — elements moved slow -> fast.  This is the paper's ``Q``
  ("data accesses"; see DESIGN.md section 4 for the convention discussion).
* ``stores`` — elements written back fast -> slow.
* ``mults`` / ``flops`` — multiply count and total flop count of compute
  ops, used for operational-intensity measurements (the paper's OI results
  are stated both per-multiply, max ``sqrt(S/2)``, and per-flop, max
  ``sqrt(2S)``).
* op counters and peak fast-memory occupancy.

With ``record_events=True`` a full event log is kept (one
:class:`IOEvent` per machine operation) for debugging and for the figure
renderers; it is memory-hungry and off by default.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class IOEvent:
    """One machine operation, for the optional event log."""

    kind: str          # "load" | "evict" | "compute"
    matrix: str        # matrix name, or op name for computes
    size: int          # elements moved, or flops for computes
    occupancy: int     # occupancy after the operation


@dataclass
class IOStats:
    """Mutable I/O + work counters for one machine run."""

    loads: int = 0
    stores: int = 0
    mults: int = 0
    flops: int = 0
    n_loads: int = 0
    n_evicts: int = 0
    n_computes: int = 0
    peak_occupancy: int = 0
    loads_by_matrix: Counter = field(default_factory=Counter)
    stores_by_matrix: Counter = field(default_factory=Counter)
    events: list[IOEvent] | None = None

    # ------------------------------------------------------------------ #
    @property
    def total_io(self) -> int:
        """Loads + stores (both directions)."""
        return self.loads + self.stores

    @property
    def q(self) -> int:
        """The paper-convention I/O volume: loads only (see DESIGN.md §4)."""
        return self.loads

    def operational_intensity(self, per: str = "mults") -> float:
        """Measured operational intensity: work / Q.

        ``per='mults'`` matches the paper's per-multiplication OI (ceiling
        ``sqrt(S/2)`` for symmetric kernels); ``per='flops'`` counts adds too
        (ceiling ``sqrt(2S)``).
        """
        work = self.mults if per == "mults" else self.flops
        if self.loads == 0:
            return float("inf") if work else 0.0
        return work / self.loads

    # ------------------------------------------------------------------ #
    def record_load(self, matrix: str, size: int, occupancy: int) -> None:
        self.loads += size
        self.n_loads += 1
        self.loads_by_matrix[matrix] += size
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if self.events is not None:
            self.events.append(IOEvent("load", matrix, size, occupancy))

    def record_evict(self, matrix: str, written: int, occupancy: int) -> None:
        self.stores += written
        self.n_evicts += 1
        if written:
            self.stores_by_matrix[matrix] += written
        if self.events is not None:
            self.events.append(IOEvent("evict", matrix, written, occupancy))

    def record_compute(self, op_name: str, mults: int, flops: int, occupancy: int) -> None:
        self.mults += mults
        self.flops += flops
        self.n_computes += 1
        if self.events is not None:
            self.events.append(IOEvent("compute", op_name, flops, occupancy))

    # ------------------------------------------------------------------ #
    def snapshot(self) -> "IOStats":
        """An independent copy (for before/after diffs around a phase)."""
        return IOStats(
            loads=self.loads,
            stores=self.stores,
            mults=self.mults,
            flops=self.flops,
            n_loads=self.n_loads,
            n_evicts=self.n_evicts,
            n_computes=self.n_computes,
            peak_occupancy=self.peak_occupancy,
            loads_by_matrix=Counter(self.loads_by_matrix),
            stores_by_matrix=Counter(self.stores_by_matrix),
            events=None,
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (a snapshot of this tracker)."""
        return IOStats(
            loads=self.loads - earlier.loads,
            stores=self.stores - earlier.stores,
            mults=self.mults - earlier.mults,
            flops=self.flops - earlier.flops,
            n_loads=self.n_loads - earlier.n_loads,
            n_evicts=self.n_evicts - earlier.n_evicts,
            n_computes=self.n_computes - earlier.n_computes,
            peak_occupancy=self.peak_occupancy,
            loads_by_matrix=self.loads_by_matrix - earlier.loads_by_matrix,
            stores_by_matrix=self.stores_by_matrix - earlier.stores_by_matrix,
            events=None,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Q(loads)={self.loads:,} stores={self.stores:,} "
            f"mults={self.mults:,} peak={self.peak_occupancy:,} "
            f"(ops: {self.n_loads:,} loads / {self.n_evicts:,} evicts / "
            f"{self.n_computes:,} computes)"
        )
