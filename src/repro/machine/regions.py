"""Regions: named sets of matrix elements, the unit of load/evict.

A :class:`Region` is a matrix name plus a sorted, duplicate-free array of
*flat* (row-major) element indices.  All machine traffic is expressed in
regions; their sizes are what the tracker counts.  Constructors build the
region shapes the paper's schedules use:

* ``tile_region``      — a rectangular ``rows x cols`` tile;
* ``triangle_block_region`` — the paper's triangle block ``TB(R)``: all
  strictly-subdiagonal pairs ``(r, r')`` with ``r > r'`` drawn from a row
  set ``R`` (Definition 3.5).  Note ``R`` need not be contiguous — this is
  exactly what makes TBS work;
* ``lower_tile_region`` — the at-or-below-diagonal part of a diagonal tile
  (used by OOC_SYRK/OOC_CHOL for tiles on the main diagonal);
* ``column_segment_region`` / ``row_segment_region`` — the narrow streamed
  operands of the one-tile algorithms.

Flat indexing requires the backing matrix's column count, so constructors
take ``ncols``; the :class:`~repro.machine.machine.TwoLevelMachine` facade
offers shape-aware wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..utils.intervals import as_index_array, is_strictly_increasing


@dataclass(frozen=True)
class Region:
    """A set of elements of one named matrix.

    Attributes
    ----------
    matrix:
        Name of the matrix in slow memory.
    flat:
        Sorted, duplicate-free ``int64`` array of row-major flat indices.
    """

    matrix: str
    flat: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.flat, dtype=np.int64)
        object.__setattr__(self, "flat", arr)

    @property
    def size(self) -> int:
        """Number of elements in the region."""
        return int(self.flat.size)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(str(int(i)) for i in self.flat[:6])
        suffix = ", ..." if self.size > 6 else ""
        return f"Region({self.matrix!r}, n={self.size}, [{preview}{suffix}])"


def _flat_from_pairs(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    return rows.astype(np.int64) * np.int64(ncols) + cols.astype(np.int64)


def _finalize(matrix: str, flat: np.ndarray, *, assume_sorted: bool = False) -> Region:
    flat = np.asarray(flat, dtype=np.int64).ravel()
    if not assume_sorted:
        flat = np.unique(flat)
    return Region(matrix, flat)


def tile_region(matrix: str, rows, cols, ncols: int) -> Region:
    """The rectangular tile ``matrix[rows, cols]`` as a region.

    ``rows`` and ``cols`` are 1-D global index collections (need not be
    contiguous).  The region has ``len(rows) * len(cols)`` elements.
    """
    r = as_index_array(rows)
    c = as_index_array(cols)
    flat = (r[:, None] * np.int64(ncols) + c[None, :]).ravel()
    sorted_ok = is_strictly_increasing(r) and is_strictly_increasing(c)
    return _finalize(matrix, flat, assume_sorted=False if not sorted_ok else True)


def triangle_block_region(matrix: str, R, ncols: int) -> Region:
    """The triangle block ``TB(R)`` of Definition 3.5 as a region of ``matrix``.

    ``TB(R) = {(r, r') : r, r' in R, r > r'}`` — the strictly-subdiagonal
    pairs of the row set ``R``; it has ``|R| (|R|-1) / 2`` elements.  ``R``
    may be any duplicate-free index collection (TBS uses one row per zone
    row, so ``R`` is scattered across the matrix).
    """
    r = as_index_array(R)
    r = np.sort(r)
    if np.any(np.diff(r) == 0):
        raise ValueError("triangle block row set R must be duplicate-free")
    n = r.size
    # tril_indices yields (i, j) with i > j for k=-1: subdiagonal pairs.
    il, jl = np.tril_indices(n, k=-1)
    rows = r[il]
    cols = r[jl]
    flat = _flat_from_pairs(rows, cols, ncols)
    return _finalize(matrix, flat)


def lower_tile_region(matrix: str, rows, ncols: int, *, strict: bool = False) -> Region:
    """The lower-triangular part of the diagonal tile ``matrix[rows, rows]``.

    Includes the diagonal unless ``strict=True``.  Used for diagonal tiles
    of symmetric outputs, where only ``|R|(|R|+1)/2`` (or ``|R|(|R|-1)/2``)
    elements are referenced.
    """
    r = np.sort(as_index_array(rows))
    n = r.size
    k = -1 if strict else 0
    il, jl = np.tril_indices(n, k=k)
    rows_idx = r[il]
    cols_idx = r[jl]
    flat = _flat_from_pairs(rows_idx, cols_idx, ncols)
    return _finalize(matrix, flat)


def column_segment_region(matrix: str, rows, col: int, ncols: int) -> Region:
    """The column segment ``matrix[rows, col]`` (a streamed narrow operand)."""
    r = as_index_array(rows)
    flat = _flat_from_pairs(r, np.full(r.size, int(col), dtype=np.int64), ncols)
    return _finalize(matrix, flat, assume_sorted=is_strictly_increasing(r))


def row_segment_region(matrix: str, row: int, cols, ncols: int) -> Region:
    """The row segment ``matrix[row, cols]`` (streamed by the TRSM solves)."""
    c = as_index_array(cols)
    flat = _flat_from_pairs(np.full(c.size, int(row), dtype=np.int64), c, ncols)
    return _finalize(matrix, flat, assume_sorted=is_strictly_increasing(c))


def merge_regions(regions: Sequence[Region]) -> list[Region]:
    """Merge same-matrix regions into one region per matrix (union of indices).

    Overlapping regions are unioned, not double-counted; used by the
    machine-independent schedule validator to summarize footprints.
    """
    by_matrix: dict[str, list[np.ndarray]] = {}
    for reg in regions:
        by_matrix.setdefault(reg.matrix, []).append(reg.flat)
    return [
        Region(name, np.unique(np.concatenate(parts)))
        for name, parts in sorted(by_matrix.items())
    ]
