"""Element-granular red-blue pebble machines (Hong & Kung, Section 2.1).

These tiny machines execute *element-level* operation streams — each
operation names the individual matrix elements it reads and writes — and
are used for two purposes:

* :class:`LRUPebbleMachine` runs the naive three-nested-loop schedules of
  Algorithms 1 and 2 under a least-recently-used replacement policy,
  reproducing the motivation experiment (E9): without blocking, I/O blows
  up to ~1 load per operation once the working set exceeds ``S``.
* :class:`ExplicitPebbleMachine` gives schedules explicit load/evict control
  at element granularity, and is used in tests to cross-validate the main
  block-level machine on instances small enough to run both.

Elements are identified by ``(matrix_name, i, j)``.  Loads and stores are
counted exactly like the big machine: ``q = loads``, writebacks tracked
separately.  Dirty elements are written back when evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

import numpy as np

from ..errors import CapacityError, ConfigurationError, ResidencyError

Element = tuple[str, int, int]


class _PebbleBase:
    """Shared storage: backing arrays + resident set + counters."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.arrays: dict[str, np.ndarray] = {}
        # element -> dirty flag; insertion order doubles as LRU order.
        self.resident: OrderedDict[Element, bool] = OrderedDict()
        self.loads = 0
        self.stores = 0
        self.mults = 0
        self.flops = 0
        self.peak_occupancy = 0

    def add_matrix(self, name: str, array: np.ndarray) -> None:
        if name in self.arrays:
            raise ConfigurationError(f"matrix {name!r} already registered")
        self.arrays[name] = np.array(array, dtype=np.float64, copy=True)

    def result(self, name: str) -> np.ndarray:
        return self.arrays[name]

    @property
    def occupancy(self) -> int:
        return len(self.resident)

    @property
    def q(self) -> int:
        """Paper-convention I/O volume (loads)."""
        return self.loads

    def _bump_peak(self) -> None:
        if len(self.resident) > self.peak_occupancy:
            self.peak_occupancy = len(self.resident)

    def _writeback(self, elem: Element) -> None:
        # Values are computed in place in the backing array, so a writeback
        # only needs to be *counted* (the model's traffic), not performed.
        self.stores += 1


class LRUPebbleMachine(_PebbleBase):
    """Automatic replacement: touching a non-resident element loads it,
    evicting the least-recently-used element if at capacity."""

    def touch(self, elems: Iterable[Element], write: bool = False) -> None:
        """Bring elements into fast memory (LRU-evicting) and mark use."""
        for elem in elems:
            if elem in self.resident:
                dirty = self.resident.pop(elem)
                self.resident[elem] = dirty or write
            else:
                while len(self.resident) >= self.capacity:
                    victim, dirty = self.resident.popitem(last=False)
                    if dirty:
                        self._writeback(victim)
                self.resident[elem] = write
                self.loads += 1
                self._bump_peak()

    def op_muladd(self, c: Element, a: Element, b: Element, sign: float = 1.0) -> None:
        """``C[c] += sign * A[a] * B[b]`` with automatic loading."""
        self.touch([a, b])
        self.touch([c], write=True)
        ca, ci, cj = c
        an, ai, aj = a
        bn, bi, bj = b
        self.arrays[ca][ci, cj] += sign * self.arrays[an][ai, aj] * self.arrays[bn][bi, bj]
        self.mults += 1
        self.flops += 2

    def op_div(self, x: Element, d: Element) -> None:
        """``X[x] /= D[d]``."""
        self.touch([d])
        self.touch([x], write=True)
        xn, xi, xj = x
        dn, di, dj = d
        self.arrays[xn][xi, xj] /= self.arrays[dn][di, dj]
        self.mults += 1
        self.flops += 1

    def op_sqrt(self, x: Element) -> None:
        """``X[x] = sqrt(X[x])``."""
        self.touch([x], write=True)
        xn, xi, xj = x
        self.arrays[xn][xi, xj] = np.sqrt(self.arrays[xn][xi, xj])
        self.flops += 1

    def flush(self) -> None:
        """Evict everything, writing back dirty elements."""
        while self.resident:
            victim, dirty = self.resident.popitem(last=False)
            if dirty:
                self._writeback(victim)


class ExplicitPebbleMachine(_PebbleBase):
    """Program-controlled element loads/evicts (the model of Section 3,
    at pebble granularity)."""

    def load(self, elem: Element) -> None:
        if elem in self.resident:
            raise ResidencyError(f"redundant load of {elem!r}")
        if len(self.resident) >= self.capacity:
            raise CapacityError(1, len(self.resident), self.capacity)
        self.resident[elem] = False
        self.loads += 1
        self._bump_peak()

    def evict(self, elem: Element, writeback: bool | None = None) -> None:
        if elem not in self.resident:
            raise ResidencyError(f"evict of non-resident {elem!r}")
        dirty = self.resident.pop(elem)
        do_writeback = dirty if writeback is None else writeback
        if do_writeback:
            self._writeback(elem)

    def _require(self, elems: Iterable[Element]) -> None:
        for elem in elems:
            if elem not in self.resident:
                raise ResidencyError(f"compute touches non-resident {elem!r}")

    def op_muladd(self, c: Element, a: Element, b: Element, sign: float = 1.0) -> None:
        self._require([c, a, b])
        self.resident[c] = True
        ca, ci, cj = c
        an, ai, aj = a
        bn, bi, bj = b
        self.arrays[ca][ci, cj] += sign * self.arrays[an][ai, aj] * self.arrays[bn][bi, bj]
        self.mults += 1
        self.flops += 2

    def op_div(self, x: Element, d: Element) -> None:
        self._require([x, d])
        self.resident[x] = True
        xn, xi, xj = x
        dn, di, dj = d
        self.arrays[xn][xi, xj] /= self.arrays[dn][di, dj]
        self.mults += 1
        self.flops += 1

    def op_sqrt(self, x: Element) -> None:
        self._require([x])
        self.resident[x] = True
        xn, xi, xj = x
        self.arrays[xn][xi, xj] = np.sqrt(self.arrays[xn][xi, xj])
        self.flops += 1
