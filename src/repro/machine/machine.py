"""The :class:`TwoLevelMachine` facade: what every schedule programs against.

A machine bundles slow memory, fast memory and an :class:`IOStats` tracker
behind the three verbs of the model — ``load``, ``evict``, ``compute`` —
plus shape-aware region constructors and a ``hold`` context manager for the
ubiquitous *load, work, evict* pattern of the one-tile algorithms.

Compute ops (:mod:`repro.sched.ops`) declare the regions they read and
write; :meth:`TwoLevelMachine.compute` asserts all of them are resident
before applying the op's numeric update to the *workspace* array — the
NaN-poisoned shadow in strict mode, the slow array otherwise — and credits
the op's flops to the tracker.

Two performance switches exist for large counting-only sweeps (the paper's
volumes grow like ``N^3/sqrt(S)``, so benches run many machine ops):

* ``numerics=False`` skips the numeric ``apply`` (I/O counts, capacity and
  residency checking are unaffected);
* ``check_residency=False`` additionally skips the per-compute residency
  assertion (loads/evicts still enforce capacity and legality).  The test
  suite always runs with both checks on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..config import MachineConfig
from ..errors import ConfigurationError
from .fast_memory import FastMemory
from .regions import (
    Region,
    column_segment_region,
    lower_tile_region,
    row_segment_region,
    tile_region,
    triangle_block_region,
)
from .slow_memory import SlowMemory
from .tracker import IOStats

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.ops import ComputeOp


class TwoLevelMachine:
    """Simulated two-level memory machine (fast memory of ``S`` elements)."""

    def __init__(
        self,
        capacity: int | MachineConfig,
        *,
        strict: bool | None = None,
        allow_redundant_loads: bool | None = None,
        record_events: bool | None = None,
        numerics: bool = True,
        check_residency: bool = True,
    ) -> None:
        if isinstance(capacity, MachineConfig):
            cfg = capacity
        else:
            cfg = MachineConfig(capacity=int(capacity))
        if strict is not None:
            cfg = MachineConfig(cfg.capacity, strict, cfg.allow_redundant_loads, cfg.record_events)
        if allow_redundant_loads is not None:
            cfg = MachineConfig(cfg.capacity, cfg.strict, allow_redundant_loads, cfg.record_events)
        if record_events is not None:
            cfg = MachineConfig(cfg.capacity, cfg.strict, cfg.allow_redundant_loads, record_events)
        self.config = cfg
        self.capacity = cfg.capacity
        self.numerics = bool(numerics)
        self.check_residency = bool(check_residency)
        self.slow = SlowMemory()
        self.fast = FastMemory(cfg.capacity, strict=cfg.strict, allow_redundant_loads=cfg.allow_redundant_loads)
        self.stats = IOStats(events=[] if cfg.record_events else None)
        self._recorders: list = []  # sched.record attaches here

    # ------------------------------------------------------------------ #
    # matrix management
    # ------------------------------------------------------------------ #
    def add_matrix(self, name: str, array: np.ndarray) -> None:
        """Register a matrix in slow memory (copied) and attach residency state."""
        self.slow.add(name, array)
        self.fast.attach(name, self.slow.shape(name))

    def shape(self, name: str) -> tuple[int, int]:
        return self.slow.shape(name)

    def ncols(self, name: str) -> int:
        return self.slow.ncols(name)

    def result(self, name: str) -> np.ndarray:
        """The slow-memory array (where results live after writebacks)."""
        return self.slow.array(name)

    def workspace(self, name: str) -> np.ndarray:
        """The array compute ops operate on (shadow in strict mode)."""
        if self.config.strict:
            return self.fast.shadow(name)
        return self.slow.array(name)

    # ------------------------------------------------------------------ #
    # region constructors (shape-aware)
    # ------------------------------------------------------------------ #
    def tile(self, name: str, rows, cols) -> Region:
        return tile_region(name, rows, cols, self.ncols(name))

    def triangle_block(self, name: str, R) -> Region:
        return triangle_block_region(name, R, self.ncols(name))

    def lower_tile(self, name: str, rows, *, strict: bool = False) -> Region:
        return lower_tile_region(name, rows, self.ncols(name), strict=strict)

    def column_segment(self, name: str, rows, col: int) -> Region:
        return column_segment_region(name, rows, col, self.ncols(name))

    def row_segment(self, name: str, row: int, cols) -> Region:
        return row_segment_region(name, row, cols, self.ncols(name))

    # ------------------------------------------------------------------ #
    # the three verbs
    # ------------------------------------------------------------------ #
    def load(self, region: Region) -> None:
        """Move ``region`` into fast memory (counted; capacity-checked)."""
        moved = self.fast.load(region, self.slow)
        self.stats.record_load(region.matrix, moved, self.fast.occupancy)
        for rec in self._recorders:
            rec.on_load(region)

    def evict(self, region: Region, writeback: bool = False) -> None:
        """Drop ``region`` from fast memory, writing back iff requested."""
        written = self.fast.evict(region, self.slow, writeback)
        # In non-strict mode computation happens in place in slow memory, so
        # a writeback still represents traffic the model must count.
        if not self.config.strict and writeback:
            written = region.size
        self.stats.record_evict(region.matrix, written, self.fast.occupancy)
        for rec in self._recorders:
            rec.on_evict(region, writeback)

    def compute(self, op: "ComputeOp") -> None:
        """Apply a compute op after checking all its operands are resident."""
        if self.check_residency:
            for region in op.reads():
                self.fast.assert_resident(region)
            for region in op.writes():
                self.fast.assert_resident(region)
        if self.numerics:
            op.apply(self)
        self.stats.record_compute(op.name, op.mults, op.flops, self.fast.occupancy)
        for rec in self._recorders:
            rec.on_compute(op)

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    @contextmanager
    def hold(self, region: Region, *, writeback: bool = False) -> Iterator[Region]:
        """Load a region, yield it, evict on exit (the one-tile pattern)."""
        self.load(region)
        try:
            yield region
        finally:
            self.evict(region, writeback=writeback)

    def occupancy(self) -> int:
        return self.fast.occupancy

    def assert_empty(self) -> None:
        """Raise if fast memory is not empty (schedules must clean up)."""
        if self.fast.occupancy != 0:
            raise ConfigurationError(
                f"fast memory not empty at end of schedule: {self.fast.occupancy} resident"
            )
