"""The two-level memory machine substrate.

This subpackage implements the paper's machine model (Section 3): a fast
memory of capacity ``S`` elements under explicit program control, an
unbounded slow memory, and exact accounting of every element transferred
between them.  It is the measurement instrument for the whole reproduction:
`I/O volume` in this model is a deterministic count, so the simulator
reproduces the paper's quantities exactly rather than approximately.
"""

from .regions import (
    Region,
    tile_region,
    triangle_block_region,
    lower_tile_region,
    column_segment_region,
    row_segment_region,
    merge_regions,
)
from .slow_memory import SlowMemory
from .fast_memory import FastMemory
from .tracker import IOStats, IOEvent
from .machine import TwoLevelMachine
from .pebble import LRUPebbleMachine, ExplicitPebbleMachine

__all__ = [
    "Region",
    "tile_region",
    "triangle_block_region",
    "lower_tile_region",
    "column_segment_region",
    "row_segment_region",
    "merge_regions",
    "SlowMemory",
    "FastMemory",
    "IOStats",
    "IOEvent",
    "TwoLevelMachine",
    "LRUPebbleMachine",
    "ExplicitPebbleMachine",
]
