"""Analysis layer: exact I/O predictors, OI rooflines, the Section 4 optimum
cross-checks, and the sweep harness that regenerates every experiment."""

from .model import (
    ooc_syrk_model,
    ooc_syrk_rect_model,
    ooc_syrk_strip_model,
    tbs_model,
    tbs_tiled_model,
    ooc_trsm_model,
    ooc_chol_model,
    ooc_lu_model,
    ooc_gemm_model,
    lbc_model,
    lbc_term_model,
    ooc_syr2k_model,
    tbs_syr2k_model,
    IOPrediction,
)
from .oi import measured_oi, oi_ceiling, oi_gap
from .lru_replay import LruReplayResult, lru_competitiveness, lru_replay
from .optimum import numeric_p_doubleprime, verify_theorem41_chain
from .sweep import SweepRow, run_syrk_once, run_cholesky_once, sweep_syrk, sweep_cholesky
from .roofline import roofline_rows

__all__ = [
    "ooc_syrk_model",
    "ooc_syrk_rect_model",
    "ooc_syrk_strip_model",
    "tbs_model",
    "tbs_tiled_model",
    "ooc_trsm_model",
    "ooc_chol_model",
    "ooc_lu_model",
    "ooc_gemm_model",
    "lbc_model",
    "lbc_term_model",
    "ooc_syr2k_model",
    "tbs_syr2k_model",
    "IOPrediction",
    "measured_oi",
    "oi_ceiling",
    "oi_gap",
    "LruReplayResult",
    "lru_competitiveness",
    "lru_replay",
    "numeric_p_doubleprime",
    "verify_theorem41_chain",
    "SweepRow",
    "run_syrk_once",
    "run_cholesky_once",
    "sweep_syrk",
    "sweep_cholesky",
    "roofline_rows",
]
