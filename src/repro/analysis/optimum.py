"""Numeric cross-checks of the Section 4 optimization chain (experiment E1).

Three independent evaluations of "the largest subcomputation that touches at
most X elements":

1. :func:`repro.core.balanced.enumerate_balanced_optimum` — exact integer
   optimum of P'(X) by enumeration;
2. :func:`repro.core.balanced.solve_p_doubleprime` — the paper's closed-form
   KKT optimum of the continuous relaxation P''(X);
3. :func:`numeric_p_doubleprime` — an independent scipy (SLSQP) maximization
   of P''(X), making sure the closed form was derived correctly.

Theorem 4.1 then caps everything with ``sqrt(2)/(3 sqrt 3) X^{3/2}``;
:func:`verify_theorem41_chain` asserts the whole chain
``enumerate <= H'' <= bound`` and returns the values for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from ..core.balanced import (
    enumerate_balanced_optimum,
    max_ops_bound,
    solve_p_doubleprime,
)
from ..errors import VerificationError


@dataclass(frozen=True)
class NumericOptimum:
    """SLSQP solution of P''(X)."""

    x: float
    i_star: float
    k_star: float
    value: float
    success: bool


def numeric_p_doubleprime(x: float, i0: float | None = None, k0: float | None = None) -> NumericOptimum:
    """Maximize ``K I(I-1)/2`` s.t. ``I(I-1)/2 + K I <= X`` with SLSQP.

    Started near (but not at) the closed-form optimum by default; used to
    confirm the KKT algebra of Lemma 4.6 independently.
    """
    closed = solve_p_doubleprime(x)
    start = np.array(
        [i0 if i0 is not None else max(closed.i_star * 0.7, 1.1),
         k0 if k0 is not None else max(closed.k_star * 1.4, 0.1)]
    )

    def neg_objective(v: np.ndarray) -> float:
        i, k = v
        return -(k * i * (i - 1.0) / 2.0)

    constraints = [
        {"type": "ineq", "fun": lambda v: x - (v[0] * (v[0] - 1.0) / 2.0 + v[1] * v[0])},
    ]
    bounds = [(1.0, None), (0.0, None)]
    res = minimize(
        neg_objective,
        start,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": 1000, "ftol": 1e-9},
    )
    return NumericOptimum(
        x=float(x), i_star=float(res.x[0]), k_star=float(res.x[1]),
        value=float(-res.fun), success=bool(res.success),
    )


@dataclass(frozen=True)
class Theorem41Check:
    """The E1 chain at one value of X."""

    x: int
    enumerated: int          # exact integer optimum of P'(X)
    continuous: float        # closed-form H''(X)
    numeric: float           # SLSQP value
    bound: float             # sqrt(2)/(3 sqrt 3) X^{3/2}

    @property
    def tightness(self) -> float:
        """How much of the Theorem 4.1 bound the integer optimum achieves."""
        return self.enumerated / self.bound if self.bound else 0.0


def verify_theorem41_chain(x: int, rtol: float = 1e-6) -> Theorem41Check:
    """Assert ``enumerate(P') <= H''(X) <= bound(X)`` and closed == numeric.

    Raises :class:`VerificationError` on any violation; returns all values.
    """
    enum = enumerate_balanced_optimum(x)
    closed = solve_p_doubleprime(float(x))
    numeric = numeric_p_doubleprime(float(x))
    bound = max_ops_bound(float(x))

    if enum.value > closed.value * (1.0 + rtol) + 1e-9:
        raise VerificationError(
            f"X={x}: integer optimum {enum.value} exceeds continuous optimum {closed.value}"
        )
    if closed.value > bound * (1.0 + rtol) + 1e-9:
        raise VerificationError(
            f"X={x}: H''(X)={closed.value} exceeds Theorem 4.1 bound {bound}"
        )
    if numeric.success and abs(numeric.value - closed.value) > max(1.0e-4 * closed.value, 1e-6):
        raise VerificationError(
            f"X={x}: SLSQP value {numeric.value} != closed form {closed.value}"
        )
    return Theorem41Check(
        x=x, enumerated=enum.value, continuous=closed.value,
        numeric=numeric.value, bound=bound,
    )
