"""Operational intensity: measured values vs the model's ceilings.

The paper frames everything in OI terms: a schedule's OI is its work
divided by its I/O volume (Lemma 3.1), and the maximal OI of the symmetric
kernels is ``sqrt(S/2)`` per multiply — ``sqrt(2)`` *higher* than what the
square-tile baselines achieve and ``sqrt(2)`` *lower*... no: GEMM's ceiling
``sqrt(S)`` is higher per multiply, but symmetric kernels perform half the
multiplies for the same output, netting the advantage.  E7 tabulates all of
this; these helpers just keep the arithmetic in one tested place.
"""

from __future__ import annotations

from ..core.bounds import max_operational_intensity
from ..machine.tracker import IOStats


def measured_oi(stats: IOStats, per: str = "mults") -> float:
    """Measured operational intensity of a run: work / Q(loads)."""
    return stats.operational_intensity(per=per)


def oi_ceiling(s: int, kernel: str = "symmetric", per: str = "mults") -> float:
    """The model's maximal OI (see :func:`repro.core.bounds.max_operational_intensity`)."""
    return max_operational_intensity(s, kernel=kernel, per=per)


def oi_gap(stats: IOStats, s: int, kernel: str = "symmetric", per: str = "mults") -> float:
    """Fraction of the ceiling achieved: ``measured / ceiling`` (<= 1 + o(1)).

    Lower-order traffic (loading C, tile edges) keeps finite instances
    slightly below 1; optimal schedules approach 1 as N grows, which is
    exactly what E7 shows.
    """
    ceiling = oi_ceiling(s, kernel=kernel, per=per)
    return measured_oi(stats, per=per) / ceiling
