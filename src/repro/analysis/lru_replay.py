"""LRU replay: what would a schedule's op *order* cost without explicit control?

The paper's model gives the program explicit control of fast memory, and
all its algorithms exploit that.  Real cache hierarchies are LRU-managed.
This tool takes a recorded schedule, strips the explicit loads/evicts, and
replays only the *compute ops* (their read/write regions, in order) through
an element-granular LRU cache of capacity ``S`` — answering: how much of
TBS/LBC's advantage survives under hardware-style replacement, and how much
slack does LRU need (the classic resource-augmentation question)?

Findings this enables (asserted in tests):

* on blocked schedules the access order is cache-friendly: LRU at the same
  capacity lands within a small constant of the explicit volume, and with
  modest augmentation (~2x) it matches or beats it (LRU keeps tiles around
  "for free" where the explicit schedule conservatively evicts);
* the *relative* TBS-vs-OCS advantage survives LRU replacement — the paper's
  insight is about the order of computations, not about explicit control.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sched.schedule import Schedule, access_sequence


@dataclass(frozen=True)
class LruReplayResult:
    """Outcome of replaying a schedule's compute ops under LRU."""

    capacity: int
    loads: int           # cold + capacity misses (elements moved in)
    stores: int          # dirty evictions + dirty elements at the end
    n_accesses: int      # total element touches
    distinct: int        # distinct elements touched (cold-miss floor)

    @property
    def q(self) -> int:
        return self.loads

    @property
    def miss_rate(self) -> float:
        return self.loads / self.n_accesses if self.n_accesses else 0.0


def lru_replay(schedule: Schedule, capacity: int) -> LruReplayResult:
    """Replay the compute ops of ``schedule`` under an LRU cache.

    Walks the canonical element access sequence
    (:func:`~repro.sched.schedule.access_sequence`, shared with the
    Belady/MIN replay so the two are directly comparable); writes mark
    elements dirty.  Evicted dirty elements count as stores, as do dirty
    elements flushed at the end.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    seq = access_sequence(schedule)
    cache: OrderedDict[tuple[str, int], bool] = OrderedDict()
    loads = stores = 0
    seen: set[tuple[str, int]] = set()

    for key, write in seq:
        seen.add(key)
        if key in cache:
            dirty = cache.pop(key)
            cache[key] = dirty or write
        else:
            while len(cache) >= capacity:
                _victim, dirty = cache.popitem(last=False)
                if dirty:
                    stores += 1
            cache[key] = write
            loads += 1

    stores += sum(1 for dirty in cache.values() if dirty)
    return LruReplayResult(
        capacity=capacity,
        loads=loads,
        stores=stores,
        n_accesses=len(seq),
        distinct=len(seen),
    )


def lru_competitiveness(schedule: Schedule, explicit_loads: int, capacity: int) -> float:
    """``Q_LRU(capacity) / Q_explicit``: how close hardware replacement gets.

    Values near 1 mean the schedule's order is intrinsically cache-friendly;
    large values mean it genuinely relies on explicit control.
    """
    if explicit_loads <= 0:
        raise ConfigurationError("explicit_loads must be positive")
    return lru_replay(schedule, capacity).loads / explicit_loads
