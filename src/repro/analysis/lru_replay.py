"""LRU replay: what would a schedule's op *order* cost without explicit control?

The paper's model gives the program explicit control of fast memory, and
all its algorithms exploit that.  Real cache hierarchies are LRU-managed.
This tool takes a recorded schedule, strips the explicit loads/evicts, and
replays only the *compute ops* (their read/write regions, in order) through
an element-granular LRU cache of capacity ``S`` — answering: how much of
TBS/LBC's advantage survives under hardware-style replacement, and how much
slack does LRU need (the classic resource-augmentation question)?

The default :func:`lru_replay` compiles the schedule to the array IR
(:mod:`repro.trace`) and runs the chunked array-based replay — one to two
orders of magnitude faster than walking Python tuples, which is what opens
up N in the thousands (benchmark E13).  The original tuple/OrderedDict
walker survives as :func:`lru_replay_reference`; the test suite asserts
both return bit-identical counts.

Findings this enables (asserted in tests):

* on blocked schedules the access order is cache-friendly: LRU at the same
  capacity lands within a small constant of the explicit volume, and with
  modest augmentation (~2x) it matches or beats it (LRU keeps tiles around
  "for free" where the explicit schedule conservatively evicts);
* the *relative* TBS-vs-OCS advantage survives LRU replacement — the paper's
  insight is about the order of computations, not about explicit control.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigurationError
from ..sched.schedule import Schedule, access_sequence_reference
from ..trace.compiled import CompiledTrace, compile_trace
from ..trace.replay import LruReplayResult, lru_replay_trace

__all__ = [
    "LruReplayResult",
    "lru_replay",
    "lru_replay_reference",
    "lru_competitiveness",
]


def lru_replay(schedule: Schedule | CompiledTrace, capacity: int) -> LruReplayResult:
    """Replay the compute ops of ``schedule`` under an LRU cache.

    Accepts a recorded :class:`~repro.sched.schedule.Schedule` or an
    already-compiled :class:`~repro.trace.compiled.CompiledTrace` (compile
    once when replaying the same order at many capacities).  Walks the
    canonical element access sequence shared with the Belady/MIN replay so
    the two are directly comparable; writes mark elements dirty.  Evicted
    dirty elements count as stores, as do dirty elements flushed at the
    end.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    return lru_replay_trace(compile_trace(schedule), capacity)


def lru_replay_reference(
    schedule: Schedule | CompiledTrace, capacity: int
) -> LruReplayResult:
    """The original tuple-per-touch LRU walker (cross-check path).

    Kept verbatim as the independent oracle for :func:`lru_replay`: it
    shares no code with the array engine, so agreement between the two is
    a meaningful check.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if isinstance(schedule, CompiledTrace):
        seq = schedule.to_access_sequence()
    else:
        seq = access_sequence_reference(schedule)
    cache: OrderedDict[tuple[str, int], bool] = OrderedDict()
    loads = evict_stores = 0
    seen: set[tuple[str, int]] = set()

    for key, write in seq:
        seen.add(key)
        if key in cache:
            dirty = cache.pop(key)
            cache[key] = dirty or write
        else:
            while len(cache) >= capacity:
                _victim, dirty = cache.popitem(last=False)
                if dirty:
                    evict_stores += 1
            cache[key] = write
            loads += 1

    flush = sum(1 for dirty in cache.values() if dirty)
    return LruReplayResult(
        capacity=capacity,
        loads=loads,
        stores=evict_stores + flush,
        n_accesses=len(seq),
        distinct=len(seen),
        evict_stores=evict_stores,
    )


def lru_competitiveness(schedule: Schedule, explicit_loads: int, capacity: int) -> float:
    """``Q_LRU(capacity) / Q_explicit``: how close hardware replacement gets.

    Values near 1 mean the schedule's order is intrinsically cache-friendly;
    large values mean it genuinely relies on explicit control.
    """
    if explicit_loads <= 0:
        raise ConfigurationError("explicit_loads must be positive")
    return lru_replay(schedule, capacity).loads / explicit_loads
