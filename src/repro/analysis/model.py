"""Exact I/O predictors: closed-sum mirrors of every schedule's control flow.

For each algorithm in the library there is a predictor here that computes,
*without running the machine*, exactly how many elements the schedule loads
and stores.  The test suite asserts ``measured == predicted`` as integer
equality for every algorithm on a grid of shapes — any accounting drift
between a schedule and its analysis breaks loudly.

The predictors deliberately share no code with the schedules: they are
independent re-derivations of the same sums (per-tile: tile size + streamed
traffic + solve streams), which is what makes the equality test meaningful.

Asymptotic leading terms (what the paper states) are in
:mod:`repro.core.bounds`; these exact forms converge to them, and experiment
benches report both.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import (
    square_tile_side_for_memory,
    tiled_tbs_shape_for_memory,
    triangle_side_for_memory,
)
from ..core.partition import plan_partition
from ..errors import ConfigurationError


@dataclass(frozen=True)
class IOPrediction:
    """Predicted element traffic of one schedule invocation."""

    loads: int
    stores: int

    def __add__(self, other: "IOPrediction") -> "IOPrediction":
        return IOPrediction(self.loads + other.loads, self.stores + other.stores)

    def scaled(self, count: int) -> "IOPrediction":
        return IOPrediction(self.loads * count, self.stores * count)


ZERO = IOPrediction(0, 0)


def _blocks(n: int, s: int) -> list[int]:
    """Block sizes of an ``n``-row range split into ``s``-chunks."""
    return [min(s, n - lo) for lo in range(0, n, s)]


def _tri(x: int) -> int:
    """Lower-triangle size incl. diagonal: x(x+1)/2."""
    return x * (x + 1) // 2


def _tri_strict(x: int) -> int:
    """Strictly-lower triangle size: x(x-1)/2."""
    return x * (x - 1) // 2


# --------------------------------------------------------------------- #
# SYRK family
# --------------------------------------------------------------------- #
def ooc_syrk_model(n: int, mcols: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.baselines.ooc_syrk.ooc_syrk`.

    Per diagonal tile of side ``b``: ``tri(b)`` tile loads/stores plus one
    ``b``-segment per column.  Per off-diagonal tile ``(b_i, b_j)``:
    ``b_i b_j`` tile loads/stores plus ``(b_i + b_j)`` per column.
    """
    t = tile if tile is not None else square_tile_side_for_memory(s)
    sizes = _blocks(n, t)
    loads = stores = 0
    prefix = 0  # sum of earlier block sizes
    for i, bi in enumerate(sizes):
        loads += _tri(bi) + mcols * bi
        stores += _tri(bi)
        # off-diagonal row: sum_j<i [bi*bj + M(bi+bj)] via prefix sums
        loads += bi * prefix + mcols * (i * bi + prefix)
        stores += bi * prefix
        prefix += bi
    return IOPrediction(loads, stores)


def ooc_syrk_rect_model(ni: int, nj: int, mcols: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`~repro.baselines.ooc_syrk.ooc_syrk_rect`."""
    t = tile if tile is not None else square_tile_side_for_memory(s)
    bi_sizes = _blocks(ni, t)
    bj_sizes = _blocks(nj, t)
    si, sj = sum(bi_sizes), sum(bj_sizes)
    ci, cj = len(bi_sizes), len(bj_sizes)
    # sum_i sum_j [bi*bj + M(bi+bj)] = si*sj + M*(cj*si + ci*sj)
    loads = si * sj + mcols * (cj * si + ci * sj)
    stores = si * sj
    return IOPrediction(loads, stores)


def ooc_syrk_strip_model(l: int, prior: int, mcols: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`~repro.baselines.ooc_syrk.ooc_syrk_strip`."""
    out = ZERO
    if l == 0:
        return out
    if prior:
        out = out + ooc_syrk_rect_model(l, prior, mcols, s, tile)
    return out + ooc_syrk_model(l, mcols, s, tile)


def tbs_model(n: int, mcols: int, s: int, k: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.core.tbs.tbs_syrk` (Algorithm 4).

    Mirrors the recursion: strip (OOC_SYRK), ``k`` recursive zones, and
    ``c^2`` blocks each loading ``k(k-1)/2`` C-elements once and ``k``
    A-elements per column.
    """
    kk = k if k is not None else triangle_side_for_memory(s)
    if kk < 2:
        raise ConfigurationError(f"S={s} fits no triangle block")
    return _tbs_model_rec(n, mcols, s, kk)


def _tbs_model_rec(n: int, mcols: int, s: int, k: int) -> IOPrediction:
    part = plan_partition(n, k)
    if part is None:
        return ooc_syrk_model(n, mcols, s)
    out = ZERO
    if part.leftover:
        out = out + ooc_syrk_strip_model(part.leftover, part.covered, mcols, s)
    out = out + _tbs_model_rec(part.c, mcols, s, k).scaled(k)
    block_loads = _tri_strict(k) + mcols * k
    block_stores = _tri_strict(k)
    c2 = part.c * part.c
    return out + IOPrediction(c2 * block_loads, c2 * block_stores)


def tbs_tiled_model(n: int, mcols: int, s: int, k: int = 4, b: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.core.tbs_tiled.tbs_tiled_syrk`."""
    bb = b if b is not None else tiled_tbs_shape_for_memory(s, k)
    return _tbs_tiled_rec(n, mcols, s, k, bb)


def _tbs_tiled_rec(n: int, mcols: int, s: int, k: int, b: int) -> IOPrediction:
    n_tiles = n // b
    part = plan_partition(n_tiles, k) if n_tiles >= 1 else None
    if part is None:
        return ooc_syrk_model(n, mcols, s)
    ckb = part.covered * b
    out = ZERO
    if n > ckb:
        out = out + ooc_syrk_strip_model(n - ckb, ckb, mcols, s)
    out = out + _tbs_tiled_rec(part.c * b, mcols, s, k, b).scaled(k)
    # Per block: k(k-1)/2 tiles of b^2 loaded/stored once; k*b streamed per col.
    block_loads = _tri_strict(k) * b * b + mcols * k * b
    block_stores = _tri_strict(k) * b * b
    c2 = part.c * part.c
    return out + IOPrediction(c2 * block_loads, c2 * block_stores)


# --------------------------------------------------------------------- #
# TRSM / Cholesky / LU / GEMM
# --------------------------------------------------------------------- #
def ooc_trsm_model(ntri: int, mrows: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.baselines.ooc_trsm.ooc_trsm`."""
    t = tile if tile is not None else square_tile_side_for_memory(s)
    col_sizes = _blocks(ntri, t)
    # Per-panel sums that do not depend on the panel height:
    #   sum_j q_j = ntri; sum_j off_j; sum_j off_j q_j; sum_j tri(q_j)
    sum_off = sum_off_q = sum_tri = 0
    off = 0
    for qj in col_sizes:
        sum_off += off
        sum_off_q += off * qj
        sum_tri += _tri(qj)
        off += qj
    loads = stores = 0
    for pi in _blocks(mrows, t):
        loads += pi * ntri + sum_off * pi + sum_off_q + sum_tri
        stores += pi * ntri
    return IOPrediction(loads, stores)


def ooc_chol_model(n: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.baselines.ooc_chol.ooc_chol`."""
    t = tile if tile is not None else square_tile_side_for_memory(s)
    sizes = _blocks(n, t)
    total = sum(sizes)
    nb = len(sizes)
    loads = stores = 0
    off_j = 0
    seen = 0  # sum of sizes up to and including block jb
    for jb, sj in enumerate(sizes):
        seen += sj
        below = total - seen          # sum_{i>j} s_i
        count_below = nb - 1 - jb
        loads += _tri(sj) + off_j * sj
        stores += _tri(sj)
        # sum over sub-diagonal tiles of this block column via prefix sums
        loads += sj * below + off_j * (below + count_below * sj) + count_below * _tri(sj)
        stores += sj * below
        off_j += sj
    return IOPrediction(loads, stores)


def ooc_lu_model(n: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.baselines.lu.ooc_lu`."""
    t = tile if tile is not None else square_tile_side_for_memory(s)
    sizes = _blocks(n, t)
    offs = [0]
    for sz in sizes:
        offs.append(offs[-1] + sz)
    loads = stores = 0
    for jb, sj in enumerate(sizes):
        for ib, si in enumerate(sizes):
            prior = offs[min(ib, jb)]
            loads += si * sj + prior * (si + sj)
            stores += si * sj
            if ib > jb:
                loads += _tri(sj)  # streamed U columns of the diagonal tile
            elif ib < jb:
                loads += _tri_strict(si)  # streamed L rows (unit diag: no row 0)
    return IOPrediction(loads, stores)


def ooc_gemm_model(n: int, inner: int, p: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.baselines.gemm.ooc_gemm`."""
    t = tile if tile is not None else square_tile_side_for_memory(s)
    bi_sizes = _blocks(n, t)
    bj_sizes = _blocks(p, t)
    si, sj = sum(bi_sizes), sum(bj_sizes)
    ci, cj = len(bi_sizes), len(bj_sizes)
    loads = si * sj + inner * (cj * si + ci * sj)
    stores = si * sj
    return IOPrediction(loads, stores)


# --------------------------------------------------------------------- #
# LBC
# --------------------------------------------------------------------- #
def lbc_model(n: int, s: int, b: int, syrk: str = "tbs", k: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.core.lbc.lbc_cholesky`."""
    parts = lbc_term_model(n, s, b, syrk=syrk, k=k)
    return IOPrediction(
        parts["chol"].loads + parts["trsm"].loads + parts["syrk"].loads,
        parts["chol"].stores + parts["trsm"].stores + parts["syrk"].stores,
    )


def lbc_term_model(
    n: int, s: int, b: int, syrk: str = "tbs", k: int | None = None
) -> dict[str, IOPrediction]:
    """Per-phase traffic of LBC (the E6 decomposition)."""
    if b < 1 or n % b != 0:
        raise ConfigurationError(f"block size b={b} must divide N={n}")
    out = {"chol": ZERO, "trsm": ZERO, "syrk": ZERO}
    nb = n // b
    for i in range(nb):
        out["chol"] = out["chol"] + ooc_chol_model(b, s)
        trailing = n - (i + 1) * b
        if trailing > 0:
            out["trsm"] = out["trsm"] + ooc_trsm_model(b, trailing, s)
            if syrk == "tbs":
                out["syrk"] = out["syrk"] + tbs_model(trailing, b, s, k=k)
            elif syrk == "tiled":
                out["syrk"] = out["syrk"] + tbs_tiled_model(trailing, b, s, k=k or 4)
            elif syrk == "ocs":
                out["syrk"] = out["syrk"] + ooc_syrk_model(trailing, b, s)
            else:
                raise ConfigurationError(f"unknown syrk engine {syrk!r}")
    return out


# --------------------------------------------------------------------- #
# SYR2K (the future-work extension; see repro.core.syr2k)
# --------------------------------------------------------------------- #
def ooc_syr2k_model(n: int, mcols: int, s: int, tile: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.core.syr2k.ooc_syr2k`."""
    from ..core.syr2k import syr2k_square_tile_side

    t = tile if tile is not None else syr2k_square_tile_side(s)
    sizes = _blocks(n, t)
    loads = stores = 0
    prefix = 0
    for i, bi in enumerate(sizes):
        loads += _tri(bi) + mcols * 2 * bi
        stores += _tri(bi)
        loads += bi * prefix + mcols * 2 * (i * bi + prefix)
        stores += bi * prefix
        prefix += bi
    return IOPrediction(loads, stores)


def tbs_syr2k_model(n: int, mcols: int, s: int, k: int | None = None) -> IOPrediction:
    """Exact traffic of :func:`repro.core.syr2k.tbs_syr2k`."""
    from ..core.syr2k import syr2k_square_tile_side, syr2k_triangle_side_for_memory

    kk = k if k is not None else syr2k_triangle_side_for_memory(s)
    if kk < 2:
        raise ConfigurationError(f"S={s} fits no SYR2K triangle block")
    return _syr2k_model_rec(n, mcols, s, kk)


def _syr2k_model_rec(n: int, mcols: int, s: int, k: int) -> IOPrediction:
    from ..core.syr2k import syr2k_square_tile_side

    part = plan_partition(n, k)
    if part is None:
        return ooc_syr2k_model(n, mcols, s)
    out = ZERO
    if part.leftover:
        t = syr2k_square_tile_side(s)
        l, prior = part.leftover, part.covered
        rect_loads = rect_stores = 0
        for bi in _blocks(l, t):
            for bj in _blocks(prior, t):
                rect_loads += bi * bj + mcols * 2 * (bi + bj)
                rect_stores += bi * bj
        out = out + IOPrediction(rect_loads, rect_stores) + ooc_syr2k_model(l, mcols, s)
    out = out + _syr2k_model_rec(part.c, mcols, s, k).scaled(k)
    block_loads = _tri_strict(k) + mcols * 2 * k
    block_stores = _tri_strict(k)
    c2 = part.c * part.c
    return out + IOPrediction(c2 * block_loads, c2 * block_stores)
