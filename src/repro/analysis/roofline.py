"""Roofline assembly (experiment E7): measured OI of every schedule vs the
model's ceilings.

Each row pairs a schedule's measured operational intensity (multiplies per
loaded element) with the relevant ceiling — ``sqrt(S/2)`` for the symmetric
kernels (Theorem 4.1 via Lemma 3.1), ``sqrt(S)`` for GEMM/LU — and reports
the fraction achieved.  The paper's headline reads off this table: TBS and
LBC sit near their (higher-per-output) symmetric ceiling, while the
square-tile baselines cap out a factor ``sqrt(2)`` lower.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines import ooc_chol, ooc_gemm, ooc_lu, ooc_syrk
from ..core.bounds import max_operational_intensity
from ..core.lbc import lbc_cholesky
from ..core.tbs import tbs_syrk
from ..machine.machine import TwoLevelMachine


@dataclass(frozen=True)
class RooflineRow:
    schedule: str
    kernel_class: str      # "symmetric" | "gemm"
    n: int
    s: int
    q: int
    mults: int
    oi: float
    ceiling: float

    @property
    def fraction(self) -> float:
        return self.oi / self.ceiling if self.ceiling else math.inf


def _machine(s: int, shapes: dict[str, tuple[int, int]]) -> TwoLevelMachine:
    m = TwoLevelMachine(s, strict=False, numerics=False)
    for name, shape in shapes.items():
        m.add_matrix(name, np.zeros(shape))
    return m


def roofline_rows(n: int, mcols: int, s: int, lbc_b: int | None = None) -> list[RooflineRow]:
    """Measure OI for all six schedules at one shape (E7's table body)."""
    rows: list[RooflineRow] = []

    def add(schedule: str, kernel_class: str, stats) -> None:
        ceiling = max_operational_intensity(s, kernel=kernel_class, per="mults")
        rows.append(
            RooflineRow(
                schedule=schedule, kernel_class=kernel_class, n=n, s=s,
                q=stats.loads, mults=stats.mults,
                oi=stats.mults / stats.loads if stats.loads else math.inf,
                ceiling=ceiling,
            )
        )

    m = _machine(s, {"A": (n, mcols), "C": (n, n)})
    add("TBS (syrk)", "symmetric", tbs_syrk(m, "A", "C", range(n), range(mcols)))
    m = _machine(s, {"A": (n, mcols), "C": (n, n)})
    add("OOC_SYRK", "symmetric", ooc_syrk(m, "A", "C", range(n), range(mcols)))
    m = _machine(s, {"A": (n, n)})
    add("LBC (cholesky)", "symmetric", lbc_cholesky(m, "A", range(n), b=lbc_b))
    m = _machine(s, {"A": (n, n)})
    add("OOC_CHOL", "symmetric", ooc_chol(m, "A", range(n)))
    m = _machine(s, {"A": (n, mcols), "B": (mcols, n), "C": (n, n)})
    add("OOC_GEMM", "gemm", ooc_gemm(m, "A", "B", "C", range(n), range(mcols), range(n)))
    m = _machine(s, {"A": (n, n)})
    add("OOC_LU", "gemm", ooc_lu(m, "A", range(n)))
    return rows
