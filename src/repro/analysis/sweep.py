"""Parameter-sweep harness: one place that runs any schedule on any shape.

Benches and EXPERIMENTS.md are generated from :class:`SweepRow` records:
measured loads/stores (total and per matrix), work, the matching exact
model prediction, the paper lower bound, and the derived leading constant

    c_hat = (A-traffic) * sqrt(S) / (N^2 M)        (SYRK)
    c_hat = Q * sqrt(S) / N^3                      (Cholesky)

which is the number the paper's theorems pin down (1/sqrt(2), 1, 1/(3 sqrt 2),
1/3, ...).  Counting-only machines (``strict=False, numerics=False``) make
large-N sweeps cheap; numeric verification happens in the test suite on
smaller shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..baselines import ooc_chol, ooc_syrk
from ..core.bounds import cholesky_lower_bound, syrk_lower_bound
from ..core.lbc import lbc_cholesky
from ..core.tbs import tbs_syrk
from ..core.tbs_tiled import tbs_tiled_syrk
from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from .model import (
    IOPrediction,
    lbc_model,
    ooc_chol_model,
    ooc_syrk_model,
    tbs_model,
    tbs_tiled_model,
)

SYRK_ALGS = ("tbs", "tiled", "ocs")
CHOL_ALGS = ("lbc", "occ")


@dataclass(frozen=True)
class SweepRow:
    """One (kernel, algorithm, shape) measurement."""

    kernel: str
    alg: str
    n: int
    m: int            # SYRK: columns of A; Cholesky: == n
    s: int
    loads: int
    stores: int
    a_loads: int      # loads attributed to streamed input (A) where separable
    c_loads: int      # loads attributed to the output matrix where separable
    mults: int
    model_loads: int
    lower_bound: float

    @property
    def q(self) -> int:
        return self.loads

    @property
    def ratio_to_bound(self) -> float:
        return self.loads / self.lower_bound if self.lower_bound else math.inf

    @property
    def leading_constant(self) -> float:
        """Measured constant in front of ``N^2 M / sqrt(S)`` (SYRK, A-traffic
        only) or ``N^3 / sqrt(S)`` (Cholesky, total)."""
        if self.kernel == "syrk":
            return self.a_loads * math.sqrt(self.s) / (self.n**2 * self.m)
        return self.loads * math.sqrt(self.s) / (self.n**3)

    @property
    def oi_mults(self) -> float:
        return self.mults / self.loads if self.loads else math.inf


def _counting_machine(s: int, shapes: dict[str, tuple[int, int]]) -> TwoLevelMachine:
    m = TwoLevelMachine(s, strict=False, numerics=False)
    for name, shape in shapes.items():
        m.add_matrix(name, np.zeros(shape))
    return m


def run_syrk_once(alg: str, n: int, mcols: int, s: int, **kw) -> SweepRow:
    """Run one SYRK schedule in counting mode and package the row."""
    if alg not in SYRK_ALGS:
        raise ConfigurationError(f"unknown SYRK algorithm {alg!r} (want one of {SYRK_ALGS})")
    m = _counting_machine(s, {"A": (n, mcols), "C": (n, n)})
    rows, cols = range(n), range(mcols)
    if alg == "tbs":
        stats = tbs_syrk(m, "A", "C", rows, cols, **kw)
        model = tbs_model(n, mcols, s, k=kw.get("k"))
    elif alg == "tiled":
        stats = tbs_tiled_syrk(m, "A", "C", rows, cols, **kw)
        model = tbs_tiled_model(n, mcols, s, k=kw.get("k", 4), b=kw.get("b"))
    else:
        stats = ooc_syrk(m, "A", "C", rows, cols, **kw)
        model = ooc_syrk_model(n, mcols, s, tile=kw.get("tile"))
    m.assert_empty()
    return SweepRow(
        kernel="syrk", alg=alg, n=n, m=mcols, s=s,
        loads=stats.loads, stores=stats.stores,
        a_loads=stats.loads_by_matrix.get("A", 0),
        c_loads=stats.loads_by_matrix.get("C", 0),
        mults=stats.mults, model_loads=model.loads,
        lower_bound=syrk_lower_bound(n, mcols, s),
    )


def run_cholesky_once(alg: str, n: int, s: int, **kw) -> SweepRow:
    """Run one Cholesky schedule in counting mode and package the row."""
    if alg not in CHOL_ALGS:
        raise ConfigurationError(f"unknown Cholesky algorithm {alg!r} (want one of {CHOL_ALGS})")
    m = _counting_machine(s, {"A": (n, n)})
    if alg == "lbc":
        stats = lbc_cholesky(m, "A", range(n), **kw)
        from ..config import lbc_block_size

        b = kw.get("b") or lbc_block_size(n)
        model = lbc_model(n, s, b, syrk=kw.get("syrk", "tbs"), k=kw.get("k"))
    else:
        # OCC understands only the tile override; drop LBC-only kwargs so
        # mixed sweeps can pass one kwargs dict for both algorithms.
        occ_kw = {k2: v for k2, v in kw.items() if k2 == "tile"}
        stats = ooc_chol(m, "A", range(n), **occ_kw)
        model = ooc_chol_model(n, s, tile=occ_kw.get("tile"))
    m.assert_empty()
    return SweepRow(
        kernel="cholesky", alg=alg, n=n, m=n, s=s,
        loads=stats.loads, stores=stats.stores,
        a_loads=stats.loads_by_matrix.get("A", 0), c_loads=0,
        mults=stats.mults, model_loads=model.loads,
        lower_bound=cholesky_lower_bound(n, s),
    )


def sweep_syrk(
    ns: Iterable[int], ms: Iterable[int], ss: Iterable[int], algs: Iterable[str] = SYRK_ALGS
) -> list[SweepRow]:
    """Cartesian sweep over shapes and algorithms (E2's data)."""
    out = []
    for s in ss:
        for n in ns:
            for mcols in ms:
                for alg in algs:
                    out.append(run_syrk_once(alg, n, mcols, s))
    return out


def sweep_cholesky(
    ns: Iterable[int], ss: Iterable[int], algs: Iterable[str] = CHOL_ALGS, **kw
) -> list[SweepRow]:
    """Cartesian sweep over shapes and algorithms (E3's data)."""
    out = []
    for s in ss:
        for n in ns:
            for alg in algs:
                out.append(run_cholesky_once(alg, n, s, **kw))
    return out
