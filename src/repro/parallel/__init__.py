"""Parallel (P-node) model: the paper's suggested next step, §2.2 + conclusion.

The paper's machine-model discussion notes the equivalence it builds on:
"the two-level model can be used to study the volume of communication of a
single node in a parallel machine, since the set of all other nodes can be
viewed as a single 'slow' memory".  This subpackage takes that literally:

* a *node assignment* partitions the result matrix's lower triangle among
  ``P`` nodes — either by square tiles (the classical 2D approach) or by
  triangle blocks (the paper's device, distributed);
* each node then executes its share on its own two-level counting machine
  with fast memory ``S``, where every load is a network *receive*;
* the simulator reports per-node receive volumes (max = the quantity
  parallel lower bounds govern, mean, imbalance).

The conclusion's conjecture — that triangle blocks yield communication-
efficient *parallel* symmetric kernels — is reproduced as experiment E11:
the per-node maximum receive volume drops by the same ``(k-1)/s -> sqrt(2)``
factor as in the sequential model, at equal memory and balance.

Beyond the fixed SYRK strategies, :mod:`repro.parallel.executor` runs *any*
recorded schedule across ``p`` nodes: it partitions the schedule's task DAG
(level-greedy antichain dealing / greedy locality / owner-computes),
replays each shard on its own counting engine via per-shard sub-trace
slicing, and charges cross-shard RAW/reduction edges as explicit
node-to-node transfers — experiment E14 measures the result against the
per-node lower bounds in :mod:`repro.core.bounds`.

On top of the one-shot partitioners, :mod:`repro.parallel.refine` locally
*searches* the assignment space (single-op / reduction-class / write-group
moves, incremental ``max(recv + transfer_in)`` ledger, greedy and annealing
drivers) and never returns a partition measured worse than its seed, and
:mod:`repro.parallel.makespan` scores any ``(owner, order)`` pair with a
mults-weighted critical-path/latency model — experiment E16 measures both.

:mod:`repro.parallel.cosearch` closes the loop: instead of searching the
op *order* (``repro.graph.search``) and the op *ownership* (``refine``)
in separate silos, one annealing walk interleaves both move kinds through
a single :class:`~repro.parallel.cosearch.CoSearchState` — an exact-cover
partition ledger plus a checkpointed :class:`~repro.parallel.makespan.
MakespanLedger` that re-scores only the schedule suffix a move can touch
— under one latency objective, and never returns a schedule measured
worse than the best seed of its {partitioner} x {order} portfolio.
Experiment E18 measures the joint walk against the decoupled pipelines.
"""

from .executor import (
    PARTITIONERS,
    POLICIES,
    ExecutorSummary,
    ShardReport,
    execute_graph,
    owner_from_assignment,
    partition_graph,
    shard_schedule,
)
from .cosearch import (
    CoSearchCost,
    CoSearchResult,
    CoSearchState,
    cosearch,
    cosearch_cost,
    cosearch_portfolio,
)
from .makespan import MakespanLedger, MakespanResult, makespan_model
from .partition import (
    BlockSpec,
    NodeAssignment,
    balance_cap,
    square_tile_assignment,
    triangle_block_assignment,
)
from .refine import (
    EVAL_POLICIES,
    REFINE_STRATEGIES,
    PartitionLedger,
    RefineResult,
    movable_units,
    partition_cost,
    refine_partition,
    refine_partitions,
    write_groups,
)
from .simulate import (
    NodeReport,
    ParallelSummary,
    record_block_schedule,
    simulate_syrk,
)

__all__ = [
    "BlockSpec",
    "NodeAssignment",
    "balance_cap",
    "square_tile_assignment",
    "triangle_block_assignment",
    "MakespanLedger",
    "MakespanResult",
    "makespan_model",
    "CoSearchCost",
    "CoSearchResult",
    "CoSearchState",
    "cosearch",
    "cosearch_cost",
    "cosearch_portfolio",
    "EVAL_POLICIES",
    "REFINE_STRATEGIES",
    "PartitionLedger",
    "RefineResult",
    "movable_units",
    "partition_cost",
    "refine_partition",
    "refine_partitions",
    "write_groups",
    "NodeReport",
    "ParallelSummary",
    "record_block_schedule",
    "simulate_syrk",
    "PARTITIONERS",
    "POLICIES",
    "ExecutorSummary",
    "ShardReport",
    "execute_graph",
    "owner_from_assignment",
    "partition_graph",
    "shard_schedule",
]
