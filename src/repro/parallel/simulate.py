"""Per-node simulation of distributed SYRK under a node assignment.

Each node executes its assigned blocks on its own two-level counting
machine (fast memory ``S``): hold the block's C piece, stream the needed
``A`` segments column by column — every load is a *receive* from the rest
of the machine (the "slow memory" of §2.2's equivalence).  The result-matrix
traffic is counted separately and in both directions: each C element is
received (``c_recv``) and sent back (``c_send``, the writeback eviction)
exactly once by whichever node owns it, so total communication volume is
recv- and send-complete.

The quantity of interest is the **maximum per-node receive volume** —
parallel lower bounds (Irony et al., Kwasniewski et al., quoted in §2.2)
bound exactly this — together with balance statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..machine.machine import TwoLevelMachine
from ..sched.ops import OuterColsUpdate, TriangleUpdate
from ..sched.schedule import Schedule, record_schedule
from .partition import BlockSpec, NodeAssignment


def fleet_mean(values: "list[int]") -> float:
    """Mean over nodes; an empty fleet averages to 0.0 instead of raising."""
    return sum(values) / len(values) if values else 0.0


def fleet_imbalance(values: "list[int]") -> float:
    """max / mean over nodes (1.0 = perfect balance).

    The single source of the idle-fleet convention shared by
    :class:`ParallelSummary` and the executor's summary: an empty or
    all-zero fleet is perfectly balanced by definition, so those cases
    return exactly 1.0.
    """
    mean = fleet_mean(values)
    if not mean:
        return 1.0
    return max(values) / mean


@dataclass(frozen=True)
class NodeReport:
    """Communication/work accounting for one node."""

    node: int
    n_blocks: int
    a_recv: int          # A elements received (streamed operands)
    c_recv: int          # C elements received (owned output pieces)
    mults: int
    peak_memory: int
    c_send: int = 0      # C elements sent back (writeback evictions)

    @property
    def total_recv(self) -> int:
        return self.a_recv + self.c_recv

    @property
    def total_comm(self) -> int:
        """Both directions: receives plus result elements sent back."""
        return self.total_recv + self.c_send


@dataclass(frozen=True)
class ParallelSummary:
    """Fleet-level summary of a simulated distributed SYRK.

    All statistics are total functions: an empty node list (or a fleet of
    idle nodes) yields the neutral values ``0`` / ``0.0`` / ``1.0`` rather
    than raising, so degenerate assignments (``p`` larger than the block
    count, zero-work shards) summarize cleanly.
    """

    strategy: str
    n: int
    m: int
    p: int
    s: int
    nodes: tuple[NodeReport, ...]

    @property
    def max_recv(self) -> int:
        return max((r.total_recv for r in self.nodes), default=0)

    @property
    def max_a_recv(self) -> int:
        return max((r.a_recv for r in self.nodes), default=0)

    @property
    def max_send(self) -> int:
        return max((r.c_send for r in self.nodes), default=0)

    @property
    def mean_recv(self) -> float:
        return fleet_mean([r.total_recv for r in self.nodes])

    @property
    def compute_imbalance(self) -> float:
        """max mults / mean mults (1.0 = perfect balance, idle fleets too)."""
        return fleet_imbalance([r.mults for r in self.nodes])

    @property
    def total_mults(self) -> int:
        return sum(r.mults for r in self.nodes)

    @property
    def total_c_send(self) -> int:
        return sum(r.c_send for r in self.nodes)


def _run_block(m: TwoLevelMachine, block: BlockSpec, mcols: int) -> None:
    if block.kind == "triangle":
        rows = np.array(sorted(block.rows_i), dtype=np.int64)
        region = m.triangle_block("C", rows)
        m.load(region)
        for k in range(mcols):
            seg = m.column_segment("A", rows, k)
            m.load(seg)
            m.compute(TriangleUpdate(m, "C", "A", rows, k))
            m.evict(seg)
        m.evict(region, writeback=True)
    elif block.kind == "diag":
        rows = np.array(sorted(block.rows_i), dtype=np.int64)
        region = m.lower_tile("C", rows)
        m.load(region)
        for k in range(mcols):
            seg = m.column_segment("A", rows, k)
            m.load(seg)
            m.compute(TriangleUpdate(m, "C", "A", rows, k, include_diagonal=True))
            m.evict(seg)
        m.evict(region, writeback=True)
    elif block.kind == "rect":
        ri = np.array(sorted(block.rows_i), dtype=np.int64)
        rj = np.array(sorted(block.rows_j), dtype=np.int64)
        region = m.tile("C", ri, rj)
        m.load(region)
        for k in range(mcols):
            si = m.column_segment("A", ri, k)
            sj = m.column_segment("A", rj, k)
            m.load(si)
            m.load(sj)
            m.compute(OuterColsUpdate(m, "C", "A", "A", ri, rj, k, k))
            m.evict(si)
            m.evict(sj)
        m.evict(region, writeback=True)
    else:  # pragma: no cover - defensive
        raise ConfigurationError(f"unknown block kind {block.kind!r}")


def simulate_syrk(assignment: NodeAssignment, mcols: int) -> ParallelSummary:
    """Run every node's share on its own counting machine; summarize.

    Each node's machine registers the full (zero) matrices purely for shape
    — loads are counted per node, and the per-node peak occupancy proves
    the schedule respects the node memory ``S``.
    """
    if mcols < 1:
        raise ConfigurationError(f"mcols must be >= 1, got {mcols}")
    n = assignment.n
    reports = []
    for node_id, blocks in enumerate(assignment.blocks):
        m = TwoLevelMachine(assignment.s, strict=False, numerics=False)
        m.add_matrix("A", np.zeros((n, mcols)))
        m.add_matrix("C", np.zeros((n, n)))
        for block in blocks:
            _run_block(m, block, mcols)
        m.assert_empty()
        reports.append(
            NodeReport(
                node=node_id,
                n_blocks=len(blocks),
                a_recv=int(m.stats.loads_by_matrix.get("A", 0)),
                c_recv=int(m.stats.loads_by_matrix.get("C", 0)),
                mults=int(m.stats.mults),
                peak_memory=int(m.stats.peak_occupancy),
                c_send=int(m.stats.stores_by_matrix.get("C", 0)),
            )
        )
    return ParallelSummary(
        strategy=assignment.strategy,
        n=n,
        m=mcols,
        p=assignment.p,
        s=assignment.s,
        nodes=tuple(reports),
    )


def record_block_schedule(
    assignment: NodeAssignment, mcols: int
) -> tuple[Schedule, list[int]]:
    """Record the fixed block strategy as one flat schedule, plus op owners.

    Runs every node's blocks (in node order) on a single recording machine —
    each block cleans up after itself, so the concatenation is a legal
    two-level schedule — and returns the recorded
    :class:`~repro.sched.schedule.Schedule` together with ``owner``: the node
    index of every *compute* op, in stream order.  This is the bridge to the
    task-DAG executor (:mod:`repro.parallel.executor`): sharding the recorded
    stream by ``owner`` must reproduce :func:`simulate_syrk`'s per-node
    counts bit for bit, which the test suite asserts.
    """
    if mcols < 1:
        raise ConfigurationError(f"mcols must be >= 1, got {mcols}")
    n = assignment.n
    m = TwoLevelMachine(assignment.s, strict=False, numerics=False)
    m.add_matrix("A", np.zeros((n, mcols)))
    m.add_matrix("C", np.zeros((n, n)))
    owner: list[int] = []

    def body() -> None:
        for node_id, blocks in enumerate(assignment.blocks):
            before = m.stats.n_computes
            for block in blocks:
                _run_block(m, block, mcols)
            owner.extend([node_id] * (m.stats.n_computes - before))

    schedule = record_schedule(m, body)
    m.assert_empty()
    return schedule, owner
