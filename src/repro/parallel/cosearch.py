"""Joint (order × ownership) co-search: one scheduler state, one objective.

The two siloed engines each optimize one coordinate of a parallel
schedule while holding the other fixed: the order search
(:mod:`repro.graph.search`) moves op order against a sequential LRU
objective, the partition refiner (:mod:`repro.parallel.refine`) moves op
ownership against ``max(recv + transfer_in)``, and the makespan model
only scores the result after the fact.  But a schedule is an
``(order, owner)`` *pair*, and the coordinates interact: which node owns
an op decides whose cache its footprint pollutes, and where an op sits in
the order decides which transfers serialize on the critical path.
Kwasniewski et al. (arXiv 2010.05975) get near-optimal parallel I/O
precisely by choosing placement and schedule together; this module is
that experiment for our DAGs.

:class:`CoSearchState` threads one state object through *both* move
kinds — the reduction-class segment moves of the order annealer
(:func:`repro.graph.search.propose_segment_move`) and the
single-op / reduction-class / write-group ownership moves of the refiner
(:func:`repro.parallel.refine.movable_units` over a
:class:`~repro.parallel.refine.PartitionLedger`) — under one unified
latency objective

    ``J(order, owner) = makespan(order, owner; alpha, beta)
                        + beta * max_q(lru_loads_q + transfer_in_q)``

makespan in op-weight units (mults) with cross-edge latencies
``alpha + beta * flow``, plus the bottleneck node's I/O time: its LRU
replay loads of the order-induced shard sub-sequence at capacity ``S``
and its incoming transfer volume, both converted to time by ``beta``.
Every term is delta-evaluable from the leftmost changed position, so the
anneal inner loop stays hot: the makespan re-scores through
:class:`~repro.parallel.makespan.MakespanLedger` checkpoints, the
per-node LRU loads through one checkpointed
:class:`~repro.trace.replay.LruCursor` per node, and the transfers
through the refiner's exact ledger.  Like its exemplars, the state
exposes a ``profitable()`` cost-model gate next to its move generators.

The driver (:func:`cosearch`) runs the shared Metropolis harness
(:func:`repro.graph.search.anneal_minimize`) from a seed portfolio of
{all partitioners} × {recorded + heuristic + searched orders}, fanning
one chain per seed over the process pool (:mod:`repro.perf.pool` —
chain 0 is the classic serial run and the merged result is bit-identical
at any ``jobs``).  The model only *ranks*: seeds and winner are
re-measured with real per-shard replays (:func:`cosearch_cost`) and the
best measured seed is returned whenever the search did not genuinely
improve on it — co-search can never hand back a worse schedule than the
best thing it was seeded with.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigurationError, ScheduleError
from ..graph.compare import searched_orders
from ..graph.dependency import DependencyGraph
from ..graph.scheduler import list_schedule
from ..graph.search import (
    _CHAIN_TEMP_LADDER,
    anneal_minimize,
    propose_segment_move,
    reduction_class_of,
)
from ..obs.convergence import AnnealSeries
from ..obs.probe import get_probe
from ..perf.pool import parallel_map, task_seed
from ..trace.replay import LruCursor, lru_replay_trace
from .executor import PARTITIONERS, partition_graph
from .makespan import MakespanLedger, makespan_model
from .partition import balance_cap
from .refine import PartitionLedger, movable_units


@dataclass(frozen=True)
class CoSearchCost:
    """The measured unified objective of one ``(order, owner)`` pair."""

    p: int
    s: int
    alpha: float
    beta: float
    #: latency-model makespan of the pair (mults + cross-edge latencies).
    makespan: float
    #: per-node LRU replay loads of the order-induced shard sub-sequences.
    loads: tuple[int, ...]
    #: per-node incoming transfer volumes (``cut_transfers``, deduplicated).
    transfer_in: tuple[int, ...]

    @property
    def bottleneck_io(self) -> int:
        """``max_q(loads_q + transfer_in_q)`` — the I/O bottleneck."""
        return max(
            (l + t for l, t in zip(self.loads, self.transfer_in)), default=0
        )

    @property
    def cost(self) -> float:
        """``makespan + beta * bottleneck_io`` — the co-search objective."""
        return self.makespan + self.beta * self.bottleneck_io


def cosearch_cost(
    graph: DependencyGraph,
    owner: Sequence[int],
    p: int,
    s: int,
    *,
    order: Sequence[int] | None = None,
    alpha: float = 1.0,
    beta: float = 1.0,
    relax_reductions: bool = False,
) -> CoSearchCost:
    """Measure the unified objective of a pair with real per-shard replays.

    The ground truth the incremental ledgers are checked against: the
    makespan comes from a cold :func:`~repro.parallel.makespan.makespan_model`
    pass, each node's loads from the array LRU engine replaying its
    order-induced sub-trace (shared interning, no recompilation), and the
    transfers from :meth:`~repro.graph.dependency.DependencyGraph.cut_transfers`.
    """
    if graph.trace is None:
        raise ConfigurationError(
            "cosearch_cost needs the graph's compiled trace; build the "
            "graph with DependencyGraph.from_trace/from_schedule"
        )
    n = len(graph)
    if len(owner) != n:
        raise ConfigurationError(f"owner has {len(owner)} entries for {n} ops")
    if n and not (0 <= min(owner) and max(owner) < p):
        raise ConfigurationError(f"owner indices must lie in 0..{p - 1}")
    span = makespan_model(
        graph, owner, p=p, order=order, alpha=alpha, beta=beta,
        relax_reductions=relax_reductions,
    )
    transfer_in = [0] * p
    for (_src, dst), elems in graph.cut_transfers(list(owner)).items():
        transfer_in[dst] += len(elems)
    shard_seq: list[list[int]] = [[] for _ in range(p)]
    for v in (order if order is not None else range(n)):
        shard_seq[owner[v]].append(v)
    loads = tuple(
        lru_replay_trace(graph.trace.select_ops(seq), s).loads if seq else 0
        for seq in shard_seq
    )
    return CoSearchCost(
        p=p, s=s, alpha=float(alpha), beta=float(beta),
        makespan=span.makespan, loads=loads, transfer_in=tuple(transfer_in),
    )


class CoSearchState:
    """One scheduler state threaded through both move kinds.

    Holds the committed ``(order, owner)`` pair and three incremental
    models of the unified objective — the
    :class:`~repro.parallel.makespan.MakespanLedger` (latency), one
    checkpointed :class:`~repro.trace.replay.LruCursor` per node (shard
    loads), and the refiner's :class:`~repro.parallel.refine.PartitionLedger`
    (exact transfers + balance cap).  The LRU checkpoints share the
    makespan ledger's interval, so both move kinds re-evaluate exactly the
    order suffix they changed.

    Invariants (the property suite pins them): the owner map is an exact
    cover of the op set at every step, the order stays a legal order of
    the graph under ``relax_reductions``, and :meth:`cost` always equals
    the measured :func:`cosearch_cost` of the committed pair bit for bit.
    """

    def __init__(
        self,
        graph: DependencyGraph,
        owner: Sequence[int],
        p: int,
        s: int,
        *,
        order: Sequence[int] | None = None,
        alpha: float = 1.0,
        beta: float = 1.0,
        relax_reductions: bool = True,
        keep_writers_together: bool = False,
        balance_slack: float | None = 1.5,
        max_segment: int = 12,
        order_move_prob: float = 0.5,
        interval: int | None = None,
    ):
        if graph.trace is None:
            raise ConfigurationError(
                "co-search needs the graph's compiled trace; build the "
                "graph with DependencyGraph.from_trace/from_schedule"
            )
        if p < 1:
            raise ConfigurationError(f"p must be >= 1, got {p}")
        if s < 1:
            raise ConfigurationError(f"S must be >= 1, got {s}")
        if not 0.0 <= order_move_prob <= 1.0:
            raise ConfigurationError(
                f"order_move_prob must lie in [0, 1], got {order_move_prob}"
            )
        n = len(graph)
        self.graph = graph
        self.p = p
        self.s = s
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.relax_reductions = relax_reductions
        self.max_segment = max_segment
        self.order_move_prob = order_move_prob
        order = list(range(n)) if order is None else [int(v) for v in order]
        self.ledger = PartitionLedger(graph, owner, p)
        # The makespan ledger validates the order once; every proposal is
        # re-checked against the graph before it is costed.
        self.span = MakespanLedger(
            graph, self.ledger.owner, p=p, order=order, alpha=alpha,
            beta=beta, relax_reductions=relax_reductions, interval=interval,
        )
        self.order = list(order)
        self.pos = [0] * n
        for i, v in enumerate(self.order):
            self.pos[v] = i
        self.interval = self.span.interval
        self.class_of = reduction_class_of(graph)
        self.units, self.op_units = movable_units(
            graph, keep_writers_together=keep_writers_together
        )
        self.group_units = [g for g in self.units if len(g) > 1]
        self.cap = None
        if balance_slack is not None:
            self.cap = max(
                balance_cap(sum(self.ledger.weights), p, balance_slack),
                max(self.ledger.loads, default=0),
            )
        self.illegal = 0
        self.order_moves = 0
        self.owner_moves = 0
        # Per-node LRU cursors, checkpointed in lockstep with the makespan
        # ledger: snapshot j holds every node's cache state before position
        # j*interval of the committed order.
        self._cursors = [LruCursor(graph.trace, s) for _ in range(p)]
        self._io_snaps: list[tuple] = [
            tuple(c.snapshot() for c in self._cursors)
        ]
        loads, new_snaps = self._replay_io(0, self.order, self.ledger.owner)
        if new_snaps:
            self._io_snaps = new_snaps
        self._loads = loads
        self._cost = self._combine(
            self.span.makespan, loads, self.ledger.transfer_in
        )
        #: the measured objective this state started from — the floor the
        #: never-worse postcondition holds the walk to.
        self.seed_cost = self._cost

    # -- objective ------------------------------------------------------- #

    def _combine(
        self, makespan: float, loads: Sequence[int], transfer_in: Sequence[int]
    ) -> float:
        worst = 0
        for q in range(self.p):
            t = loads[q] + transfer_in[q]
            if t > worst:
                worst = t
        return makespan + self.beta * worst

    def cost(self) -> float:
        """The committed pair's unified objective ``J``."""
        return self._cost

    @property
    def loads(self) -> list[int]:
        """Per-node LRU loads of the committed pair."""
        return list(self._loads)

    def profitable(self) -> bool:
        """Cost-model gate: is the committed state better than the seed?

        The walk's analogue of the exemplar scheduler's ``profitable()``
        check — the driver only considers adopting a searched state that
        passes it, and even then the measured objective has the last word.
        """
        return self._cost < self.seed_cost

    def _replay_io(
        self, j0: int, order: Sequence[int], owner: Sequence[int]
    ) -> tuple[list[int], list[tuple]]:
        """Replay positions ``j0*interval..n`` through the node cursors."""
        interval = self.interval
        cursors = self._cursors
        for q, c in enumerate(cursors):
            c.restore(self._io_snaps[j0][q])
        new_snaps: list[tuple] = []
        for idx in range(j0 * interval, len(order)):
            if idx % interval == 0:
                new_snaps.append(tuple(c.snapshot() for c in cursors))
            v = order[idx]
            cursors[owner[v]].apply_op(v)
        return [c.loads for c in cursors], new_snaps

    # -- move kinds ------------------------------------------------------ #

    def propose_order(self, rng: random.Random):
        """One segment move of the order; ``(candidate_cost, commit)`` or None."""
        n = len(self.order)
        if n < 3:
            return None
        i, _j, segment = propose_segment_move(
            self.order, self.class_of, rng, max_segment=self.max_segment
        )
        if segment == self.order[i : i + len(segment)]:
            return None
        candidate = self.order[:i] + segment + self.order[i + len(segment):]
        if not self.graph.is_valid_order(
            candidate, relax_reductions=self.relax_reductions
        ):
            self.illegal += 1
            return None
        j0 = i // self.interval
        cand_ms = self.span.score(order=candidate, from_pos=i)
        cand_loads, new_snaps = self._replay_io(j0, candidate, self.ledger.owner)
        cand_cost = self._combine(cand_ms, cand_loads, self.ledger.transfer_in)

        def commit() -> None:
            self.order = candidate
            for idx in range(i, i + len(segment)):
                self.pos[candidate[idx]] = idx
            self.span.commit()
            self._io_snaps[j0:] = new_snaps
            self._loads = cand_loads
            self._cost = cand_cost
            self.order_moves += 1

        return cand_cost, commit

    def propose_owner(self, rng: random.Random):
        """One unit ownership move; ``(candidate_cost, commit)`` or None."""
        if self.p < 2 or not len(self.graph):
            return None
        ledger = self.ledger
        if self.group_units and rng.random() < 0.3:
            group = self.group_units[rng.randrange(len(self.group_units))]
        else:
            group = self.units[self.op_units[rng.randrange(len(self.graph))][0]]
        q = rng.randrange(self.p)
        if all(ledger.owner[v] == q for v in group):
            return None
        if self.cap is not None:
            weight = sum(
                ledger.weights[v] for v in group if ledger.owner[v] != q
            )
            if ledger.loads[q] + weight > self.cap:
                return None
        i0 = min(self.pos[v] for v in group)
        j0 = i0 // self.interval
        # Evaluate applied (the makespan ledger copies the owner array at
        # score time), then revert; commit re-applies the same move.
        undo = ledger.move_group(group, q)
        cand_ms = self.span.score(owner=ledger.owner, from_pos=i0)
        cand_loads, new_snaps = self._replay_io(j0, self.order, ledger.owner)
        cand_cost = self._combine(cand_ms, cand_loads, ledger.transfer_in)
        ledger.undo(undo)

        def commit() -> None:
            ledger.move_group(group, q)
            self.span.commit()
            self._io_snaps[j0:] = new_snaps
            self._loads = cand_loads
            self._cost = cand_cost
            self.owner_moves += 1

        return cand_cost, commit

    def step(self, rng: random.Random):
        """One mixed proposal for :func:`anneal_minimize`."""
        if rng.random() < self.order_move_prob:
            return self.propose_order(rng)
        return self.propose_owner(rng)


@dataclass
class CoSearchResult:
    """One co-search run: the chosen pair plus its accounting."""

    graph: DependencyGraph
    p: int
    s: int
    order: list[int]
    owner: tuple[int, ...]
    #: measured unified objective of the returned pair / of the best seed.
    cost: float = 0.0
    seed_cost: float = 0.0
    #: the full measured accounting of the returned pair.
    measured: CoSearchCost | None = None
    #: portfolio label of the winning chain's seed.
    seed_label: str = ""
    #: measured objective per portfolio seed, keyed by label.
    seed_costs: dict = field(default_factory=dict)
    winner_chain: int = 0
    chain_costs: list = field(default_factory=list)
    evaluations: int = 0
    #: True when every chain lost to the best measured seed and that seed
    #: was returned instead — the hard never-worse postcondition firing.
    reverted: bool = False
    params: dict = field(default_factory=dict)
    #: the winning chain's ``AnnealSeries`` when the run was recorded.
    convergence: "AnnealSeries | None" = None

    @property
    def improved(self) -> bool:
        return self.cost < self.seed_cost

    @property
    def makespan(self) -> float:
        return self.measured.makespan if self.measured is not None else 0.0


def _cosearch_chain(
    graph: DependencyGraph,
    label: str,
    order: list[int],
    owner: list[int],
    p: int,
    s: int,
    iters: int,
    seed: int,
    alpha: float,
    beta: float,
    relax_reductions: bool,
    keep_writers_together: bool,
    balance_slack: float | None,
    max_segment: int,
    order_move_prob: float,
    t_start: float,
    t_end: float,
    want_series: bool,
):
    """One Metropolis chain over ``(order, owner)`` pairs, from one seed.

    Returns a plain tuple (no graph inside) so portfolio chains can run
    in worker processes and pickle their results back cheaply.  The cold
    re-measure cross-check of the winner runs in-chain, so a drifted
    ledger fails loudly wherever the chain ran.
    """
    state = CoSearchState(
        graph, owner, p, s, order=order, alpha=alpha, beta=beta,
        relax_reductions=relax_reductions,
        keep_writers_together=keep_writers_together,
        balance_slack=balance_slack, max_segment=max_segment,
        order_move_prob=order_move_prob,
    )
    series = None
    if want_series:
        series = AnnealSeries(label=f"cosearch {label} seed={seed}")
    rng = random.Random(seed)
    best = {
        "cost": state.cost(),
        "order": list(state.order),
        "owner": list(state.ledger.owner),
    }

    def step(step_rng: random.Random):
        proposal = state.step(step_rng)
        if proposal is None:
            return None
        cand_cost, inner_commit = proposal

        def commit() -> None:
            inner_commit()
            if cand_cost < best["cost"]:
                best["cost"] = cand_cost
                best["order"] = list(state.order)
                best["owner"] = list(state.ledger.owner)

        return cand_cost, commit

    _final, stats = anneal_minimize(
        state.cost(), step, iters=iters, rng=rng,
        t_start=t_start, t_end=t_end, series=series,
    )
    # Ground-truth re-measure of the chain's winner: the three incremental
    # ledgers must agree with real per-shard replays to the last bit.
    measured = cosearch_cost(
        graph, best["owner"], p, s, order=best["order"], alpha=alpha,
        beta=beta, relax_reductions=relax_reductions,
    )
    if measured.cost != best["cost"]:
        raise ScheduleError(
            f"co-search ledger drifted: model {best['cost']} != "
            f"measured {measured.cost}"
        )
    chain_params = {
        "accepted": stats.accepted,
        "acceptance_rate": stats.acceptance_rate,
        "illegal": state.illegal,
        "order_moves": state.order_moves,
        "owner_moves": state.owner_moves,
    }
    return (
        best["cost"], best["order"], best["owner"], stats.evaluations,
        chain_params, series,
    )


def _cosearch_task(task):
    """Module-level (picklable) wrapper: one portfolio chain per worker."""
    return _cosearch_chain(*task)


def cosearch_portfolio(
    graph: DependencyGraph,
    p: int,
    s: int,
    *,
    relax_reductions: bool = True,
    heuristics: tuple[str, ...] = ("locality",),
    search_strategies: tuple[str, ...] = ("anneal",),
    search_kwargs: dict | None = None,
    balance_slack: float = 1.2,
) -> list[tuple[str, list[int], list[int]]]:
    """The seed portfolio: {all partitioners} × {orders}, labeled.

    Orders are the recorded order, each named worklist heuristic, and
    each searched order (:func:`repro.graph.compare.searched_orders` at
    capacity ``s``); owners come from every one-shot partitioner.  Each
    ``(label, order, owner)`` triple seeds one co-search chain — and
    because searched orders and refined-style owners are *in* the
    portfolio, the joint walk starts no worse than the best decoupled
    pipeline it is compared against.
    """
    orders: list[tuple[str, list[int]]] = [
        ("recorded", list(range(len(graph))))
    ]
    for heuristic in heuristics:
        orders.append(
            (
                heuristic,
                list_schedule(
                    graph, heuristic, relax_reductions=relax_reductions
                ).order,
            )
        )
    for label, found in searched_orders(
        graph, s, tuple(search_strategies),
        relax_reductions=relax_reductions, search_kwargs=search_kwargs,
    ).items():
        orders.append((label, found.order))
    seeds = []
    for partitioner in PARTITIONERS:
        owner = partition_graph(graph, p, partitioner, balance_slack=balance_slack)
        for olabel, order in orders:
            seeds.append((f"{partitioner}|{olabel}", list(order), list(owner)))
    return seeds


def cosearch(
    graph: DependencyGraph,
    p: int,
    s: int,
    *,
    iters: int = 600,
    seed: int = 0,
    jobs: int = 1,
    alpha: float = 1.0,
    beta: float = 1.0,
    relax_reductions: bool = True,
    seeds: "list[tuple[str, list[int], list[int]]] | None" = None,
    heuristics: tuple[str, ...] = ("locality",),
    search_strategies: tuple[str, ...] = ("anneal",),
    search_kwargs: dict | None = None,
    keep_writers_together: bool = False,
    balance_slack: float | None = 1.5,
    max_segment: int = 12,
    order_move_prob: float = 0.5,
    t_start: float = 1.5,
    t_end: float = 0.05,
    record_convergence: bool = False,
) -> CoSearchResult:
    """Jointly search orders and ownerships from a labeled seed portfolio.

    One Metropolis chain per seed (``seeds`` defaults to
    :func:`cosearch_portfolio`): chain ``k`` draws its RNG stream from
    :func:`repro.perf.pool.task_seed` (chain 0 is exactly the caller's
    ``seed``) and scales ``t_start`` by the deterministic chain ladder.
    ``jobs > 1`` fans chains over worker processes; the merged result is
    bit-identical for any ``jobs`` (order-preserving map, min by
    ``(measured cost, chain index)``).

    Hard postcondition: every seed and the winning pair are measured with
    real per-shard replays (:func:`cosearch_cost`), and the best measured
    seed is returned — ``reverted=True`` — whenever no chain beat it.
    The returned pair is therefore never worse than the best decoupled
    baseline present in the portfolio (e.g. a searched order with a
    refined owner, when the caller seeds one in).

    ``relax_reductions`` defaults to True: the order dimension only opens
    up when commuting ``+=`` chains may re-interleave; results are then
    equal up to floating-point reassociation (the rewriter's validated
    explicit streams still enforce peak occupancy separately).
    """
    if iters < 0:
        raise ConfigurationError(f"iters must be >= 0, got {iters}")
    if graph.trace is None:
        raise ConfigurationError(
            "co-search needs the graph's compiled trace; build the "
            "graph with DependencyGraph.from_trace/from_schedule"
        )
    if seeds is None:
        seeds = cosearch_portfolio(
            graph, p, s, relax_reductions=relax_reductions,
            heuristics=heuristics, search_strategies=search_strategies,
            search_kwargs=search_kwargs,
        )
    if not seeds:
        raise ConfigurationError("co-search needs at least one portfolio seed")
    probe = get_probe()
    want_series = record_convergence or probe.enabled

    # Measure every seed: the baselines of the run and the floor of the
    # never-worse postcondition.
    seed_measured = [
        cosearch_cost(
            graph, owner, p, s, order=order, alpha=alpha, beta=beta,
            relax_reductions=relax_reductions,
        )
        for _label, order, owner in seeds
    ]
    best_seed = min(
        range(len(seeds)), key=lambda k: (seed_measured[k].cost, k)
    )

    ladder = _CHAIN_TEMP_LADDER
    tasks = [
        (
            graph, label, list(order), list(owner), p, s, iters,
            task_seed(seed, k), alpha, beta, relax_reductions,
            keep_writers_together, balance_slack, max_segment,
            order_move_prob, t_start * ladder[k % len(ladder)], t_end,
            want_series,
        )
        for k, (label, order, owner) in enumerate(seeds)
    ]
    n_jobs = min(int(jobs), len(tasks))
    if n_jobs <= 1:
        outcomes = [_cosearch_chain(*task) for task in tasks]
    else:
        outcomes = parallel_map(_cosearch_task, tasks, jobs=n_jobs)

    winner = min(
        range(len(outcomes)), key=lambda k: (outcomes[k][0], k)
    )
    w_cost, w_order, w_owner, _evals, chain_params, series = outcomes[winner]
    measured = cosearch_cost(
        graph, w_owner, p, s, order=w_order, alpha=alpha, beta=beta,
        relax_reductions=relax_reductions,
    )
    # The hard postcondition: the measured objective decides, and the best
    # measured seed wins any tie-or-worse outcome.
    reverted = measured.cost > seed_measured[best_seed].cost
    if reverted:
        winner = best_seed
        _slabel, w_order, w_owner = seeds[best_seed]
        w_order, w_owner = list(w_order), list(w_owner)
        measured = seed_measured[best_seed]
        w_cost = measured.cost
        series = outcomes[best_seed][5]
        chain_params = outcomes[best_seed][4]

    evaluations = sum(o[3] for o in outcomes)
    params = {
        "iters": iters, "seed": seed, "jobs": jobs, "chains": len(seeds),
        "alpha": alpha, "beta": beta,
        "relax_reductions": relax_reductions,
        "order_move_prob": order_move_prob, "max_segment": max_segment,
        "balance_slack": balance_slack,
        "keep_writers_together": keep_writers_together,
    }
    params.update(chain_params)
    if probe.enabled:
        probe.count("cosearch.runs")
        probe.count("cosearch.evaluations", evaluations)
        probe.count(
            "cosearch.order_moves",
            sum(o[4]["order_moves"] for o in outcomes),
        )
        probe.count(
            "cosearch.owner_moves",
            sum(o[4]["owner_moves"] for o in outcomes),
        )
        if reverted:
            probe.count("cosearch.reverted")
        if series is not None:
            probe.attach("convergence.cosearch", series)
    return CoSearchResult(
        graph=graph,
        p=p,
        s=s,
        order=list(w_order),
        owner=tuple(int(q) for q in w_owner),
        cost=measured.cost,
        seed_cost=seed_measured[best_seed].cost,
        measured=measured,
        seed_label=seeds[winner][0],
        seed_costs={
            label: seed_measured[k].cost
            for k, (label, _o, _w) in enumerate(seeds)
        },
        winner_chain=winner,
        chain_costs=[o[0] for o in outcomes],
        evaluations=evaluations,
        reverted=reverted,
        params=params,
        convergence=series,
    )
