"""Distributing the SYRK result matrix among P nodes.

A :class:`NodeAssignment` maps each node to a list of :class:`BlockSpec`s —
disjoint pieces of the lower triangle of ``C`` whose union over all nodes is
exactly the full lower triangle (validated exhaustively in tests).  Two
strategies:

* :func:`square_tile_assignment` — the classical 2D decomposition: the tile
  grid of side ``s`` is dealt round-robin (by zig-zag area order, for
  balance) to nodes; diagonal tiles are lower-triangle pieces;
* :func:`triangle_block_assignment` — the paper's device distributed: the
  ``c^2`` triangle blocks of a TBS partition are dealt round-robin, the
  diagonal zones are recursively partitioned the same way, and the strip
  falls back to square tiles.

Both keep every block small enough for a fast memory of ``S`` on the node
(square: ``s^2 + 2s <= S``; triangle: ``k(k+1)/2 <= S``), so the per-node
simulation in :mod:`repro.parallel.simulate` is a legal two-level schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from ..config import square_tile_side_for_memory, triangle_side_for_memory
from ..errors import ConfigurationError
from ..core.partition import plan_partition
from ..utils.checks import check_positive
from ..utils.intervals import split_indices


@dataclass(frozen=True)
class BlockSpec:
    """One piece of the lower triangle assigned to a node.

    ``kind``:
      * ``"rect"``     — full rectangle ``rows_i x rows_j`` (disjoint row sets,
        every pair subdiagonal);
      * ``"diag"``     — lower triangle (incl. diagonal) over ``rows_i``;
      * ``"triangle"`` — strict subdiagonal pairs ``TB(rows_i)`` (scattered).
    """

    kind: str
    rows_i: tuple[int, ...]
    rows_j: tuple[int, ...] = ()

    def pairs(self) -> set[tuple[int, int]]:
        """The (i, j) elements of C this block covers (i >= j)."""
        if self.kind == "rect":
            return {(i, j) for i in self.rows_i for j in self.rows_j}
        if self.kind == "diag":
            rs = sorted(self.rows_i)
            return {(i, j) for a, i in enumerate(rs) for j in rs[: a + 1]}
        if self.kind == "triangle":
            rs = sorted(self.rows_i)
            return {(i, j) for a, i in enumerate(rs) for j in rs[:a]}
        raise ConfigurationError(f"unknown block kind {self.kind!r}")

    def n_pairs(self) -> int:
        ni = len(self.rows_i)
        if self.kind == "rect":
            return ni * len(self.rows_j)
        if self.kind == "diag":
            return ni * (ni + 1) // 2
        if self.kind == "triangle":
            return ni * (ni - 1) // 2
        raise ConfigurationError(f"unknown block kind {self.kind!r}")


@dataclass
class NodeAssignment:
    """Blocks per node, plus the problem geometry."""

    n: int
    p: int
    s: int
    strategy: str
    blocks: list[list[BlockSpec]] = field(default_factory=list)

    def node_pair_counts(self) -> list[int]:
        """Computation balance: number of C pairs per node."""
        return [sum(b.n_pairs() for b in node) for node in self.blocks]

    def validate_exact_cover(self) -> bool:
        """Union over nodes == full lower triangle (incl. diagonal), no overlap."""
        seen: set[tuple[int, int]] = set()
        for node in self.blocks:
            for block in node:
                ps = block.pairs()
                if seen & ps:
                    return False
                seen |= ps
        want = {(i, j) for i in range(self.n) for j in range(i + 1)}
        return seen == want


def balance_cap(total: int, p: int, slack: float) -> int:
    """The largest integer load within ``slack * total / p`` — exactly.

    Per-node loads are integers, so a load cap is only meaningful as the
    integer floor of the real bound ``slack * total / p``.  Evaluating that
    bound in floating point can round *below* the true value (e.g.
    ``total = 2**53 + 1`` loses its last bit before the division), which
    made ``balance_slack = 1.0`` spuriously reject exact-balance
    placements.  ``Fraction`` keeps the comparison exact: an integer load
    ``x`` satisfies ``x <= slack * total / p`` iff
    ``x <= balance_cap(total, p, slack)``.  The float ``slack`` is snapped
    to the simplest nearby rational (``limit_denominator``), so a nominal
    ``1.2`` means exactly ``6/5`` rather than the float one ulp below it.
    """
    check_positive("p", p)
    if slack < 0:
        raise ConfigurationError(f"slack must be >= 0, got {slack}")
    return int(Fraction(slack).limit_denominator(10**6) * total / p)


def deal_least_loaded(
    weights: "list[int]",
    p: int,
    start: int = 0,
    loads: "list[int] | None" = None,
) -> list[int]:
    """Greedy load balancing: assign each item to the least-loaded node.

    Items are taken largest-weight-first; ties on load are broken
    round-robin from ``start``, so equally-loaded nodes fill in rotating
    order ``start, start+1, ...`` rather than always from node 0.  (The
    ``start`` offset used to be accepted and silently ignored by ``_deal``,
    and the low-index bias meant that when ``p`` does not divide the item
    count the surplus items all piled onto the first nodes.)  Largest-first
    greedy keeps the per-node load spread within one item of the mean for
    uniform weights.

    ``loads`` carries running per-node loads across calls (mutated in
    place) — the DAG executor's level-greedy partitioner deals one
    antichain level at a time against fleet-wide totals.  Returns the
    target node of every item, in input order.
    """
    check_positive("p", p)
    if loads is None:
        loads = [0] * p
    targets = [0] * len(weights)
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    for r, i in enumerate(order):
        target = min(range(p), key=lambda q: (loads[q], (q - start - r) % p))
        targets[i] = target
        loads[target] += weights[i]
    return targets


def _deal(items: list[BlockSpec], p: int, start: int = 0) -> list[list[BlockSpec]]:
    """Deal blocks to nodes via :func:`deal_least_loaded` on pair counts."""
    targets = deal_least_loaded([b.n_pairs() for b in items], p, start)
    nodes: list[list[BlockSpec]] = [[] for _ in range(p)]
    for block, target in zip(items, targets):
        nodes[target].append(block)
    return nodes


def square_tile_assignment(n: int, p: int, s: int) -> NodeAssignment:
    """2D decomposition: square ``s``-tiles (from memory ``S``) dealt to nodes."""
    check_positive("n", n)
    check_positive("p", p)
    tile = square_tile_side_for_memory(s)
    row_blocks = split_indices(np.arange(n), tile)
    items: list[BlockSpec] = []
    for bi, ri in enumerate(row_blocks):
        items.append(BlockSpec("diag", tuple(int(r) for r in ri)))
        for rj in row_blocks[:bi]:
            items.append(BlockSpec("rect", tuple(int(r) for r in ri), tuple(int(r) for r in rj)))
    out = NodeAssignment(n=n, p=p, s=s, strategy="square", blocks=_deal(items, p))
    return out


def triangle_block_assignment(n: int, p: int, s: int) -> NodeAssignment:
    """Triangle-block decomposition: TBS partition blocks dealt to nodes.

    Follows Algorithm 4's geometry: triangle blocks over the square zones,
    recursion into the diagonal zones, square tiles for strips/fallbacks.
    """
    check_positive("n", n)
    check_positive("p", p)
    k = triangle_side_for_memory(s)
    items: list[BlockSpec] = []

    def recurse(rows: np.ndarray) -> None:
        part = plan_partition(rows.size, k) if rows.size else None
        if part is None:
            _square_items(rows)
            return
        ck = part.covered
        if part.leftover:
            _strip_items(rows[ck:], rows[:ck])
        for u in range(k):
            recurse(rows[part.group(u)])
        for (_ij, local) in part.iter_blocks():
            items.append(BlockSpec("triangle", tuple(int(r) for r in rows[local])))

    def _square_items(rows: np.ndarray) -> None:
        tile = square_tile_side_for_memory(s)
        row_blocks = split_indices(rows, tile)
        for bi, ri in enumerate(row_blocks):
            items.append(BlockSpec("diag", tuple(int(r) for r in ri)))
            for rj in row_blocks[:bi]:
                items.append(BlockSpec("rect", tuple(int(r) for r in ri), tuple(int(r) for r in rj)))

    def _strip_items(strip: np.ndarray, prior: np.ndarray) -> None:
        tile = square_tile_side_for_memory(s)
        for ri in split_indices(strip, tile):
            for rj in split_indices(prior, tile):
                items.append(BlockSpec("rect", tuple(int(r) for r in ri), tuple(int(r) for r in rj)))
        _square_items(strip)

    recurse(np.arange(n))
    return NodeAssignment(n=n, p=p, s=s, strategy="triangle", blocks=_deal(items, p))
